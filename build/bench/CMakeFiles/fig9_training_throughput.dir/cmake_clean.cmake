file(REMOVE_RECURSE
  "CMakeFiles/fig9_training_throughput.dir/fig9_training_throughput.cc.o"
  "CMakeFiles/fig9_training_throughput.dir/fig9_training_throughput.cc.o.d"
  "fig9_training_throughput"
  "fig9_training_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_training_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

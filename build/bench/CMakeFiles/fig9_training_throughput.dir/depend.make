# Empty dependencies file for fig9_training_throughput.
# This may be replaced when dependencies are built.

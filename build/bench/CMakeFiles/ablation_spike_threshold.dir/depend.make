# Empty dependencies file for ablation_spike_threshold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_spike_threshold.dir/ablation_spike_threshold.cc.o"
  "CMakeFiles/ablation_spike_threshold.dir/ablation_spike_threshold.cc.o.d"
  "ablation_spike_threshold"
  "ablation_spike_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spike_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

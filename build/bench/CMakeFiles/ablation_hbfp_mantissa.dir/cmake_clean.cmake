file(REMOVE_RECURSE
  "CMakeFiles/ablation_hbfp_mantissa.dir/ablation_hbfp_mantissa.cc.o"
  "CMakeFiles/ablation_hbfp_mantissa.dir/ablation_hbfp_mantissa.cc.o.d"
  "ablation_hbfp_mantissa"
  "ablation_hbfp_mantissa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hbfp_mantissa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_hbfp_mantissa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_workload_sensitivity.dir/table2_workload_sensitivity.cc.o"
  "CMakeFiles/table2_workload_sensitivity.dir/table2_workload_sensitivity.cc.o.d"
  "table2_workload_sensitivity"
  "table2_workload_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_workload_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_scheduling.dir/fig10_scheduling.cc.o"
  "CMakeFiles/fig10_scheduling.dir/fig10_scheduling.cc.o.d"
  "fig10_scheduling"
  "fig10_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_scheduling.
# This may be replaced when dependencies are built.

# Empty dependencies file for table1_pareto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_pareto.dir/table1_pareto.cc.o"
  "CMakeFiles/table1_pareto.dir/table1_pareto.cc.o.d"
  "table1_pareto"
  "table1_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

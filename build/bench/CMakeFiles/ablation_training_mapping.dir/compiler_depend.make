# Empty compiler generated dependencies file for ablation_training_mapping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_mapping.dir/ablation_training_mapping.cc.o"
  "CMakeFiles/ablation_training_mapping.dir/ablation_training_mapping.cc.o.d"
  "ablation_training_mapping"
  "ablation_training_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_staging_buffer.
# This may be replaced when dependencies are built.

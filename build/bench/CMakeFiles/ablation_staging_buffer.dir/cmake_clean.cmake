file(REMOVE_RECURSE
  "CMakeFiles/ablation_staging_buffer.dir/ablation_staging_buffer.cc.o"
  "CMakeFiles/ablation_staging_buffer.dir/ablation_staging_buffer.cc.o.d"
  "ablation_staging_buffer"
  "ablation_staging_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staging_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

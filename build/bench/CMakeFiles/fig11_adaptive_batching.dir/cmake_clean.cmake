file(REMOVE_RECURSE
  "CMakeFiles/fig11_adaptive_batching.dir/fig11_adaptive_batching.cc.o"
  "CMakeFiles/fig11_adaptive_batching.dir/fig11_adaptive_batching.cc.o.d"
  "fig11_adaptive_batching"
  "fig11_adaptive_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_adaptive_batching.
# This may be replaced when dependencies are built.

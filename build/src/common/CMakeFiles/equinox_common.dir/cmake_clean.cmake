file(REMOVE_RECURSE
  "CMakeFiles/equinox_common.dir/logging.cc.o"
  "CMakeFiles/equinox_common.dir/logging.cc.o.d"
  "CMakeFiles/equinox_common.dir/random.cc.o"
  "CMakeFiles/equinox_common.dir/random.cc.o.d"
  "libequinox_common.a"
  "libequinox_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for equinox_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libequinox_common.a"
)

file(REMOVE_RECURSE
  "libequinox_stats.a"
)

# Empty compiler generated dependencies file for equinox_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equinox_stats.dir/cycle_breakdown.cc.o"
  "CMakeFiles/equinox_stats.dir/cycle_breakdown.cc.o.d"
  "CMakeFiles/equinox_stats.dir/histogram.cc.o"
  "CMakeFiles/equinox_stats.dir/histogram.cc.o.d"
  "CMakeFiles/equinox_stats.dir/registry.cc.o"
  "CMakeFiles/equinox_stats.dir/registry.cc.o.d"
  "CMakeFiles/equinox_stats.dir/table.cc.o"
  "CMakeFiles/equinox_stats.dir/table.cc.o.d"
  "libequinox_stats.a"
  "libequinox_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for equinox_model.
# This may be replaced when dependencies are built.

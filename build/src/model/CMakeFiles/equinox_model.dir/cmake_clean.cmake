file(REMOVE_RECURSE
  "CMakeFiles/equinox_model.dir/analytical.cc.o"
  "CMakeFiles/equinox_model.dir/analytical.cc.o.d"
  "CMakeFiles/equinox_model.dir/cacti_lite.cc.o"
  "CMakeFiles/equinox_model.dir/cacti_lite.cc.o.d"
  "CMakeFiles/equinox_model.dir/dse.cc.o"
  "CMakeFiles/equinox_model.dir/dse.cc.o.d"
  "CMakeFiles/equinox_model.dir/tech_params.cc.o"
  "CMakeFiles/equinox_model.dir/tech_params.cc.o.d"
  "libequinox_model.a"
  "libequinox_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

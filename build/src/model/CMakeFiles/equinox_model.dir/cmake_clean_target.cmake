file(REMOVE_RECURSE
  "libequinox_model.a"
)

file(REMOVE_RECURSE
  "libequinox_isa.a"
)

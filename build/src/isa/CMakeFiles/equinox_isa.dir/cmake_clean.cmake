file(REMOVE_RECURSE
  "CMakeFiles/equinox_isa.dir/instruction.cc.o"
  "CMakeFiles/equinox_isa.dir/instruction.cc.o.d"
  "CMakeFiles/equinox_isa.dir/program.cc.o"
  "CMakeFiles/equinox_isa.dir/program.cc.o.d"
  "libequinox_isa.a"
  "libequinox_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

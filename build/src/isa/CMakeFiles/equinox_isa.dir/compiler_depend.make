# Empty compiler generated dependencies file for equinox_isa.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerator.cc" "src/sim/CMakeFiles/equinox_sim.dir/accelerator.cc.o" "gcc" "src/sim/CMakeFiles/equinox_sim.dir/accelerator.cc.o.d"
  "/root/repo/src/sim/buffer.cc" "src/sim/CMakeFiles/equinox_sim.dir/buffer.cc.o" "gcc" "src/sim/CMakeFiles/equinox_sim.dir/buffer.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/equinox_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/equinox_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/equinox_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/equinox_sim.dir/event_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/equinox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/equinox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/equinox_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/equinox_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/equinox_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libequinox_sim.a"
)

# Empty compiler generated dependencies file for equinox_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equinox_sim.dir/accelerator.cc.o"
  "CMakeFiles/equinox_sim.dir/accelerator.cc.o.d"
  "CMakeFiles/equinox_sim.dir/buffer.cc.o"
  "CMakeFiles/equinox_sim.dir/buffer.cc.o.d"
  "CMakeFiles/equinox_sim.dir/config.cc.o"
  "CMakeFiles/equinox_sim.dir/config.cc.o.d"
  "CMakeFiles/equinox_sim.dir/event_queue.cc.o"
  "CMakeFiles/equinox_sim.dir/event_queue.cc.o.d"
  "libequinox_sim.a"
  "libequinox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libequinox_nn.a"
)

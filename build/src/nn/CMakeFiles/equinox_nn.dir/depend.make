# Empty dependencies file for equinox_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equinox_nn.dir/datasets.cc.o"
  "CMakeFiles/equinox_nn.dir/datasets.cc.o.d"
  "CMakeFiles/equinox_nn.dir/layers.cc.o"
  "CMakeFiles/equinox_nn.dir/layers.cc.o.d"
  "CMakeFiles/equinox_nn.dir/loss.cc.o"
  "CMakeFiles/equinox_nn.dir/loss.cc.o.d"
  "CMakeFiles/equinox_nn.dir/mlp.cc.o"
  "CMakeFiles/equinox_nn.dir/mlp.cc.o.d"
  "CMakeFiles/equinox_nn.dir/optimizer.cc.o"
  "CMakeFiles/equinox_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/equinox_nn.dir/rnn.cc.o"
  "CMakeFiles/equinox_nn.dir/rnn.cc.o.d"
  "CMakeFiles/equinox_nn.dir/trainer.cc.o"
  "CMakeFiles/equinox_nn.dir/trainer.cc.o.d"
  "libequinox_nn.a"
  "libequinox_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for equinox_dram.
# This may be replaced when dependencies are built.

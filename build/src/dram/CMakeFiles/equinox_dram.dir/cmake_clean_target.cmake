file(REMOVE_RECURSE
  "libequinox_dram.a"
)

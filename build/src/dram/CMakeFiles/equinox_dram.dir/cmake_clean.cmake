file(REMOVE_RECURSE
  "CMakeFiles/equinox_dram.dir/hbm.cc.o"
  "CMakeFiles/equinox_dram.dir/hbm.cc.o.d"
  "CMakeFiles/equinox_dram.dir/host_link.cc.o"
  "CMakeFiles/equinox_dram.dir/host_link.cc.o.d"
  "libequinox_dram.a"
  "libequinox_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

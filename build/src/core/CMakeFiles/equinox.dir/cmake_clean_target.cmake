file(REMOVE_RECURSE
  "libequinox.a"
)

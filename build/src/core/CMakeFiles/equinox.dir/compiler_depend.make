# Empty compiler generated dependencies file for equinox.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/equinox.dir/experiment.cc.o"
  "CMakeFiles/equinox.dir/experiment.cc.o.d"
  "CMakeFiles/equinox.dir/presets.cc.o"
  "CMakeFiles/equinox.dir/presets.cc.o.d"
  "libequinox.a"
  "libequinox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libequinox_synth.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/equinox_synth.dir/synthesis.cc.o"
  "CMakeFiles/equinox_synth.dir/synthesis.cc.o.d"
  "libequinox_synth.a"
  "libequinox_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for equinox_synth.
# This may be replaced when dependencies are built.

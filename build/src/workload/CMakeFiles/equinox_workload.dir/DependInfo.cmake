
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/compiler.cc" "src/workload/CMakeFiles/equinox_workload.dir/compiler.cc.o" "gcc" "src/workload/CMakeFiles/equinox_workload.dir/compiler.cc.o.d"
  "/root/repo/src/workload/dnn_model.cc" "src/workload/CMakeFiles/equinox_workload.dir/dnn_model.cc.o" "gcc" "src/workload/CMakeFiles/equinox_workload.dir/dnn_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/equinox_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/equinox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/equinox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/equinox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/equinox_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/equinox_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

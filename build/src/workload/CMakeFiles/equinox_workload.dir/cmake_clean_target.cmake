file(REMOVE_RECURSE
  "libequinox_workload.a"
)

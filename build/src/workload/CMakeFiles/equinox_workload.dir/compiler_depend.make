# Empty compiler generated dependencies file for equinox_workload.
# This may be replaced when dependencies are built.

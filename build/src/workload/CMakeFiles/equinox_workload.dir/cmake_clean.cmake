file(REMOVE_RECURSE
  "CMakeFiles/equinox_workload.dir/compiler.cc.o"
  "CMakeFiles/equinox_workload.dir/compiler.cc.o.d"
  "CMakeFiles/equinox_workload.dir/dnn_model.cc.o"
  "CMakeFiles/equinox_workload.dir/dnn_model.cc.o.d"
  "libequinox_workload.a"
  "libequinox_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

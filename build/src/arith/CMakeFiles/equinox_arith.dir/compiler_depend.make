# Empty compiler generated dependencies file for equinox_arith.
# This may be replaced when dependencies are built.

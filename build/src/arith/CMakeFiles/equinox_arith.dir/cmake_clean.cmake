file(REMOVE_RECURSE
  "CMakeFiles/equinox_arith.dir/bfloat16.cc.o"
  "CMakeFiles/equinox_arith.dir/bfloat16.cc.o.d"
  "CMakeFiles/equinox_arith.dir/bfp.cc.o"
  "CMakeFiles/equinox_arith.dir/bfp.cc.o.d"
  "CMakeFiles/equinox_arith.dir/gemm.cc.o"
  "CMakeFiles/equinox_arith.dir/gemm.cc.o.d"
  "CMakeFiles/equinox_arith.dir/tensor.cc.o"
  "CMakeFiles/equinox_arith.dir/tensor.cc.o.d"
  "libequinox_arith.a"
  "libequinox_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equinox_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

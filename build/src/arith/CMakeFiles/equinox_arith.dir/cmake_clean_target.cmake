file(REMOVE_RECURSE
  "libequinox_arith.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/bfloat16.cc" "src/arith/CMakeFiles/equinox_arith.dir/bfloat16.cc.o" "gcc" "src/arith/CMakeFiles/equinox_arith.dir/bfloat16.cc.o.d"
  "/root/repo/src/arith/bfp.cc" "src/arith/CMakeFiles/equinox_arith.dir/bfp.cc.o" "gcc" "src/arith/CMakeFiles/equinox_arith.dir/bfp.cc.o.d"
  "/root/repo/src/arith/gemm.cc" "src/arith/CMakeFiles/equinox_arith.dir/gemm.cc.o" "gcc" "src/arith/CMakeFiles/equinox_arith.dir/gemm.cc.o.d"
  "/root/repo/src/arith/tensor.cc" "src/arith/CMakeFiles/equinox_arith.dir/tensor.cc.o" "gcc" "src/arith/CMakeFiles/equinox_arith.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/equinox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

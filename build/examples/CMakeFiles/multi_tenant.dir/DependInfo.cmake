
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_tenant.cpp" "examples/CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o" "gcc" "examples/CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/equinox.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/equinox_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/equinox_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/equinox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/equinox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/equinox_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/equinox_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/equinox_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/equinox_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/equinox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/equinox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/colocated_training.dir/colocated_training.cpp.o"
  "CMakeFiles/colocated_training.dir/colocated_training.cpp.o.d"
  "colocated_training"
  "colocated_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for colocated_training.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hbfp_trainer.dir/hbfp_trainer.cpp.o"
  "CMakeFiles/hbfp_trainer.dir/hbfp_trainer.cpp.o.d"
  "hbfp_trainer"
  "hbfp_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbfp_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hbfp_trainer.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_mlp_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mlp_workload.dir/test_mlp_workload.cc.o"
  "CMakeFiles/test_mlp_workload.dir/test_mlp_workload.cc.o.d"
  "test_mlp_workload"
  "test_mlp_workload.pdb"
  "test_mlp_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

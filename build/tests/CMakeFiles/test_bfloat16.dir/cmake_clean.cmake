file(REMOVE_RECURSE
  "CMakeFiles/test_bfloat16.dir/test_bfloat16.cc.o"
  "CMakeFiles/test_bfloat16.dir/test_bfloat16.cc.o.d"
  "test_bfloat16"
  "test_bfloat16.pdb"
  "test_bfloat16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfloat16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_bfp.dir/test_bfp.cc.o"
  "CMakeFiles/test_bfp.dir/test_bfp.cc.o.d"
  "test_bfp"
  "test_bfp.pdb"
  "test_bfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

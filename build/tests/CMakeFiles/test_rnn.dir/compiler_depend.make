# Empty compiler generated dependencies file for test_rnn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rnn.dir/test_rnn.cc.o"
  "CMakeFiles/test_rnn.dir/test_rnn.cc.o.d"
  "test_rnn"
  "test_rnn.pdb"
  "test_rnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

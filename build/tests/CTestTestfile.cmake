# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_bfloat16[1]_include.cmake")
include("/root/repo/build/tests/test_bfp[1]_include.cmake")
include("/root/repo/build/tests/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_accelerator[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sim_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rnn[1]_include.cmake")
include("/root/repo/build/tests/test_mlp_workload[1]_include.cmake")

#!/usr/bin/env python3
"""Per-directory line-coverage rollup for the coverage preset.

Walks a --coverage build tree for .gcda files, asks gcov for JSON
intermediate records, merges per-source-line execution counts across
translation units (a header line is covered if ANY including TU ran
it), and prints a per-directory table of line coverage under src/.

Exits nonzero when a gated directory falls below its gate (default:
src/obs, src/cluster, src/fault, and src/mem at 90% lines), so
`scripts/check.sh --coverage` fails the build instead of silently
shipping untested export, fleet-simulation, resilience control-plane,
or memory-hierarchy code.

Usage: scripts/coverage_report.py [build_dir] [--gate-dir src/obs]...
                                  [--gate-pct 90]

--gate-dir is repeatable; every named directory must clear --gate-pct.
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda, build_dir):
    """One gcov JSON document per .gcda, or None when gcov fails."""
    try:
        out = subprocess.run(
            ["gcov", "--json-format", "--stdout", "--object-directory",
             os.path.dirname(gcda), gcda],
            cwd=build_dir, capture_output=True, check=True)
    except (OSError, subprocess.CalledProcessError) as e:
        print(f"coverage_report: gcov failed on {gcda}: {e}",
              file=sys.stderr)
        return None
    # --stdout emits one JSON document per line (one per source file
    # batch); every line parses independently.
    docs = []
    for line in out.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    return docs


def merge_counts(docs, repo_root, line_hits):
    """Fold gcov 'files' records into {source: {line: max_count}}."""
    for doc in docs:
        for frec in doc.get("files", []):
            src = frec.get("file", "")
            src = os.path.normpath(
                src if os.path.isabs(src)
                else os.path.join(repo_root, src))
            if not src.startswith(repo_root + os.sep):
                continue
            rel = os.path.relpath(src, repo_root)
            if not rel.startswith("src" + os.sep):
                continue
            hits = line_hits[rel]
            for lrec in frec.get("lines", []):
                n = lrec.get("line_number")
                c = lrec.get("count", 0)
                if n is None:
                    continue
                hits[n] = max(hits.get(n, 0), c)


def directory_of(rel_path):
    """Rollup key: the first two components (e.g. 'src/obs')."""
    parts = rel_path.split(os.sep)
    return os.sep.join(parts[:2]) if len(parts) > 2 else parts[0]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir", nargs="?", default="build-coverage")
    ap.add_argument("--gate-dir", action="append", default=None,
                    help="directory that must clear --gate-pct "
                         "(repeatable; default: src/obs, src/cluster, "
                         "src/fault, src/mem)")
    ap.add_argument("--gate-pct", type=float, default=90.0)
    args = ap.parse_args()
    gate_dirs = args.gate_dir or ["src/obs", "src/cluster", "src/fault",
                                  "src/mem"]

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    build_dir = os.path.join(repo_root, args.build_dir) \
        if not os.path.isabs(args.build_dir) else args.build_dir
    if not os.path.isdir(build_dir):
        print(f"coverage_report: no build dir {build_dir}",
              file=sys.stderr)
        return 2

    gcda_files = list(find_gcda(build_dir))
    if not gcda_files:
        print(f"coverage_report: no .gcda under {build_dir} "
              "(build with the coverage preset and run ctest first)",
              file=sys.stderr)
        return 2

    line_hits = collections.defaultdict(dict)
    for gcda in gcda_files:
        docs = gcov_json(gcda, build_dir)
        if docs:
            merge_counts(docs, repo_root, line_hits)

    per_dir = collections.defaultdict(lambda: [0, 0])  # [covered, total]
    for rel, hits in line_hits.items():
        d = per_dir[directory_of(rel)]
        d[0] += sum(1 for c in hits.values() if c > 0)
        d[1] += len(hits)

    if not per_dir:
        print("coverage_report: gcov produced no line records",
              file=sys.stderr)
        return 2

    print(f"{'directory':<20} {'lines':>8} {'covered':>8} {'pct':>7}")
    print("-" * 46)
    total_cov = total_lines = 0
    gate_pct_seen = {}
    for name in sorted(per_dir):
        covered, total = per_dir[name]
        pct = 100.0 * covered / total if total else 0.0
        total_cov += covered
        total_lines += total
        if name in gate_dirs:
            gate_pct_seen[name] = pct
        print(f"{name:<20} {total:>8} {covered:>8} {pct:>6.1f}%")
    print("-" * 46)
    overall = 100.0 * total_cov / total_lines if total_lines else 0.0
    print(f"{'total':<20} {total_lines:>8} {total_cov:>8} "
          f"{overall:>6.1f}%")

    failed = False
    for gate_dir in gate_dirs:
        pct = gate_pct_seen.get(gate_dir)
        if pct is None:
            print(f"coverage_report: FAIL -- no coverage data for gated "
                  f"directory {gate_dir}", file=sys.stderr)
            failed = True
        elif pct < args.gate_pct:
            print(f"coverage_report: FAIL -- {gate_dir} line coverage "
                  f"{pct:.1f}% < gate {args.gate_pct:.1f}%",
                  file=sys.stderr)
            failed = True
        else:
            print(f"coverage_report: OK -- {gate_dir} "
                  f"{pct:.1f}% >= {args.gate_pct:.1f}%")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full tier1 test suite,
# optionally under AddressSanitizer/UBSan, plus a formatting check when
# clang-format is available.
#
# Usage:
#   scripts/check.sh             # default preset (RelWithDebInfo) + tests
#   scripts/check.sh --asan      # ALSO build + test the asan-ubsan preset
#   scripts/check.sh --tsan      # ALSO build the tsan preset and run the
#                                # "parallel"-labelled sweep-engine tests
#   scripts/check.sh --coverage  # build+test the coverage preset, then
#                                # print per-directory line coverage and
#                                # fail if src/obs/, src/cluster/,
#                                # src/fault/, or src/mem/ is below 90%
#   scripts/check.sh --resilience # only the overload-resilience
#                                # control-plane + chaos suites
#   scripts/check.sh --fleet     # only the fleet-tier suites
#                                # (hierarchical routing, SLO
#                                # autoscaler, traffic mixes)
#   scripts/check.sh --mem       # only the memory-hierarchy suites
#                                # (unit+property tier and the
#                                # passthrough/differential tier)
#   scripts/check.sh --bench-smoke # build the default preset, run the
#                                # perf-tracking benches (fig7, event
#                                # kernel, cluster scaling, overload
#                                # resilience, fleet scaling, memory
#                                # hierarchy), require each fresh BENCH
#                                # record, and diff it against the
#                                # committed bench/baselines/ (fails on
#                                # a >10% events/s regression, a missing
#                                # baseline, or a bench that never wrote
#                                # its record; widen on noisy runners
#                                # with EQX_BENCH_TOLERANCE)
#   scripts/check.sh --format    # only run the clang-format check
#
# The "resilience" ctest label is a subset of tier1, so the default run
# (and the asan/tsan presets, via the tier1/parallel labels) already
# exercises the control-plane suites; --resilience is the fast loop.
#
# Exits nonzero on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

run_format_check() {
    # The container image may not ship clang-format; the style gate is
    # advisory there and must not fail the tier-1 run.
    local cf
    cf=$(command -v clang-format || true)
    if [ -z "$cf" ]; then
        echo "check.sh: clang-format not found; skipping format check"
        return 0
    fi
    echo "check.sh: clang-format check ($cf)"
    local bad=0
    while IFS= read -r f; do
        if ! "$cf" --dry-run --Werror "$f" >/dev/null 2>&1; then
            echo "  needs formatting: $f"
            bad=1
        fi
    done < <(git ls-files '*.cc' '*.hh')
    if [ "$bad" -ne 0 ]; then
        echo "check.sh: formatting violations (run clang-format -i)"
        return 1
    fi
    echo "check.sh: formatting clean"
}

run_preset() {
    local preset="$1"
    local label="${2:-tier1}"
    echo "check.sh: configure+build+test preset '$preset'"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset" -L "$label" -j "$(nproc)"
}

run_bench_smoke() {
    # Perf-regression gate: run the perf-tracking benches serially
    # (jobs=1 pins the exact dispatch path the digests cover), require
    # the fresh BENCH record (a bench exiting zero without writing one
    # -- or writing a stale/wrong-artifact one -- fails here instead of
    # silently diffing an old file), then diff it against the committed
    # baseline. bench_compare.py exits nonzero on a missing baseline
    # too, so a bench added here without a committed record fails
    # loudly.
    local benches=(fig7_inference_latency event_kernel cluster_scaling
                   overload_resilience fleet_scaling memory_hierarchy)
    echo "check.sh: configure+build preset 'default' (bench smoke)"
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target "${benches[@]}"
    local bench
    for bench in "${benches[@]}"; do
        echo "check.sh: bench smoke: $bench"
        rm -f "build/bench/BENCH_$bench.json"
        (cd build/bench && "./$bench" --jobs=1 >/dev/null)
        python3 scripts/bench_compare.py --require "$bench" \
            "build/bench/BENCH_$bench.json"
        python3 scripts/bench_compare.py \
            "bench/baselines/BENCH_$bench.json" \
            "build/bench/BENCH_$bench.json"
    done
}

case "${1:-}" in
  --format)
    run_format_check
    ;;
  --asan)
    run_format_check
    run_preset default
    run_preset asan-ubsan
    ;;
  --tsan)
    run_format_check
    run_preset default
    run_preset tsan parallel
    ;;
  --coverage)
    run_format_check
    run_preset coverage
    echo "check.sh: per-directory line coverage" \
         "(gates: src/obs, src/cluster, src/fault, src/mem >= 90%)"
    python3 scripts/coverage_report.py build-coverage
    ;;
  --resilience)
    run_preset default resilience
    ;;
  --fleet)
    run_preset default fleet
    ;;
  --mem)
    run_preset default mem
    ;;
  --bench-smoke)
    run_bench_smoke
    ;;
  "")
    run_format_check
    run_preset default
    ;;
  *)
    echo "usage: scripts/check.sh" \
         "[--asan|--tsan|--coverage|--resilience|--fleet|--mem|--bench-smoke|--format]" >&2
    exit 2
    ;;
esac

echo "check.sh: OK"

#!/usr/bin/env python3
"""Compare two BENCH_<artifact>.json perf records.

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance FRAC]

Every bench binary writes a BENCH_<artifact>.json record on exit (see
bench/bench_common.hh); this script diffs a committed baseline against
a fresh run and exits nonzero when the simulator got more than
--tolerance (default 0.10) slower on the events/second figure of
merit. Latency/throughput fields and notes are reported for context
but never gate: they measure the *simulated* system, which must not
move at all -- byte-identity is the digest suites' job, not a
tolerance check's.

The tolerance can also come from EQX_BENCH_TOLERANCE (the flag wins),
so CI lanes on noisy shared runners can widen the gate without
touching the call sites.
"""

import argparse
import json
import os
import sys


GATED_FIELD = "events_per_second"

# Reported for context when present in both records.
CONTEXT_FIELDS = [
    "wall_seconds",
    "events_dispatched",
    "jobs",
    "latency_p50_ms",
    "latency_p99_ms",
    "ops_rate_tops",
]


def load_record(path):
    if not os.path.exists(path):
        # Exit nonzero loudly: a missing baseline silently skipping the
        # gate would let regressions through. Record one with e.g.
        #   (cd build/bench && ./<bench> --jobs=1) && \
        #   cp build/bench/BENCH_<bench>.json bench/baselines/
        sys.exit(f"bench_compare: FAIL: record {path} is missing -- "
                 "run the bench with --jobs=1 and commit its BENCH "
                 "json to bench/baselines/")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    if GATED_FIELD not in record:
        sys.exit(f"bench_compare: {path} has no '{GATED_FIELD}' field "
                 "(not a BENCH record?)")
    return record


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<artifact>.json perf records and "
                    "fail on an events/s regression.")
    parser.add_argument("baseline", help="committed BENCH json")
    parser.add_argument("current", help="freshly produced BENCH json")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("EQX_BENCH_TOLERANCE", "0.10")),
        help="allowed fractional events/s regression (default 0.10, "
             "or EQX_BENCH_TOLERANCE)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("bench_compare: --tolerance must be in [0, 1)")

    base = load_record(args.baseline)
    cur = load_record(args.current)

    if base.get("artifact") != cur.get("artifact"):
        sys.exit(f"bench_compare: artifact mismatch: "
                 f"{base.get('artifact')!r} vs {cur.get('artifact')!r}")

    artifact = cur.get("artifact", "?")
    base_eps = float(base[GATED_FIELD])
    cur_eps = float(cur[GATED_FIELD])
    if base_eps <= 0.0:
        sys.exit(f"bench_compare: baseline {GATED_FIELD} is "
                 f"{base_eps}; record a real baseline first")

    ratio = cur_eps / base_eps
    print(f"bench_compare: {artifact}")
    print(f"  {GATED_FIELD}: {fmt(base_eps)} -> {fmt(cur_eps)} "
          f"({ratio:.3f}x, gate >= {1.0 - args.tolerance:.2f}x)")
    for field in CONTEXT_FIELDS:
        if field in base and field in cur and base[field] != cur[field]:
            print(f"  {field}: {fmt(base[field])} -> {fmt(cur[field])}")
    for key, val in sorted(cur.get("notes", {}).items()):
        prev = base.get("notes", {}).get(key)
        arrow = f"{fmt(prev)} -> " if prev is not None else ""
        print(f"  notes.{key}: {arrow}{fmt(val)}")

    if ratio < 1.0 - args.tolerance:
        # Spell out every metric's delta in the failure message so a CI
        # log alone localizes the regression (is it wall clock? fewer
        # events? a latency shift hinting at a behaviour change?).
        print(f"bench_compare: FAIL: {artifact} regressed "
              f"{(1.0 - ratio) * 100.0:.1f}% on {GATED_FIELD} "
              f"(tolerance {args.tolerance * 100.0:.0f}%)")
        for field in [GATED_FIELD] + CONTEXT_FIELDS:
            if field not in base or field not in cur:
                continue
            try:
                b, c = float(base[field]), float(cur[field])
            except (TypeError, ValueError):
                continue
            delta = f" ({(c / b - 1.0) * 100.0:+.1f}%)" if b else ""
            print(f"  FAIL detail: {field}: {fmt(base[field])} -> "
                  f"{fmt(cur[field])}{delta}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

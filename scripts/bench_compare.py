#!/usr/bin/env python3
"""Compare two BENCH_<artifact>.json perf records.

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance FRAC]
    bench_compare.py --require ARTIFACT RECORD

Every bench binary writes a BENCH_<artifact>.json record on exit (see
bench/bench_common.hh); this script diffs a committed baseline against
a fresh run and exits nonzero when the simulator got more than
--tolerance (default 0.10) slower on the events/second figure of
merit. Latency/throughput fields and notes are reported for context
but never gate: they measure the *simulated* system, which must not
move at all -- byte-identity is the digest suites' job, not a
tolerance check's.

The tolerance can also come from EQX_BENCH_TOLERANCE (the flag wins),
so CI lanes on noisy shared runners can widen the gate without
touching the call sites.

`--require ARTIFACT RECORD` validates a single fresh record instead of
comparing two: the file must exist, parse as a BENCH record, name the
expected artifact, and carry a real measurement (positive events/s
from at least one dispatched event). This closes the gap where a bench
binary exits zero without ever writing its record (or writes it for
the wrong artifact) and the compare step then diffs a stale file from
an earlier run -- check.sh runs the require step on the freshly
produced record before every baseline diff.
"""

import argparse
import json
import os
import sys


GATED_FIELD = "events_per_second"

# Reported for context when present in both records.
CONTEXT_FIELDS = [
    "wall_seconds",
    "events_dispatched",
    "jobs",
    "latency_p50_ms",
    "latency_p99_ms",
    "ops_rate_tops",
]


def load_record(path):
    if not os.path.exists(path):
        # Exit nonzero loudly: a missing baseline silently skipping the
        # gate would let regressions through. Record one with e.g.
        #   (cd build/bench && ./<bench> --jobs=1) && \
        #   cp build/bench/BENCH_<bench>.json bench/baselines/
        sys.exit(f"bench_compare: FAIL: record {path} is missing -- "
                 "run the bench with --jobs=1 and commit its BENCH "
                 "json to bench/baselines/")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    if GATED_FIELD not in record:
        sys.exit(f"bench_compare: {path} has no '{GATED_FIELD}' field "
                 "(not a BENCH record?)")
    return record


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def require_record(artifact, path):
    """Validate one fresh record: exists, parses, right artifact, and
    carries a real measurement. Exits via sys.exit on any problem."""
    record = load_record(path)
    if record.get("artifact") != artifact:
        sys.exit(f"bench_compare: FAIL: {path} records artifact "
                 f"{record.get('artifact')!r}, expected {artifact!r}")
    eps = float(record[GATED_FIELD])
    events = int(record.get("events_dispatched", 0))
    if eps <= 0.0 or events <= 0:
        sys.exit(f"bench_compare: FAIL: {path} carries no real "
                 f"measurement ({GATED_FIELD}={fmt(eps)}, "
                 f"events_dispatched={events}) -- did the bench run?")
    print(f"bench_compare: require {artifact}: OK "
          f"({GATED_FIELD}={fmt(eps)}, events={events})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<artifact>.json perf records and "
                    "fail on an events/s regression, or validate one "
                    "fresh record with --require.")
    parser.add_argument("baseline", nargs="?",
                        help="committed BENCH json (or, with --require, "
                             "the record to validate)")
    parser.add_argument("current", nargs="?",
                        help="freshly produced BENCH json")
    parser.add_argument(
        "--require", metavar="ARTIFACT",
        help="validate a single record instead of comparing: the one "
             "positional path must exist and be a real BENCH record "
             "for ARTIFACT")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("EQX_BENCH_TOLERANCE", "0.10")),
        help="allowed fractional events/s regression (default 0.10, "
             "or EQX_BENCH_TOLERANCE)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("bench_compare: --tolerance must be in [0, 1)")

    if args.require is not None:
        if args.baseline is None or args.current is not None:
            sys.exit("bench_compare: --require wants exactly one "
                     "record path")
        return require_record(args.require, args.baseline)
    if args.baseline is None or args.current is None:
        sys.exit("bench_compare: wants BASELINE and CURRENT records "
                 "(or --require ARTIFACT RECORD)")

    base = load_record(args.baseline)
    cur = load_record(args.current)

    if base.get("artifact") != cur.get("artifact"):
        sys.exit(f"bench_compare: artifact mismatch: "
                 f"{base.get('artifact')!r} vs {cur.get('artifact')!r}")

    artifact = cur.get("artifact", "?")
    base_eps = float(base[GATED_FIELD])
    cur_eps = float(cur[GATED_FIELD])
    if base_eps <= 0.0:
        sys.exit(f"bench_compare: baseline {GATED_FIELD} is "
                 f"{base_eps}; record a real baseline first")

    ratio = cur_eps / base_eps
    print(f"bench_compare: {artifact}")
    print(f"  {GATED_FIELD}: {fmt(base_eps)} -> {fmt(cur_eps)} "
          f"({ratio:.3f}x, gate >= {1.0 - args.tolerance:.2f}x)")
    for field in CONTEXT_FIELDS:
        if field in base and field in cur and base[field] != cur[field]:
            print(f"  {field}: {fmt(base[field])} -> {fmt(cur[field])}")
    for key, val in sorted(cur.get("notes", {}).items()):
        prev = base.get("notes", {}).get(key)
        arrow = f"{fmt(prev)} -> " if prev is not None else ""
        print(f"  notes.{key}: {arrow}{fmt(val)}")

    if ratio < 1.0 - args.tolerance:
        # Spell out every metric's delta in the failure message so a CI
        # log alone localizes the regression (is it wall clock? fewer
        # events? a latency shift hinting at a behaviour change?).
        print(f"bench_compare: FAIL: {artifact} regressed "
              f"{(1.0 - ratio) * 100.0:.1f}% on {GATED_FIELD} "
              f"(tolerance {args.tolerance * 100.0:.0f}%)")
        for field in [GATED_FIELD] + CONTEXT_FIELDS:
            if field not in base or field not in cur:
                continue
            try:
                b, c = float(base[field]), float(cur[field])
            except (TypeError, ValueError):
                continue
            delta = f" ({(c / b - 1.0) * 100.0:+.1f}%)" if b else ""
            print(f"  FAIL detail: {field}: {fmt(base[field])} -> "
                  f"{fmt(cur[field])}{delta}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

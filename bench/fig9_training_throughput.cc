/**
 * @file
 * Reproduces Figure 9: training throughput as a function of inference
 * load for the four Equinox configurations (LSTM-2048 inference and
 * training, batch 128, hbfp8).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig9_training_throughput",
                           "Figure 9",
                           "Training throughput vs inference load");

    core::ExperimentOptions opts;
    opts.train_model = workload::DnnModel::lstm2048();
    opts.warmup_requests = 250;
    opts.measure_requests = 2000;
    opts.min_measure_s = 0.04;
    opts.measure_iterations = 12;
    opts.jobs = harness.jobs();

    std::vector<double> loads = bench::loadGrid();
    std::vector<std::string> headers{"config"};
    for (double l : loads)
        headers.push_back(bench::num(l * 100, 0) + "%");
    stats::Table table(headers);

    double max_train = 0.0;
    std::vector<std::vector<double>> rows;
    for (auto preset : core::allPresets()) {
        auto cfg = core::presetConfig(preset, arith::Encoding::Hbfp8,
                                      harness.jobs());
        std::vector<std::string> cells{core::presetName(preset)};
        std::vector<double> vals;
        // One compile per config; the load points fan out inside.
        auto results = core::runLoadSweep(cfg, loads, opts);
        for (const auto &r : results) {
            cells.push_back(bench::num(r.training_tops, 1));
            vals.push_back(r.training_tops);
            max_train = std::max(max_train, r.training_tops);
        }
        harness.recordSweep(core::presetName(preset), results);
        rows.push_back(vals);
        table.addRow(cells);
    }
    table.print(std::cout);

    std::printf("\nmax observed training throughput: %.1f TOp/s "
                "(paper: ~107, the HBM-bandwidth bound)\n", max_train);
    std::printf("fraction of max at 60%% load (paper: min 19%%, 50us "
                "66%%, 500us 78%%, none saturates):\n");
    const char *names[] = {"min", "50us", "500us", "none"};
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  Equinox_%-5s : %3.0f%%\n", names[i],
                    100.0 * rows[i][5] / max_train);
    }
    harness.finish();
    return 0;
}

/**
 * @file
 * Reproduces Table 2: training and inference performance of
 * Equinox_500us across DNN models (LSTM, GRU, ResNet50). Training
 * throughput is measured at 60% inference load; inference throughput is
 * the saturation rate; latency is the single-batch service time.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Table 2",
                  "Training and inference performance per DNN model "
                  "(Equinox_500us, 60% load)");

    auto cfg = core::presetConfig(core::Preset::Us500);
    struct PaperRow
    {
        double train, inf, latency_ms;
    };
    const PaperRow paper[] = {{83.4, 319, 0.5}, {83.4, 319, 36.6},
                              {18, 67, 1.32}};

    stats::Table table({"Model", "Train T (TOp/s)", "Inf T (TOp/s)",
                        "Inf latency (ms)", "paper: Train", "Inf",
                        "Latency"});

    int idx = 0;
    for (auto model : {workload::DnnModel::lstm2048(),
                       workload::DnnModel::gru2816(),
                       workload::DnnModel::resnet50()}) {
        core::ExperimentOptions opts;
        opts.model = model;
        opts.train_model = model;
        bool long_service = model.kind == workload::DnnModel::Kind::Rnn &&
                            model.rnn.steps > 100;
        opts.warmup_requests = long_service ? 150 : 300;
        opts.measure_requests = long_service ? 1500 : 2500;
        opts.min_measure_s = long_service ? 0.0 : 0.05;
        opts.max_sim_s = 60.0;

        workload::Compiler compiler(cfg);
        auto inf = compiler.compileInference(model);
        double sat = core::saturationOpRate(cfg, model) / 1e12;
        auto r = core::runAtLoad(cfg, 0.6, opts);

        table.addRow({model.name, bench::num(r.training_tops, 1),
                      bench::num(sat, 0),
                      bench::num(inf.service_time_s * 1e3, 2),
                      bench::num(paper[idx].train, 1),
                      bench::num(paper[idx].inf, 0),
                      bench::num(paper[idx].latency_ms, 2)});
        ++idx;
    }
    table.print(std::cout);

    std::printf(
        "\nShape check: the RNNs sustain similar training/inference "
        "throughput despite a\n~100x service-time gap; ResNet50 runs at "
        "a small fraction of peak because its\nlowered convolutions "
        "underfill the large MMU (the paper's TPU-class effect).\n");
    return 0;
}

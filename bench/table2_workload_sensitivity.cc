/**
 * @file
 * Reproduces Table 2: training and inference performance of
 * Equinox_500us across DNN models (LSTM, GRU, ResNet50). Training
 * throughput is measured at 60% inference load; inference throughput is
 * the saturation rate; latency is the single-batch service time.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "table2_workload_sensitivity",
                           "Table 2",
                           "Training and inference performance per DNN "
                           "model (Equinox_500us, 60% load)");

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    struct PaperRow
    {
        double train, inf, latency_ms;
    };
    const PaperRow paper[] = {{83.4, 319, 0.5}, {83.4, 319, 36.6},
                              {18, 67, 1.32}};

    stats::Table table({"Model", "Train T (TOp/s)", "Inf T (TOp/s)",
                        "Inf latency (ms)", "paper: Train", "Inf",
                        "Latency"});

    const std::vector<workload::DnnModel> models = {
        workload::DnnModel::lstm2048(), workload::DnnModel::gru2816(),
        workload::DnnModel::resnet50()};
    struct Row
    {
        core::LoadPointResult r;
        double sat_tops;
        double service_ms;
    };
    auto rows = parallelMap(harness.jobs(), models,
                            [&](const workload::DnnModel &model) {
        core::ExperimentOptions opts;
        opts.model = model;
        opts.train_model = model;
        bool long_service = model.kind == workload::DnnModel::Kind::Rnn &&
                            model.rnn.steps > 100;
        opts.warmup_requests = long_service ? 150 : 300;
        opts.measure_requests = long_service ? 1500 : 2500;
        opts.min_measure_s = long_service ? 0.0 : 0.05;
        opts.max_sim_s = 60.0;

        auto compiled = core::compileWorkload(cfg, opts);
        Row row;
        row.sat_tops = core::saturationOpRate(cfg, model) / 1e12;
        row.service_ms = compiled.inference.service_time_s * 1e3;
        row.r = core::runAtLoad(cfg, 0.6, opts, compiled);
        return row;
    });

    for (std::size_t i = 0; i < models.size(); ++i) {
        table.addRow({models[i].name,
                      bench::num(rows[i].r.training_tops, 1),
                      bench::num(rows[i].sat_tops, 0),
                      bench::num(rows[i].service_ms, 2),
                      bench::num(paper[i].train, 1),
                      bench::num(paper[i].inf, 0),
                      bench::num(paper[i].latency_ms, 2)});
    }
    table.print(std::cout);

    std::printf(
        "\nShape check: the RNNs sustain similar training/inference "
        "throughput despite a\n~100x service-time gap; ResNet50 runs at "
        "a small fraction of peak because its\nlowered convolutions "
        "underfill the large MMU (the paper's TPU-class effect).\n");
    harness.finish();
    return 0;
}

/**
 * @file
 * Cluster scale-out characterisation of the Equinox_500us design point:
 * how aggregate serving throughput, tail latency, and the piggybacked
 * training throughput behave as the fleet grows from one replica to
 * eight, under each routing policy.
 *
 * Three sweeps:
 *   1. replicas {1, 2, 4, 8} x routing policy at a fixed fraction of
 *      aggregate capacity (the headline scaling table),
 *   2. availability and re-routing with one replica dark for part of
 *      the run, per policy,
 *   3. the training coordinator concentrating training on the
 *      least-loaded replicas as train_replicas shrinks.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "cluster/sweep.hh"
#include "core/equinox.hh"

using namespace equinox;

namespace
{

core::ExperimentOptions
baseOptions(std::size_t jobs)
{
    core::ExperimentOptions opts;
    opts.train_model = workload::DnnModel::lstm2048();
    opts.warmup_requests = 200;
    opts.measure_requests = 1200;
    opts.min_measure_s = 0.05;
    // The router pre-routes the candidate stream over the whole
    // horizon (see Cluster::run), so size it to what the longest point
    // needs instead of the single-chip default.
    opts.max_sim_s = 2.0;
    opts.jobs = jobs;
    return opts;
}

/** "0,2,3" -- the replicas the coordinator placed training on. */
std::string
trainedReplicas(const cluster::ClusterPointResult &r)
{
    std::string out;
    for (const auto &rep : r.per_replica) {
        if (!rep.training)
            continue;
        if (!out.empty())
            out += ",";
        out += std::to_string(rep.replica);
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "cluster_scaling",
                           "Cluster scale-out",
                           "multi-replica serving: throughput scaling per "
                           "routing policy, outage availability, and "
                           "fleet-level training placement");
    const std::size_t jobs = harness.jobs();

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8, jobs);
    auto opts = baseOptions(jobs);
    auto compiled = core::compileWorkload(cfg, opts);

    // ------------------------------------------------------------------
    bench::section("1. scale-out: replicas x routing policy at load "
                   "0.7 of aggregate capacity");
    {
        stats::Table table({"replicas", "policy", "agg infer (TOp/s)",
                            "speedup", "train (TOp/s)", "p50 (ms)",
                            "p99 (ms)", "completed"});
        std::vector<cluster::ClusterPointResult> points;
        for (auto policy : cluster::allRoutingPolicies()) {
            double base_tops = 0.0;
            for (std::size_t replicas : {1, 2, 4, 8}) {
                cluster::ClusterSpec cspec;
                cspec.replicas = replicas;
                cspec.policy = policy;
                cluster::Cluster fleet(cfg, cspec);
                auto r = fleet.run(0.7, opts, compiled);
                if (replicas == 1)
                    base_tops = r.aggregate_inference_tops;
                double speedup = base_tops > 0.0
                                     ? r.aggregate_inference_tops /
                                           base_tops
                                     : 0.0;
                table.addRow(
                    {std::to_string(replicas),
                     cluster::routingPolicyName(policy),
                     bench::num(r.aggregate_inference_tops, 2),
                     bench::num(speedup, 2) + "x",
                     bench::num(r.aggregate_training_tops, 2),
                     bench::num(r.p50_latency_s * 1e3, 3),
                     bench::num(r.p99_latency_s * 1e3, 3),
                     std::to_string(r.completed_requests)});
                points.push_back(std::move(r));
            }
        }
        table.print(std::cout);
        std::printf("independent replicas scale aggregate throughput "
                    "near-linearly; the merged tail stays flat\n");
        harness.recordClusterSweep("scaleout", points);
    }

    // ------------------------------------------------------------------
    bench::section("2. availability: replica 1 of 4 dark mid-run, "
                   "per routing policy");
    {
        stats::Table table({"policy", "avail", "rerouted", "shed",
                            "p99 (ms)", "completed", "committed train"});
        std::vector<cluster::ClusterPointResult> points;
        for (auto policy : cluster::allRoutingPolicies()) {
            cluster::ClusterSpec cspec;
            cspec.replicas = 4;
            cspec.policy = policy;
            cspec.outages.push_back({1, 0.05, 0.12});
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(0.7, opts, compiled);
            table.addRow(
                {cluster::routingPolicyName(policy),
                 bench::num(r.availability, 4),
                 std::to_string(r.rerouted),
                 std::to_string(r.router_shed),
                 bench::num(r.p99_latency_s * 1e3, 3),
                 std::to_string(r.completed_requests),
                 std::to_string(r.committed_training_iterations)});
            points.push_back(std::move(r));
        }
        table.print(std::cout);
        std::printf("the router re-routes around the dark replica: "
                    "nothing is shed while any replica is alive\n");
        harness.recordClusterSweep("outage", points);
    }

    // ------------------------------------------------------------------
    bench::section("3. training coordinator: concentrating training on "
                   "the least-loaded replicas (4 replicas, JSQ)");
    {
        stats::Table table({"train replicas", "placed on",
                            "train (TOp/s)", "committed", "p99 (ms)"});
        std::vector<cluster::ClusterPointResult> points;
        for (std::size_t train : {0, 1, 2, 4}) {
            cluster::ClusterSpec cspec;
            cspec.replicas = 4;
            cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
            cspec.train_replicas = train;
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(0.7, opts, compiled);
            table.addRow(
                {train == 0 ? "all" : std::to_string(train),
                 trainedReplicas(r),
                 bench::num(r.aggregate_training_tops, 2),
                 std::to_string(r.committed_training_iterations),
                 bench::num(r.p99_latency_s * 1e3, 3)});
            points.push_back(std::move(r));
        }
        table.print(std::cout);
        std::printf("training throughput recovered scales with the "
                    "replicas the coordinator enrols\n");
        harness.recordClusterSweep("training_placement", points);
    }

    harness.finish();
    return 0;
}

/**
 * @file
 * Ablation: the training-lowering choices DESIGN.md calls out -- the
 * weight-gradient accumulation window and the precision of the
 * DRAM-resident gradient accumulators.
 *
 * The window trades DRAM traffic (read-modify-write amortisation) and
 * tile fill against live state; accumulator precision trades traffic
 * against numerical headroom. The default (window 2, fp32 accumulators)
 * is the combination whose DRAM-bound training ceiling lands on the
 * paper's ~107 TOp/s.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "ablation_training_mapping",
                           "Ablation: training mapping",
                           "Gradient-accumulation window x accumulator "
                           "precision (Equinox_500us, LSTM-128)");

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    auto lstm = workload::DnnModel::lstm2048();

    stats::Table table({"window", "acc bytes", "DRAM GB/iter",
                        "ops/byte", "MMU Mcycles/iter",
                        "train TOp/s @0%", "train TOp/s @60%"});

    struct Cell
    {
        std::size_t window;
        double acc_bytes;
    };
    std::vector<Cell> grid;
    for (std::size_t window : {1u, 2u, 4u, 8u})
        for (double acc_bytes : {2.0, 4.0})
            grid.push_back({window, acc_bytes});

    struct Row
    {
        double bytes, ops, mmu_mcycles, idle_tops, mid_tops;
    };
    auto rows = parallelMap(harness.jobs(), grid, [&](const Cell &c) {
        workload::TrainingCompileOptions topts;
        topts.grad_window = c.window;
        topts.grad_acc_bytes = c.acc_bytes;

        workload::Compiler compiler(cfg);
        auto train = compiler.compileTraining(lstm, 128, topts);
        Row row{};
        for (const auto &s : train.iteration.steps)
            row.bytes += static_cast<double>(s.mmu.stream_bytes +
                                             s.store_bytes);
        row.ops = static_cast<double>(train.iteration.totalRealOps());
        row.mmu_mcycles =
            static_cast<double>(train.iteration.mmuBusyCycles()) / 1e6;

        core::ExperimentOptions opts;
        opts.train_model = lstm;
        opts.train_opts = topts;
        opts.warmup_requests = 200;
        opts.measure_requests = 1600;
        opts.measure_iterations = 10;
        opts.min_measure_s = 0.03;
        row.idle_tops = core::runAtLoad(cfg, 0.0, opts).training_tops;
        row.mid_tops = core::runAtLoad(cfg, 0.6, opts).training_tops;
        return row;
    });

    for (std::size_t i = 0; i < grid.size(); ++i) {
        table.addRow({std::to_string(grid[i].window),
                      bench::num(grid[i].acc_bytes, 0),
                      bench::num(rows[i].bytes / 1e9, 2),
                      bench::num(rows[i].ops / rows[i].bytes, 0),
                      bench::num(rows[i].mmu_mcycles, 2),
                      bench::num(rows[i].idle_tops, 1),
                      bench::num(rows[i].mid_tops, 1)});
    }
    table.print(std::cout);

    std::printf("\nReading: window 1 doubles gradient DRAM traffic "
                "(ceiling falls well below the\npaper's ~107); window 8 "
                "inflates the ceiling past what the paper measured. "
                "The\nshipped default (window 2, fp32) reproduces the "
                "Figure 9 ceiling.\n");
    harness.finish();
    return 0;
}

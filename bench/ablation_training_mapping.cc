/**
 * @file
 * Ablation: the training-lowering choices DESIGN.md calls out -- the
 * weight-gradient accumulation window and the precision of the
 * DRAM-resident gradient accumulators.
 *
 * The window trades DRAM traffic (read-modify-write amortisation) and
 * tile fill against live state; accumulator precision trades traffic
 * against numerical headroom. The default (window 2, fp32 accumulators)
 * is the combination whose DRAM-bound training ceiling lands on the
 * paper's ~107 TOp/s.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Ablation: training mapping",
                  "Gradient-accumulation window x accumulator precision "
                  "(Equinox_500us, LSTM-128)");

    auto cfg = core::presetConfig(core::Preset::Us500);
    workload::Compiler compiler(cfg);
    auto lstm = workload::DnnModel::lstm2048();

    stats::Table table({"window", "acc bytes", "DRAM GB/iter",
                        "ops/byte", "MMU Mcycles/iter",
                        "train TOp/s @0%", "train TOp/s @60%"});

    for (std::size_t window : {1u, 2u, 4u, 8u}) {
        for (double acc_bytes : {2.0, 4.0}) {
            workload::TrainingCompileOptions topts;
            topts.grad_window = window;
            topts.grad_acc_bytes = acc_bytes;

            auto train = compiler.compileTraining(lstm, 128, topts);
            double bytes = 0.0;
            for (const auto &s : train.iteration.steps)
                bytes += static_cast<double>(s.mmu.stream_bytes +
                                             s.store_bytes);
            double ops =
                static_cast<double>(train.iteration.totalRealOps());

            core::ExperimentOptions opts;
            opts.train_model = lstm;
            opts.train_opts = topts;
            opts.warmup_requests = 200;
            opts.measure_requests = 1600;
            opts.measure_iterations = 10;
            opts.min_measure_s = 0.03;
            auto idle = core::runAtLoad(cfg, 0.0, opts);
            auto mid = core::runAtLoad(cfg, 0.6, opts);

            table.addRow({std::to_string(window),
                          bench::num(acc_bytes, 0),
                          bench::num(bytes / 1e9, 2),
                          bench::num(ops / bytes, 0),
                          bench::num(static_cast<double>(
                                         train.iteration
                                             .mmuBusyCycles()) / 1e6,
                                     2),
                          bench::num(idle.training_tops, 1),
                          bench::num(mid.training_tops, 1)});
        }
    }
    table.print(std::cout);

    std::printf("\nReading: window 1 doubles gradient DRAM traffic "
                "(ceiling falls well below the\npaper's ~107); window 8 "
                "inflates the ceiling past what the paper measured. "
                "The\nshipped default (window 2, fp32) reproduces the "
                "Figure 9 ceiling.\n");
    return 0;
}

/**
 * @file
 * Reproduces Table 1: Pareto-optimal designs under various latency
 * constraints, for both the bfloat16 and hbfp8 encodings, next to the
 * paper's published values.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

struct PaperRow
{
    const char *constraint;
    core::Preset preset;
    // paper values: n, freq MHz, service us, throughput TOp/s
    double hbfp8[4];
    double bf16[4];
    bool bf16_merged_with_min;
};

const PaperRow kRows[] = {
    {"Min. latency", core::Preset::Min,
     {1, 532, 15.6, 60.2}, {1, 532, 37.3, 23.9}, false},
    {"Latency < 50us", core::Preset::Us50,
     {16, 532, 49.2, 333}, {1, 532, 37.3, 23.9}, true},
    {"Latency < 500us", core::Preset::Us500,
     {143, 610, 381, 390}, {29, 610, 386, 63.3}, false},
    {"No constraint", core::Preset::None,
     {191, 610, 509, 400}, {39, 610, 510, 66.7}, false},
};

void
printSide(arith::Encoding enc, const char *title, int paper_idx,
          std::size_t jobs)
{
    bench::section(title);
    stats::Table table({"Latency constraint", "n", "m", "w",
                        "Freq (MHz)", "Service (us)", "T (TOp/s)",
                        "paper: n", "Freq", "Service", "T"});
    for (const auto &row : kRows) {
        auto d = core::presetDesign(row.preset, enc, jobs);
        const double *paper = paper_idx == 0 ? row.hbfp8 : row.bf16;
        table.addRow({row.constraint, std::to_string(d.n),
                      std::to_string(d.m), std::to_string(d.w),
                      bench::num(d.frequency_hz / 1e6, 0),
                      bench::num(d.service_time_s * 1e6, 1),
                      bench::num(d.throughput_ops / 1e12, 1),
                      bench::num(paper[0], 0), bench::num(paper[1], 0),
                      bench::num(paper[2], 1), bench::num(paper[3], 1)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "table1_pareto", "Table 1",
                           "Pareto-optimal designs under latency "
                           "constraints");
    printSide(arith::Encoding::Hbfp8, "hbfp8", 0, harness.jobs());
    printSide(arith::Encoding::Bfloat16, "bfloat16", 1, harness.jobs());

    auto mn = core::presetDesign(core::Preset::Min,
                                 arith::Encoding::Hbfp8);
    auto c50 = core::presetDesign(core::Preset::Us50,
                                  arith::Encoding::Hbfp8);
    auto none = core::presetDesign(core::Preset::None,
                                   arith::Encoding::Hbfp8);
    bench::section("headline ratios vs latency-optimal (paper: 5.53x "
                   "at 50us, 6.67x at 500us/none)");
    std::printf("  50us design: %.2fx    unconstrained: %.2fx\n",
                c50.throughput_ops / mn.throughput_ops,
                none.throughput_ops / mn.throughput_ops);
    harness.finish();
    return 0;
}

/**
 * @file
 * Ablation: HBFP mantissa width. The paper adopts hbfp8 from Drumond et
 * al. (NeurIPS'18), which showed 8-bit block mantissas match fp32 while
 * narrower ones lose accuracy. This sweep retrains the Figure 2
 * classification task with 4/6/8/10-bit mantissas and reports both the
 * convergence outcome and the datapath cost side (relative ALU density,
 * via the analytical model's encoding parameters).
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"
#include "nn/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "ablation_hbfp_mantissa",
                           "Ablation: HBFP mantissa width",
                           "Convergence vs block-mantissa bits "
                           "(Figure 2 task)");

    nn::ClusterDataset data(8, 24, 2048, 1024, 0.35, 1234);
    nn::TrainConfig cfg;
    cfg.epochs = 16;
    cfg.batch_size = 64;
    cfg.hidden_dims = {96, 48};
    cfg.sgd.learning_rate = 0.05;
    cfg.sgd.decay_epochs = {10, 14};

    arith::Fp32Gemm fp32;
    auto ref = nn::trainClassifier(data, fp32, cfg);

    stats::Table table({"encoding", "mantissa bits",
                        "final val err %", "vs fp32 (pp)",
                        "mid-train err % (ep 8)"});
    table.addRow({"fp32", "24",
                  bench::num(ref.back().valid_error * 100, 1), "0.0",
                  bench::num(ref[7].valid_error * 100, 1)});

    // Each retraining is independent: its own GEMM engine and network,
    // reading the shared dataset const-only.
    const std::vector<unsigned> widths = {4u, 6u, 8u, 10u};
    auto histories = parallelMap(harness.jobs(), widths,
                                 [&](unsigned bits) {
        arith::BfpFormat fmt{bits, 12, 25};
        arith::HbfpGemm engine(fmt, 256);
        return nn::trainClassifier(data, engine, cfg);
    });

    for (std::size_t i = 0; i < widths.size(); ++i) {
        const auto &h = histories[i];
        table.addRow({"hbfp" + std::to_string(widths[i]),
                      std::to_string(widths[i]),
                      bench::num(h.back().valid_error * 100, 1),
                      bench::num((h.back().valid_error -
                                  ref.back().valid_error) * 100, 1),
                      bench::num(h[7].valid_error * 100, 1)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: 8-bit block mantissas match fp32 (the paper's "
        "enabling result, shown\nat scale for ResNet50/BERT in the "
        "NeurIPS'18 HBFP work); narrower blocks start\nto lag even on "
        "this small task, and wider ones buy nothing while costing ALU\n"
        "density -- the reason Equinox standardises on hbfp8.\n");
    harness.finish();
    return 0;
}

/**
 * @file
 * Ablation: HBFP mantissa width. The paper adopts hbfp8 from Drumond et
 * al. (NeurIPS'18), which showed 8-bit block mantissas match fp32 while
 * narrower ones lose accuracy. This sweep retrains the Figure 2
 * classification task with 4/6/8/10-bit mantissas and reports both the
 * convergence outcome and the datapath cost side (relative ALU density,
 * via the analytical model's encoding parameters).
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"
#include "nn/datasets.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Ablation: HBFP mantissa width",
                  "Convergence vs block-mantissa bits (Figure 2 task)");

    nn::ClusterDataset data(8, 24, 2048, 1024, 0.35, 1234);
    nn::TrainConfig cfg;
    cfg.epochs = 16;
    cfg.batch_size = 64;
    cfg.hidden_dims = {96, 48};
    cfg.sgd.learning_rate = 0.05;
    cfg.sgd.decay_epochs = {10, 14};

    arith::Fp32Gemm fp32;
    auto ref = nn::trainClassifier(data, fp32, cfg);

    stats::Table table({"encoding", "mantissa bits",
                        "final val err %", "vs fp32 (pp)",
                        "mid-train err % (ep 8)"});
    table.addRow({"fp32", "24",
                  bench::num(ref.back().valid_error * 100, 1), "0.0",
                  bench::num(ref[7].valid_error * 100, 1)});

    for (unsigned bits : {4u, 6u, 8u, 10u}) {
        arith::BfpFormat fmt{bits, 12, 25};
        arith::HbfpGemm engine(fmt, 256);
        auto h = nn::trainClassifier(data, engine, cfg);
        table.addRow({"hbfp" + std::to_string(bits),
                      std::to_string(bits),
                      bench::num(h.back().valid_error * 100, 1),
                      bench::num((h.back().valid_error -
                                  ref.back().valid_error) * 100, 1),
                      bench::num(h[7].valid_error * 100, 1)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: 8-bit block mantissas match fp32 (the paper's "
        "enabling result, shown\nat scale for ResNet50/BERT in the "
        "NeurIPS'18 HBFP work); narrower blocks start\nto lag even on "
        "this small task, and wider ones buy nothing while costing ALU\n"
        "density -- the reason Equinox standardises on hbfp8.\n");
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels: the
 * arithmetic engines, block-floating-point conversion, the event queue,
 * the DRAM link model, and the workload compiler. These quantify the
 * simulator's own performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

#include "arith/bfp.hh"
#include "arith/gemm.hh"
#include "common/random.hh"
#include "dram/hbm.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace
{

using namespace equinox;

arith::Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Rng rng(seed);
    arith::Matrix m(r, c);
    m.randomize(rng, 1.0);
    return m;
}

void
BM_GemmEngine(benchmark::State &state, arith::Encoding enc)
{
    auto n = static_cast<std::size_t>(state.range(0));
    auto a = randomMatrix(n, n, 1);
    auto b = randomMatrix(n, n, 2);
    arith::Matrix c(n, n);
    auto engine = arith::makeGemmEngine(enc);
    for (auto _ : state) {
        engine->multiply(a, b, c, false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * n * n * n * 2);
}

void
BM_BfpQuantize(benchmark::State &state)
{
    auto len = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    std::vector<float> v(len);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, 1.0));
    auto fmt = arith::hbfp8Format();
    for (auto _ : state) {
        auto blk = arith::BfpBlock::quantize(v, fmt);
        benchmark::DoNotOptimize(blk.exponent());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(len));
}

void
BM_BfpDot(benchmark::State &state)
{
    auto len = static_cast<std::size_t>(state.range(0));
    Rng rng(9);
    std::vector<float> v(len), w(len);
    for (std::size_t i = 0; i < len; ++i) {
        v[i] = static_cast<float>(rng.normal(0.0, 1.0));
        w[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    auto fmt = arith::hbfp8Format();
    auto a = arith::BfpBlock::quantize(v, fmt);
    auto b = arith::BfpBlock::quantize(w, fmt);
    for (auto _ : state)
        benchmark::DoNotOptimize(arith::BfpBlock::dot(a, b));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(len));
}

void
BM_EventQueue(benchmark::State &state)
{
    auto batch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        Rng rng(3);
        for (std::size_t i = 0; i < batch; ++i)
            q.schedule(rng.uniformInt(0, 1u << 20), [] {});
        while (q.runOne()) {
        }
        benchmark::DoNotOptimize(q.dispatched());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(batch));
}

void
BM_EventQueueReserved(benchmark::State &state)
{
    // Same workload as BM_EventQueue but with the heap pre-sized, the
    // way Accelerator::run primes its queue; the delta is the cost of
    // the incremental vector growth the reserve() call removes.
    auto batch = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        q.reserve(batch);
        Rng rng(3);
        for (std::size_t i = 0; i < batch; ++i)
            q.schedule(rng.uniformInt(0, 1u << 20), [] {});
        while (q.runOne()) {
        }
        benchmark::DoNotOptimize(q.dispatched());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(batch));
}

void
BM_HbmTransfer(benchmark::State &state)
{
    dram::HbmModel hbm(610e6);
    Tick now = 0;
    for (auto _ : state) {
        now += 10;
        benchmark::DoNotOptimize(
            hbm.transfer(now, 256 * 1024, dram::Priority::Low));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_LatencyPercentile(benchmark::State &state)
{
    auto samples = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    stats::LatencyTracker t;
    for (std::size_t i = 0; i < samples; ++i)
        t.record(rng.exponential(1.0));
    for (auto _ : state) {
        t.record(rng.exponential(1.0));
        benchmark::DoNotOptimize(t.percentile(0.99));
    }
}

void
BM_CompileLstm(benchmark::State &state)
{
    sim::AcceleratorConfig cfg;
    cfg.n = 143;
    cfg.m = 4;
    cfg.w = 4;
    cfg.frequency_hz = 610e6;
    workload::Compiler compiler(cfg);
    auto model = workload::DnnModel::lstm2048();
    for (auto _ : state) {
        auto svc = compiler.compileInference(model);
        benchmark::DoNotOptimize(svc.program.steps.size());
    }
}

void
BM_CompileResnetTraining(benchmark::State &state)
{
    sim::AcceleratorConfig cfg;
    cfg.n = 143;
    cfg.m = 4;
    cfg.w = 4;
    cfg.frequency_hz = 610e6;
    workload::Compiler compiler(cfg);
    auto model = workload::DnnModel::resnet50();
    for (auto _ : state) {
        auto svc = compiler.compileTraining(model, 32);
        benchmark::DoNotOptimize(svc.iteration.steps.size());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_GemmEngine, fp32, arith::Encoding::Fp32)
    ->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_GemmEngine, bfloat16, arith::Encoding::Bfloat16)
    ->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_GemmEngine, hbfp8, arith::Encoding::Hbfp8)
    ->Arg(64)->Arg(128);
BENCHMARK(BM_BfpQuantize)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_BfpDot)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(65536);
BENCHMARK(BM_EventQueueReserved)->Arg(1024)->Arg(65536);
BENCHMARK(BM_HbmTransfer);
BENCHMARK(BM_LatencyPercentile)->Arg(10000);
BENCHMARK(BM_CompileLstm);
BENCHMARK(BM_CompileResnetTraining);

int
main(int argc, char **argv)
{
    // google-benchmark owns the command line here (its flag parser
    // rejects foreign flags), so the harness is constructed without
    // argv: microbenchmarks have no sweeps to fan out, the harness only
    // records the wall clock and emits BENCH_micro_kernels.json.
    int no_args = 1;
    equinox::bench::Harness harness(no_args, argv, "micro_kernels",
                                    "Microbenchmarks",
                                    "Hot-kernel timings (gemm engines, "
                                    "BFP, event queue, compiler)");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    harness.finish();
    return 0;
}

/**
 * @file
 * Reproduces Figure 6: latency vs throughput across the modeled design
 * space for (a) hbfp8 and (b) bfloat16, with the Pareto frontier marked.
 *
 * The paper plots every swept design as a scatter; a text table cannot
 * carry ~2000 points, so this binary prints the Pareto frontier in full
 * plus, per frontier region, the best non-frontier representative, and
 * summarises the knee the analysis in section 4.2 describes.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
printEncoding(arith::Encoding enc, const char *title, std::size_t jobs)
{
    bench::section(title);
    // Copy so the frontier marking does not disturb the shared cache.
    model::DseResult sweep = core::cachedSweep(enc, jobs);
    auto frontier = model::paretoFrontier(sweep);

    stats::Table table({"n", "m", "w", "Freq (MHz)", "T (TOp/s)",
                        "Latency (us)", "Area (mm2)", "Power (W)",
                        "pareto"});
    // Downsample the frontier to ~24 rows for readability.
    std::size_t stride = std::max<std::size_t>(1, frontier.size() / 24);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i % stride && i + 1 != frontier.size())
            continue;
        const auto &p = frontier[i];
        table.addRow({std::to_string(p.n), std::to_string(p.m),
                      std::to_string(p.w),
                      bench::num(p.frequency_hz / 1e6, 0),
                      bench::num(p.throughput_ops / 1e12, 1),
                      bench::num(p.service_time_s * 1e6, 1),
                      bench::num(p.area_mm2, 0),
                      bench::num(p.power_w, 1), "*"});
    }
    table.print(std::cout);

    // Knee summary: throughput at a range of latency budgets.
    stats::Table knee({"Latency budget (us)", "Best T (TOp/s)",
                       "T / T(min-latency)"});
    auto mn = model::minLatencyDesign(sweep);
    for (double budget_us : {25.0, 50.0, 100.0, 200.0, 500.0, 1000.0}) {
        auto best = model::bestUnderLatency(sweep, budget_us * 1e-6);
        if (!best)
            continue;
        knee.addRow({bench::num(budget_us, 0),
                     bench::num(best->throughput_ops / 1e12, 1),
                     bench::num(best->throughput_ops /
                                    mn->throughput_ops,
                                2)});
    }
    knee.print(std::cout);
    std::printf("swept designs: %zu, pareto-optimal: %zu\n",
                sweep.points.size(), frontier.size());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig6_design_space", "Figure 6",
                           "Latency vs throughput for the modeled "
                           "design space");
    printEncoding(arith::Encoding::Hbfp8, "(a) hbfp8", harness.jobs());
    printEncoding(arith::Encoding::Bfloat16, "(b) bfloat16",
                  harness.jobs());
    std::printf("\nShape check: hbfp8 shows a sub-linear frontier with a "
                "knee near 350+ TOp/s;\nbfloat16 reaches its knee almost "
                "immediately (little batching headroom).\n");
    harness.finish();
    return 0;
}

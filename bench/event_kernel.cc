/**
 * @file
 * Event-kernel microbenchmark: the simulator's EventQueue against a
 * faithful reimplementation of the pre-refactor kernel (a binary heap
 * of std::function callbacks, re-heapified on every dispatch).
 *
 * The workload is shaped like the accelerator's hot path, not like a
 * synthetic heap test: callbacks capture 24 bytes of state (a block
 * pointer plus two operands -- past std::function's inline buffer,
 * inside Callback's), arrivals cluster into same-tick bursts the way
 * batch wakeups and chunk completions do, and a fraction of handlers
 * self-schedule follow-ups at the current tick (the tryDispatch
 * re-poke pattern). Both kernels run the byte-identical workload and
 * must produce the same checksum and dispatch count; the figure of
 * merit is the events/s ratio, recorded in BENCH_event_kernel.json
 * (acceptance: >= 3x).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "bench_common.hh"
#include "common/random.hh"
#include "sim/event_queue.hh"

using namespace equinox;

namespace
{

/**
 * Workload shape shared by both kernels: a bounded set of concurrent
 * "actors" (blocks with periodic wakeups) that keep the pending set
 * small and steady -- the simulator's regime -- instead of pre-loading
 * one huge heap, which would just time the shared O(log n) cost.
 * Every actor fires on the same tick grid, so each tick is a
 * width-sized same-tick burst, and each firing fans out three
 * current-tick micro-callbacks -- the retire/wakeup sub-steps the
 * block layer folds into one tick. Those never touch the time heap in
 * the batched kernel; the reference kernel pays a full heap round
 * trip and a std::function allocation for every one.
 */
struct WorkloadSpec
{
    std::size_t width = 512; //!< concurrent self-rescheduling actors
    std::size_t rounds = 1000; //!< firings per actor (gap: 64 ticks)
    std::size_t fanout = 3;    //!< same-tick micro-callbacks per firing
};

/** Mutable state every handler captures a pointer to. */
struct KernelState
{
    std::uint64_t acc = 0;
    std::uint64_t chained = 0;
};

/**
 * The pre-refactor kernel, reproduced from git history: one binary
 * heap of (when, seq, std::function), std::push_heap on schedule and
 * std::pop_heap on every single dispatch -- no same-tick FIFO, no
 * small-buffer callback.
 */
class ReferenceKernel
{
  public:
    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap_.push_back(Entry{when, next_seq_++, std::move(fn)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    Tick now() const { return now_; }

    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry e = std::move(heap_.back());
        heap_.pop_back();
        now_ = e.when;
        ++dispatched_;
        e.fn();
        return true;
    }

    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::vector<Entry> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
};

/**
 * Drive the shared workload through either kernel. The handler logic
 * is identical; only the queue type differs, so the checksum/dispatch
 * deltas isolate the kernel itself.
 */
template <typename Queue>
std::uint64_t
runWorkload(Queue &q, KernelState &st, const WorkloadSpec &spec)
{
    // 32 bytes: past libstdc++ std::function's 16-byte inline buffer
    // (one heap allocation per schedule there), exactly at Callback's
    // inline limit (zero allocations here).
    struct Handler
    {
        Queue *q;
        KernelState *st;
        std::uint64_t a;
        std::uint16_t remaining;
        std::uint8_t fanout; //!< same-tick micro-callbacks to spawn
        std::uint8_t chain;  //!< 1 = micro-callback, no respawn

        void
        operator()() const
        {
            st->acc += a ^ (st->acc >> 7);
            if (chain)
                return;
            std::uint64_t next =
                a * 6364136223846793005ull + 1442695040888963407ull;
            // Current-tick fan-out: the retire/wakeup sub-steps.
            for (std::uint8_t c = 0; c < fanout; ++c) {
                ++st->chained;
                q->schedule(q->now(),
                            Handler{q, st, (next + c) | 1, 0, 0, 1});
            }
            if (remaining > 0) {
                Tick gap = 64;
                q->schedule(q->now() + gap,
                            Handler{q, st, next,
                                    static_cast<std::uint16_t>(remaining - 1),
                                    fanout, 0});
            }
        }
    };

    Rng rng(17);
    for (std::size_t i = 0; i < spec.width; ++i) {
        q.schedule(0, Handler{&q, &st, rng.uniformInt(1, 1u << 30),
                              static_cast<std::uint16_t>(spec.rounds - 1),
                              static_cast<std::uint8_t>(spec.fanout), 0});
    }
    while (q.runOne()) {
    }
    return q.dispatched();
}

struct KernelScore
{
    double wall_s = 0.0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    double eventsPerSecond() const
    {
        return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
    }
};

template <typename MakeQueue>
KernelScore
timeKernel(const WorkloadSpec &spec, std::size_t reps, MakeQueue make)
{
    KernelScore score;
    for (std::size_t r = 0; r < reps; ++r) {
        auto q = make();
        KernelState st;
        auto t0 = std::chrono::steady_clock::now();
        std::uint64_t events = runWorkload(*q, st, spec);
        auto t1 = std::chrono::steady_clock::now();
        score.wall_s += std::chrono::duration<double>(t1 - t0).count();
        score.events += events;
        score.checksum ^= st.acc;
    }
    return score;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(
        argc, argv, "event_kernel", "event-kernel microbenchmark",
        "EventQueue (SBO callbacks + batched same-tick dispatch) vs "
        "the pre-refactor std::function heap on a simulator-shaped "
        "workload");

    WorkloadSpec spec;
    const std::size_t reps = 8;

    // Warm-up iteration per kernel so the first timed rep does not pay
    // first-touch page faults for the allocator arenas.
    (void)timeKernel(spec, 1, [] {
        return std::make_unique<ReferenceKernel>();
    });
    (void)timeKernel(spec, 1, [&] {
        auto q = std::make_unique<sim::EventQueue>();
        q->reserve(spec.width + 8);
        return q;
    });

    KernelScore ref = timeKernel(spec, reps, [] {
        return std::make_unique<ReferenceKernel>();
    });
    KernelScore neo = timeKernel(spec, reps, [&] {
        auto q = std::make_unique<sim::EventQueue>();
        q->reserve(spec.width + 8);
        return q;
    });

    // Both kernels preserve the (tick, insertion-order) contract, so
    // the runs must agree exactly -- a free differential check of the
    // batched-dispatch kernel against the straightforward model.
    EQX_ASSERT(neo.checksum == ref.checksum,
               "kernel divergence: checksums differ (", neo.checksum,
               " vs ", ref.checksum, ")");
    EQX_ASSERT(neo.events == ref.events,
               "kernel divergence: dispatch counts differ (",
               neo.events, " vs ", ref.events, ")");

    double speedup = ref.eventsPerSecond() > 0.0
                         ? neo.eventsPerSecond() / ref.eventsPerSecond()
                         : 0.0;

    bench::section("results");
    std::printf("workload: %zu actors x %zu rounds x %zu-way same-tick "
                "fan-out, %llu micro-callbacks, %zu reps\n",
                spec.width, spec.rounds, spec.fanout,
                static_cast<unsigned long long>(
                    neo.events - reps * spec.width * spec.rounds),
                reps);
    std::printf("reference (std::function heap): %.3f s, %.3g events/s\n",
                ref.wall_s, ref.eventsPerSecond());
    std::printf("EventQueue (SBO + batched):     %.3f s, %.3g events/s\n",
                neo.wall_s, neo.eventsPerSecond());
    std::printf("speedup: %.2fx (acceptance: >= 3x)\n", speedup);

    sim::addGlobalDispatchedEvents(neo.events);
    harness.note("reference_events_per_second", ref.eventsPerSecond());
    harness.note("kernel_events_per_second", neo.eventsPerSecond());
    harness.note("kernel_speedup", speedup);
    harness.note("workload_events", neo.events);
    harness.finish();
    return 0;
}

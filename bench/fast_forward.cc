/**
 * @file
 * Fast-forward A/B benchmark: the exact same fig7-shaped load sweep run
 * twice on the Equinox_500us hbfp8 preset -- once cycle-accurate
 * (RunSpec::fast_forward off), once with the steady-state fast-forward
 * engine inlining analytically-next events (the default). The two
 * sweeps must produce bit-identical result digests (a free differential
 * check on top of the fastpath test suite); the figure of merit is the
 * events/s ratio, recorded in BENCH_fast_forward.json.
 *
 * Events/s is honest on both sides: inlined dispatches count in
 * events_dispatched exactly like heap-popped ones, so the ratio
 * measures time saved per event, not a change in what "event" means.
 */

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hh"
#include "core/equinox.hh"
#include "sim/result_digest.hh"

using namespace equinox;

namespace
{

struct SweepScore
{
    double wall_s = 0.0;
    std::uint64_t events = 0;
    std::uint64_t inlined = 0;
    std::uint64_t digest = 0;
    std::vector<core::LoadPointResult> results;
    double eventsPerSecond() const
    {
        return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
    }
};

SweepScore
runSweep(const sim::AcceleratorConfig &cfg,
         const core::CompiledWorkload &compiled, bool fast_forward,
         bool training_only, std::size_t reps, std::size_t jobs)
{
    core::ExperimentOptions opts;
    opts.warmup_requests = 300;
    opts.measure_requests = 2500;
    opts.fast_forward = fast_forward;
    opts.jobs = 1; // per-point timing; the points fan out below

    std::vector<double> loads = {0.1, 0.25, 0.4, 0.55, 0.7,
                                 0.85, 0.95, 1.0, 1.04};
    if (training_only) {
        opts.train_model = workload::DnnModel::lstm2048();
        opts.measure_iterations = 60;
        loads = {0.0};
    }
    SweepScore score;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        score.results = parallelMap(jobs, loads, [&](double load) {
            auto o = opts;
            if (load >= 0.9) {
                o.min_measure_s = 0.2; // fig7: steady-state queuing
                o.warmup_s = 0.02;
            }
            return core::runAtLoad(cfg, load, o, compiled);
        });
        for (const auto &r : score.results) {
            score.events += r.sim.events_dispatched;
            score.inlined += r.sim.events_inlined;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    score.wall_s = std::chrono::duration<double>(t1 - t0).count();

    sim::ResultDigest dg;
    dg.u64(score.results.size());
    for (const auto &r : score.results)
        sim::foldSimResult(dg, r.sim);
    score.digest = dg.value();
    return score;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(
        argc, argv, "fast_forward", "fast-forward A/B",
        "steady-state fast-forward engine vs the cycle-accurate event "
        "loop on the fig7 load sweep (bit-identical results required)");

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    core::ExperimentOptions inf_opts;
    inf_opts.warmup_requests = 300;
    inf_opts.measure_requests = 2500;
    auto inf_compiled = core::compileWorkload(cfg, inf_opts);
    core::ExperimentOptions mix_opts = inf_opts;
    mix_opts.train_model = workload::DnnModel::lstm2048();
    auto mix_compiled = core::compileWorkload(cfg, mix_opts);

    const std::size_t reps = 3;

    // Warm-up sweeps: first-touch page faults, DSE cache fill, and
    // arena growth happen off the clock (and symmetrically for both
    // timed sweeps).
    (void)runSweep(cfg, inf_compiled, true, false, 1, harness.jobs());
    (void)runSweep(cfg, mix_compiled, true, true, 1, harness.jobs());

    // (a) The fig7 inference load sweep: arrivals constantly interleave
    // with chunk completions, so only the completion/wake tail inlines.
    SweepScore ca = runSweep(cfg, inf_compiled, false, false, reps,
                             harness.jobs());
    SweepScore ff = runSweep(cfg, inf_compiled, true, false, reps,
                             harness.jobs());

    // (b) Training-only: the steady state is a pure compute/prefetch
    // loop whose next event is almost always analytically known.
    SweepScore tca = runSweep(cfg, mix_compiled, false, true, reps,
                              harness.jobs());
    SweepScore tff = runSweep(cfg, mix_compiled, true, true, reps,
                              harness.jobs());

    EQX_ASSERT(ca.digest == ff.digest,
               "fast-forward divergence: sweep digests differ (",
               ff.digest, " vs ", ca.digest, ")");
    EQX_ASSERT(ca.events == ff.events,
               "fast-forward divergence: dispatch counts differ (",
               ff.events, " vs ", ca.events, ")");
    EQX_ASSERT(tca.digest == tff.digest,
               "fast-forward divergence: training digests differ (",
               tff.digest, " vs ", tca.digest, ")");
    EQX_ASSERT(ca.inlined == 0 && tca.inlined == 0,
               "cycle-accurate sweep inlined events");

    auto ratio = [](const SweepScore &num, const SweepScore &den) {
        return den.eventsPerSecond() > 0.0
                   ? num.eventsPerSecond() / den.eventsPerSecond()
                   : 0.0;
    };
    auto frac = [](const SweepScore &s) {
        return s.events > 0 ? static_cast<double>(s.inlined) /
                                  static_cast<double>(s.events)
                            : 0.0;
    };
    double inf_speedup = ratio(ff, ca);
    double train_speedup = ratio(tff, tca);

    bench::section("results");
    std::printf("(a) fig7 load sweep, Equinox_500us hbfp8, %llu events "
                "(%zu reps)\n",
                static_cast<unsigned long long>(ff.events), reps);
    std::printf("    cycle-accurate: %.3f s, %.3g events/s\n", ca.wall_s,
                ca.eventsPerSecond());
    std::printf("    fast-forward:   %.3f s, %.3g events/s (%.1f%% "
                "inlined)  ->  %.2fx\n",
                ff.wall_s, ff.eventsPerSecond(), 100.0 * frac(ff),
                inf_speedup);
    std::printf("(b) training-only (LSTM-2048, 60 iterations), %llu "
                "events\n",
                static_cast<unsigned long long>(tff.events));
    std::printf("    cycle-accurate: %.3f s, %.3g events/s\n",
                tca.wall_s, tca.eventsPerSecond());
    std::printf("    fast-forward:   %.3f s, %.3g events/s (%.1f%% "
                "inlined)  ->  %.2fx\n",
                tff.wall_s, tff.eventsPerSecond(), 100.0 * frac(tff),
                train_speedup);
    std::printf("digests identical on both workloads: yes\n");

    // No addGlobalDispatchedEvents here: every run above went through
    // Accelerator::run, which already feeds the process tally the
    // harness reads.
    for (const auto &r : ff.results)
        harness.recordPoint(r);
    harness.note("cycle_accurate_events_per_second",
                 ca.eventsPerSecond());
    harness.note("fast_forward_events_per_second", ff.eventsPerSecond());
    harness.note("fast_forward_speedup", inf_speedup);
    harness.note("inlined_fraction", frac(ff));
    harness.note("training_fast_forward_speedup", train_speedup);
    harness.note("training_inlined_fraction", frac(tff));
    harness.note("sweep_events", ff.events);
    harness.finish();
    return 0;
}

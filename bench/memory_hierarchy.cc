/**
 * @file
 * Memory-hierarchy characterisation bench: drives the pluggable
 * mem::MemoryHierarchy (DESIGN.md section 2.9) through its distinct
 * operating regimes and records the figures in
 * BENCH_memory_hierarchy.json.
 *
 * Three sections:
 *
 *  1. Hit-rate regimes (direct drive, prefetch off): the same LLC
 *     geometry is driven with a cache-resident working set and with a
 *     streaming sweep far larger than the cache. Acceptance, asserted
 *     here so `scripts/check.sh --bench-smoke` gates it: the resident
 *     regime hits >= 90% while the streaming regime hits <= 30%.
 *
 *  2. Prefetcher sweep (direct drive): the streaming sweep again, once
 *     per PrefetchKind. Next-line and DCPT must convert the miss
 *     stream into hits that the no-prefetch run cannot see.
 *
 *  3. End-to-end scratchpad depths: full mixed inference+training
 *     simulations (the tiny RNN scenario of the digest suites) with a
 *     non-trivial hierarchy enabled, swept over ping-pong depths x
 *     prefetchers. These runs drive the real event kernel, so the
 *     BENCH record's events/s figure of merit tracks the hierarchy's
 *     simulation-rate cost run over run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/units.hh"
#include "dram/link.hh"
#include "mem/memory_hierarchy.hh"

using namespace equinox;

namespace
{

/** The shared LLC geometry every direct-drive regime runs on. */
mem::MemoryHierarchyConfig
llcGeometry(mem::PrefetchKind kind)
{
    mem::MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.size_bytes = units::KiB(256);
    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 8;
    cfg.llc.replacement = mem::Replacement::Lru;
    cfg.prefetch.kind = kind;
    cfg.prefetch.degree = 4;
    return cfg;
}

/** What one direct-drive regime measured. */
struct RegimeResult
{
    double hit_rate = 0.0;
    double prefetch_accuracy = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t dram_transfers = 0;
    std::uint64_t prefetch_issued = 0;
};

/**
 * Drive @p accesses line-sized demand reads through a fresh hierarchy
 * on @p cfg. A resident run first warms the cache with one sequential
 * pass over the working set (the warm-up accesses are excluded from
 * the measured window); a streaming run never revisits an address, so
 * there is nothing to warm. Counters come from the stats snapshot
 * delta, so the measurement window is exact.
 */
RegimeResult
driveReads(const mem::MemoryHierarchyConfig &cfg, ByteCount working_set,
           std::size_t accesses, bool resident)
{
    dram::PriorityLink link({1e11, 100e-9, 8}, units::MHz(940));
    mem::MemoryHierarchy mh(cfg, &link);
    const ByteCount req = cfg.llc.line_bytes;
    Tick now = 0;
    mem::Addr addr = 0;
    auto step = [&] {
        mh.read(now, addr, req, dram::Priority::High, nullptr);
        addr += req;
        if (resident && addr >= working_set)
            addr = 0;
        now += 16; // a steady demand cadence; timing is not measured
    };
    if (resident) {
        for (ByteCount warmed = 0; warmed < working_set; warmed += req)
            step();
    }
    mem::MemStats before = mh.stats();
    for (std::size_t i = 0; i < accesses; ++i)
        step();
    mem::MemStats after = mh.stats();

    RegimeResult r;
    std::uint64_t hits = after.llc_hits - before.llc_hits;
    std::uint64_t misses = after.llc_misses - before.llc_misses;
    r.accesses = hits + misses;
    r.hit_rate = r.accesses
                     ? static_cast<double>(hits) /
                           static_cast<double>(r.accesses)
                     : 0.0;
    r.dram_transfers = after.dram_transfers - before.dram_transfers;
    r.prefetch_issued = after.prefetch_issued - before.prefetch_issued;
    r.prefetch_accuracy = after.prefetchAccuracy();
    return r;
}

/** The tiny RNN of the digest suites: small enough to sweep densely. */
workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/** The small test design with a full hierarchy at @p banks depth. */
sim::AcceleratorConfig
hierarchyConfig(unsigned banks, mem::PrefetchKind kind)
{
    sim::AcceleratorConfig cfg;
    cfg.name = "mem_bench";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    cfg.mem.scratchpad.enabled = true;
    cfg.mem.scratchpad.banks = banks;
    cfg.mem.scratchpad.bank_bytes = units::KiB(32);
    cfg.mem.llc.enabled = true;
    cfg.mem.llc.size_bytes = units::KiB(256);
    cfg.mem.llc.line_bytes = 256;
    cfg.mem.llc.ways = 8;
    cfg.mem.write_buffer.enabled = true;
    cfg.mem.write_buffer.entries = 8;
    cfg.mem.write_buffer.entry_bytes = units::KiB(4);
    cfg.mem.prefetch.kind = kind;
    cfg.mem.prefetch.degree = 2;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "memory_hierarchy",
                           "memory-hierarchy characterisation",
                           "LLC hit-rate regimes, prefetcher sweep, and "
                           "end-to-end scratchpad ping-pong depths");

    // -- 1. Hit-rate regimes on the same geometry, prefetch off --------
    bench::section("hit-rate regimes (prefetch off, same geometry)");
    const std::size_t kAccesses = 200000;
    auto base = llcGeometry(mem::PrefetchKind::None);
    // Cache-resident: half the LLC, so even imperfect replacement
    // keeps the set resident after one warm-up pass.
    RegimeResult resident =
        driveReads(base, units::KiB(128), kAccesses, true);
    // Streaming: a sweep 256x the LLC with no reuse at all.
    RegimeResult streaming =
        driveReads(base, units::MiB(64), kAccesses, false);
    std::printf("cache-resident (128 KiB set in a 256 KiB LLC): "
                "%.1f%% hits, %llu DRAM transfers\n",
                resident.hit_rate * 100.0,
                static_cast<unsigned long long>(resident.dram_transfers));
    std::printf("streaming      (64 MiB sweep, no reuse):       "
                "%.1f%% hits, %llu DRAM transfers\n",
                streaming.hit_rate * 100.0,
                static_cast<unsigned long long>(streaming.dram_transfers));
    EQX_ASSERT(resident.hit_rate >= 0.90,
               "cache-resident regime missed its acceptance: ",
               resident.hit_rate * 100.0, "% hits (need >= 90%)");
    EQX_ASSERT(streaming.hit_rate <= 0.30,
               "streaming regime missed its acceptance: ",
               streaming.hit_rate * 100.0, "% hits (need <= 30%)");
    harness.note("regime_resident_hit_rate", resident.hit_rate);
    harness.note("regime_streaming_hit_rate", streaming.hit_rate);

    // -- 2. Prefetchers against the streaming sweep ---------------------
    bench::section("prefetchers on the streaming sweep");
    struct Kind
    {
        mem::PrefetchKind kind;
        const char *name;
    };
    const std::vector<Kind> kinds = {
        {mem::PrefetchKind::None, "none"},
        {mem::PrefetchKind::NextLine, "next_line"},
        {mem::PrefetchKind::Dcpt, "dcpt"},
    };
    stats::Table pf_table({"prefetcher", "hit rate", "accuracy",
                           "prefetches", "DRAM transfers"});
    double next_line_rate = 0.0;
    for (const auto &k : kinds) {
        RegimeResult r = driveReads(llcGeometry(k.kind), units::MiB(64),
                                    kAccesses, false);
        pf_table.addRow(
            {k.name, bench::num(r.hit_rate * 100.0, 1) + "%",
             bench::num(r.prefetch_accuracy * 100.0, 1) + "%",
             std::to_string(r.prefetch_issued),
             std::to_string(r.dram_transfers)});
        if (k.kind == mem::PrefetchKind::NextLine)
            next_line_rate = r.hit_rate;
    }
    pf_table.print(std::cout);
    EQX_ASSERT(next_line_rate > streaming.hit_rate + 0.30,
               "next-line prefetch failed to lift the streaming hit "
               "rate (", next_line_rate * 100.0, "% vs ",
               streaming.hit_rate * 100.0, "% without)");
    harness.note("streaming_next_line_hit_rate", next_line_rate);

    // -- 3. End-to-end scratchpad depths x prefetchers ------------------
    bench::section("end-to-end: scratchpad depths x prefetchers");
    core::ExperimentOptions opts;
    opts.model = tinyRnn();
    opts.train_model = tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 50;
    opts.measure_requests = 2500;
    opts.seed = 17;
    opts.jobs = harness.jobs();
    const std::vector<double> loads = {0.35, 0.7};
    stats::Table e2e({"banks", "prefetcher", "load", "LLC hits",
                      "fill stalls", "train iters", "p99 (ms)"});
    for (unsigned banks : {2u, 3u, 4u}) {
        for (const auto &k : kinds) {
            auto cfg = hierarchyConfig(banks, k.kind);
            auto results = core::runLoadSweep(cfg, loads, opts);
            for (const auto &r : results) {
                EQX_ASSERT(r.sim.mem.active,
                           "hierarchy run reported inactive mem stats");
                EQX_ASSERT(r.sim.training_iterations > 0,
                           "hierarchy run made no training progress "
                           "(banks=", banks, " prefetch=", k.name, ")");
                e2e.addRow({std::to_string(banks), k.name,
                            bench::num(r.load, 2),
                            bench::num(r.sim.mem.hitRate() * 100.0, 1) +
                                "%",
                            std::to_string(r.sim.mem.sp_fill_stalls),
                            std::to_string(r.sim.training_iterations),
                            bench::num(r.p99_ms, 2)});
            }
            harness.recordSweep("mem.banks" + std::to_string(banks) +
                                    "." + k.name,
                                results);
        }
    }
    e2e.print(std::cout);

    // `--trace`: one representative traced run with the full hierarchy
    // (depth 2, next-line), exported as a Chrome/Perfetto trace with
    // the mem.staged_bytes counter track.
    bench::traceRepresentativeRun(
        harness, hierarchyConfig(2, mem::PrefetchKind::NextLine), 0.7,
        opts);

    std::printf("\nShape check: the same LLC geometry splits into a "
                ">= 90%% hit cache-resident regime\nand a <= 30%% hit "
                "streaming regime; next-line prefetch recovers the "
                "streaming\nmisses; deeper scratchpad ping-pong trades "
                "capacity for fewer fill stalls.\n");
    harness.finish();
    return 0;
}

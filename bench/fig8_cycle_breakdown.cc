/**
 * @file
 * Reproduces Figure 8: MMU cycle-usage breakdown of Equinox_500us at 5%,
 * 50% and 95% inference load, without (Inf) and with (Inf+Train)
 * piggybacked training.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Figure 8",
                  "Cycle usage breakdown of Equinox_500us at various "
                  "loads");

    auto cfg = core::presetConfig(core::Preset::Us500);
    stats::Table table({"load", "services", "Working %", "Dummy %",
                        "Idle %", "Other %", "train TOp/s"});

    for (double load : {0.05, 0.5, 0.95}) {
        for (bool with_training : {false, true}) {
            core::ExperimentOptions opts;
            opts.warmup_requests = 300;
            opts.measure_requests = 2500;
            opts.min_measure_s = 0.05;
            if (with_training)
                opts.train_model = workload::DnnModel::lstm2048();
            auto r = core::runAtLoad(cfg, load, opts);
            const auto &bd = r.sim.mmu_breakdown;
            using stats::CycleClass;
            table.addRow({bench::num(load * 100, 0) + "%",
                          with_training ? "Inf+Train" : "Inf",
                          bench::num(bd.fraction(CycleClass::Working) *
                                     100, 1),
                          bench::num(bd.fraction(CycleClass::Dummy) *
                                     100, 1),
                          bench::num(bd.fraction(CycleClass::Idle) * 100,
                                     1),
                          bench::num(bd.fraction(CycleClass::Other) *
                                     100, 1),
                          bench::num(r.training_tops, 1)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::printf(
        "\nShape check (paper): at 5%% load ~half the cycles are idle and "
        "~40%% feed dummy\nrequests; adding training reclaims most idle "
        "cycles; at 95%% load the array\nsaturates and training is not "
        "scheduled. 'Other' covers partial-tile waste,\nport contention "
        "and dependence stalls (our training mapping wastes more\narray "
        "slots than the paper's, see EXPERIMENTS.md).\n");
    return 0;
}

/**
 * @file
 * Reproduces Figure 8: MMU cycle-usage breakdown of Equinox_500us at 5%,
 * 50% and 95% inference load, without (Inf) and with (Inf+Train)
 * piggybacked training.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig8_cycle_breakdown",
                           "Figure 8",
                           "Cycle usage breakdown of Equinox_500us at "
                           "various loads");

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    stats::Table table({"load", "services", "Working %", "Dummy %",
                        "Idle %", "Other %", "train TOp/s"});

    struct Cell
    {
        double load;
        bool with_training;
    };
    std::vector<Cell> cells;
    for (double load : {0.05, 0.5, 0.95})
        for (bool with_training : {false, true})
            cells.push_back({load, with_training});

    auto results = parallelMap(harness.jobs(), cells,
                               [&](const Cell &c) {
        core::ExperimentOptions opts;
        opts.warmup_requests = 300;
        opts.measure_requests = 2500;
        opts.min_measure_s = 0.05;
        if (c.with_training)
            opts.train_model = workload::DnnModel::lstm2048();
        return core::runAtLoad(cfg, c.load, opts);
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        const auto &bd = r.sim.mmu_breakdown;
        using stats::CycleClass;
        table.addRow({bench::num(cells[i].load * 100, 0) + "%",
                      cells[i].with_training ? "Inf+Train" : "Inf",
                      bench::num(bd.fraction(CycleClass::Working) *
                                 100, 1),
                      bench::num(bd.fraction(CycleClass::Dummy) *
                                 100, 1),
                      bench::num(bd.fraction(CycleClass::Idle) * 100,
                                 1),
                      bench::num(bd.fraction(CycleClass::Other) *
                                 100, 1),
                      bench::num(r.training_tops, 1)});
        if (i % 2 == 1)
            table.addSeparator();
        harness.recordPoint(r);
        core::addLoadPoint(harness.metrics(),
                           cells[i].with_training ? "inf_train" : "inf",
                           r);
    }
    table.print(std::cout);

    std::printf(
        "\nShape check (paper): at 5%% load ~half the cycles are idle and "
        "~40%% feed dummy\nrequests; adding training reclaims most idle "
        "cycles; at 95%% load the array\nsaturates and training is not "
        "scheduled. 'Other' covers partial-tile waste,\nport contention "
        "and dependence stalls (our training mapping wastes more\narray "
        "slots than the paper's, see EXPERIMENTS.md).\n");
    harness.finish();
    return 0;
}

/**
 * @file
 * Ablation: energy per op across the configuration family -- the
 * quantitative form of the paper's section-2 argument (Figure 1): at
 * tight latency (no batching) most dynamic energy moves data between
 * buffers and the single ALU row; batching amortises the buffer traffic
 * across n rows and shifts the budget into ALUs.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "ablation_energy",
                           "Ablation: energy per op",
                           "Run-energy model across the configuration "
                           "family (LSTM at 90% load)");

    // Resolve every preset config up front (fills the DSE cache once,
    // using the full job count) so the parallel sweeps below only run
    // simulations.
    const auto presets = core::allPresets();
    std::vector<sim::AcceleratorConfig> cfgs;
    for (auto preset : presets)
        cfgs.push_back(core::presetConfig(preset,
                                          arith::Encoding::Hbfp8,
                                          harness.jobs()));

    stats::Table table({"config", "n", "avg power (W)", "pJ/op",
                        "data-movement %", "uJ/request"});

    struct Cell
    {
        core::LoadPointResult r;
        synth::EnergyReport energy;
    };
    auto rows = parallelMap(harness.jobs(), cfgs,
                            [&](const sim::AcceleratorConfig &cfg) {
        core::ExperimentOptions opts;
        opts.warmup_requests = 300;
        opts.measure_requests = 2500;
        opts.min_measure_s = 0.02;
        Cell c;
        c.r = core::runAtLoad(cfg, 0.9, opts);
        c.energy = synth::estimateEnergy(cfg, c.r.sim);
        return c;
    });
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &c = rows[i];
        double req_rate = c.r.inference_tops * 1e12 /
                          workload::DnnModel::lstm2048().opsPerRequest();
        table.addRow({core::presetName(presets[i]),
                      std::to_string(cfgs[i].n),
                      bench::num(c.energy.avg_power_w, 1),
                      bench::num(c.energy.pj_per_op, 2),
                      bench::num(c.energy.data_movement_frac * 100, 1),
                      bench::num(c.energy.avg_power_w / req_rate * 1e6,
                                 1)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: the latency-optimal design (n=1) spends most of its "
        "dynamic energy\non data movement and lands at several times the "
        "energy per op of the batched\ndesigns; relaxing the latency "
        "constraint amortises buffer reads across n rows\n(the Figure 1 "
        "/ section 2.1 argument, measured instead of argued).\n");

    bench::section("with piggybacked training (60% inference load)");
    stats::Table t2({"config", "inf+train TOp/s", "avg power (W)",
                     "pJ/op"});
    auto trows = parallelMap(harness.jobs(), cfgs,
                             [&](const sim::AcceleratorConfig &cfg) {
        core::ExperimentOptions opts;
        opts.train_model = workload::DnnModel::lstm2048();
        opts.warmup_requests = 250;
        opts.measure_requests = 2000;
        opts.min_measure_s = 0.03;
        Cell c;
        c.r = core::runAtLoad(cfg, 0.6, opts);
        c.energy = synth::estimateEnergy(cfg, c.r.sim);
        return c;
    });
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto &c = trows[i];
        t2.addRow({core::presetName(presets[i]),
                   bench::num(c.r.inference_tops + c.r.training_tops, 1),
                   bench::num(c.energy.avg_power_w, 1),
                   bench::num(c.energy.pj_per_op, 2)});
    }
    t2.print(std::cout);
    std::printf("Training rides on energy the accelerator was already "
                "provisioned for: the\nmarginal pJ/op falls because the "
                "fixed DRAM/leakage power amortises over\nmore useful "
                "work.\n");
    harness.finish();
    return 0;
}

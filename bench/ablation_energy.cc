/**
 * @file
 * Ablation: energy per op across the configuration family -- the
 * quantitative form of the paper's section-2 argument (Figure 1): at
 * tight latency (no batching) most dynamic energy moves data between
 * buffers and the single ALU row; batching amortises the buffer traffic
 * across n rows and shifts the budget into ALUs.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Ablation: energy per op",
                  "Run-energy model across the configuration family "
                  "(LSTM at 90% load)");

    stats::Table table({"config", "n", "avg power (W)", "pJ/op",
                        "data-movement %", "uJ/request"});

    for (auto preset : core::allPresets()) {
        auto cfg = core::presetConfig(preset);
        core::ExperimentOptions opts;
        opts.warmup_requests = 300;
        opts.measure_requests = 2500;
        opts.min_measure_s = 0.02;
        auto r = core::runAtLoad(cfg, 0.9, opts);
        auto energy = synth::estimateEnergy(cfg, r.sim);
        double req_rate = r.inference_tops * 1e12 /
                          workload::DnnModel::lstm2048().opsPerRequest();
        table.addRow({core::presetName(preset), std::to_string(cfg.n),
                      bench::num(energy.avg_power_w, 1),
                      bench::num(energy.pj_per_op, 2),
                      bench::num(energy.data_movement_frac * 100, 1),
                      bench::num(energy.avg_power_w / req_rate * 1e6,
                                 1)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: the latency-optimal design (n=1) spends most of its "
        "dynamic energy\non data movement and lands at several times the "
        "energy per op of the batched\ndesigns; relaxing the latency "
        "constraint amortises buffer reads across n rows\n(the Figure 1 "
        "/ section 2.1 argument, measured instead of argued).\n");

    bench::section("with piggybacked training (60% inference load)");
    stats::Table t2({"config", "inf+train TOp/s", "avg power (W)",
                     "pJ/op"});
    for (auto preset : core::allPresets()) {
        auto cfg = core::presetConfig(preset);
        core::ExperimentOptions opts;
        opts.train_model = workload::DnnModel::lstm2048();
        opts.warmup_requests = 250;
        opts.measure_requests = 2000;
        opts.min_measure_s = 0.03;
        auto r = core::runAtLoad(cfg, 0.6, opts);
        auto energy = synth::estimateEnergy(cfg, r.sim);
        t2.addRow({core::presetName(preset),
                   bench::num(r.inference_tops + r.training_tops, 1),
                   bench::num(energy.avg_power_w, 1),
                   bench::num(energy.pj_per_op, 2)});
    }
    t2.print(std::cout);
    std::printf("Training rides on energy the accelerator was already "
                "provisioned for: the\nmarginal pJ/op falls because the "
                "fixed DRAM/leakage power amortises over\nmore useful "
                "work.\n");
    return 0;
}

/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: consistent
 * headers, load grids, formatting, `--jobs` parsing, and the perf
 * harness that records each artefact's wall-clock trajectory.
 */

#ifndef EQUINOX_BENCH_BENCH_COMMON_HH
#define EQUINOX_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/sweep.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/experiment.hh"
#include "obs/chrome_trace.hh"
#include "obs/latency_probe.hh"
#include "obs/metrics_snapshot.hh"
#include "sim/accelerator.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace equinox
{
namespace bench
{

/** Print a banner tying the binary to its paper artefact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::string line(72, '=');
    std::printf("%s\n%s -- %s\n%s\n", line.c_str(), artifact.c_str(),
                description.c_str(), line.c_str());
}

/** Section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** The standard inference-load grid used by the load-sweep figures. */
inline std::vector<double>
loadGrid()
{
    return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

/** Format helper. */
inline std::string
num(double v, int digits = 2)
{
    return stats::Table::num(v, digits);
}

/** The shared bench command line (see parseBenchArgs). */
struct BenchArgs
{
    std::size_t jobs = 1;
    std::string trace_path;   //!< `--trace FILE`: Perfetto JSON out
    std::string metrics_path; //!< `--metrics FILE`: snapshot JSON out
    /**
     * `--check-exact`: co-simulate every fast-forwarded run against
     * the cycle-accurate path and die on any digest divergence (see
     * sim::setCheckExactMode). Roughly doubles the wall clock; the
     * recorded events/s only counts the fast-forwarded runs, so the
     * BENCH record stays comparable -- but commit baselines from runs
     * without it.
     */
    bool check_exact = false;
};

/**
 * Parse the shared bench command line: `--jobs N` (also `--jobs=N`)
 * selects the sweep fan-out (default: the EQX_JOBS environment
 * variable, else hardware concurrency; 1 forces the exact serial code
 * path); `--trace FILE` exports a Chrome/Perfetto trace of one
 * representative run; `--metrics FILE` exports the machine-readable
 * metrics snapshot. Unrecognised arguments are ignored so benches can
 * add their own flags.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    args.jobs = defaultJobs();
    auto flagValue = [&](int &i, const std::string &arg,
                         const std::string &flag,
                         std::string &out) -> bool {
        if (arg == flag && i + 1 < argc) {
            out = argv[++i];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            out = arg.substr(flag.size() + 1);
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (flagValue(i, arg, "--jobs", value)) {
            char *end = nullptr;
            long v = std::strtol(value.c_str(), &end, 10);
            if (!value.empty() && end && *end == '\0' && v > 0)
                args.jobs = static_cast<std::size_t>(v);
            else
                EQX_FATAL("--jobs wants a positive integer, got '",
                          value, "'");
        } else if (flagValue(i, arg, "--trace", args.trace_path) ||
                   flagValue(i, arg, "--metrics", args.metrics_path)) {
            if ((arg.rfind("--trace", 0) == 0 && args.trace_path.empty()) ||
                (arg.rfind("--metrics", 0) == 0 &&
                 args.metrics_path.empty()))
                EQX_FATAL(arg, " wants an output path");
        } else if (arg == "--check-exact") {
            args.check_exact = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--trace FILE] [--metrics FILE] "
                "[--check-exact]\n"
                "  --jobs N       worker threads for the sweeps "
                "(default: EQX_JOBS or hardware concurrency; 1 = "
                "serial)\n"
                "  --trace FILE   write a Chrome/Perfetto trace of one "
                "representative run\n"
                "  --metrics FILE write the metrics snapshot JSON\n"
                "  --check-exact  co-simulate every fast-forwarded run "
                "cycle-accurately and die on digest divergence\n",
                argv[0]);
            std::exit(0);
        }
    }
    return args;
}

/** Back-compat shim: just the `--jobs` part of parseBenchArgs. */
inline std::size_t
parseJobs(int argc, char **argv)
{
    return parseBenchArgs(argc, argv).jobs;
}

/**
 * Perf harness every bench binary runs under: prints the artefact
 * banner, parses `--jobs` / `--trace` / `--metrics`, and on finish()
 * writes `BENCH_<artifact>.json` -- wall-clock seconds, simulation
 * events dispatched, events/second, jobs used, and (when the bench
 * recorded its load points) the simulated latency percentiles and the
 * peak delivered ops rate, so the perf *and* quality trajectory of
 * each artefact is recorded run over run. The BENCH record schema is
 * documented in EXPERIMENTS.md.
 *
 * `--metrics FILE` additionally writes the full obs::MetricsSnapshot
 * (recorded sweeps land under "sweeps.<label>"); `--trace FILE` is
 * consumed by traceRepresentativeRun() below.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, std::string artifact,
            const std::string &title, const std::string &description)
        : artifact_(std::move(artifact)),
          args_(parseBenchArgs(argc, argv)),
          events_start_(sim::globalDispatchedEvents()),
          start_(std::chrono::steady_clock::now())
    {
        if (args_.check_exact)
            sim::setCheckExactMode(true);
        banner(title, description);
    }

    ~Harness()
    {
        if (!finished_)
            finish();
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Worker threads the binary's sweeps should fan out across. */
    std::size_t jobs() const { return args_.jobs; }

    /** `--trace` / `--metrics` output paths; empty = not requested. */
    const std::string &tracePath() const { return args_.trace_path; }
    const std::string &metricsPath() const { return args_.metrics_path; }

    /** The snapshot finish() exports when `--metrics` was given. */
    obs::MetricsSnapshot &metrics() { return metrics_; }

    /**
     * Record one measured load point into the artefact's perf record:
     * the per-point simulated latency percentiles feed the aggregate
     * p50/p99/max fields of BENCH_<artifact>.json.
     */
    void
    recordPoint(const core::LoadPointResult &r)
    {
        if (r.sim.completed_requests == 0)
            return;
        point_p50_ms_.record(r.sim.p50_latency_s * 1e3);
        point_p99_ms_.record(r.p99_ms);
        point_max_ms_.record(r.sim.max_latency_s * 1e3);
        peak_tops_ = std::max(peak_tops_, r.inference_tops);
    }

    /** recordPoint over a sweep + export it under "sweeps.<label>". */
    void
    recordSweep(const std::string &label,
                const std::vector<core::LoadPointResult> &results)
    {
        for (const auto &r : results)
            recordPoint(r);
        core::addLoadSweep(metrics_, label, results);
    }

    /**
     * Cluster flavour of recordPoint: the fleet's exact merged
     * percentiles feed the same aggregate latency fields, the peak
     * rates track the fleet aggregates, and the training throughput
     * the coordinator recovered lands in `train_rate_tops`.
     */
    void
    recordClusterPoint(const cluster::ClusterPointResult &r)
    {
        if (r.completed_requests == 0)
            return;
        point_p50_ms_.record(r.p50_latency_s * 1e3);
        point_p99_ms_.record(r.p99_latency_s * 1e3);
        point_max_ms_.record(r.max_latency_s * 1e3);
        peak_tops_ = std::max(peak_tops_, r.aggregate_inference_tops);
        peak_train_tops_ =
            std::max(peak_train_tops_, r.aggregate_training_tops);
    }

    /** recordClusterPoint over a sweep + export under "cluster.<label>". */
    void
    recordClusterSweep(const std::string &label,
                       const std::vector<cluster::ClusterPointResult> &rs)
    {
        for (const auto &r : rs)
            recordClusterPoint(r);
        core::addClusterSweep(metrics_, label, rs);
    }

    /**
     * Attach one headline number to the artefact's perf record:
     * finish() writes every note under `notes.<key>` in
     * BENCH_<artifact>.json, so per-bench acceptance figures (e.g.
     * availability gained by a mechanism) are recorded run over run
     * alongside the fixed schema fields.
     */
    void
    note(const std::string &key, double value)
    {
        notes_[key] = value;
    }

    void
    note(const std::string &key, std::uint64_t value)
    {
        notes_[key] = value;
    }

    /** Record wall clock + event totals and emit BENCH_<artifact>.json. */
    void
    finish()
    {
        finished_ = true;
        auto elapsed = std::chrono::steady_clock::now() - start_;
        double wall_s =
            std::chrono::duration<double>(elapsed).count();
        // Per-run event count: the delta over the process-global tally
        // since this harness started (sim::resetGlobalSimCounters()
        // exists for callers that want absolute per-run figures; the
        // delta keeps multiple harnesses in one process additive).
        // Check-exact reference runs never enter the global tally, so
        // this stays the fast-forwarded runs' count either way.
        std::uint64_t events =
            sim::globalDispatchedEvents() - events_start_;
        double eps = wall_s > 0.0
                         ? static_cast<double>(events) / wall_s
                         : 0.0;
        std::printf("\n[bench] %s: wall %.3f s, %llu events "
                    "(%.3g events/s), jobs %zu\n", artifact_.c_str(),
                    wall_s, static_cast<unsigned long long>(events),
                    eps, args_.jobs);

        // Aggregates over the recorded points: the median of the
        // per-point p50s, the worst per-point p99/max (tail metrics
        // aggregate pessimistically), and the peak delivered rate.
        obs::Json record = obs::Json::object();
        record["artifact"] = artifact_;
        record["schema_version"] = obs::MetricsSnapshot::kSchemaVersion;
        record["wall_seconds"] = wall_s;
        record["events_dispatched"] = events;
        record["events_per_second"] = eps;
        record["jobs"] = static_cast<std::uint64_t>(args_.jobs);
        record["check_exact"] = args_.check_exact;
        record["points_recorded"] =
            static_cast<std::uint64_t>(point_p99_ms_.count());
        record["latency_p50_ms"] = point_p50_ms_.percentile(0.5);
        record["latency_p99_ms"] = point_p99_ms_.max();
        record["latency_max_ms"] = point_max_ms_.max();
        record["ops_rate_tops"] = peak_tops_;
        record["train_rate_tops"] = peak_train_tops_;
        if (notes_.size() > 0)
            record["notes"] = notes_;

        std::string path = "BENCH_" + artifact_ + ".json";
        std::ofstream out(path);
        if (!out)
            EQX_WARN("cannot write ", path);
        else
            out << record.dump(2);

        if (!args_.metrics_path.empty()) {
            metrics_.section("bench") = record;
            if (metrics_.writeTo(args_.metrics_path))
                std::printf("[bench] metrics snapshot: %s\n",
                            args_.metrics_path.c_str());
        }
    }

  private:
    std::string artifact_;
    BenchArgs args_;
    std::uint64_t events_start_;
    std::chrono::steady_clock::time_point start_;
    bool finished_ = false;

    obs::MetricsSnapshot metrics_;
    obs::Json notes_ = obs::Json::object();
    stats::LatencyTracker point_p50_ms_;
    stats::LatencyTracker point_p99_ms_;
    stats::LatencyTracker point_max_ms_;
    double peak_tops_ = 0.0;
    double peak_train_tops_ = 0.0;
};

/**
 * When `--trace FILE` was given, re-run one representative load point
 * with a ChromeTraceSink + LatencyProbe installed and write the
 * Perfetto-loadable trace; the probe's exact percentile report lands
 * under "latency.trace_run" in the harness metrics. A no-op without
 * `--trace`. Tracing is observation-only, so the traced re-run
 * reports byte-identical results to the untraced sweep point.
 */
inline void
traceRepresentativeRun(Harness &harness,
                       const sim::AcceleratorConfig &cfg, double load,
                       const core::ExperimentOptions &opts)
{
    if (harness.tracePath().empty())
        return;
    obs::ChromeTraceSink trace(cfg.frequency_hz);
    obs::LatencyProbe probe;
    obs::MultiSink sinks;
    sinks.add(&trace);
    // The probe's percentile report only ever surfaces through the
    // metrics snapshot; without `--metrics` installing it would tax
    // every RequestRetired record for output nobody reads.
    const bool want_metrics = !harness.metricsPath().empty();
    if (want_metrics)
        sinks.add(&probe);
    auto traced = opts;
    traced.trace_sink = &sinks;
    traced.jobs = 1;
    core::runAtLoad(cfg, load, traced);
    if (trace.writeTo(harness.tracePath()))
        std::printf("\n[bench] trace (%llu events, %s @ load %.2f): "
                    "%s -- open at https://ui.perfetto.dev\n",
                    static_cast<unsigned long long>(trace.total()),
                    cfg.name.c_str(), load,
                    harness.tracePath().c_str());
    if (want_metrics)
        probe.addTo(harness.metrics(), "trace_run", cfg.frequency_hz);
}

} // namespace bench
} // namespace equinox

#endif // EQUINOX_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: consistent
 * headers, load grids and formatting.
 */

#ifndef EQUINOX_BENCH_BENCH_COMMON_HH
#define EQUINOX_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "stats/table.hh"

namespace equinox
{
namespace bench
{

/** Print a banner tying the binary to its paper artefact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::string line(72, '=');
    std::printf("%s\n%s -- %s\n%s\n", line.c_str(), artifact.c_str(),
                description.c_str(), line.c_str());
}

/** Section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** The standard inference-load grid used by the load-sweep figures. */
inline std::vector<double>
loadGrid()
{
    return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

/** Format helper. */
inline std::string
num(double v, int digits = 2)
{
    return stats::Table::num(v, digits);
}

} // namespace bench
} // namespace equinox

#endif // EQUINOX_BENCH_BENCH_COMMON_HH

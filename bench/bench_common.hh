/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: consistent
 * headers, load grids, formatting, `--jobs` parsing, and the perf
 * harness that records each artefact's wall-clock trajectory.
 */

#ifndef EQUINOX_BENCH_BENCH_COMMON_HH
#define EQUINOX_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/event_queue.hh"
#include "stats/table.hh"

namespace equinox
{
namespace bench
{

/** Print a banner tying the binary to its paper artefact. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::string line(72, '=');
    std::printf("%s\n%s -- %s\n%s\n", line.c_str(), artifact.c_str(),
                description.c_str(), line.c_str());
}

/** Section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** The standard inference-load grid used by the load-sweep figures. */
inline std::vector<double>
loadGrid()
{
    return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

/** Format helper. */
inline std::string
num(double v, int digits = 2)
{
    return stats::Table::num(v, digits);
}

/**
 * Parse the shared bench command line: `--jobs N` (also `--jobs=N`)
 * selects the sweep fan-out; the default comes from defaultJobs()
 * (the EQX_JOBS environment variable, else hardware concurrency).
 * `--jobs 1` forces the exact serial code path for debugging.
 */
inline std::size_t
parseJobs(int argc, char **argv)
{
    std::size_t jobs = defaultJobs();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (arg == "--jobs" && i + 1 < argc) {
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--jobs N]\n"
                        "  --jobs N  worker threads for the sweeps "
                        "(default: EQX_JOBS or hardware concurrency; "
                        "1 = serial)\n", argv[0]);
            std::exit(0);
        } else {
            continue;
        }
        char *end = nullptr;
        long v = std::strtol(value.c_str(), &end, 10);
        if (!value.empty() && end && *end == '\0' && v > 0)
            jobs = static_cast<std::size_t>(v);
        else
            EQX_FATAL("--jobs wants a positive integer, got '", value,
                      "'");
    }
    return jobs;
}

/**
 * Perf harness every bench binary runs under: prints the artefact
 * banner, parses `--jobs`, and on finish() writes
 * `BENCH_<artifact>.json` (wall-clock seconds, simulation events
 * dispatched, events/second, jobs used) next to the working directory
 * so the perf trajectory of each artefact is recorded run over run.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, std::string artifact,
            const std::string &title, const std::string &description)
        : artifact_(std::move(artifact)), jobs_(parseJobs(argc, argv)),
          events_start_(sim::globalDispatchedEvents()),
          start_(std::chrono::steady_clock::now())
    {
        banner(title, description);
    }

    ~Harness()
    {
        if (!finished_)
            finish();
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Worker threads the binary's sweeps should fan out across. */
    std::size_t jobs() const { return jobs_; }

    /** Record wall clock + event totals and emit BENCH_<artifact>.json. */
    void
    finish()
    {
        finished_ = true;
        auto elapsed = std::chrono::steady_clock::now() - start_;
        double wall_s =
            std::chrono::duration<double>(elapsed).count();
        std::uint64_t events =
            sim::globalDispatchedEvents() - events_start_;
        double eps = wall_s > 0.0
                         ? static_cast<double>(events) / wall_s
                         : 0.0;
        std::printf("\n[bench] %s: wall %.3f s, %llu events "
                    "(%.3g events/s), jobs %zu\n", artifact_.c_str(),
                    wall_s, static_cast<unsigned long long>(events),
                    eps, jobs_);

        std::string path = "BENCH_" + artifact_ + ".json";
        std::ofstream out(path);
        if (!out) {
            EQX_WARN("cannot write ", path);
            return;
        }
        out << "{\n"
            << "  \"artifact\": \"" << artifact_ << "\",\n"
            << "  \"wall_seconds\": " << wall_s << ",\n"
            << "  \"events_dispatched\": " << events << ",\n"
            << "  \"events_per_second\": " << eps << ",\n"
            << "  \"jobs\": " << jobs_ << "\n"
            << "}\n";
    }

  private:
    std::string artifact_;
    std::size_t jobs_;
    std::uint64_t events_start_;
    std::chrono::steady_clock::time_point start_;
    bool finished_ = false;
};

} // namespace bench
} // namespace equinox

#endif // EQUINOX_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Reproduces Figure 10: inference tail latency against throughput for
 * Equinox_500us under three execution-unit scheduling policies --
 * inference-only (Inf), fair-share with training, and hardware priority
 * with training -- plus the section-6 software-scheduler experiment.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig10_scheduling", "Figure 10",
                           "Scheduling policies: inference "
                           "latency/throughput with piggybacked "
                           "training");

    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    double target_ms = core::latencyTargetSeconds(
                           ref, workload::DnnModel::lstm2048()) * 1e3;

    struct Case
    {
        const char *label;
        sim::SchedPolicy policy;
        bool training;
    };
    const Case cases[] = {
        {"Inf", sim::SchedPolicy::InferenceOnly, false},
        {"Inf+Train+Fair sched.", sim::SchedPolicy::FairShare, true},
        {"Inf+Train+Priority sched.", sim::SchedPolicy::Priority, true},
    };

    for (const auto &c : cases) {
        bench::section(c.label);
        auto cfg = ref;
        cfg.sched_policy = c.policy;
        core::ExperimentOptions opts;
        if (c.training)
            opts.train_model = workload::DnnModel::lstm2048();
        opts.warmup_requests = 300;
        opts.measure_requests = 2200;

        stats::Table table({"load", "inf T (TOp/s)", "p99 (ms)",
                            "train T (TOp/s)", "meets target"});
        double best_ok = 0.0;
        const std::vector<double> loads = {0.1, 0.3, 0.5, 0.65, 0.8,
                                           0.9, 1.0};
        auto compiled = core::compileWorkload(cfg, opts);
        auto results = parallelMap(harness.jobs(), loads,
                                   [&](double load) {
            auto o = opts;
            if (load >= 0.8) {
                o.min_measure_s = 0.15;
                o.warmup_s = 0.02;
            }
            return core::runAtLoad(cfg, load, o, compiled);
        });
        for (const auto &r : results) {
            bool ok = r.p99_ms <= target_ms;
            if (ok)
                best_ok = std::max(best_ok, r.inference_tops);
            table.addRow({bench::num(r.load, 2),
                          bench::num(r.inference_tops, 1),
                          bench::num(r.p99_ms, 2),
                          bench::num(r.training_tops, 1),
                          ok ? "yes" : "NO"});
        }
        table.print(std::cout);
        harness.recordSweep(c.label, results);
        std::printf("max inference throughput under the %.1f ms target: "
                    "%.1f TOp/s\n", target_ms, best_ok);
    }

    bench::section("software scheduler (batch-granularity control "
                   "plane, section 6)");
    {
        auto cfg = ref;
        cfg.sched_policy = sim::SchedPolicy::SoftwareBatch;
        core::ExperimentOptions opts;
        opts.train_model = workload::DnnModel::lstm2048();
        opts.warmup_requests = 250;
        opts.measure_requests = 1800;
        opts.warmup_s = 0.02;
        opts.min_measure_s = 0.1;
        stats::Table table({"load", "inf T (TOp/s)", "p99 (ms)",
                            "train T (TOp/s)"});
        const std::vector<double> loads = {0.02, 0.1, 0.3, 0.6};
        auto compiled = core::compileWorkload(cfg, opts);
        auto results = parallelMap(harness.jobs(), loads,
                                   [&](double load) {
            return core::runAtLoad(cfg, load, opts, compiled);
        });
        for (const auto &r : results) {
            table.addRow({bench::num(r.load, 2),
                          bench::num(r.inference_tops, 1),
                          bench::num(r.p99_ms, 2),
                          bench::num(r.training_tops, 1)});
        }
        table.print(std::cout);
        std::printf(
            "A training batch is unpreemptible in software: to protect "
            "the latency target\nthe control plane only launches one "
            "into a fully idle accelerator, so training\nthroughput "
            "collapses at any meaningful load (the paper's finding).\n");
    }
    harness.finish();
    return 0;
}

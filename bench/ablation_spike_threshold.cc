/**
 * @file
 * Ablation: the priority scheduler's load-spike threshold (the queue
 * size, set at installation time, beyond which the controller stops
 * servicing training entirely -- section 3.2).
 *
 * A threshold of 1 freezes training on every queued batch (leaving idle
 * cycles unreclaimed); a very large threshold degenerates towards fair
 * sharing during bursts and stretches the inference tail. The sweep also
 * runs under a bursty arrival process, where the threshold earns its
 * keep.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
sweep(sim::ArrivalProcess process, const char *title, double target_ms)
{
    bench::section(title);
    auto lstm = workload::DnnModel::lstm2048();
    stats::Table table({"threshold (batches)", "train TOp/s @60%",
                        "p99 @60% (ms)", "train TOp/s @85%",
                        "p99 @85% (ms)", "SLO @85%"});
    for (unsigned threshold : {1u, 2u, 4u, 8u, 16u}) {
        auto cfg = core::presetConfig(core::Preset::Us500);
        cfg.spike_threshold_batches = threshold;
        core::ExperimentOptions opts;
        opts.train_model = lstm;
        opts.warmup_requests = 250;
        opts.measure_requests = 2000;
        opts.min_measure_s = 0.05;

        auto run_at = [&](double load) {
            workload::Compiler compiler(cfg);
            sim::Accelerator accel(cfg);
            accel.installInference(compiler.compileInference(lstm));
            accel.installTraining(compiler.compileTraining(lstm, 128));
            sim::RunSpec spec;
            spec.arrival_rate_per_s = load * accel.maxRequestRate();
            spec.arrival_process = process;
            spec.warmup_requests = opts.warmup_requests;
            spec.measure_requests = opts.measure_requests;
            spec.min_measure_s = opts.min_measure_s;
            return accel.run(spec);
        };
        auto mid = run_at(0.6);
        auto high = run_at(0.85);
        table.addRow({std::to_string(threshold),
                      bench::num(mid.training_throughput_ops / 1e12, 1),
                      bench::num(mid.p99_latency_s * 1e3, 2),
                      bench::num(high.training_throughput_ops / 1e12, 1),
                      bench::num(high.p99_latency_s * 1e3, 2),
                      high.p99_latency_s * 1e3 <= target_ms ? "yes"
                                                            : "NO"});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Ablation: load-spike threshold",
                  "Priority-scheduler freeze threshold under Poisson "
                  "and bursty arrivals");
    auto ref = core::presetConfig(core::Preset::Us500);
    double target_ms = core::latencyTargetSeconds(
                           ref, workload::DnnModel::lstm2048()) * 1e3;
    std::printf("latency target: %.1f ms\n", target_ms);

    sweep(sim::ArrivalProcess::Poisson, "Poisson arrivals", target_ms);
    sweep(sim::ArrivalProcess::Bursty,
          "bursty arrivals (4x peak, 2 ms period)", target_ms);

    std::printf(
        "\nReading: the result is a robustness finding -- the threshold "
        "barely matters.\nThe scheduler's middle regime (inference-first "
        "as soon as more than one batch\nis in flight) already denies "
        "training everything but dependence gaps during\nbacklog, so the "
        "full freeze only trims those gaps. The SLO holds for every\n"
        "threshold under both arrival processes; bursty arrivals cost "
        "training ~35%%\nthroughput at equal mean load regardless of the "
        "setting.\n");
    return 0;
}

/**
 * @file
 * Ablation: the priority scheduler's load-spike threshold (the queue
 * size, set at installation time, beyond which the controller stops
 * servicing training entirely -- section 3.2).
 *
 * A threshold of 1 freezes training on every queued batch (leaving idle
 * cycles unreclaimed); a very large threshold degenerates towards fair
 * sharing during bursts and stretches the inference tail. The sweep also
 * runs under a bursty arrival process, where the threshold earns its
 * keep.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
sweep(const sim::AcceleratorConfig &ref, sim::ArrivalProcess process,
      const char *title, double target_ms, std::size_t jobs)
{
    bench::section(title);
    auto lstm = workload::DnnModel::lstm2048();
    stats::Table table({"threshold (batches)", "train TOp/s @60%",
                        "p99 @60% (ms)", "train TOp/s @85%",
                        "p99 @85% (ms)", "SLO @85%"});
    const std::vector<unsigned> thresholds = {1u, 2u, 4u, 8u, 16u};
    struct Row
    {
        sim::SimResult mid, high;
    };
    auto rows = parallelMap(jobs, thresholds, [&](unsigned threshold) {
        auto cfg = ref;
        cfg.spike_threshold_batches = threshold;

        auto run_at = [&](double load) {
            workload::Compiler compiler(cfg);
            sim::Accelerator accel(cfg);
            accel.installInference(compiler.compileInference(lstm));
            accel.installTraining(compiler.compileTraining(lstm, 128));
            sim::RunSpec spec;
            spec.arrival_rate_per_s = load * accel.maxRequestRate();
            spec.arrival_process = process;
            spec.warmup_requests = 250;
            spec.measure_requests = 2000;
            spec.min_measure_s = 0.05;
            return accel.run(spec);
        };
        return Row{run_at(0.6), run_at(0.85)};
    });

    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const auto &mid = rows[i].mid;
        const auto &high = rows[i].high;
        table.addRow({std::to_string(thresholds[i]),
                      bench::num(mid.training_throughput_ops / 1e12, 1),
                      bench::num(mid.p99_latency_s * 1e3, 2),
                      bench::num(high.training_throughput_ops / 1e12, 1),
                      bench::num(high.p99_latency_s * 1e3, 2),
                      high.p99_latency_s * 1e3 <= target_ms ? "yes"
                                                            : "NO"});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "ablation_spike_threshold",
                           "Ablation: load-spike threshold",
                           "Priority-scheduler freeze threshold under "
                           "Poisson and bursty arrivals");
    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    double target_ms = core::latencyTargetSeconds(
                           ref, workload::DnnModel::lstm2048()) * 1e3;
    std::printf("latency target: %.1f ms\n", target_ms);

    sweep(ref, sim::ArrivalProcess::Poisson, "Poisson arrivals",
          target_ms, harness.jobs());
    sweep(ref, sim::ArrivalProcess::Bursty,
          "bursty arrivals (4x peak, 2 ms period)", target_ms,
          harness.jobs());

    std::printf(
        "\nReading: the result is a robustness finding -- the threshold "
        "barely matters.\nThe scheduler's middle regime (inference-first "
        "as soon as more than one batch\nis in flight) already denies "
        "training everything but dependence gaps during\nbacklog, so the "
        "full freeze only trims those gaps. The SLO holds for every\n"
        "threshold under both arrival processes; bursty arrivals cost "
        "training ~35%%\nthroughput at equal mean load regardless of the "
        "setting.\n");
    harness.finish();
    return 0;
}

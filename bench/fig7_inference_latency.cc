/**
 * @file
 * Reproduces Figure 7: 99th-percentile inference latency as a function of
 * achieved throughput for the Equinox configuration family, (a) hbfp8 and
 * (b) bfloat16, LSTM-2048, adaptive batching, no training.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
sweepEncoding(bench::Harness &harness, arith::Encoding enc,
              const char *title, const std::vector<core::Preset> &presets,
              double latency_target_ms, std::size_t jobs)
{
    bench::section(title);
    core::ExperimentOptions opts;
    opts.warmup_requests = 300;
    opts.measure_requests = 2500;

    const std::vector<double> loads = {0.1, 0.25, 0.4, 0.55, 0.7, 0.85,
                                       0.95, 1.0, 1.04};
    for (auto preset : presets) {
        auto cfg = core::presetConfig(preset, enc, jobs);
        std::printf("\n%s (n=%u m=%u w=%u @ %.0f MHz)\n",
                    core::presetName(preset), cfg.n, cfg.m, cfg.w,
                    cfg.frequency_hz / 1e6);
        stats::Table table({"load", "throughput (TOp/s)", "p99 (ms)",
                            "mean (ms)", "batch fill"});
        // Compile once per preset; fan the independent load points out
        // and print the rows in input order afterwards.
        auto compiled = core::compileWorkload(cfg, opts);
        auto results = parallelMap(jobs, loads, [&](double load) {
            auto o = opts;
            if (load >= 0.9) {
                o.min_measure_s = 0.2; // expose steady-state queuing
                o.warmup_s = 0.02;
            }
            return core::runAtLoad(cfg, load, o, compiled);
        });
        for (const auto &r : results) {
            table.addRow({bench::num(r.load, 2),
                          bench::num(r.inference_tops, 1),
                          bench::num(r.p99_ms, 2),
                          bench::num(r.mean_ms, 2),
                          bench::num(r.sim.avg_batch_fill, 2)});
        }
        table.print(std::cout);
        harness.recordSweep(std::string(arith::encodingName(enc)) + "." +
                                core::presetName(preset),
                            results);
    }
    std::printf("latency target (10x Equinox_500us mean service time): "
                "%.2f ms\n", latency_target_ms);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig7_inference_latency",
                           "Figure 7",
                           "Inference tail latency vs throughput per "
                           "config");

    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    double target_ms =
        core::latencyTargetSeconds(ref, workload::DnnModel::lstm2048()) *
        1e3;

    sweepEncoding(harness, arith::Encoding::Hbfp8, "(a) hbfp8",
                  {core::Preset::Min, core::Preset::Us50,
                   core::Preset::Us500, core::Preset::None},
                  target_ms, harness.jobs());
    sweepEncoding(harness, arith::Encoding::Bfloat16, "(b) bfloat16",
                  {core::Preset::Min, core::Preset::Us500,
                   core::Preset::None},
                  target_ms, harness.jobs());

    // `--trace`: one representative traced run of the reference config
    // at moderate load, exported as a Chrome/Perfetto trace.
    core::ExperimentOptions trace_opts;
    trace_opts.warmup_requests = 300;
    trace_opts.measure_requests = 2500;
    bench::traceRepresentativeRun(harness, ref, 0.7, trace_opts);

    std::printf("\nShape check: relaxed-latency designs reach ~6x the "
                "min-latency design's\nthroughput; hbfp8 reaches ~5x "
                "bfloat16 under the same target (paper: 5.15x).\n");
    harness.finish();
    return 0;
}

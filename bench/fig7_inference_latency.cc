/**
 * @file
 * Reproduces Figure 7: 99th-percentile inference latency as a function of
 * achieved throughput for the Equinox configuration family, (a) hbfp8 and
 * (b) bfloat16, LSTM-2048, adaptive batching, no training.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
sweepEncoding(arith::Encoding enc, const char *title,
              const std::vector<core::Preset> &presets,
              double latency_target_ms)
{
    bench::section(title);
    core::ExperimentOptions opts;
    opts.warmup_requests = 300;
    opts.measure_requests = 2500;

    for (auto preset : presets) {
        auto cfg = core::presetConfig(preset, enc);
        std::printf("\n%s (n=%u m=%u w=%u @ %.0f MHz)\n",
                    core::presetName(preset), cfg.n, cfg.m, cfg.w,
                    cfg.frequency_hz / 1e6);
        stats::Table table({"load", "throughput (TOp/s)", "p99 (ms)",
                            "mean (ms)", "batch fill"});
        for (double load : {0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95, 1.0,
                            1.04}) {
            auto o = opts;
            if (load >= 0.9) {
                o.min_measure_s = 0.2; // expose steady-state queuing
                o.warmup_s = 0.02;
            }
            auto r = core::runAtLoad(cfg, load, o);
            table.addRow({bench::num(load, 2),
                          bench::num(r.inference_tops, 1),
                          bench::num(r.p99_ms, 2),
                          bench::num(r.mean_ms, 2),
                          bench::num(r.sim.avg_batch_fill, 2)});
        }
        table.print(std::cout);
    }
    std::printf("latency target (10x Equinox_500us mean service time): "
                "%.2f ms\n", latency_target_ms);
}

} // namespace

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Figure 7",
                  "Inference tail latency vs throughput per config");

    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8);
    double target_ms =
        core::latencyTargetSeconds(ref, workload::DnnModel::lstm2048()) *
        1e3;

    sweepEncoding(arith::Encoding::Hbfp8, "(a) hbfp8",
                  {core::Preset::Min, core::Preset::Us50,
                   core::Preset::Us500, core::Preset::None},
                  target_ms);
    sweepEncoding(arith::Encoding::Bfloat16, "(b) bfloat16",
                  {core::Preset::Min, core::Preset::Us500,
                   core::Preset::None},
                  target_ms);

    std::printf("\nShape check: relaxed-latency designs reach ~6x the "
                "min-latency design's\nthroughput; hbfp8 reaches ~5x "
                "bfloat16 under the same target (paper: 5.15x).\n");
    return 0;
}

/**
 * @file
 * Reproduces Figure 11: the adaptive-batching policy's impact on tail
 * latency and training throughput for Equinox_500us.
 *
 * (a) static vs adaptive batching: 99th-percentile latency vs load;
 * (b) threshold sweep (2x..10x service time): latency vs throughput;
 * (c) threshold sweep: training throughput vs load.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

namespace
{

using namespace equinox;

void
partA(bench::Harness &harness, const sim::AcceleratorConfig &ref,
      double target_ms, std::size_t jobs)
{
    bench::section("(a) static vs adaptive batching, p99 latency vs "
                   "load (inference only)");
    stats::Table table({"load", "static p99 (ms)", "adaptive p99 (ms)"});
    core::ExperimentOptions opts;
    opts.warmup_requests = 250;
    opts.measure_requests = 2200;
    opts.jobs = jobs;
    auto s_cfg = ref;
    s_cfg.batch_policy = sim::BatchPolicy::Static;
    auto a_cfg = ref;
    a_cfg.batch_policy = sim::BatchPolicy::Adaptive;
    auto loads = bench::loadGrid();
    auto s_results = core::runLoadSweep(s_cfg, loads, opts);
    auto a_results = core::runLoadSweep(a_cfg, loads, opts);
    harness.recordSweep("static", s_results);
    harness.recordSweep("adaptive", a_results);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        table.addRow({bench::num(loads[i], 2),
                      bench::num(s_results[i].p99_ms, 2),
                      bench::num(a_results[i].p99_ms, 2)});
    }
    table.print(std::cout);
    std::printf("latency target: %.1f ms -- static batching violates it "
                "at low loads where\nbatch formation dominates "
                "(paper: >10x service time).\n", target_ms);
}

void
partBC(const sim::AcceleratorConfig &ref, double target_ms,
       std::size_t jobs)
{
    const double mults[] = {2.0, 4.0, 6.0, 8.0, 10.0};

    bench::section("(b) tail latency vs inference throughput per "
                   "batching threshold (with training)");
    std::vector<std::string> headers{"load", "inf T (TOp/s)"};
    for (double m : mults)
        headers.push_back(bench::num(m, 0) + "x p99(ms)");
    stats::Table tb(headers);

    bench::section("(c) training throughput vs load per threshold");
    std::vector<std::string> headers_c{"load"};
    for (double m : mults)
        headers_c.push_back(bench::num(m, 0) + "x train(TOp/s)");
    stats::Table tc(headers_c);

    core::ExperimentOptions opts;
    opts.train_model = workload::DnnModel::lstm2048();
    opts.warmup_requests = 250;
    opts.measure_requests = 2000;
    opts.min_measure_s = 0.03;

    double incomplete_frac_10x_sum = 0.0;
    int samples_10x = 0;
    const std::vector<double> loads = {0.1, 0.3, 0.5, 0.7, 0.9};
    // Fan the (load, threshold) grid out as one flat index space.
    struct Cell
    {
        double load;
        double mult;
    };
    std::vector<Cell> grid;
    for (double load : loads)
        for (double mult : mults)
            grid.push_back({load, mult});
    auto results = parallelMap(jobs, grid, [&](const Cell &c) {
        auto cfg = ref;
        cfg.batch_timeout_mult = c.mult;
        return core::runAtLoad(cfg, c.load, opts);
    });
    std::size_t idx = 0;
    for (double load : loads) {
        std::vector<std::string> row_b{bench::num(load, 2), ""};
        std::vector<std::string> row_c{bench::num(load, 2)};
        for (double mult : mults) {
            const auto &r = results[idx++];
            if (row_b[1].empty())
                row_b[1] = bench::num(r.inference_tops, 1);
            row_b.push_back(bench::num(r.p99_ms, 2));
            row_c.push_back(bench::num(r.training_tops, 1));
            if (mult == 10.0 && r.sim.batches_formed) {
                incomplete_frac_10x_sum +=
                    static_cast<double>(r.sim.batches_incomplete) /
                    static_cast<double>(r.sim.batches_formed);
                ++samples_10x;
            }
        }
        tb.addRow(row_b);
        tc.addRow(row_c);
    }
    tb.print(std::cout);
    tc.print(std::cout);
    std::printf("latency target: %.1f ms. At the 10x threshold, "
                "incomplete batches are %.1f%%\nof issued batches "
                "averaged over the sweep (paper: <1%% at high "
                "thresholds).\n", target_ms,
                100.0 * incomplete_frac_10x_sum /
                    std::max(samples_10x, 1));
    std::printf("The 2x threshold gives near-maximum, stable training "
                "throughput without\nviolating the latency goal -- the "
                "setting used by every other experiment.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fig11_adaptive_batching",
                           "Figure 11",
                           "Adaptive batching: latency and training "
                           "impact");
    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    double target_ms = core::latencyTargetSeconds(
                           ref, workload::DnnModel::lstm2048()) * 1e3;
    partA(harness, ref, target_ms, harness.jobs());
    partBC(ref, target_ms, harness.jobs());
    harness.finish();
    return 0;
}

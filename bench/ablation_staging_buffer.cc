/**
 * @file
 * Ablation: the training staging-buffer share (section 2.2 claims "less
 * than 2% of the on-chip buffer space" suffices). Sweeping the share
 * shows where training becomes prefetch-starved and that growing it
 * beyond ~2% buys nothing -- training is DRAM-bandwidth-bound, not
 * staging-bound.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);
    bench::banner("Ablation: staging-buffer share",
                  "Training throughput vs staging capacity "
                  "(Equinox_500us, LSTM-128)");

    auto lstm = workload::DnnModel::lstm2048();
    stats::Table table({"staging share", "capacity (MiB)",
                        "train TOp/s @0%", "train TOp/s @40%",
                        "inf p99 @40% (ms)"});

    for (double frac : {0.002, 0.005, 0.01, 0.02, 0.04, 0.08}) {
        auto cfg = core::presetConfig(core::Preset::Us500);
        cfg.train_staging_frac = frac;
        core::ExperimentOptions opts;
        opts.train_model = lstm;
        opts.warmup_requests = 200;
        opts.measure_requests = 1600;
        opts.measure_iterations = 10;
        opts.min_measure_s = 0.03;
        auto idle = core::runAtLoad(cfg, 0.0, opts);
        auto mid = core::runAtLoad(cfg, 0.4, opts);
        table.addRow({bench::num(frac * 100, 1) + "%",
                      bench::num(static_cast<double>(cfg.stagingBytes()) /
                                     (1 << 20), 2),
                      bench::num(idle.training_tops, 1),
                      bench::num(mid.training_tops, 1),
                      bench::num(mid.p99_ms, 2)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: one tile instruction's streamed operands (the m "
        "weight tiles plus the\nactivation tile) are ~0.3 MiB on this "
        "design, so below ~0.5%% the staging\nbuffer cannot hold even "
        "one instruction and training cannot run at all. From\n~1-2%% "
        "on, throughput is flat: the paper's <2%% share claim holds "
        "with a few\ntile sets of pipelining headroom, and the "
        "inference tail never depends on it.\n");
    return 0;
}

/**
 * @file
 * Ablation: the training staging-buffer share (section 2.2 claims "less
 * than 2% of the on-chip buffer space" suffices). Sweeping the share
 * shows where training becomes prefetch-starved and that growing it
 * beyond ~2% buys nothing -- training is DRAM-bandwidth-bound, not
 * staging-bound.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "ablation_staging_buffer",
                           "Ablation: staging-buffer share",
                           "Training throughput vs staging capacity "
                           "(Equinox_500us, LSTM-128)");

    auto ref = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    auto lstm = workload::DnnModel::lstm2048();
    stats::Table table({"staging share", "capacity (MiB)",
                        "train TOp/s @0%", "train TOp/s @40%",
                        "inf p99 @40% (ms)"});

    const std::vector<double> fracs = {0.002, 0.005, 0.01,
                                       0.02, 0.04, 0.08};
    struct Row
    {
        double capacity_mib, idle_tops, mid_tops, mid_p99;
    };
    auto rows = parallelMap(harness.jobs(), fracs, [&](double frac) {
        auto cfg = ref;
        cfg.train_staging_frac = frac;
        core::ExperimentOptions opts;
        opts.train_model = lstm;
        opts.warmup_requests = 200;
        opts.measure_requests = 1600;
        opts.measure_iterations = 10;
        opts.min_measure_s = 0.03;
        auto idle = core::runAtLoad(cfg, 0.0, opts);
        auto mid = core::runAtLoad(cfg, 0.4, opts);
        return Row{static_cast<double>(cfg.stagingBytes()) / (1 << 20),
                   idle.training_tops, mid.training_tops, mid.p99_ms};
    });

    for (std::size_t i = 0; i < fracs.size(); ++i) {
        table.addRow({bench::num(fracs[i] * 100, 1) + "%",
                      bench::num(rows[i].capacity_mib, 2),
                      bench::num(rows[i].idle_tops, 1),
                      bench::num(rows[i].mid_tops, 1),
                      bench::num(rows[i].mid_p99, 2)});
    }
    table.print(std::cout);

    std::printf(
        "\nReading: one tile instruction's streamed operands (the m "
        "weight tiles plus the\nactivation tile) are ~0.3 MiB on this "
        "design, so below ~0.5%% the staging\nbuffer cannot hold even "
        "one instruction and training cannot run at all. From\n~1-2%% "
        "on, throughput is flat: the paper's <2%% share claim holds "
        "with a few\ntile sets of pipelining headroom, and the "
        "inference tail never depends on it.\n");
    harness.finish();
    return 0;
}

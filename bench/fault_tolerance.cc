/**
 * @file
 * Fault-tolerance characterisation of the Equinox_500us design point:
 * how availability, inference tail latency, and co-located training
 * progress degrade as DRAM bit errors, host-link losses, and dispatcher
 * hangs are injected -- and how much of that degradation each recovery
 * mechanism (ECC, retry/backoff, watchdog reset, checkpoint/rollback)
 * buys back.
 *
 * Three sweeps:
 *   1. fault severity x fixed recovery stack (the headline table),
 *   2. recovery policy x a fixed storm of uncorrectable DRAM errors
 *      (checkpoint interval bounds the training iterations lost),
 *   3. host-link loss probability under retry/backoff (drops recover
 *      without livelock until the retry budget is truly spent).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

using namespace equinox;

namespace
{

core::ExperimentOptions
baseOptions()
{
    core::ExperimentOptions opts;
    opts.train_model = workload::DnnModel::lstm2048();
    opts.warmup_requests = 200;
    opts.measure_requests = 1200;
    opts.min_measure_s = 0.05;
    opts.max_sim_s = 5.0;
    return opts;
}

std::uint64_t
recoveries(const stats::FaultStats &fs)
{
    return fs.recoveryEvents();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fault_tolerance",
                           "Fault tolerance",
                           "availability, tail latency and training "
                           "progress under injected faults");
    const std::size_t jobs = harness.jobs();

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8, jobs);

    // ------------------------------------------------------------------
    bench::section("1. fault severity (full recovery stack: ECC + "
                   "retry/backoff + watchdog + checkpoint every 10 it)");
    {
        struct Severity
        {
            const char *label;
            double bit_rate;   // DRAM bit errors per transferred bit
            double drop_prob;  // host-link drop probability
            double hang_rate;  // dispatcher hangs per second
        };
        const Severity levels[] = {
            {"none", 0.0, 0.0, 0.0},
            {"low", 1e-9, 1e-4, 20.0},
            {"moderate", 1e-8, 1e-3, 100.0},
            {"severe", 1e-7, 1e-2, 400.0},
        };

        stats::Table table({"severity", "avail", "p99 (ms)",
                            "train T (TOp/s)", "faults", "recoveries",
                            "ECC corr", "shed"});
        const std::vector<Severity> level_vec(std::begin(levels),
                                              std::end(levels));
        auto results = parallelMap(jobs, level_vec,
                                   [&](const Severity &lv) {
            auto opts = baseOptions();
            opts.fault_plan.dram_bit_error_rate = lv.bit_rate;
            opts.fault_plan.host_drop_prob = lv.drop_prob;
            opts.fault_plan.host_corrupt_prob = lv.drop_prob / 2.0;
            opts.fault_plan.mmu_hang_rate_per_s = lv.hang_rate;
            return core::runAtLoad(cfg, 0.5, opts);
        });
        for (std::size_t i = 0; i < level_vec.size(); ++i) {
            const auto &r = results[i];
            const auto &fs = r.sim.faults;
            table.addRow({level_vec[i].label,
                          bench::num(r.sim.availability, 4),
                          bench::num(r.p99_ms, 2),
                          bench::num(r.training_tops, 2),
                          std::to_string(fs.totalFaults()),
                          std::to_string(recoveries(fs)),
                          std::to_string(fs.dram_corrected),
                          std::to_string(fs.shed_requests)});
        }
        table.print(std::cout);
        harness.recordSweep("severity", results);
    }

    // ------------------------------------------------------------------
    bench::section("2. recovery policy under a fixed storm of "
                   "uncorrectable DRAM errors (training only)");
    {
        struct Policy
        {
            const char *label;
            bool watchdog;
            unsigned ckpt_interval; // 0 = checkpoints disabled
        };
        const Policy policies[] = {
            {"no watchdog, no checkpoint", false, 0},
            {"watchdog, no checkpoint", true, 0},
            {"watchdog + checkpoint/50", true, 50},
            {"watchdog + checkpoint/10", true, 10},
            {"watchdog + checkpoint/2", true, 2},
        };

        stats::Table table({"policy", "avail", "iterations", "committed",
                            "rollbacks", "lost it", "resets"});
        const std::vector<Policy> policy_vec(std::begin(policies),
                                             std::end(policies));
        auto results = parallelMap(jobs, policy_vec,
                                   [&](const Policy &p) {
            auto opts = baseOptions();
            opts.measure_iterations = 60;
            opts.fault_plan.watchdog.enabled = p.watchdog;
            opts.fault_plan.checkpoint.interval_iterations =
                p.ckpt_interval;
            opts.fault_plan.mmu_hang_rate_per_s = 30.0;
            // A deterministic burst of detected-uncorrectable errors.
            for (double at : {0.02, 0.05, 0.08, 0.11}) {
                opts.fault_plan.scheduled.push_back(
                    {at, fault::FaultKind::DramUncorrectable});
            }
            return core::runAtLoad(cfg, 0.0, opts);
        });
        for (std::size_t i = 0; i < policy_vec.size(); ++i) {
            const auto &r = results[i];
            const auto &fs = r.sim.faults;
            table.addRow({policy_vec[i].label,
                          bench::num(r.sim.availability, 4),
                          std::to_string(r.sim.training_iterations),
                          std::to_string(
                              r.sim.committed_training_iterations),
                          std::to_string(fs.rollbacks),
                          std::to_string(fs.lost_training_iterations),
                          std::to_string(fs.watchdog_resets)});
        }
        table.print(std::cout);
        std::printf("tighter checkpoint intervals bound the iterations "
                    "a rollback replays\n");
    }

    // ------------------------------------------------------------------
    bench::section("3. host-link loss under retry with exponential "
                   "backoff (budget 8, base 2 us)");
    {
        stats::Table table({"drop prob", "p99 (ms)", "drops", "retries",
                            "give-ups", "completed"});
        const std::vector<double> drops = {0.0, 1e-3, 1e-2, 5e-2, 2e-1};
        auto results = parallelMap(jobs, drops, [&](double drop) {
            auto opts = baseOptions();
            opts.fault_plan.host_drop_prob = drop;
            return core::runAtLoad(cfg, 0.5, opts);
        });
        for (std::size_t i = 0; i < drops.size(); ++i) {
            const auto &r = results[i];
            const auto &fs = r.sim.faults;
            table.addRow({bench::num(drops[i], 3),
                          bench::num(r.p99_ms, 2),
                          std::to_string(fs.host_drops),
                          std::to_string(fs.host_retries),
                          std::to_string(fs.host_give_ups),
                          std::to_string(r.sim.completed_requests)});
        }
        table.print(std::cout);
        std::printf("every drop is re-sent after jittered backoff; "
                    "give-ups stay near zero until loss is extreme\n");
    }

    harness.finish();
    return 0;
}

/**
 * @file
 * Overload-resilience characterisation of the Equinox_500us fleet: the
 * control plane (admission, retry budgets, hedging, circuit breakers)
 * against seeded chaos scenarios, versus the shed-only baseline.
 *
 * Four sections:
 *   1. the acceptance scenario: flash crowd + fleet-wide blackout +
 *      latency storms at equal offered load, shed-only baseline vs the
 *      full control plane -- inference availability and goodput must
 *      come out strictly higher with the control plane on,
 *   2. admission policies side by side under a flash crowd,
 *   3. retry budget + breakers riding out replica churn,
 *   4. hedging against latency skew.
 *
 * Headline numbers land in BENCH_overload_resilience.json under
 * `notes.*`; the full per-point counters go to the metrics snapshot
 * `resilience.*` sections (EXPERIMENTS.md documents both).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "cluster/sweep.hh"
#include "core/equinox.hh"
#include "fault/chaos_plan.hh"

using namespace equinox;

namespace
{

constexpr double kHorizonS = 0.25;
constexpr std::size_t kReplicas = 4;
constexpr double kLoad = 0.8;
constexpr double kBackgroundFraction = 0.3;
// SLO for goodput accounting: requests retired within this wall time
// count, the rest are waste. Batching floors the latency near ~1 ms at
// this design point, so 8 ms separates "healthy" from "backlogged".
constexpr double kDeadlineS = 8e-3;

core::ExperimentOptions
baseOptions(std::size_t jobs)
{
    core::ExperimentOptions opts;
    opts.train_model = workload::DnnModel::lstm2048();
    opts.warmup_requests = 100;
    // Measure the whole chaos horizon: the interesting windows sit
    // mid-run, so the measured window must not close early.
    opts.measure_requests = 1u << 30;
    opts.min_measure_s = kHorizonS;
    opts.max_sim_s = kHorizonS;
    opts.jobs = jobs;
    return opts;
}

/** The shed-only baseline: priority tags and the deadline for equal
 *  accounting, every resilience mechanism off. */
cluster::ResilienceSpec
baselineSpec(Tick deadline_cycles)
{
    cluster::ResilienceSpec rs;
    rs.admission.policy = cluster::AdmissionPolicy::None;
    rs.admission.background_fraction = kBackgroundFraction;
    rs.admission.deadline_cycles = deadline_cycles;
    return rs;
}

/** The full control plane. */
cluster::ResilienceSpec
resilientSpec(Tick deadline_cycles, double frequency_hz)
{
    cluster::ResilienceSpec rs = baselineSpec(deadline_cycles);
    rs.admission.policy = cluster::AdmissionPolicy::PriorityShed;
    // Background sheds as soon as the fleet backs up; inference only
    // at an extreme backlog, so admission never spends inference
    // availability that queueing could have preserved.
    rs.admission.background_watermark = 2.0;
    rs.admission.inference_watermark = 1e6;
    rs.retry.enabled = true;
    rs.retry.max_attempts = 6;
    // Budget sized Finagle-style at ~20% of the run's request volume:
    // enough to replay a fleet-wide blackout's arrivals, still a hard
    // bound against retry storms.
    rs.retry.max_budget = 65536.0;
    rs.retry.budget_ratio = 0.2;
    rs.retry.base_backoff_cycles =
        static_cast<Tick>(1e-3 * frequency_hz); // 1 ms, doubling
    rs.retry.backoff_multiplier = 2.0;
    rs.retry.jitter_frac = 0.25;
    // Hedge-after-p99: duplicate any dispatch whose predicted latency
    // lands beyond the recent window's p99.
    rs.hedge.enabled = true;
    rs.hedge.latency_factor = 1.0;
    rs.hedge.window = 256;
    rs.hedge.min_samples = 64;
    rs.hedge.max_hedge_fraction = 0.01;
    rs.breaker.enabled = true;
    rs.breaker.trip_failures = 4;
    rs.breaker.probe_interval_cycles =
        static_cast<Tick>(0.2e-3 * frequency_hz);
    rs.breaker.cooldown_cycles =
        static_cast<Tick>(0.5e-3 * frequency_hz);
    rs.breaker.halfopen_probes = 2;
    rs.shed_training_under_overload = true;
    rs.training_shed_backlog = 4.0;
    return rs;
}

std::string
pct(double v)
{
    return bench::num(v * 100.0, 2) + "%";
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(
        argc, argv, "overload_resilience", "Overload resilience",
        "admission control, retry budgets, hedging, and circuit "
        "breakers under seeded cluster chaos");
    const std::size_t jobs = harness.jobs();

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8, jobs);
    auto opts = baseOptions(jobs);
    auto compiled = core::compileWorkload(cfg, opts);
    const Tick deadline =
        static_cast<Tick>(kDeadlineS * cfg.frequency_hz);

    // ------------------------------------------------------------------
    bench::section(
        "1. acceptance: flash crowd + fleet blackout + storms at load " +
        bench::num(kLoad, 2) + " -- shed-only baseline vs control plane");
    {
        stats::Table table({"mode", "infer avail", "req avail",
                            "goodput (req/s)", "deadline met",
                            "p99 (ms)", "shed", "retried", "hedged",
                            "breaker opens"});
        auto runMode = [&](const char *mode,
                           const cluster::ResilienceSpec &rspec) {
            cluster::ClusterSpec cspec;
            cspec.replicas = kReplicas;
            cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
            cspec.train_replicas = 2;
            cspec.resilience = rspec;
            cspec.chaos =
                fault::chaosScenario("flash_crowd_outage", kHorizonS);
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(kLoad, opts, compiled);
            const auto &s = r.resilience;
            table.addRow({mode, pct(r.inference_availability),
                          pct(r.request_availability),
                          bench::num(r.goodput_rps, 0),
                          std::to_string(r.deadline_met),
                          bench::num(r.p99_latency_s * 1e3, 3),
                          std::to_string(s.totalShed()),
                          std::to_string(s.retry_recovered),
                          std::to_string(s.hedges_issued),
                          std::to_string(s.breaker_opens)});
            harness.recordClusterPoint(r);
            core::addResiliencePoint(harness.metrics(), mode, r);
            return r;
        };
        auto base = runMode("shed_only", baselineSpec(deadline));
        auto resilient = runMode(
            "control_plane", resilientSpec(deadline, cfg.frequency_hz));
        table.print(std::cout);

        double avail_gain =
            resilient.inference_availability - base.inference_availability;
        double goodput_gain = base.goodput_rps > 0.0
                                  ? resilient.goodput_rps /
                                            base.goodput_rps -
                                        1.0
                                  : 0.0;
        std::printf("control plane: %+.2f pp inference availability, "
                    "%+.1f%% goodput at equal offered load%s\n",
                    avail_gain * 100.0, goodput_gain * 100.0,
                    (avail_gain > 0.0 && goodput_gain > 0.0)
                        ? ""
                        : "  ** REGRESSION **");
        harness.note("baseline_inference_availability",
                     base.inference_availability);
        harness.note("resilient_inference_availability",
                     resilient.inference_availability);
        harness.note("baseline_goodput_rps", base.goodput_rps);
        harness.note("resilient_goodput_rps", resilient.goodput_rps);
        harness.note("inference_availability_gain", avail_gain);
        harness.note("goodput_gain_frac", goodput_gain);
    }

    // ------------------------------------------------------------------
    bench::section("2. admission policies under a flash crowd (no "
                   "outage), load " + bench::num(kLoad, 2));
    {
        stats::Table table({"admission", "infer avail", "goodput (req/s)",
                            "shed rate", "shed queue", "shed bg",
                            "shed infer", "deadline missed", "p99 (ms)"});
        std::vector<cluster::ClusterPointResult> points;
        for (auto policy : cluster::allAdmissionPolicies()) {
            cluster::ResilienceSpec rs = baselineSpec(deadline);
            rs.admission.policy = policy;
            rs.admission.rate_factor = 1.0;
            rs.admission.burst = 64.0;
            rs.admission.target_backlog = 8.0;
            rs.admission.interval_cycles =
                static_cast<Tick>(0.5e-3 * cfg.frequency_hz);
            rs.admission.background_watermark = 2.0;
            rs.admission.inference_watermark = 16.0;
            cluster::ClusterSpec cspec;
            cspec.replicas = kReplicas;
            cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
            cspec.resilience = rs;
            cspec.chaos = fault::chaosScenario("flash_crowd", kHorizonS);
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(kLoad, opts, compiled);
            const auto &a = r.resilience.admission;
            table.addRow({cluster::admissionPolicyName(policy),
                          pct(r.inference_availability),
                          bench::num(r.goodput_rps, 0),
                          std::to_string(a.shed_rate_limited),
                          std::to_string(a.shed_queue),
                          std::to_string(a.shed_background),
                          std::to_string(a.shed_inference),
                          std::to_string(a.deadline_missed),
                          bench::num(r.p99_latency_s * 1e3, 3)});
            core::addResiliencePoint(
                harness.metrics(),
                std::string("admission_") +
                    cluster::admissionPolicyName(policy),
                r);
            points.push_back(std::move(r));
        }
        table.print(std::cout);
        std::printf("priority shedding steers the overload onto "
                    "background work; CoDel holds the backlog near "
                    "target\n");
        harness.recordClusterSweep("admission_policies", points);
    }

    // ------------------------------------------------------------------
    bench::section("3. retry budget + breakers across a fleet-wide "
                   "blackout (rack_blackout), load 0.7");
    {
        stats::Table table({"mode", "req avail", "outage shed",
                            "retried ok", "retry shed",
                            "budget dry", "breaker opens", "p99 (ms)"});
        for (bool resilient : {false, true}) {
            cluster::ResilienceSpec rs = baselineSpec(deadline);
            if (resilient) {
                rs = resilientSpec(deadline, cfg.frequency_hz);
                rs.admission.policy = cluster::AdmissionPolicy::None;
                rs.hedge.enabled = false;
            }
            cluster::ClusterSpec cspec;
            cspec.replicas = kReplicas;
            cspec.policy = cluster::RoutingPolicy::RoundRobin;
            cspec.resilience = rs;
            cspec.chaos =
                fault::chaosScenario("rack_blackout", kHorizonS);
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(0.7, opts, compiled);
            const auto &s = r.resilience;
            table.addRow({resilient ? "retries+breakers" : "shed_only",
                          pct(r.request_availability),
                          std::to_string(s.outage_shed),
                          std::to_string(s.retry_recovered),
                          std::to_string(s.retry_shed),
                          std::to_string(s.retry_budget_exhausted),
                          std::to_string(s.breaker_opens),
                          bench::num(r.p99_latency_s * 1e3, 3)});
            core::addResiliencePoint(
                harness.metrics(),
                resilient ? "blackout_resilient" : "blackout_baseline",
                r);
            harness.recordClusterPoint(r);
        }
        table.print(std::cout);
        std::printf("backoff spans the blackout, so bounded retries "
                    "recover what the shed-only router drops\n");
    }

    // ------------------------------------------------------------------
    bench::section("4. hedging against churn-induced queue skew, "
                   "round-robin routing, load 0.7");
    {
        stats::Table table({"mode", "hedges", "hedge wins", "p99 (ms)",
                            "goodput (req/s)"});
        for (bool hedged : {false, true}) {
            cluster::ResilienceSpec rs = baselineSpec(deadline);
            rs.hedge.enabled = hedged;
            rs.hedge.latency_factor = 1.0;
            rs.hedge.window = 256;
            rs.hedge.min_samples = 64;
            cluster::ClusterSpec cspec;
            cspec.replicas = kReplicas;
            // Round-robin keeps feeding deep queues after an outage
            // shifts load, which is exactly the estimate skew hedging
            // exists to cover.
            cspec.policy = cluster::RoutingPolicy::RoundRobin;
            cspec.resilience = rs;
            cspec.chaos =
                fault::chaosScenario("replica_churn", kHorizonS);
            cluster::Cluster fleet(cfg, cspec);
            auto r = fleet.run(0.7, opts, compiled);
            table.addRow({hedged ? "hedged" : "unhedged",
                          std::to_string(r.resilience.hedges_issued),
                          std::to_string(r.resilience.hedge_wins),
                          bench::num(r.p99_latency_s * 1e3, 3),
                          bench::num(r.goodput_rps, 0)});
            core::addResiliencePoint(harness.metrics(),
                                     hedged ? "churn_hedged"
                                            : "churn_unhedged",
                                     r);
            harness.recordClusterPoint(r);
        }
        table.print(std::cout);
        std::printf("hedges fire on transient estimate skew; first-wins "
                    "accounting credits the faster copy\n");
    }

    harness.finish();
    return 0;
}

/**
 * @file
 * Reproduces Table 3: per-component area and power of Equinox_500us,
 * plus the controller (<1%) and uniform-encoding (13% power / 4% area)
 * overhead claims.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "table3_synthesis", "Table 3",
                           "Area and power breakdown for Equinox_500us");

    auto cfg = core::presetConfig(core::Preset::Us500,
                                  arith::Encoding::Hbfp8,
                                  harness.jobs());
    auto rep = synth::synthesize(cfg);

    struct PaperRow
    {
        const char *name;
        double area, power;
    };
    const PaperRow paper[] = {
        {"MMU", 185.60, 36.84},
        {"DRAM Interface", 46.90, 28.60},
        {"SIMD Unit", 13.43, 10.97},
        {"Weight Buffer", 45.96, 4.28},
        {"Activation Buffer", 18.27, 1.07},
        {"Request Dispatcher", 0.79, 0.20},
        {"Instruction Dispatcher", 0.49, 0.14},
        {"Others", 6.39, 3.77},
    };

    stats::Table table({"Component", "Area (mm2)", "Power (W)",
                        "paper: Area", "Power"});
    for (const auto &row : paper) {
        const auto &c = rep.component(row.name);
        table.addRow({row.name, bench::num(c.area_mm2, 2),
                      bench::num(c.power_w, 2), bench::num(row.area, 2),
                      bench::num(row.power, 2)});
    }
    table.addSeparator();
    table.addRow({"Total", bench::num(rep.total_area, 2),
                  bench::num(rep.total_power, 2), "313.85", "85.91"});
    table.print(std::cout);

    bench::section("overhead headlines");
    std::printf("  controller (request+instruction dispatchers): "
                "%.2f%% area, %.2f%% power (paper: <1%%)\n",
                rep.controller_area_frac * 100,
                rep.controller_power_frac * 100);
    std::printf("  uniform-encoding overhead (SIMD unit): %.1f%% area, "
                "%.1f%% power (paper: 4%% / 13%%)\n",
                rep.encoding_area_frac * 100,
                rep.encoding_power_frac * 100);

    bench::section("bfloat16 datapath comparison (same constraint)");
    auto bcfg = core::presetConfig(core::Preset::Us500,
                                   arith::Encoding::Bfloat16,
                                   harness.jobs());
    auto brep = synth::synthesize(bcfg);
    auto hd = core::presetDesign(core::Preset::Us500,
                                 arith::Encoding::Hbfp8);
    auto bd = core::presetDesign(core::Preset::Us500,
                                 arith::Encoding::Bfloat16);
    std::printf("  hbfp8:    %6.1f TOp/s in %6.1f W (MMU %5.1f W)\n",
                hd.throughput_ops / 1e12, rep.total_power,
                rep.component("MMU").power_w);
    std::printf("  bfloat16: %6.1f TOp/s in %6.1f W (MMU %5.1f W)\n",
                bd.throughput_ops / 1e12, brep.total_power,
                brep.component("MMU").power_w);
    harness.finish();
    return 0;
}

/**
 * @file
 * Reproduces Figure 2: hbfp8 vs fp32 convergence.
 *
 * The paper shows (a) ResNet50/ImageNet validation error and (b)
 * BERT/Wikipedia validation perplexity; neither dataset ships offline,
 * so per the substitution policy we run the identical comparison --
 * the same SGD loop with the matrix arithmetic swapped between fp32,
 * bfloat16 and hbfp8 -- on two synthetic tasks with the same metric
 * structure: an image-like classification task (validation error) and a
 * language-like next-token task (validation perplexity). The claim under
 * test is the paper's: hbfp8 tracks fp32's convergence trajectory.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "core/equinox.hh"
#include "nn/datasets.hh"
#include "nn/rnn.hh"

namespace
{

using namespace equinox;

void
runTask(const nn::Dataset &data, const nn::TrainConfig &cfg,
        bool report_perplexity, const char *title)
{
    bench::section(title);
    const arith::Encoding encodings[] = {arith::Encoding::Fp32,
                                         arith::Encoding::Bfloat16,
                                         arith::Encoding::Hbfp8};
    std::vector<nn::TrainHistory> histories;
    for (auto enc : encodings) {
        auto engine = arith::makeGemmEngine(enc);
        histories.push_back(nn::trainClassifier(data, *engine, cfg));
    }

    std::vector<std::string> headers{"epoch"};
    for (auto enc : encodings)
        headers.push_back(arith::encodingName(enc));
    stats::Table table(headers);
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
        if (e % 2 && e + 1 != cfg.epochs)
            continue;
        std::vector<std::string> row{std::to_string(e + 1)};
        for (const auto &h : histories) {
            double v = report_perplexity ? h[e].valid_perplexity
                                         : h[e].valid_error * 100.0;
            row.push_back(bench::num(v, report_perplexity ? 2 : 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    double fp32_final = report_perplexity
                            ? histories[0].back().valid_perplexity
                            : histories[0].back().valid_error;
    double hbfp_final = report_perplexity
                            ? histories[2].back().valid_perplexity
                            : histories[2].back().valid_error;
    std::printf("final %s: fp32 %.3f vs hbfp8 %.3f (ratio %.2f)\n",
                report_perplexity ? "perplexity" : "error", fp32_final,
                hbfp_final,
                hbfp_final / std::max(fp32_final, 1e-9));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);
    // The convergence study is serial by nature (three encodings train
    // the same SGD trajectory back to back); the harness still records
    // the artefact's wall-clock trajectory.
    bench::Harness harness(argc, argv, "fig2_convergence", "Figure 2",
                           "Convergence of hbfp8 vs fp32 (and bfloat16) "
                           "under identical SGD");

    {
        // (a) image-like classification: validation error per epoch.
        nn::ClusterDataset data(8, 24, 2048, 1024, 0.35, 1234);
        nn::TrainConfig cfg;
        cfg.epochs = 20;
        cfg.batch_size = 64;
        cfg.hidden_dims = {96, 48};
        cfg.sgd.learning_rate = 0.08;
        cfg.sgd.decay_epochs = {12, 17};
        runTask(data, cfg, false,
                "(a) validation error %, image-like classification "
                "(stand-in for ResNet50/ImageNet)");
    }
    {
        // (b) language-like next-token prediction: perplexity per epoch.
        nn::MarkovTextDataset data(64, 3, 3072, 1024, 2.5, 4321);
        nn::TrainConfig cfg;
        cfg.epochs = 15;
        cfg.batch_size = 64;
        cfg.hidden_dims = {96};
        cfg.hidden_act = nn::Activation::Relu;
        cfg.sgd.learning_rate = 0.05;
        cfg.sgd.decay_epochs = {10, 13};
        runTask(data, cfg, true,
                "(b) validation perplexity, language-like task "
                "(stand-in for BERT/Wikipedia)");
        std::printf("source entropy floor: perplexity %.2f\n",
                    std::exp(data.sourceEntropy()));
    }

    {
        // (c) recurrent sequence classification trained with BPTT --
        // the workload family Equinox actually trains (LSTMs); the
        // identical Elman/BPTT loop runs in each arithmetic.
        bench::section("(c) validation error %, recurrent sequence task "
                       "(BPTT, Elman cell)");
        nn::ChainSequenceDataset data(4, 12, 16, 1536, 512, 2.0, 77);
        nn::TrainConfig cfg;
        cfg.epochs = 10;
        cfg.batch_size = 32;
        cfg.hidden_dims = {48};
        cfg.sgd.learning_rate = 0.12;
        cfg.sgd.decay_epochs = {7, 9};

        const arith::Encoding encodings[] = {arith::Encoding::Fp32,
                                             arith::Encoding::Bfloat16,
                                             arith::Encoding::Hbfp8};
        std::vector<nn::TrainHistory> histories;
        for (auto enc : encodings) {
            auto engine = arith::makeGemmEngine(enc);
            histories.push_back(
                nn::trainSequenceClassifier(data, *engine, cfg));
        }
        stats::Table table({"epoch", "fp32", "bfloat16", "hbfp8"});
        for (std::size_t e = 0; e < cfg.epochs; ++e) {
            std::vector<std::string> row{std::to_string(e + 1)};
            for (const auto &h : histories)
                row.push_back(bench::num(h[e].valid_error * 100, 1));
            table.addRow(row);
        }
        table.print(std::cout);
        std::printf("final error: fp32 %.3f vs hbfp8 %.3f\n",
                    histories[0].back().valid_error,
                    histories[2].back().valid_error);
    }

    std::printf("\nShape check: the hbfp8 trajectory tracks fp32 closely "
                "in all three tasks, as\nthe paper reports for ResNet50 "
                "and BERT.\n");
    harness.finish();
    return 0;
}

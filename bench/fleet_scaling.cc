/**
 * @file
 * Fleet-scale serving characterisation: hierarchical sharded routing
 * and SLO autoscaling from 8 to 1024 replicas.
 *
 * Four sections:
 *   1. hierarchical scale-out: replicas {8, 64, 256, 1024} with
 *      sqrt-ish shard fan-out at a fixed fraction of aggregate
 *      capacity (the headline scaling table; the 64-replica linear
 *      scaling efficiency lands in notes.scaling_efficiency_64),
 *   2. the 1024-replica fleet under the flash-crowd traffic mix --
 *      the full hierarchy, thinning and per-shard merge at fleet
 *      scale (wall seconds in notes.flash_crowd_1024_wall_s),
 *   3. the SLO autoscaler tracking a diurnal cycle against a 2x
 *      steady-state p99 target (notes.slo_p99_ratio,
 *      notes.over_provision_frac),
 *   4. the built-in traffic mixes on a fixed fleet.
 *
 * The chip design point here is deliberately small (the event-kernel
 * micro design, not Equinox_500us): the subject under test is the
 * routing hierarchy, the autoscaler, and the merge layers, and a
 * 1024-replica point must fit a single-core wall budget.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "cluster/sweep.hh"
#include "core/equinox.hh"
#include "fault/traffic_mix.hh"

using namespace equinox;

namespace
{

/** Small design point: 1024 replica sims must fit one core. */
sim::AcceleratorConfig
fleetChip()
{
    sim::AcceleratorConfig cfg;
    cfg.name = "fleet_micro";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

/**
 * Big enough that the fleet's aggregate request rate stays well below
 * the candidate stream's one-per-tick ceiling even at 1024 replicas
 * (service ~4k cycles, so 1024 replicas at load 0.7 offer ~0.17
 * candidates/tick); small enough that a 1024-replica point is a
 * fraction of a second of wall time.
 */
workload::DnnModel
fleetModel()
{
    workload::DnnModel model;
    model.name = "fleet_rnn";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 256;
    model.rnn.steps = 8;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/**
 * Cluster::run splits warmup/measure quotas evenly across replicas, so
 * the totals must scale with the fleet: a fixed total at 1024 replicas
 * would leave each replica measuring a single request over a degenerate
 * window. 4 warmup + 48 measured per replica at every size keeps the
 * per-replica measurement identical, which is what makes the scaling
 * efficiency column comparable across fleet sizes.
 */
core::ExperimentOptions
fleetOptions(std::size_t jobs, std::size_t replicas)
{
    core::ExperimentOptions opts;
    opts.model = fleetModel();
    opts.train_model = fleetModel();
    opts.train_batch = 16;
    opts.warmup_requests = 4 * replicas;
    opts.measure_requests = 48 * replicas;
    opts.seed = 21;
    // The router pre-routes the candidate stream over the whole
    // horizon for every replica: 8 ms of simulated time fits ~110
    // arrivals per replica at load 0.7, enough to fill the measured
    // quota with queueing headroom.
    opts.max_sim_s = 0.008;
    opts.jobs = jobs;
    return opts;
}

double
wallSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** recordClusterPoint + export under "fleet.<label>". */
void
recordFleet(bench::Harness &harness, const std::string &label,
            const std::vector<cluster::ClusterPointResult> &points)
{
    for (const auto &r : points)
        harness.recordClusterPoint(r);
    core::addFleetSweep(harness.metrics(), label, points);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bench::Harness harness(argc, argv, "fleet_scaling", "Fleet scale-out",
                           "hierarchical sharded routing and SLO "
                           "autoscaling from 8 to 1024 replicas");
    const std::size_t jobs = harness.jobs();

    auto cfg = fleetChip();
    auto compiled = core::compileWorkload(cfg, fleetOptions(jobs, 8));

    // ------------------------------------------------------------------
    bench::section("1. hierarchical scale-out: replicas x shards at "
                   "load 0.7 of aggregate capacity");
    {
        stats::Table table({"replicas", "shards", "agg infer (TOp/s)",
                            "efficiency", "p99 (ms)", "shard reroutes",
                            "wall (s)"});
        std::vector<cluster::ClusterPointResult> points;
        double base_tops = 0.0;
        for (std::size_t replicas : {8, 64, 256, 1024}) {
            cluster::ClusterSpec spec;
            spec.replicas = replicas;
            // Round-robin at both tiers for the scaling headline: it
            // spreads the saturated candidate stream evenly, so the
            // table isolates hierarchy overhead from policy skew (JSQ
            // under saturation concentrates on low indices -- equally
            // so through the flat router; see the differential suite).
            spec.policy = cluster::RoutingPolicy::RoundRobin;
            spec.fleet.shard_policy = cluster::RoutingPolicy::RoundRobin;
            spec.fleet.shards = std::max<std::size_t>(1, replicas / 32);
            spec.train_replicas = std::max<std::size_t>(1, replicas / 8);
            cluster::Cluster fleet(cfg, spec);
            auto opts = fleetOptions(jobs, replicas);
            auto t0 = std::chrono::steady_clock::now();
            auto r = fleet.run(0.7, opts, compiled);
            double wall = wallSince(t0);
            if (replicas == 8)
                base_tops = r.aggregate_inference_tops;
            // Linear-scaling efficiency vs the 8-replica baseline.
            double efficiency =
                base_tops > 0.0
                    ? r.aggregate_inference_tops /
                          (base_tops *
                           (static_cast<double>(replicas) / 8.0))
                    : 0.0;
            table.addRow({std::to_string(replicas),
                          std::to_string(spec.fleet.shards),
                          bench::num(r.aggregate_inference_tops, 3),
                          bench::num(efficiency, 3) + "x",
                          bench::num(r.p99_latency_s * 1e3, 3),
                          std::to_string(r.shard_rerouted),
                          bench::num(wall, 2)});
            if (replicas == 64)
                harness.note("scaling_efficiency_64", efficiency);
            if (replicas == 1024) {
                harness.note("scaleout_1024_wall_s", wall);
                harness.note("scaleout_1024_completed",
                             r.completed_requests);
            }
            points.push_back(std::move(r));
        }
        table.print(std::cout);
        std::printf("two-level routing keeps aggregate throughput "
                    "near-linear to 1024 replicas\n");
        recordFleet(harness, "scaleout", points);
    }

    // ------------------------------------------------------------------
    bench::section("2. 1024 replicas under the flash-crowd traffic "
                   "mix (32 shards)");
    {
        auto opts = fleetOptions(jobs, 1024);
        cluster::ClusterSpec spec;
        spec.replicas = 1024;
        spec.policy = cluster::RoutingPolicy::JoinShortestQueue;
        spec.fleet.shards = 32;
        spec.fleet.traffic =
            fault::trafficScenario("flash_crowd", opts.max_sim_s);
        cluster::Cluster fleet(cfg, spec);
        auto t0 = std::chrono::steady_clock::now();
        auto r = fleet.run(0.7, opts, compiled);
        double wall = wallSince(t0);
        std::printf("wall %.2f s: %llu candidates routed, %llu "
                    "completed, p99 %.3f ms, %llu shard-level "
                    "reroutes\n",
                    wall,
                    static_cast<unsigned long long>(
                        r.generated_candidates),
                    static_cast<unsigned long long>(
                        r.completed_requests),
                    r.p99_latency_s * 1e3,
                    static_cast<unsigned long long>(r.shard_rerouted));
        harness.note("flash_crowd_1024_wall_s", wall);
        harness.note("flash_crowd_1024_completed", r.completed_requests);
        recordFleet(harness, "flash_crowd_1024", {r});
    }

    // ------------------------------------------------------------------
    bench::section("3. SLO autoscaler: diurnal cycle against a 2x "
                   "steady-state p99 target (32 replicas, 4 shards)");
    {
        // Reference: the fixed fleet at the steady base load.
        auto slo_opts = fleetOptions(jobs, 32);
        cluster::ClusterSpec fixed;
        fixed.replicas = 32;
        fixed.policy = cluster::RoutingPolicy::JoinShortestQueue;
        fixed.fleet.shards = 4;
        auto steady =
            cluster::Cluster(cfg, fixed).run(0.3, slo_opts, compiled);
        const double target_p99_s = 2.0 * steady.p99_latency_s;

        cluster::ClusterSpec scaled = fixed;
        scaled.fleet.traffic =
            fault::trafficScenario("diurnal", slo_opts.max_sim_s);
        auto &as = scaled.fleet.autoscaler;
        as.enabled = true;
        as.min_replicas = 4;
        as.initial_replicas = 12;
        as.target_p99_s = target_p99_s;
        // Conservative packing: active replicas run at <= 0.6
        // utilization, so the autoscaled tail stays near the
        // steady-state reference instead of the saturation knee.
        as.target_utilization = 0.6;
        as.decision_interval_s = 5e-5;
        as.cooldown_s = 1e-4;
        as.warmup_s = 2e-5;
        auto r =
            cluster::Cluster(cfg, scaled).run(0.3, slo_opts, compiled);

        const auto &st = r.autoscaler;
        double ratio = target_p99_s > 0.0
                           ? r.p99_latency_s / target_p99_s
                           : 0.0;
        stats::Table table({"metric", "value"});
        table.addRow({"steady p99 (ms)",
                      bench::num(steady.p99_latency_s * 1e3, 3)});
        table.addRow(
            {"target p99 (ms)", bench::num(target_p99_s * 1e3, 3)});
        table.addRow(
            {"autoscaled p99 (ms)",
             bench::num(r.p99_latency_s * 1e3, 3)});
        table.addRow({"p99 / target", bench::num(ratio, 3)});
        table.addRow({"scale ups / downs",
                      std::to_string(st.scale_ups) + " / " +
                          std::to_string(st.scale_downs)});
        table.addRow({"active envelope",
                      std::to_string(st.min_active) + " .. " +
                          std::to_string(st.max_active)});
        table.addRow({"over-provision frac",
                      bench::num(st.over_provision_frac, 4)});
        table.print(std::cout);
        std::printf("%s: p99 %s the 2x-steady target with %.1f%% "
                    "over-provisioned replica-ticks\n",
                    ratio <= 1.0 && st.over_provision_frac <= 0.15
                        ? "SLO met"
                        : "SLO MISSED",
                    ratio <= 1.0 ? "inside" : "OUTSIDE",
                    st.over_provision_frac * 100.0);
        harness.note("slo_target_p99_ms", target_p99_s * 1e3);
        harness.note("slo_p99_ratio", ratio);
        harness.note("over_provision_frac", st.over_provision_frac);
        harness.note("autoscaler_scale_ups", st.scale_ups);
        harness.note("autoscaler_scale_downs", st.scale_downs);
        recordFleet(harness, "slo_autoscaler", {r});
    }

    // ------------------------------------------------------------------
    bench::section("4. traffic mixes on a fixed fleet (16 replicas, "
                   "4 shards, load 0.5)");
    {
        stats::Table table({"mix", "generated", "completed", "p99 (ms)",
                            "shed"});
        std::vector<cluster::ClusterPointResult> points;
        auto opts = fleetOptions(jobs, 16);
        for (const auto &name : fault::trafficScenarioNames()) {
            cluster::ClusterSpec spec;
            spec.replicas = 16;
            spec.policy = cluster::RoutingPolicy::LatencyAware;
            spec.fleet.shards = 4;
            spec.fleet.traffic =
                fault::trafficScenario(name, opts.max_sim_s);
            auto r =
                cluster::Cluster(cfg, spec).run(0.5, opts, compiled);
            table.addRow({name,
                          std::to_string(r.generated_candidates),
                          std::to_string(r.completed_requests),
                          bench::num(r.p99_latency_s * 1e3, 3),
                          std::to_string(r.router_shed)});
            points.push_back(std::move(r));
        }
        table.print(std::cout);
        std::printf("mixes reshape the same base load: diurnal swells, "
                    "crowd spikes, tenant blends\n");
        recordFleet(harness, "traffic_mixes", points);
    }

    harness.finish();
    return 0;
}

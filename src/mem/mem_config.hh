/**
 * @file
 * Configuration of the pluggable memory hierarchy: the double-buffered
 * scratchpad, the set-associative last-level cache, the DRAM write-
 * combining buffer, and the prefetch policy.
 *
 * The default-constructed configuration is the PASSTHROUGH hierarchy:
 * every component disabled, every access forwarded verbatim to the
 * backing DRAM link. Passthrough is contractually byte-identical to
 * the flat HBM timing the simulator shipped with -- the golden digest
 * suites pin that identity -- so enabling a component is always an
 * explicit opt-in per design point.
 */

#ifndef EQUINOX_MEM_MEM_CONFIG_HH
#define EQUINOX_MEM_MEM_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace equinox
{
namespace mem
{

/** Byte address in the simulated DRAM address space. */
using Addr = std::uint64_t;

/** LLC replacement policy. */
enum class Replacement
{
    Lru,       //!< true least-recently-used (per-set recency order)
    PseudoLru, //!< tree-PLRU (ways must be a power of two)
};

/** Prefetch policy plugged into the hierarchy. */
enum class PrefetchKind
{
    None,     //!< demand misses only
    NextLine, //!< sequential next-N-line prefetch on every miss
    Dcpt,     //!< delta-correlating prediction table (stride chains)
};

const char *replacementName(Replacement r);
const char *prefetchKindName(PrefetchKind k);

/** One actionable problem validate() found with a configuration. */
struct MemConfigError
{
    std::string field;   //!< the offending knob, e.g. "llc.ways"
    std::string message; //!< what is wrong and what to do about it
};

/** The training staging buffer as a banked ping-pong scratchpad. */
struct ScratchpadConfig
{
    bool enabled = false;
    /** Ping-pong depth: 2 = classic double buffering. */
    unsigned banks = 2;
    /** Capacity of one bank; total staging = banks * bank_bytes. */
    ByteCount bank_bytes = units::KiB(64);

    ByteCount totalBytes() const
    {
        return static_cast<ByteCount>(banks) * bank_bytes;
    }
};

/** Set-associative last-level cache in front of the DRAM link. */
struct LlcConfig
{
    bool enabled = false;
    ByteCount size_bytes = units::MiB(1);
    ByteCount line_bytes = 256;
    unsigned ways = 8;
    Replacement replacement = Replacement::Lru;
    /** Completion latency of a hit, in accelerator cycles. */
    Tick hit_latency_cycles = 8;

    std::uint64_t
    sets() const
    {
        ByteCount way_bytes = line_bytes * ways;
        return way_bytes ? size_bytes / way_bytes : 0;
    }
};

/** DRAM write-combining buffer (read/write buffering of SCALE-Sim). */
struct WriteBufferConfig
{
    bool enabled = false;
    /** Open combining entries before the oldest drains. */
    unsigned entries = 8;
    /** Bytes one entry combines before it drains full. */
    ByteCount entry_bytes = units::KiB(4);
};

/** Prefetcher parameters (used by NextLine and Dcpt). */
struct PrefetchConfig
{
    PrefetchKind kind = PrefetchKind::None;
    /** Lines fetched ahead per trigger. */
    unsigned degree = 2;
    /** DCPT: correlation-table entries (one per access region). */
    unsigned dcpt_entries = 64;
    /** DCPT: delta-history depth per entry. */
    unsigned dcpt_deltas = 8;
};

/** The full hierarchy: default-constructed == passthrough. */
struct MemoryHierarchyConfig
{
    ScratchpadConfig scratchpad;
    LlcConfig llc;
    WriteBufferConfig write_buffer;
    PrefetchConfig prefetch;

    /**
     * Nothing enabled: every access forwards verbatim to the backing
     * link and the hierarchy is contractually byte-identical to the
     * flat HBM path (no stats registered, no trace events emitted).
     */
    bool
    passthrough() const
    {
        return !scratchpad.enabled && !llc.enabled &&
               !write_buffer.enabled &&
               prefetch.kind == PrefetchKind::None;
    }

    /**
     * Check every knob and return one actionable error per problem
     * (empty = usable). Mirrors AcceleratorConfig::validate(), which
     * folds these in under "mem.<field>".
     */
    std::vector<MemConfigError> validate() const;
};

/** Render a validation report as "field: message" lines. */
std::string formatMemConfigErrors(const std::vector<MemConfigError> &errors);

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_MEM_CONFIG_HH

/**
 * @file
 * A DRAM write-combining buffer: stores park in aligned combining
 * entries and drain to DRAM as full bursts, so many small stores cost
 * one link transfer instead of one each (the write-buffering half of
 * SCALE-Sim's read/write DRAM buffers).
 *
 * Each entry covers one entry_bytes-aligned region. A store whose
 * address falls in an open entry's region combines into it; otherwise a
 * new entry opens, draining the oldest entry first when all slots are
 * occupied. An entry drains when full or when flushed. The conservation
 * invariant the property suite pins: every byte pushed is either still
 * resident or has drained -- bytesIn() == bytesDrained() + occupancy().
 */

#ifndef EQUINOX_MEM_WRITE_BUFFER_HH
#define EQUINOX_MEM_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "mem/mem_config.hh"

namespace equinox
{
namespace mem
{

/** FIFO write-combining buffer in front of the DRAM link. */
class WriteCombiningBuffer
{
  public:
    /** One burst leaving the buffer for DRAM. */
    struct Burst
    {
        Addr base;       //!< entry-aligned region base
        ByteCount bytes; //!< combined payload draining in this burst
    };

    explicit WriteCombiningBuffer(const WriteBufferConfig &config);

    /**
     * Park a store of @p bytes at @p addr. Spans are split at region
     * boundaries; each piece combines into its region's open entry.
     * @return the bursts this push forced out (full entries, FIFO
     *         spills) -- empty when everything combined quietly.
     */
    std::vector<Burst> push(Addr addr, ByteCount bytes);

    /** Drain every open entry (end of run / fence). */
    std::vector<Burst> flush();

    /** Bytes parked and not yet drained. */
    ByteCount occupancy() const { return bytes_in_ - bytes_drained_; }

    /** Open entries right now. */
    std::size_t openEntries() const { return entries_.size(); }

    // -- statistics -----------------------------------------------------
    std::uint64_t writes() const { return writes_; }
    /** Pushes that merged into an already-open entry. */
    std::uint64_t combines() const { return combines_; }
    /** Bursts sent to DRAM. */
    std::uint64_t drains() const { return drains_; }
    ByteCount bytesIn() const { return bytes_in_; }
    ByteCount bytesDrained() const { return bytes_drained_; }

  private:
    struct Entry
    {
        Addr base;       //!< region base (aligned to entry_bytes)
        ByteCount bytes; //!< payload combined so far
    };

    Addr regionOf(Addr addr) const
    {
        return addr / cfg.entry_bytes * cfg.entry_bytes;
    }

    Burst drainEntry(std::size_t index);

    WriteBufferConfig cfg;
    std::deque<Entry> entries_; //!< FIFO, oldest at the front

    std::uint64_t writes_ = 0;
    std::uint64_t combines_ = 0;
    std::uint64_t drains_ = 0;
    ByteCount bytes_in_ = 0;
    ByteCount bytes_drained_ = 0;
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_WRITE_BUFFER_HH

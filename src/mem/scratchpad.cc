#include "mem/scratchpad.hh"

#include <cassert>

namespace equinox
{
namespace mem
{

Scratchpad::Scratchpad(const ScratchpadConfig &config) : cfg(config)
{
    assert(cfg.banks >= 1 && cfg.bank_bytes > 0);
}

ByteCount
Scratchpad::fillHeadroom() const
{
    // The fill head may advance up to the end of the bank `banks`
    // positions past the last FULLY drained bank: a bank becomes
    // refillable only once its previous contents are completely
    // consumed, which is what keeps fill and drain on distinct
    // physical banks.
    ByteCount limit =
        (drained_ / cfg.bank_bytes + cfg.banks) * cfg.bank_bytes;
    return limit - filled_;
}

ByteCount
Scratchpad::fillArrived(ByteCount bytes)
{
    assert(bytes <= fillHeadroom() &&
           "fill overran the ping-pong headroom");
    ByteCount before_bank = filled_ / cfg.bank_bytes;
    filled_ += bytes;
    total_filled_ += bytes;
    ++fills_;
    ByteCount after_bank = filled_ / cfg.bank_bytes;
    if (after_bank != before_bank)
        bank_switches_ += after_bank - before_bank;

    // Only completed banks become consumable.
    ByteCount grantable = after_bank * cfg.bank_bytes;
    ByteCount newly = grantable - granted_;
    granted_ = grantable;

    if (occupancy() > high_water_)
        high_water_ = occupancy();
    return newly;
}

void
Scratchpad::drained(ByteCount bytes)
{
    assert(bytes <= consumable() &&
           "drain exceeded granted (completed-bank) bytes");
    drained_ += bytes;
    total_drained_ += bytes;
    ++drains_;
}

void
Scratchpad::rollback()
{
    filled_ = 0;
    granted_ = 0;
    drained_ = 0;
}

} // namespace mem
} // namespace equinox

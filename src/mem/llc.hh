/**
 * @file
 * A set-associative last-level cache model in front of the DRAM link.
 *
 * Timing-only: the cache tracks tags, not data. A demand hit completes
 * in hit_latency_cycles; a miss allocates the line (possibly evicting
 * the replacement victim) and costs a DRAM transfer, which the
 * hierarchy coalesces across contiguous missing lines. Replacement is
 * true LRU (per-line recency stamps) or tree pseudo-LRU (one bit per
 * internal node of a binary tree over the ways). Each line remembers
 * whether a prefetch brought it in, so the hierarchy can report
 * prefetch accuracy (useful prefetches / issued prefetches) and count
 * prefetched lines evicted untouched.
 */

#ifndef EQUINOX_MEM_LLC_HH
#define EQUINOX_MEM_LLC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/mem_config.hh"

namespace equinox
{
namespace mem
{

/** Tag-only set-associative cache with LRU / tree-PLRU replacement. */
class Llc
{
  public:
    explicit Llc(const LlcConfig &config);

    /** Line-granular address of @p addr. */
    Addr lineOf(Addr addr) const { return addr / cfg.line_bytes; }

    ByteCount lineBytes() const { return cfg.line_bytes; }
    Tick hitLatency() const { return cfg.hit_latency_cycles; }

    /** Line present (no state change, no stats). */
    bool contains(Addr line) const;

    /**
     * Demand access to @p line.
     * @return true on hit. A miss allocates the line, evicting the
     *         replacement victim if the set is full.
     */
    bool access(Addr line);

    /**
     * Install @p line on behalf of the prefetcher. No-op (returns
     * false) if the line is already resident -- a redundant prefetch
     * must not cost a DRAM transfer nor perturb recency.
     * @return true if the line was actually installed.
     */
    bool fillPrefetch(Addr line);

    // -- statistics -----------------------------------------------------
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t evictions() const { return evictions_; }
    /** Prefetched lines later touched by a demand access. */
    std::uint64_t prefetchUseful() const { return prefetch_useful_; }
    /** Prefetched lines evicted without a demand touch. */
    std::uint64_t prefetchUnused() const { return prefetch_unused_; }

  private:
    struct Way
    {
        bool valid = false;
        bool prefetched = false; //!< installed by prefetch, not yet used
        Addr tag = 0;
        std::uint64_t stamp = 0; //!< LRU recency (higher = more recent)
    };

    std::uint64_t setOf(Addr line) const { return line & (sets_ - 1); }
    Addr tagOf(Addr line) const { return line / sets_; }

    /** Way index of @p line in its set, or -1. */
    int findWay(std::uint64_t set, Addr tag) const;

    /** Pick the replacement victim way in @p set (set is full). */
    unsigned victimWay(std::uint64_t set) const;

    /** Update replacement state after touching @p way of @p set. */
    void touch(std::uint64_t set, unsigned way);

    /** Install @p tag into @p set, evicting if needed. */
    void install(std::uint64_t set, Addr tag, bool prefetched);

    LlcConfig cfg;
    std::uint64_t sets_;
    std::vector<Way> ways_;       //!< sets_ * cfg.ways, set-major
    std::vector<std::uint64_t> plru_; //!< per-set PLRU tree bitmask
    std::uint64_t clock_ = 0;     //!< LRU stamp source

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t prefetch_useful_ = 0;
    std::uint64_t prefetch_unused_ = 0;
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_LLC_HH

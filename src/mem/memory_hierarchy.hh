/**
 * @file
 * MemoryHierarchy: the pluggable composition of scratchpad, LLC,
 * write-combining buffer and prefetcher that the simulator's memory
 * seams call instead of the raw DRAM link.
 *
 *             read(addr)                       write(addr)
 *                 |                                 |
 *                 v                                 v
 *            +---------+   fill/refill    +------------------+
 *            |   LLC   |----------------->| write-combining  |
 *            | (+ pre- |   (coalesced     |     buffer       |
 *            | fetch)  |    miss runs)    +---------+--------+
 *            +----+----+                            | bursts
 *                 |                                 |
 *                 +-------------+   +---------------+
 *                               v   v
 *                        dram::PriorityLink (HBM)
 *
 * The scratchpad sits beside this path: the training prefetcher asks it
 * for fill headroom (the ping-pong discipline) and reports fills and
 * drains; its capacity replaces the flat staging capacity.
 *
 * PASSTHROUGH CONTRACT: with the default (all-disabled) configuration,
 * read() and write() forward to PriorityLink::transfer() exactly once
 * with the caller's arguments verbatim -- same tick, same bytes, same
 * priority, same fault pointer. The link's fault hook draws RNG per
 * transfer, so "exactly once, identical args" is what makes the
 * passthrough hierarchy byte-identical to the flat HBM path; the golden
 * digest suites pin this. Every other behaviour in this file is only
 * reachable when a component is explicitly enabled.
 */

#ifndef EQUINOX_MEM_MEMORY_HIERARCHY_HH
#define EQUINOX_MEM_MEMORY_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/link.hh"
#include "mem/llc.hh"
#include "mem/mem_config.hh"
#include "mem/mem_stats.hh"
#include "mem/prefetch.hh"
#include "mem/scratchpad.hh"
#include "mem/write_buffer.hh"

namespace equinox
{
namespace mem
{

/** The pluggable memory hierarchy in front of one DRAM link. */
class MemoryHierarchy
{
  public:
    /** @p link must outlive the hierarchy (both rebuilt per run). */
    MemoryHierarchy(const MemoryHierarchyConfig &config,
                    dram::PriorityLink *link);
    ~MemoryHierarchy();

    const MemoryHierarchyConfig &config() const { return cfg; }

    /** True when every access forwards verbatim (the identity path). */
    bool passthrough() const { return passthrough_; }

    /**
     * Read @p bytes at @p addr.
     * @return the tick the last byte is available. Passthrough: one
     *         verbatim link transfer. With the LLC enabled: hits cost
     *         hit_latency_cycles, contiguous missing lines coalesce
     *         into single link transfers, and the prefetcher may issue
     *         additional low-priority fills.
     */
    Tick read(Tick now, Addr addr, ByteCount bytes,
              dram::Priority priority, dram::TransferFault *fault);

    /**
     * Write @p bytes at @p addr. Writes bypass the LLC (no-allocate:
     * the training store stream is written once and re-read a full
     * pass later, so allocating would only evict live read data).
     * With the combining buffer enabled the store parks and the
     * caller-visible completion is immediate; forced bursts drain to
     * the link inside this call.
     */
    Tick write(Tick now, Addr addr, ByteCount bytes,
               dram::Priority priority, dram::TransferFault *fault);

    /** Drain every parked write to the link (fence / end of run). */
    Tick flushWrites(Tick now);

    // -- scratchpad seam (the training prefetcher's fill/drain port) ----
    bool hasScratchpad() const { return sp_ != nullptr; }

    /** Total scratchpad capacity (staging share when enabled). */
    ByteCount scratchpadCapacity() const;

    /**
     * Bytes the fill side may still issue: the ping-pong headroom
     * minus nothing -- callers subtract their own in-flight bytes.
     */
    ByteCount scratchpadFillHeadroom() const;

    /**
     * A fill of @p bytes landed.
     * @return bytes that just became consumable (completed banks).
     */
    ByteCount noteScratchpadFill(ByteCount bytes);

    /** Compute consumed @p bytes (fractional; a carry accumulates). */
    void noteScratchpadDrain(double bytes);

    /** A fill attempt stalled on the ping-pong headroom. */
    void noteScratchpadFillStall();

    /** Training rolled back: staged scratchpad contents are stale. */
    void rollbackScratchpad();

    // -- component access (stats, tests) ---------------------------------
    const Scratchpad *scratchpad() const { return sp_.get(); }
    const Llc *llc() const { return llc_.get(); }
    const WriteCombiningBuffer *writeBuffer() const { return wb_.get(); }
    const char *prefetcherName() const { return policy_->name(); }

    /** Transfers issued to the link by this hierarchy (run total). */
    std::uint64_t dramTransfers() const { return dram_transfers_; }
    std::uint64_t prefetchesIssued() const { return prefetch_issued_; }

    /** Snapshot every counter for SimResult / the stats registry. */
    MemStats stats() const;

  private:
    /** Forward one coalesced miss run, folding the fault report. */
    Tick missTransfer(Tick now, ByteCount bytes, dram::Priority priority,
                      dram::TransferFault *fault);

    MemoryHierarchyConfig cfg;
    dram::PriorityLink *link_;
    bool passthrough_;

    std::unique_ptr<Scratchpad> sp_;
    std::unique_ptr<Llc> llc_;
    std::unique_ptr<WriteCombiningBuffer> wb_;
    std::unique_ptr<PrefetchPolicy> policy_;

    std::vector<Addr> pf_candidates_; //!< per-read scratch, reused
    double drain_carry_ = 0.0; //!< fractional drain bytes not yet applied

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    ByteCount read_bytes_ = 0;
    ByteCount write_bytes_ = 0;
    std::uint64_t dram_transfers_ = 0;
    std::uint64_t prefetch_issued_ = 0;
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_MEMORY_HIERARCHY_HH

#include "mem/memory_hierarchy.hh"

#include <algorithm>
#include <cassert>

namespace equinox
{
namespace mem
{

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &config,
                                 dram::PriorityLink *link)
    : cfg(config), link_(link), passthrough_(config.passthrough()),
      policy_(makePrefetchPolicy(config.prefetch))
{
    assert(link_ && "hierarchy needs a backing DRAM link");
    assert(cfg.validate().empty() && "invalid hierarchy configuration");
    if (cfg.scratchpad.enabled)
        sp_ = std::make_unique<Scratchpad>(cfg.scratchpad);
    if (cfg.llc.enabled)
        llc_ = std::make_unique<Llc>(cfg.llc);
    if (cfg.write_buffer.enabled)
        wb_ = std::make_unique<WriteCombiningBuffer>(cfg.write_buffer);
}

MemoryHierarchy::~MemoryHierarchy() = default;

Tick
MemoryHierarchy::missTransfer(Tick now, ByteCount bytes,
                              dram::Priority priority,
                              dram::TransferFault *fault)
{
    ++dram_transfers_;
    if (!fault)
        return link_->transfer(now, bytes, priority);
    // The link overwrites *fault per transfer; fold so one poisoned
    // miss run in a multi-run access stays visible to the caller.
    dram::TransferFault local;
    Tick done = link_->transfer(now, bytes, priority, &local);
    fault->extra_cycles += local.extra_cycles;
    fault->failed = fault->failed || local.failed;
    fault->uncorrectable = fault->uncorrectable || local.uncorrectable;
    return done;
}

Tick
MemoryHierarchy::read(Tick now, Addr addr, ByteCount bytes,
                      dram::Priority priority, dram::TransferFault *fault)
{
    if (passthrough_) {
        // The identity path: one verbatim transfer, nothing else.
        return link_->transfer(now, bytes, priority, fault);
    }
    ++reads_;
    read_bytes_ += bytes;
    if (!llc_) {
        ++dram_transfers_;
        return link_->transfer(now, bytes, priority, fault);
    }

    ByteCount line = llc_->lineBytes();
    Addr first = addr / line;
    Addr last = (addr + (bytes ? bytes - 1 : 0)) / line;
    Tick done = now;
    ByteCount miss_run = 0;
    pf_candidates_.clear();
    for (Addr l = first; l <= last; ++l) {
        bool hit = llc_->access(l);
        policy_->onAccess(l, hit, pf_candidates_);
        if (hit) {
            done = std::max(done, now + llc_->hitLatency());
            if (miss_run) {
                done = std::max(done, missTransfer(now, miss_run,
                                                   priority, fault));
                miss_run = 0;
            }
        } else {
            miss_run += line;
        }
    }
    if (miss_run)
        done = std::max(done, missTransfer(now, miss_run, priority,
                                           fault));

    // Prefetch: install candidates not already resident, one
    // low-priority link transfer each. Prefetch faults are not the
    // demand access's problem -- a poisoned prefetch line would fault
    // on its demand re-read.
    for (Addr cand : pf_candidates_) {
        if (!llc_->fillPrefetch(cand))
            continue;
        ++prefetch_issued_;
        ++dram_transfers_;
        link_->transfer(now, line, dram::Priority::Low, nullptr);
    }
    return done;
}

Tick
MemoryHierarchy::write(Tick now, Addr addr, ByteCount bytes,
                       dram::Priority priority, dram::TransferFault *fault)
{
    if (passthrough_) {
        return link_->transfer(now, bytes, priority, fault);
    }
    ++writes_;
    write_bytes_ += bytes;
    if (!wb_) {
        ++dram_transfers_;
        return link_->transfer(now, bytes, priority, fault);
    }
    Tick done = now;
    for (const auto &burst : wb_->push(addr, bytes)) {
        done = std::max(done, missTransfer(now, burst.bytes, priority,
                                           fault));
    }
    return done;
}

Tick
MemoryHierarchy::flushWrites(Tick now)
{
    Tick done = now;
    if (!wb_)
        return done;
    for (const auto &burst : wb_->flush()) {
        done = std::max(done, missTransfer(now, burst.bytes,
                                           dram::Priority::Low, nullptr));
    }
    return done;
}

ByteCount
MemoryHierarchy::scratchpadCapacity() const
{
    return sp_ ? sp_->capacity() : 0;
}

ByteCount
MemoryHierarchy::scratchpadFillHeadroom() const
{
    return sp_ ? sp_->fillHeadroom() : 0;
}

ByteCount
MemoryHierarchy::noteScratchpadFill(ByteCount bytes)
{
    assert(sp_);
    return sp_->fillArrived(bytes);
}

void
MemoryHierarchy::noteScratchpadDrain(double bytes)
{
    if (!sp_)
        return;
    drain_carry_ += bytes;
    auto whole = static_cast<ByteCount>(drain_carry_);
    // Fractional bytes-per-cycle drains accumulate float error; never
    // let the carry overdraw what the scratchpad actually granted.
    whole = std::min(whole, sp_->consumable());
    if (whole) {
        sp_->drained(whole);
        drain_carry_ -= static_cast<double>(whole);
    }
}

void
MemoryHierarchy::noteScratchpadFillStall()
{
    if (sp_)
        sp_->noteFillStall();
}

void
MemoryHierarchy::rollbackScratchpad()
{
    if (sp_) {
        sp_->rollback();
        drain_carry_ = 0.0;
    }
}

MemStats
MemoryHierarchy::stats() const
{
    MemStats s;
    s.active = !passthrough_;
    s.reads = reads_;
    s.writes = writes_;
    s.read_bytes = read_bytes_;
    s.write_bytes = write_bytes_;
    s.dram_transfers = dram_transfers_;
    if (llc_) {
        s.llc_hits = llc_->hits();
        s.llc_misses = llc_->misses();
        s.llc_evictions = llc_->evictions();
        s.prefetch_issued = prefetch_issued_;
        s.prefetch_useful = llc_->prefetchUseful();
        s.prefetch_unused = llc_->prefetchUnused();
    }
    if (sp_) {
        s.sp_fills = sp_->fills();
        s.sp_drains = sp_->drains();
        s.sp_bank_switches = sp_->bankSwitches();
        s.sp_fill_stalls = sp_->fillStalls();
        s.sp_bytes_filled = sp_->bytesFilled();
        s.sp_bytes_drained = sp_->bytesDrained();
        s.sp_high_water = sp_->occupancyHighWater();
    }
    if (wb_) {
        s.wb_writes = wb_->writes();
        s.wb_combines = wb_->combines();
        s.wb_drains = wb_->drains();
        s.wb_bytes_in = wb_->bytesIn();
        s.wb_bytes_drained = wb_->bytesDrained();
        s.wb_occupancy = wb_->occupancy();
    }
    return s;
}

} // namespace mem
} // namespace equinox

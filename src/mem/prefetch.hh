/**
 * @file
 * Pluggable prefetch policies for the memory hierarchy. A policy
 * observes the demand line-address stream and proposes candidate lines;
 * the hierarchy filters already-resident lines, charges a low-priority
 * DRAM transfer per accepted candidate, and installs them into the LLC
 * tagged as prefetched so accuracy (useful / issued) is measurable.
 *
 * Three policies ship:
 *  - none:      demand misses only (the measurement baseline)
 *  - next_line: the classic sequential prefetcher -- on every miss,
 *               fetch the next `degree` lines
 *  - dcpt:      a delta-correlating prediction table (Grannaes et al.):
 *               per-region entries record the recent history of address
 *               deltas; when the two most recent deltas reappear
 *               earlier in the history, the deltas that followed them
 *               are replayed to predict the next addresses. Covers
 *               strided and repeating multi-stride patterns that
 *               next-line misses.
 */

#ifndef EQUINOX_MEM_PREFETCH_HH
#define EQUINOX_MEM_PREFETCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/mem_config.hh"

namespace equinox
{
namespace mem
{

/** Observes demand accesses, proposes candidate lines to prefetch. */
class PrefetchPolicy
{
  public:
    virtual ~PrefetchPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * A demand access to @p line just resolved (@p hit says how).
     * Append candidate LINE addresses to @p out -- at most the
     * configured degree; duplicates and resident lines are filtered by
     * the caller.
     */
    virtual void onAccess(Addr line, bool hit,
                          std::vector<Addr> &out) = 0;
};

/** Build the configured policy (never null; None for kind == None). */
std::unique_ptr<PrefetchPolicy> makePrefetchPolicy(
    const PrefetchConfig &cfg);

/**
 * The delta-correlating prediction table, exposed concretely so the
 * property suite can pin its table behaviour (entry reuse, delta
 * matching, replay bounds) directly.
 */
class DcptPrefetcher : public PrefetchPolicy
{
  public:
    explicit DcptPrefetcher(const PrefetchConfig &cfg);

    const char *name() const override { return "dcpt"; }
    void onAccess(Addr line, bool hit, std::vector<Addr> &out) override;

    /** Table entries currently tracking a region (for tests). */
    std::size_t liveEntries() const;

  private:
    struct Entry
    {
        bool valid = false;
        bool seeded = false; //!< saw the first access (no delta yet)
        Addr region = 0;    //!< which region this entry tracks
        Addr last_line = 0; //!< previous line accessed in the region
        std::vector<std::int64_t> deltas; //!< ring, newest at head-1
        unsigned head = 0;  //!< ring write position
        unsigned count = 0; //!< live deltas in the ring
        std::uint64_t lru = 0;

        std::int64_t deltaAt(unsigned newest_minus) const;
    };

    /** Region an address belongs to: one table entry per region. */
    Addr regionOf(Addr line) const { return line >> kRegionShift; }

    Entry &entryFor(Addr region);

    static constexpr unsigned kRegionShift = 6; //!< 64 lines per region

    PrefetchConfig cfg;
    std::vector<Entry> table;
    std::uint64_t clock_ = 0;
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_PREFETCH_HH

#include "mem/mem_config.hh"

#include <sstream>

namespace equinox
{
namespace mem
{

const char *
replacementName(Replacement r)
{
    switch (r) {
      case Replacement::Lru:
        return "lru";
      case Replacement::PseudoLru:
        return "pseudo_lru";
    }
    return "unknown";
}

const char *
prefetchKindName(PrefetchKind k)
{
    switch (k) {
      case PrefetchKind::None:
        return "none";
      case PrefetchKind::NextLine:
        return "next_line";
      case PrefetchKind::Dcpt:
        return "dcpt";
    }
    return "unknown";
}

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::vector<MemConfigError>
MemoryHierarchyConfig::validate() const
{
    std::vector<MemConfigError> errors;
    auto bad = [&errors](std::string field, auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back({std::move(field), oss.str()});
    };

    if (scratchpad.enabled) {
        if (scratchpad.banks < 2) {
            bad("scratchpad.banks",
                "a ping-pong scratchpad needs at least 2 banks so "
                "compute can drain one while DRAM fills another (got ",
                scratchpad.banks, "); use 2 for classic double "
                "buffering");
        }
        if (scratchpad.bank_bytes < 512) {
            bad("scratchpad.bank_bytes",
                "a bank must hold at least 512 B (got ",
                scratchpad.bank_bytes, "); smaller banks would rotate "
                "faster than one DRAM burst fills them");
        }
    }

    if (llc.enabled) {
        if (llc.line_bytes < 32 || !isPowerOfTwo(llc.line_bytes)) {
            bad("llc.line_bytes",
                "cache lines must be a power of two >= 32 B (got ",
                llc.line_bytes, "); the DRAM model streams 512-bit "
                "blocks, so 64-512 B lines are sensible");
        }
        if (llc.ways == 0) {
            bad("llc.ways", "associativity must be positive (got 0); "
                "use 1 for direct-mapped");
        }
        if (llc.replacement == Replacement::PseudoLru &&
            (!isPowerOfTwo(llc.ways) || llc.ways > 64)) {
            bad("llc.ways", "tree-PLRU needs a power-of-two way count "
                "<= 64 (got ", llc.ways, "); use LRU or round the "
                "ways");
        }
        std::uint64_t sets = llc.sets();
        if (sets == 0) {
            bad("llc.size_bytes",
                "cache must hold at least one set: size_bytes (",
                llc.size_bytes, ") < line_bytes * ways (",
                llc.line_bytes * llc.ways, ")");
        } else if (!isPowerOfTwo(sets)) {
            bad("llc.size_bytes",
                "size_bytes / (line_bytes * ways) must be a power of "
                "two for the set index (got ", sets, " sets); adjust "
                "size_bytes or ways");
        }
    } else if (prefetch.kind != PrefetchKind::None) {
        bad("prefetch.kind", "a prefetcher needs the LLC to fetch "
            "into: enable llc or set prefetch.kind = none (got ",
            prefetchKindName(prefetch.kind), " with llc disabled)");
    }

    if (prefetch.kind != PrefetchKind::None && prefetch.degree == 0) {
        bad("prefetch.degree", "prefetch degree must be positive; 0 "
            "lines ahead would make the prefetcher a no-op -- use "
            "kind = none for that");
    }
    if (prefetch.kind == PrefetchKind::Dcpt) {
        if (prefetch.dcpt_entries == 0) {
            bad("prefetch.dcpt_entries",
                "the DCPT correlation table needs at least one entry");
        }
        if (prefetch.dcpt_deltas < 2) {
            bad("prefetch.dcpt_deltas",
                "DCPT matches the last two deltas against the "
                "history, so the per-entry history needs depth >= 2 "
                "(got ", prefetch.dcpt_deltas, ")");
        }
    }

    if (write_buffer.enabled) {
        if (write_buffer.entries == 0) {
            bad("write_buffer.entries",
                "the write-combining buffer needs at least one open "
                "entry");
        }
        if (write_buffer.entry_bytes < 64) {
            bad("write_buffer.entry_bytes",
                "one combining entry must hold at least 64 B (got ",
                write_buffer.entry_bytes, "); smaller entries drain "
                "on nearly every store and combine nothing");
        }
    }

    return errors;
}

std::string
formatMemConfigErrors(const std::vector<MemConfigError> &errors)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i)
            oss << '\n';
        oss << "  " << errors[i].field << ": " << errors[i].message;
    }
    return oss.str();
}

} // namespace mem
} // namespace equinox

#include "mem/llc.hh"

#include <cassert>

namespace equinox
{
namespace mem
{

Llc::Llc(const LlcConfig &config)
    : cfg(config), sets_(config.sets()),
      ways_(static_cast<std::size_t>(config.sets()) * config.ways),
      plru_(config.sets(), 0)
{
    assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
}

int
Llc::findWay(std::uint64_t set, Addr tag) const
{
    const Way *base = &ways_[set * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
Llc::victimWay(std::uint64_t set) const
{
    const Way *base = &ways_[set * cfg.ways];
    if (cfg.replacement == Replacement::Lru) {
        unsigned victim = 0;
        std::uint64_t oldest = base[0].stamp;
        for (unsigned w = 1; w < cfg.ways; ++w) {
            if (base[w].stamp < oldest) {
                oldest = base[w].stamp;
                victim = w;
            }
        }
        return victim;
    }
    // Tree-PLRU: walk the binary tree from the root, following each
    // node's bit (0 = go left, 1 = go right) to the pseudo-least-
    // recently-used leaf. Nodes are heap-indexed from 1; the bitmask
    // holds one bit per internal node.
    std::uint64_t bits = plru_[set];
    unsigned node = 1;
    while (node < cfg.ways)
        node = 2 * node + ((bits >> node) & 1);
    return node - cfg.ways;
}

void
Llc::touch(std::uint64_t set, unsigned way)
{
    Way *base = &ways_[set * cfg.ways];
    base[way].stamp = ++clock_;
    if (cfg.replacement == Replacement::PseudoLru) {
        // Flip each node on the root-to-leaf path to point AWAY from
        // the touched way.
        std::uint64_t bits = plru_[set];
        unsigned node = way + cfg.ways;
        while (node > 1) {
            unsigned parent = node / 2;
            std::uint64_t away = (node & 1) ? 0 : 1; // we are the
                                                     // right child
                                                     // iff node is odd
            bits = (bits & ~(std::uint64_t{1} << parent)) |
                   (away << parent);
            node = parent;
        }
        plru_[set] = bits;
    }
}

void
Llc::install(std::uint64_t set, Addr tag, bool prefetched)
{
    Way *base = &ways_[set * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (!base[w].valid) {
            base[w].valid = true;
            base[w].tag = tag;
            base[w].prefetched = prefetched;
            touch(set, w);
            return;
        }
    }
    unsigned victim = victimWay(set);
    if (base[victim].prefetched)
        ++prefetch_unused_;
    ++evictions_;
    base[victim].tag = tag;
    base[victim].prefetched = prefetched;
    touch(set, victim);
}

bool
Llc::contains(Addr line) const
{
    return findWay(setOf(line), tagOf(line)) >= 0;
}

bool
Llc::access(Addr line)
{
    std::uint64_t set = setOf(line);
    Addr tag = tagOf(line);
    int way = findWay(set, tag);
    if (way >= 0) {
        ++hits_;
        Way &w = ways_[set * cfg.ways + way];
        if (w.prefetched) {
            w.prefetched = false;
            ++prefetch_useful_;
        }
        touch(set, static_cast<unsigned>(way));
        return true;
    }
    ++misses_;
    install(set, tag, false);
    return false;
}

bool
Llc::fillPrefetch(Addr line)
{
    std::uint64_t set = setOf(line);
    Addr tag = tagOf(line);
    if (findWay(set, tag) >= 0)
        return false;
    install(set, tag, true);
    return true;
}

} // namespace mem
} // namespace equinox

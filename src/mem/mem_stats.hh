/**
 * @file
 * A plain snapshot of the memory hierarchy's counters, taken once per
 * run and carried in SimResult's diagnostics section. Deliberately a
 * dumb aggregate: the digest fold must never see these fields, and the
 * stats/obs layer reads them through gauges, so the struct has no
 * behaviour beyond two derived ratios.
 */

#ifndef EQUINOX_MEM_MEM_STATS_HH
#define EQUINOX_MEM_MEM_STATS_HH

#include <cstdint>

#include "common/types.hh"

namespace equinox
{
namespace mem
{

/** Run-total counters of one MemoryHierarchy (all zero in passthrough). */
struct MemStats
{
    /** A non-passthrough hierarchy was active this run. */
    bool active = false;

    // -- front-door traffic ---------------------------------------------
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    ByteCount read_bytes = 0;
    ByteCount write_bytes = 0;
    /** Transfers actually issued to the DRAM link (after filtering). */
    std::uint64_t dram_transfers = 0;

    // -- LLC -------------------------------------------------------------
    std::uint64_t llc_hits = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t llc_evictions = 0;

    // -- prefetch ---------------------------------------------------------
    std::uint64_t prefetch_issued = 0;
    std::uint64_t prefetch_useful = 0;
    std::uint64_t prefetch_unused = 0;

    // -- scratchpad --------------------------------------------------------
    std::uint64_t sp_fills = 0;
    std::uint64_t sp_drains = 0;
    std::uint64_t sp_bank_switches = 0;
    std::uint64_t sp_fill_stalls = 0;
    ByteCount sp_bytes_filled = 0;
    ByteCount sp_bytes_drained = 0;
    ByteCount sp_high_water = 0;

    // -- write-combining buffer -------------------------------------------
    std::uint64_t wb_writes = 0;
    std::uint64_t wb_combines = 0;
    std::uint64_t wb_drains = 0;
    ByteCount wb_bytes_in = 0;
    ByteCount wb_bytes_drained = 0;
    ByteCount wb_occupancy = 0;

    /** Demand hit rate over all LLC accesses (0 when no accesses). */
    double
    hitRate() const
    {
        std::uint64_t total = llc_hits + llc_misses;
        return total ? static_cast<double>(llc_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Useful prefetches / issued prefetches (0 when none issued). */
    double
    prefetchAccuracy() const
    {
        return prefetch_issued
                   ? static_cast<double>(prefetch_useful) /
                         static_cast<double>(prefetch_issued)
                   : 0.0;
    }
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_MEM_STATS_HH

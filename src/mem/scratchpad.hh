/**
 * @file
 * A banked ping-pong scratchpad: the training staging buffer modelled
 * as `banks` physical banks of `bank_bytes` each, filled by DRAM and
 * drained by compute with double-buffered overlap.
 *
 * The model is a byte stream over a ring of banks, tracked by three
 * cumulative counters:
 *
 *   filled   bytes that arrived from DRAM (the fill head)
 *   granted  bytes handed to compute as consumable -- only COMPLETED
 *            banks are consumable, so granted = floor(filled/bank)*bank
 *   drained  consumable bytes compute has consumed (the drain tail)
 *
 * Two rules give the classic ping-pong discipline:
 *
 *   1. Compute drains only completed banks (the grant rule above).
 *   2. DRAM fills only banks whose previous contents are fully
 *      drained: filled + pending <= (floor(drained/bank)+banks)*bank
 *      (the fillHeadroom() bound).
 *
 * Together they imply the double-buffering invariant the property
 * suite pins: the physical bank being filled is never the physical
 * bank being drained while both are live. With banks == 2 this is
 * exactly "compute overlaps the fill of the other bank"; a depth-1
 * scratchpad degenerates to strictly alternating fill/drain phases.
 */

#ifndef EQUINOX_MEM_SCRATCHPAD_HH
#define EQUINOX_MEM_SCRATCHPAD_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/mem_config.hh"

namespace equinox
{
namespace mem
{

/** Banked double-buffered staging scratchpad. */
class Scratchpad
{
  public:
    explicit Scratchpad(const ScratchpadConfig &config);

    /** Total capacity: banks * bank_bytes. */
    ByteCount capacity() const { return cfg.totalBytes(); }

    /**
     * Bytes the fill side may still accept without touching a bank
     * that is not fully drained yet. Callers with in-flight fills must
     * subtract them from this bound before issuing more.
     */
    ByteCount fillHeadroom() const;

    /**
     * @p bytes arrived from DRAM into the fill bank(s). Must respect
     * fillHeadroom() (asserted).
     * @return bytes that just became consumable (completed banks) --
     *         0 while the current bank is still partially filled.
     */
    ByteCount fillArrived(ByteCount bytes);

    /** Compute consumed @p bytes of consumable data (asserted). */
    void drained(ByteCount bytes);

    /** Record one fill attempt stalled on the ping-pong headroom. */
    void noteFillStall() { ++fill_stalls_; }

    /** Consumable bytes granted but not yet drained. */
    ByteCount consumable() const { return granted_ - drained_; }

    /** Bytes sitting in the partially-filled (unconsumable) bank. */
    ByteCount held() const { return filled_ - granted_; }

    /** Live bytes (held + consumable). */
    ByteCount occupancy() const { return filled_ - drained_; }

    /** Physical bank the next filled byte lands in. */
    unsigned fillBank() const { return bankOf(filled_); }

    /** Physical bank the next drained byte comes from. */
    unsigned drainBank() const { return bankOf(drained_); }

    /** A fill is mid-bank (the fill bank holds live bytes). */
    bool fillActive() const { return held() > 0; }

    /** A drain is mid-bank (consumable bytes remain in the tail bank). */
    bool drainActive() const { return consumable() > 0; }

    /**
     * Drop all staged data (training rollback: the staged operands are
     * stale). Run-total statistics are preserved.
     */
    void rollback();

    // -- run-total statistics -------------------------------------------
    std::uint64_t fills() const { return fills_; }
    std::uint64_t drains() const { return drains_; }
    std::uint64_t bankSwitches() const { return bank_switches_; }
    std::uint64_t fillStalls() const { return fill_stalls_; }
    ByteCount bytesFilled() const { return total_filled_; }
    ByteCount bytesDrained() const { return total_drained_; }
    ByteCount occupancyHighWater() const { return high_water_; }

  private:
    unsigned
    bankOf(ByteCount cumulative) const
    {
        return static_cast<unsigned>((cumulative / cfg.bank_bytes) %
                                     cfg.banks);
    }

    ScratchpadConfig cfg;

    // cumulative byte positions (reset by rollback)
    ByteCount filled_ = 0;
    ByteCount granted_ = 0;
    ByteCount drained_ = 0;

    // run totals (survive rollback)
    std::uint64_t fills_ = 0;
    std::uint64_t drains_ = 0;
    std::uint64_t bank_switches_ = 0;
    std::uint64_t fill_stalls_ = 0;
    ByteCount total_filled_ = 0;
    ByteCount total_drained_ = 0;
    ByteCount high_water_ = 0;
};

} // namespace mem
} // namespace equinox

#endif // EQUINOX_MEM_SCRATCHPAD_HH

#include "mem/write_buffer.hh"

#include <algorithm>
#include <cassert>

namespace equinox
{
namespace mem
{

WriteCombiningBuffer::WriteCombiningBuffer(const WriteBufferConfig &config)
    : cfg(config)
{
    assert(cfg.entries > 0 && cfg.entry_bytes > 0);
}

WriteCombiningBuffer::Burst
WriteCombiningBuffer::drainEntry(std::size_t index)
{
    Entry e = entries_[index];
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(index));
    ++drains_;
    bytes_drained_ += e.bytes;
    return {e.base, e.bytes};
}

std::vector<WriteCombiningBuffer::Burst>
WriteCombiningBuffer::push(Addr addr, ByteCount bytes)
{
    std::vector<Burst> out;
    ++writes_;
    while (bytes > 0) {
        Addr region = regionOf(addr);
        ByteCount room_in_region = region + cfg.entry_bytes - addr;
        ByteCount piece = std::min<ByteCount>(bytes, room_in_region);
        addr += piece;
        bytes -= piece;
        bytes_in_ += piece;

        auto it = std::find_if(entries_.begin(), entries_.end(),
                               [region](const Entry &e) {
                                   return e.base == region;
                               });
        if (it != entries_.end()) {
            ++combines_;
            it->bytes += piece;
            // Overlapping stores can over-fill the region's payload
            // count past one burst; drain whenever a full burst's
            // worth has combined.
            if (it->bytes >= cfg.entry_bytes) {
                out.push_back(drainEntry(static_cast<std::size_t>(
                    it - entries_.begin())));
            }
            continue;
        }
        if (entries_.size() >= cfg.entries)
            out.push_back(drainEntry(0)); // FIFO spill of the oldest
        if (piece >= cfg.entry_bytes) {
            // A full-region store drains immediately; opening an
            // entry just to close it would only churn the FIFO.
            ++drains_;
            bytes_drained_ += piece;
            out.push_back({region, piece});
        } else {
            entries_.push_back({region, piece});
        }
    }
    return out;
}

std::vector<WriteCombiningBuffer::Burst>
WriteCombiningBuffer::flush()
{
    std::vector<Burst> out;
    while (!entries_.empty())
        out.push_back(drainEntry(0));
    return out;
}

} // namespace mem
} // namespace equinox

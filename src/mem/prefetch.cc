#include "mem/prefetch.hh"

#include <cassert>

namespace equinox
{
namespace mem
{

namespace
{

class NonePrefetcher : public PrefetchPolicy
{
  public:
    const char *name() const override { return "none"; }
    void
    onAccess(Addr, bool, std::vector<Addr> &) override
    {
    }
};

class NextLinePrefetcher : public PrefetchPolicy
{
  public:
    explicit NextLinePrefetcher(unsigned degree_) : degree(degree_) {}

    const char *name() const override { return "next_line"; }

    void
    onAccess(Addr line, bool hit, std::vector<Addr> &out) override
    {
        if (hit)
            return;
        for (unsigned d = 1; d <= degree; ++d)
            out.push_back(line + d);
    }

  private:
    unsigned degree;
};

} // namespace

std::unique_ptr<PrefetchPolicy>
makePrefetchPolicy(const PrefetchConfig &cfg)
{
    switch (cfg.kind) {
      case PrefetchKind::None:
        return std::make_unique<NonePrefetcher>();
      case PrefetchKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(cfg.degree);
      case PrefetchKind::Dcpt:
        return std::make_unique<DcptPrefetcher>(cfg);
    }
    return std::make_unique<NonePrefetcher>();
}

DcptPrefetcher::DcptPrefetcher(const PrefetchConfig &config)
    : cfg(config), table(config.dcpt_entries)
{
    assert(cfg.dcpt_entries > 0 && cfg.dcpt_deltas >= 2);
}

std::int64_t
DcptPrefetcher::Entry::deltaAt(unsigned newest_minus) const
{
    // deltaAt(0) is the newest delta, deltaAt(1) the one before it...
    assert(newest_minus < count);
    unsigned size = static_cast<unsigned>(deltas.size());
    return deltas[(head + size - 1 - newest_minus) % size];
}

DcptPrefetcher::Entry &
DcptPrefetcher::entryFor(Addr region)
{
    Entry *victim = nullptr;
    for (auto &e : table) {
        if (e.valid && e.region == region) {
            e.lru = ++clock_;
            return e;
        }
        if (!victim || (!e.valid && victim->valid) ||
            (e.valid == victim->valid && e.lru < victim->lru)) {
            victim = &e;
        }
    }
    // Miss: repurpose the first invalid (else least-recently-used)
    // entry for this region.
    victim->valid = true;
    victim->region = region;
    victim->seeded = false;
    victim->last_line = 0;
    victim->deltas.assign(cfg.dcpt_deltas, 0);
    victim->head = 0;
    victim->count = 0;
    victim->lru = ++clock_;
    return *victim;
}

void
DcptPrefetcher::onAccess(Addr line, bool, std::vector<Addr> &out)
{
    Entry &e = entryFor(regionOf(line));
    if (!e.seeded) {
        // First access in the region: establish the stream head; a
        // delta needs two accesses.
        e.seeded = true;
        e.last_line = line;
        return;
    }
    std::int64_t delta = static_cast<std::int64_t>(line) -
                         static_cast<std::int64_t>(e.last_line);
    e.last_line = line;
    if (delta == 0)
        return; // the same line again: nothing to learn or predict

    unsigned size = static_cast<unsigned>(e.deltas.size());
    e.deltas[e.head] = delta;
    e.head = (e.head + 1) % size;
    if (e.count < size)
        ++e.count;
    if (e.count < 3)
        return; // a pair plus at least one earlier delta to match

    // Correlate: find the most recent EARLIER occurrence of the
    // (second-newest, newest) delta pair, then replay the deltas that
    // followed that occurrence as the prediction.
    std::int64_t d0 = e.deltaAt(0);
    std::int64_t d1 = e.deltaAt(1);
    for (unsigned back = 2; back < e.count; ++back) {
        if (e.deltaAt(back) != d1 ||
            e.deltaAt(back - 1) != d0) {
            continue;
        }
        // The deltas after the matched pair sit at newest_minus =
        // back-2 down to 1 (0 and the pair itself are the present);
        // replay them chronologically, cycling through the matched
        // window when the degree outruns the recorded history (pure
        // strides replay d0 forever this way).
        Addr predicted = line;
        unsigned i = back - 1;
        for (unsigned emitted = 0; emitted < cfg.degree; ++emitted) {
            i = (i == 0) ? back - 2 : i - 1;
            predicted = static_cast<Addr>(
                static_cast<std::int64_t>(predicted) + e.deltaAt(i));
            out.push_back(predicted);
        }
        return;
    }
}

std::size_t
DcptPrefetcher::liveEntries() const
{
    std::size_t n = 0;
    for (const auto &e : table)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace mem
} // namespace equinox

/**
 * @file
 * The evaluation workloads (section 5): a machine-translation LSTM with
 * 2048 hidden units and 25 steps, a speech-recognition GRU with 2816
 * hidden units and 1500 time steps (both from DeepBench), and ResNet50.
 *
 * Ops convention: the paper's LSTM service times are consistent with
 * counting the four gate GEMMs once per time step (~8 H^2 MACs per step
 * per request, 2 ops per MAC); we adopt the same convention and document
 * it in EXPERIMENTS.md.
 */

#ifndef EQUINOX_WORKLOAD_DNN_MODEL_HH
#define EQUINOX_WORKLOAD_DNN_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace workload
{

/** A recurrent model described by its per-step gate structure. */
struct RnnSpec
{
    std::size_t hidden = 0;
    std::size_t steps = 0;
    /**
     * Dependence groups per time step: each entry is the number of gate
     * GEMMs that can issue together; groups serialise through the SIMD
     * unit. LSTM: {4}. GRU: {2, 1} (update/reset gates, then the
     * candidate which depends on r (.) h).
     */
    std::vector<unsigned> gate_groups;
    /** Elementwise SIMD passes per element per step (gates + state). */
    double simd_passes = 8.0;
};

/** One convolution layer, described post-im2col. */
struct ConvLayerSpec
{
    std::size_t c_in = 0;
    std::size_t c_out = 0;
    std::size_t kernel = 1; //!< square kernel side
    std::size_t out_h = 0;
    std::size_t out_w = 0;
    std::size_t stride = 1;

    /** im2col inner dimension: kernel^2 * c_in. */
    std::size_t gemmK() const { return kernel * kernel * c_in; }
    /** Output rows per image: out_h * out_w. */
    std::size_t rowsPerImage() const { return out_h * out_w; }
    /** MACs per image. */
    std::uint64_t macsPerImage() const
    {
        return static_cast<std::uint64_t>(rowsPerImage()) * gemmK() *
               c_out;
    }
};

/** A convolutional model: conv stack plus a final classifier GEMM. */
struct CnnSpec
{
    std::vector<ConvLayerSpec> layers;
    std::size_t classifier_in = 0;
    std::size_t classifier_out = 0;
    /** Elementwise SIMD passes per output element (BN + ReLU + ...). */
    double simd_passes = 3.0;
    /** Images batched into one inference job. */
    std::size_t batch_images = 8;
    /** Input bytes per image (224x224x3 at one byte). */
    ByteCount input_bytes = 224 * 224 * 3;
};

/** A feed-forward (MLP) model: a chain of dense layers. */
struct MlpSpec
{
    /** Layer widths including input and output. */
    std::vector<std::size_t> dims;
    /** Elementwise SIMD passes per hidden element (act + bias). */
    double simd_passes = 2.0;
};

/** A workload model: recurrent, convolutional, or feed-forward. */
struct DnnModel
{
    enum class Kind
    {
        Rnn,
        Cnn,
        Mlp,
    };

    std::string name;
    Kind kind = Kind::Rnn;
    RnnSpec rnn;
    CnnSpec cnn;
    MlpSpec mlp;

    /** Parameter count (for footprints and parameter-server traffic). */
    std::uint64_t paramCount() const;

    /** MACs per inference request under the documented convention. */
    std::uint64_t macsPerRequest() const;

    /** Ops (2 x MACs) per inference request. */
    double opsPerRequest() const { return 2.0 * static_cast<double>(
        macsPerRequest()); }

    // Factory functions for the paper's three workloads.
    static DnnModel lstm2048();
    static DnnModel gru2816();
    static DnnModel resnet50(std::size_t batch_images = 8);

    /**
     * A datacenter recommendation/ranking-style MLP (the third service
     * family the paper's ISA targets alongside RNNs and CNNs).
     */
    static DnnModel mlp4096();
};

} // namespace workload
} // namespace equinox

#endif // EQUINOX_WORKLOAD_DNN_MODEL_HH

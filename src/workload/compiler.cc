#include "workload/compiler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace equinox
{
namespace workload
{

namespace
{

/** ceil(a / b) for positive integers. */
std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

Compiler::Compiler(sim::AcceleratorConfig config) : cfg(std::move(config))
{
    EQX_ASSERT(cfg.n > 0 && cfg.m > 0 && cfg.w > 0, "degenerate MMU");
}

double
Compiler::gradBytesPerValue() const
{
    // Gradients and deltas are produced by the bfloat16 SIMD unit and
    // accumulated in bfloat16; in the bfloat16 datapath everything is
    // 16-bit anyway.
    return 2.0;
}

Tick
Compiler::simdCycles(double elems) const
{
    return static_cast<Tick>(
        std::ceil(elems / static_cast<double>(cfg.simd_lanes)));
}

std::vector<isa::Instruction>
Compiler::emitGemmMode1(std::size_t rows, std::size_t k,
                        std::size_t n_cols) const
{
    EQX_ASSERT(rows > 0 && k > 0 && n_cols > 0, "degenerate GEMM");
    const std::size_t tile_k = cfg.tileK();
    const std::size_t tile_c = cfg.tileCols();
    const std::size_t row_slots = cfg.n;

    std::vector<isa::Instruction> insts;
    insts.reserve(ceilDiv(rows, row_slots) * ceilDiv(k, tile_k) *
                  ceilDiv(n_cols, tile_c));
    for (std::size_t r = 0; r < rows; r += row_slots) {
        auto rr = static_cast<std::uint32_t>(
            std::min(row_slots, rows - r));
        for (std::size_t kk = 0; kk < k; kk += tile_k) {
            auto kv = static_cast<std::uint32_t>(
                std::min(tile_k, k - kk));
            for (std::size_t cc = 0; cc < n_cols; cc += tile_c) {
                auto cv = static_cast<std::uint32_t>(
                    std::min(tile_c, n_cols - cc));
                isa::Instruction inst;
                inst.op = isa::Opcode::MatMul;
                inst.rows_real = rr;
                inst.rows_dummy = 0;
                inst.rows_slots = static_cast<std::uint32_t>(row_slots);
                inst.k_valid = kv;
                inst.k_slots = static_cast<std::uint32_t>(tile_k);
                inst.cols_valid = cv;
                inst.cols_slots = static_cast<std::uint32_t>(tile_c);
                insts.push_back(inst);
            }
        }
    }
    return insts;
}

std::vector<isa::Instruction>
Compiler::emitGemmMode2(std::size_t rows, std::size_t k,
                        std::size_t n_cols) const
{
    EQX_ASSERT(rows > 0 && k > 0 && n_cols > 0, "degenerate GEMM");
    const std::size_t tile_k = cfg.tileK();
    const std::size_t row_slots = cfg.tileRowsMode2();
    const std::size_t col_slots = cfg.n;

    std::vector<isa::Instruction> insts;
    insts.reserve(ceilDiv(rows, row_slots) * ceilDiv(k, tile_k) *
                  ceilDiv(n_cols, col_slots));
    for (std::size_t r = 0; r < rows; r += row_slots) {
        auto rr = static_cast<std::uint32_t>(
            std::min(row_slots, rows - r));
        for (std::size_t kk = 0; kk < k; kk += tile_k) {
            auto kv = static_cast<std::uint32_t>(
                std::min(tile_k, k - kk));
            for (std::size_t cc = 0; cc < n_cols; cc += col_slots) {
                auto cv = static_cast<std::uint32_t>(
                    std::min(col_slots, n_cols - cc));
                isa::Instruction inst;
                inst.op = isa::Opcode::MatMul;
                inst.rows_real = rr;
                inst.rows_dummy = 0;
                inst.rows_slots = static_cast<std::uint32_t>(row_slots);
                inst.k_valid = kv;
                inst.k_slots = static_cast<std::uint32_t>(tile_k);
                inst.cols_valid = cv;
                inst.cols_slots = static_cast<std::uint32_t>(col_slots);
                insts.push_back(inst);
            }
        }
    }
    return insts;
}

// ---------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------

sim::InferenceServiceDesc
Compiler::compileInference(const DnnModel &model) const
{
    switch (model.kind) {
      case DnnModel::Kind::Rnn: return compileRnnInference(model);
      case DnnModel::Kind::Cnn: return compileCnnInference(model);
      case DnnModel::Kind::Mlp: return compileMlpInference(model);
      default: EQX_FATAL("unknown model kind");
    }
}

sim::InferenceServiceDesc
Compiler::compileMlpInference(const DnnModel &model) const
{
    const auto &mlp = model.mlp;
    EQX_ASSERT(mlp.dims.size() >= 2, "MLP needs at least two dims");
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();

    sim::InferenceServiceDesc desc;
    desc.model_name = model.name;
    desc.program.name = model.name + "-inference";
    desc.program.batch_rows = cfg.n;
    desc.program.scale_rows_by_batch = true;

    // One dependence step per layer (mode 1: wide vector-matrix).
    for (std::size_t i = 0; i + 1 < mlp.dims.size(); ++i) {
        auto insts = emitGemmMode1(cfg.n, mlp.dims[i], mlp.dims[i + 1]);
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs, 0);
        sb.simd_cycles = simdCycles(static_cast<double>(cfg.n) *
                                    static_cast<double>(mlp.dims[i + 1]) *
                                    mlp.simd_passes);
        sb.drain_cycles = cfg.drainCycles();
        desc.program.steps.push_back(sb);
    }

    desc.weight_footprint = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * bpv);
    desc.act_footprint = static_cast<ByteCount>(
        2.0 * static_cast<double>(cfg.n) *
        static_cast<double>(*std::max_element(mlp.dims.begin(),
                                              mlp.dims.end())) * bpv);
    desc.input_bytes_per_request = static_cast<ByteCount>(
        static_cast<double>(mlp.dims.front()) * bpv);
    desc.output_bytes_per_request = static_cast<ByteCount>(
        static_cast<double>(mlp.dims.back()) * bpv);
    desc.service_time_s =
        units::cyclesToSeconds(desc.program.serviceCycles(),
                               cfg.frequency_hz);
    return desc;
}

sim::InferenceServiceDesc
Compiler::compileRnnInference(const DnnModel &model) const
{
    const auto &rnn = model.rnn;
    const std::size_t h = rnn.hidden;
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();
    const auto groups = static_cast<double>(rnn.gate_groups.size());

    sim::InferenceServiceDesc desc;
    desc.model_name = model.name;
    desc.program.name = model.name + "-inference";
    desc.program.batch_rows = cfg.n;
    desc.program.scale_rows_by_batch = true;

    // Every time step of a given gate group compiles to an identical
    // step block (the GEMM shapes depend only on (n, h)), so build each
    // distinct group width once and replicate -- the DSE probe compiles
    // thousands of these and the per-step re-emission dominated it.
    std::vector<std::pair<unsigned, isa::StepBlock>> group_blocks;
    auto groupBlock = [&](unsigned gates) -> const isa::StepBlock & {
        for (const auto &kv : group_blocks) {
            if (kv.first == gates)
                return kv.second;
        }
        auto gemm = emitGemmMode1(cfg.n, h, h);
        std::vector<isa::Instruction> insts;
        insts.reserve(gemm.size() * gates);
        for (unsigned g = 0; g < gates; ++g)
            insts.insert(insts.end(), gemm.begin(), gemm.end());
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs, 0);
        sb.simd_cycles = simdCycles(static_cast<double>(cfg.n) *
                                    static_cast<double>(h) *
                                    rnn.simd_passes / groups);
        sb.drain_cycles = cfg.drainCycles();
        group_blocks.emplace_back(gates, sb);
        return group_blocks.back().second;
    };
    for (std::size_t t = 0; t < rnn.steps; ++t) {
        for (unsigned gates : rnn.gate_groups)
            desc.program.steps.push_back(groupBlock(gates));
    }

    desc.weight_footprint = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * bpv);
    desc.act_footprint = static_cast<ByteCount>(
        6.0 * static_cast<double>(cfg.n) * static_cast<double>(h) * bpv);
    desc.input_bytes_per_request = 4 * rnn.steps; // token ids
    desc.output_bytes_per_request = static_cast<ByteCount>(
        static_cast<double>(h) * bpv);
    desc.service_time_s =
        units::cyclesToSeconds(desc.program.serviceCycles(),
                               cfg.frequency_hz);
    return desc;
}

sim::InferenceServiceDesc
Compiler::compileCnnInference(const DnnModel &model) const
{
    const auto &cnn = model.cnn;
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();
    const std::size_t images = cnn.batch_images;

    sim::InferenceServiceDesc desc;
    desc.model_name = model.name;
    desc.program.name = model.name + "-inference";
    desc.program.batch_rows = static_cast<std::uint32_t>(images);
    desc.program.scale_rows_by_batch = true;

    for (const auto &layer : cnn.layers) {
        // The im2col unit lowers one image at a time, so output rows do
        // not batch across images; deep layers with few output pixels
        // under-fill the tall mode-2 row dimension (the Table 2 effect).
        auto per_image = emitGemmMode2(layer.rowsPerImage(),
                                       layer.gemmK(), layer.c_out);
        std::vector<isa::Instruction> insts;
        insts.reserve(per_image.size() * images);
        for (std::size_t i = 0; i < images; ++i)
            insts.insert(insts.end(), per_image.begin(), per_image.end());
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs, 0);
        sb.simd_cycles = simdCycles(
            static_cast<double>(layer.rowsPerImage() * images) *
            static_cast<double>(layer.c_out) * cnn.simd_passes);
        sb.drain_cycles = cfg.drainCycles();
        desc.program.steps.push_back(sb);
    }
    {
        // Classifier GEMM (mode 1: small batch of pooled features).
        auto insts = emitGemmMode1(images, cnn.classifier_in,
                                   cnn.classifier_out);
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs, 0);
        sb.simd_cycles = simdCycles(static_cast<double>(
            images * cnn.classifier_out));
        sb.drain_cycles = cfg.drainCycles();
        desc.program.steps.push_back(sb);
    }

    desc.weight_footprint = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * bpv);
    // Largest live activation: conv1 output (112^2 x 64) per image.
    desc.act_footprint = static_cast<ByteCount>(
        static_cast<double>(images) * 112 * 112 * 64 * bpv);
    desc.input_bytes_per_request = cnn.input_bytes;
    desc.output_bytes_per_request = cnn.classifier_out * 2;
    desc.service_time_s =
        units::cyclesToSeconds(desc.program.serviceCycles(),
                               cfg.frequency_hz);
    return desc;
}

// ---------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------

sim::TrainingServiceDesc
Compiler::compileTraining(const DnnModel &model, std::size_t batch,
                          const TrainingCompileOptions &topts) const
{
    EQX_ASSERT(topts.grad_window >= 1, "gradient window must be >= 1");
    switch (model.kind) {
      case DnnModel::Kind::Rnn:
        return compileRnnTraining(model, batch, topts);
      case DnnModel::Kind::Cnn:
        return compileCnnTraining(model, batch, topts);
      case DnnModel::Kind::Mlp:
        return compileMlpTraining(model, batch, topts);
      default:
        EQX_FATAL("unknown model kind");
    }
}

sim::TrainingServiceDesc
Compiler::compileMlpTraining(const DnnModel &model, std::size_t batch,
                             const TrainingCompileOptions &topts) const
{
    const auto &mlp = model.mlp;
    EQX_ASSERT(mlp.dims.size() >= 2, "MLP needs at least two dims");
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();
    const double gbv = topts.delta_bytes;
    const double acc = topts.grad_acc_bytes;
    const double b = static_cast<double>(batch);

    sim::TrainingServiceDesc desc;
    desc.model_name = model.name;
    desc.iteration.name = model.name + "-train-iteration";
    desc.iteration.batch_rows = static_cast<std::uint32_t>(batch);
    desc.iteration.scale_rows_by_batch = false;

    auto add_step = [&](std::vector<isa::Instruction> insts,
                        double stream, double store, double simd_elems) {
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs,
                                   static_cast<ByteCount>(stream));
        sb.store_bytes = static_cast<ByteCount>(store);
        sb.simd_cycles = simdCycles(simd_elems);
        sb.drain_cycles = cfg.drainCycles();
        desc.iteration.steps.push_back(sb);
    };

    // Forward.
    for (std::size_t i = 0; i + 1 < mlp.dims.size(); ++i) {
        double din = static_cast<double>(mlp.dims[i]);
        double dout = static_cast<double>(mlp.dims[i + 1]);
        add_step(emitGemmMode1(batch, mlp.dims[i], mlp.dims[i + 1]),
                 din * dout * bpv + b * din * bpv, b * dout * bpv,
                 b * dout * mlp.simd_passes);
    }
    // Data gradient (reverse; skip the input layer's dX).
    for (std::size_t i = mlp.dims.size() - 1; i >= 2; --i) {
        double din = static_cast<double>(mlp.dims[i - 1]);
        double dout = static_cast<double>(mlp.dims[i]);
        add_step(emitGemmMode1(batch, mlp.dims[i], mlp.dims[i - 1]),
                 din * dout * bpv + b * dout * gbv, b * din * gbv,
                 b * din * 2.0);
    }
    // Weight gradient per layer: dW = X^T delta (tall mode 2).
    for (std::size_t i = 0; i + 1 < mlp.dims.size(); ++i) {
        double din = static_cast<double>(mlp.dims[i]);
        double dout = static_cast<double>(mlp.dims[i + 1]);
        add_step(emitGemmMode2(mlp.dims[i], batch, mlp.dims[i + 1]),
                 b * din * bpv + b * dout * gbv + din * dout * acc,
                 din * dout * acc, 0.0);
    }

    desc.sync_bytes_per_iteration = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * (gbv + bpv));
    // One checkpoint snapshots the master-precision weights; a rollback
    // re-reads the same image.
    desc.checkpoint_bytes = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * topts.grad_acc_bytes);
    return desc;
}

sim::TrainingServiceDesc
Compiler::compileRnnTraining(const DnnModel &model, std::size_t batch,
                             const TrainingCompileOptions &topts) const
{
    const auto &rnn = model.rnn;
    const std::size_t h = rnn.hidden;
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();
    const double gbv = topts.delta_bytes;
    const auto groups = static_cast<double>(rnn.gate_groups.size());
    unsigned total_gates = 0;
    for (unsigned g : rnn.gate_groups)
        total_gates += g;

    const double bh = static_cast<double>(batch) * static_cast<double>(h);
    const double hh = static_cast<double>(h) * static_cast<double>(h);

    sim::TrainingServiceDesc desc;
    desc.model_name = model.name;
    desc.iteration.name = model.name + "-train-iteration";
    desc.iteration.batch_rows = static_cast<std::uint32_t>(batch);
    desc.iteration.scale_rows_by_batch = false;

    auto add_step = [&](std::vector<isa::Instruction> insts,
                        double stream, double store, double simd_elems) {
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs,
                                   static_cast<ByteCount>(stream));
        sb.store_bytes = static_cast<ByteCount>(store);
        sb.simd_cycles = simdCycles(simd_elems);
        sb.drain_cycles = cfg.drainCycles();
        desc.iteration.steps.push_back(sb);
    };

    // The per-time-step blocks of each pass are identical for a given
    // gate-group width (GEMM shapes depend only on (batch, h)), so emit
    // each distinct group once per pass and replicate across steps --
    // exactly the same program, a fraction of the compile cost.
    auto gateGroupInsts = [&](unsigned gates) {
        auto gemm = emitGemmMode1(batch, h, h);
        std::vector<isa::Instruction> insts;
        insts.reserve(gemm.size() * gates);
        for (unsigned g = 0; g < gates; ++g)
            insts.insert(insts.end(), gemm.begin(), gemm.end());
        return insts;
    };
    auto replicateSteps = [&](auto &&stepForGates) {
        std::vector<std::pair<unsigned, isa::StepBlock>> cache;
        for (std::size_t t = 0; t < rnn.steps; ++t) {
            for (unsigned gates : rnn.gate_groups) {
                const isa::StepBlock *sb = nullptr;
                for (const auto &kv : cache) {
                    if (kv.first == gates)
                        sb = &kv.second;
                }
                if (!sb) {
                    cache.emplace_back(gates, stepForGates(gates));
                    sb = &cache.back().second;
                }
                desc.iteration.steps.push_back(*sb);
            }
        }
    };

    // Forward pass: operands stream from DRAM through the staging
    // buffers (the weight buffer belongs to the inference context), and
    // activations/state for the backward pass stream back out.
    replicateSteps([&](unsigned gates) {
        double stream = gates * hh * bpv + 2.0 * bh * bpv / groups;
        double store = (static_cast<double>(total_gates) + 2.0) * bh *
                       bpv / groups;
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(gateGroupInsts(gates), macs,
                                   static_cast<ByteCount>(stream));
        sb.store_bytes = static_cast<ByteCount>(store);
        sb.simd_cycles = simdCycles(bh * rnn.simd_passes / groups);
        sb.drain_cycles = cfg.drainCycles();
        return sb;
    });

    // Data-gradient pass (reverse time order; same GEMM shapes against
    // transposed weights, which stream again).
    replicateSteps([&](unsigned gates) {
        double stream = gates * hh * bpv +
                        (static_cast<double>(total_gates) + 2.0) * bh *
                            bpv / groups;
        double store = gates * bh * gbv;
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(gateGroupInsts(gates), macs,
                                   static_cast<ByteCount>(stream));
        sb.store_bytes = static_cast<ByteCount>(store);
        sb.simd_cycles =
            simdCycles(bh * (rnn.simd_passes + 2.0) / groups);
        sb.drain_cycles = cfg.drainCycles();
        return sb;
    });

    // Weight-gradient pass: dW_g = X^T . delta_g, a tall mode-2 product.
    // Consecutive time steps concatenate along the inner dimension
    // (dW = sum_t X_t^T d_t), amortising the DRAM read-modify-write of
    // the fp32 gradient accumulators over a small window.
    const std::size_t grad_window = topts.grad_window;
    const double acc_bytes = topts.grad_acc_bytes;
    for (std::size_t t0 = 0; t0 < rnn.steps; t0 += grad_window) {
        std::size_t window = std::min(grad_window, rnn.steps - t0);
        std::vector<isa::Instruction> insts;
        for (unsigned g = 0; g < total_gates; ++g) {
            auto gemm = emitGemmMode2(h, batch * window, h);
            insts.insert(insts.end(), gemm.begin(), gemm.end());
        }
        double win = static_cast<double>(window);
        double stream = win * bh * bpv +
                        static_cast<double>(total_gates) * win * bh * gbv +
                        static_cast<double>(total_gates) * hh * acc_bytes;
        double store = static_cast<double>(total_gates) * hh * acc_bytes;
        add_step(std::move(insts), stream, store, 0.0);
    }

    desc.sync_bytes_per_iteration = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * (gbv + bpv));
    // One checkpoint snapshots the master-precision weights; a rollback
    // re-reads the same image.
    desc.checkpoint_bytes = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * topts.grad_acc_bytes);
    return desc;
}

sim::TrainingServiceDesc
Compiler::compileCnnTraining(const DnnModel &model, std::size_t batch,
                             const TrainingCompileOptions &topts) const
{
    const auto &cnn = model.cnn;
    const std::uint64_t macs = cfg.macsPerCycle();
    const double bpv = bytesPerValue();
    const double gbv = topts.delta_bytes;

    sim::TrainingServiceDesc desc;
    desc.model_name = model.name;
    desc.iteration.name = model.name + "-train-iteration";
    desc.iteration.batch_rows = static_cast<std::uint32_t>(batch);
    desc.iteration.scale_rows_by_batch = false;

    auto add_step = [&](std::vector<isa::Instruction> insts,
                        double stream, double store, double simd_elems) {
        isa::StepBlock sb;
        sb.mmu = isa::makeTileWork(insts, macs,
                                   static_cast<ByteCount>(stream));
        sb.store_bytes = static_cast<ByteCount>(store);
        sb.simd_cycles = simdCycles(simd_elems);
        sb.drain_cycles = cfg.drainCycles();
        desc.iteration.steps.push_back(sb);
    };

    auto layer_bytes = [&](const ConvLayerSpec &l) {
        double in_pix = static_cast<double>(l.rowsPerImage()) *
                        static_cast<double>(l.stride * l.stride);
        double acts_in = in_pix * static_cast<double>(batch) *
                         static_cast<double>(l.c_in);
        double acts_out = static_cast<double>(l.rowsPerImage()) *
                          static_cast<double>(batch) *
                          static_cast<double>(l.c_out);
        double weights = static_cast<double>(l.gemmK()) *
                         static_cast<double>(l.c_out);
        return std::tuple{acts_in, acts_out, weights};
    };

    // Per-image GEMM emission (the im2col unit lowers one image at a
    // time; see compileCnnInference).
    auto emit_per_image = [&](std::size_t rows, std::size_t k,
                              std::size_t n_cols) {
        auto per_image = emitGemmMode2(rows, k, n_cols);
        std::vector<isa::Instruction> insts;
        insts.reserve(per_image.size() * batch);
        for (std::size_t i = 0; i < batch; ++i)
            insts.insert(insts.end(), per_image.begin(), per_image.end());
        return insts;
    };

    // Forward pass.
    for (const auto &l : cnn.layers) {
        auto [acts_in, acts_out, weights] = layer_bytes(l);
        auto insts = emit_per_image(l.rowsPerImage(), l.gemmK(), l.c_out);
        add_step(std::move(insts), weights * bpv + acts_in * bpv,
                 acts_out * bpv, acts_out * cnn.simd_passes);
    }
    // Data-gradient pass (reverse).
    for (auto it = cnn.layers.rbegin(); it != cnn.layers.rend(); ++it) {
        const auto &l = *it;
        auto [acts_in, acts_out, weights] = layer_bytes(l);
        auto insts = emit_per_image(l.rowsPerImage(), l.c_out, l.gemmK());
        add_step(std::move(insts), weights * bpv + acts_out * gbv,
                 acts_in * gbv, acts_in * 2.0);
    }
    // Weight-gradient pass (wide gradient accumulators in DRAM).
    const double acc_bytes = topts.grad_acc_bytes;
    for (const auto &l : cnn.layers) {
        auto [acts_in, acts_out, weights] = layer_bytes(l);
        auto insts = emitGemmMode2(l.gemmK(), l.rowsPerImage() * batch,
                                   l.c_out);
        add_step(std::move(insts),
                 acts_in * bpv + acts_out * gbv + weights * acc_bytes,
                 weights * acc_bytes, 0.0);
    }

    desc.sync_bytes_per_iteration = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * (gbv + bpv));
    // One checkpoint snapshots the master-precision weights; a rollback
    // re-reads the same image.
    desc.checkpoint_bytes = static_cast<ByteCount>(
        static_cast<double>(model.paramCount()) * topts.grad_acc_bytes);
    return desc;
}

} // namespace workload
} // namespace equinox

/**
 * @file
 * The workload compiler: lowers DNN models onto a concrete accelerator
 * configuration as tiled ISA programs (Figure 4).
 *
 * Two MMU mapping modes follow section 4: mode 1 (activations broadcast,
 * weights unicast) for the wide vector-matrix products of RNNs/MLPs, and
 * mode 2 (weights broadcast, activations unicast) for tall lowered
 * convolutions. Training iterations are compiled as forward, then
 * data-gradient, then weight-gradient passes whose operands stream
 * through the staging buffers from DRAM (section 2.2); weight-gradient
 * accumulation is read-modify-written in the SIMD unit's bfloat16.
 */

#ifndef EQUINOX_WORKLOAD_COMPILER_HH
#define EQUINOX_WORKLOAD_COMPILER_HH

#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "sim/accelerator.hh"
#include "sim/config.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace workload
{

/**
 * Training-lowering choices (the defaults reproduce the paper; the
 * ablation benches sweep them).
 */
struct TrainingCompileOptions
{
    /**
     * Consecutive time steps whose weight-gradient contributions
     * concatenate along the inner dimension before the DRAM
     * read-modify-write of the accumulators (dW = sum_t X_t^T d_t).
     * Larger windows cut gradient DRAM traffic and improve tile fill
     * but hold more live state.
     */
    std::size_t grad_window = 2;
    /** Bytes per value of the DRAM-resident gradient accumulators. */
    double grad_acc_bytes = 4.0; // fp32
    /** Bytes per value of activation-gradient (delta) tensors. */
    double delta_bytes = 2.0; // bfloat16 (SIMD-produced)
};

/** Lowers models for one accelerator configuration. */
class Compiler
{
  public:
    explicit Compiler(sim::AcceleratorConfig config);

    /** Compile an inference service (batch of n requests for RNNs). */
    sim::InferenceServiceDesc compileInference(const DnnModel &model)
        const;

    /** Compile one training iteration at the given minibatch size. */
    sim::TrainingServiceDesc compileTraining(
        const DnnModel &model, std::size_t batch = 128,
        const TrainingCompileOptions &topts = {}) const;

    // -- building blocks, exposed for tests ---------------------------

    /**
     * Mode-1 GEMM [rows x K] x [K x N]: activations broadcast to all m
     * arrays; rows <= n per instruction; output columns chunked by m*n.
     */
    std::vector<isa::Instruction> emitGemmMode1(std::size_t rows,
                                                std::size_t k,
                                                std::size_t n_cols) const;

    /**
     * Mode-2 GEMM [rows x K] x [K x N]: weights broadcast; rows chunked
     * by m*n, output columns chunked by n.
     */
    std::vector<isa::Instruction> emitGemmMode2(std::size_t rows,
                                                std::size_t k,
                                                std::size_t n_cols) const;

    /** SIMD cycles to stream @p elems elementwise operands. */
    Tick simdCycles(double elems) const;

    /** Bytes per matrix value in the datapath encoding. */
    double bytesPerValue() const { return cfg.bytesPerValue(); }

    /** Bytes per value of SIMD-produced tensors (bfloat16 gradients). */
    double gradBytesPerValue() const;

    const sim::AcceleratorConfig &config() const { return cfg; }

  private:
    sim::InferenceServiceDesc compileRnnInference(const DnnModel &m) const;
    sim::InferenceServiceDesc compileCnnInference(const DnnModel &m) const;
    sim::InferenceServiceDesc compileMlpInference(const DnnModel &m) const;
    sim::TrainingServiceDesc compileRnnTraining(
        const DnnModel &m, std::size_t batch,
        const TrainingCompileOptions &topts) const;
    sim::TrainingServiceDesc compileCnnTraining(
        const DnnModel &m, std::size_t batch,
        const TrainingCompileOptions &topts) const;
    sim::TrainingServiceDesc compileMlpTraining(
        const DnnModel &m, std::size_t batch,
        const TrainingCompileOptions &topts) const;

    sim::AcceleratorConfig cfg;
};

} // namespace workload
} // namespace equinox

#endif // EQUINOX_WORKLOAD_COMPILER_HH

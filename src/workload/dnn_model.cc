#include "workload/dnn_model.hh"

#include <numeric>

#include "common/logging.hh"

namespace equinox
{
namespace workload
{

namespace
{

/** Total gates of an RNN spec. */
unsigned
totalGates(const RnnSpec &rnn)
{
    unsigned g = 0;
    for (unsigned v : rnn.gate_groups)
        g += v;
    return g;
}

} // namespace

std::uint64_t
DnnModel::paramCount() const
{
    if (kind == Kind::Rnn) {
        return static_cast<std::uint64_t>(totalGates(rnn)) * rnn.hidden *
               rnn.hidden;
    }
    if (kind == Kind::Mlp) {
        std::uint64_t params = 0;
        for (std::size_t i = 0; i + 1 < mlp.dims.size(); ++i)
            params += static_cast<std::uint64_t>(mlp.dims[i]) *
                      mlp.dims[i + 1];
        return params;
    }
    std::uint64_t params = 0;
    for (const auto &l : cnn.layers)
        params += static_cast<std::uint64_t>(l.gemmK()) * l.c_out;
    params += static_cast<std::uint64_t>(cnn.classifier_in) *
              cnn.classifier_out;
    return params;
}

std::uint64_t
DnnModel::macsPerRequest() const
{
    if (kind == Kind::Rnn) {
        // One H x H GEMM per gate per step per request.
        return static_cast<std::uint64_t>(totalGates(rnn)) * rnn.hidden *
               rnn.hidden * rnn.steps;
    }
    if (kind == Kind::Mlp) {
        // One dense GEMM row per layer per request.
        return paramCount();
    }
    std::uint64_t macs = 0;
    for (const auto &l : cnn.layers)
        macs += l.macsPerImage();
    macs += static_cast<std::uint64_t>(cnn.classifier_in) *
            cnn.classifier_out;
    return macs;
}

DnnModel
DnnModel::lstm2048()
{
    DnnModel model;
    model.name = "LSTM";
    model.kind = Kind::Rnn;
    model.rnn.hidden = 2048;
    model.rnn.steps = 25;
    model.rnn.gate_groups = {4};
    model.rnn.simd_passes = 8.0;
    return model;
}

DnnModel
DnnModel::gru2816()
{
    DnnModel model;
    model.name = "GRU";
    model.kind = Kind::Rnn;
    model.rnn.hidden = 2816;
    model.rnn.steps = 1500;
    // Update and reset gates issue together; the candidate depends on
    // r (.) h and serialises behind them.
    model.rnn.gate_groups = {2, 1};
    model.rnn.simd_passes = 7.0;
    return model;
}

DnnModel
DnnModel::resnet50(std::size_t batch_images)
{
    DnnModel model;
    model.name = "Resnet50";
    model.kind = Kind::Cnn;
    model.cnn.batch_images = batch_images;
    auto &layers = model.cnn.layers;

    // conv1: 7x7, 64, stride 2 (224 -> 112), then 3x3 max pool to 56.
    layers.push_back({3, 64, 7, 112, 112, 2});

    struct Stage
    {
        std::size_t planes;
        std::size_t blocks;
        std::size_t size; // output spatial side
    };
    const Stage stages[] = {
        {64, 3, 56}, {128, 4, 28}, {256, 6, 14}, {512, 3, 7}};

    std::size_t c_in = 64;
    for (const auto &st : stages) {
        for (std::size_t b = 0; b < st.blocks; ++b) {
            std::size_t stride = (b == 0 && st.planes != 64) ? 2 : 1;
            // Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
            layers.push_back({c_in, st.planes, 1, st.size, st.size,
                              stride});
            layers.push_back({st.planes, st.planes, 3, st.size, st.size,
                              1});
            layers.push_back({st.planes, st.planes * 4, 1, st.size,
                              st.size, 1});
            if (b == 0) {
                // Projection shortcut.
                layers.push_back({c_in, st.planes * 4, 1, st.size,
                                  st.size, stride});
            }
            c_in = st.planes * 4;
        }
    }

    model.cnn.classifier_in = 2048;
    model.cnn.classifier_out = 1000;
    model.cnn.simd_passes = 3.0;
    return model;
}

DnnModel
DnnModel::mlp4096()
{
    DnnModel model;
    model.name = "MLP";
    model.kind = Kind::Mlp;
    model.mlp.dims = {1024, 4096, 4096, 4096, 1024};
    model.mlp.simd_passes = 2.0;
    return model;
}

} // namespace workload
} // namespace equinox

/**
 * @file
 * Matrix-multiply engines in the three arithmetic encodings the paper
 * evaluates: fp32 (reference), bfloat16 (state-of-the-art training
 * accelerators), and hbfp8 (Equinox's dense encoding).
 *
 * The engines compute C = A x B (+ C when accumulating) with the numeric
 * behaviour of the corresponding datapath; the training substrate in
 * src/nn plugs them into identical SGD loops to reproduce Figure 2.
 */

#ifndef EQUINOX_ARITH_GEMM_HH
#define EQUINOX_ARITH_GEMM_HH

#include <memory>
#include <string>

#include "arith/bfp.hh"
#include "arith/tensor.hh"

namespace equinox
{
namespace arith
{

/** Which datapath numeric behaviour a GEMM engine models. */
enum class Encoding
{
    Fp32,
    Bfloat16,
    Hbfp8,
};

/** Printable name ("fp32", "bfloat16", "hbfp8"). */
const char *encodingName(Encoding e);

/** Abstract matrix-multiply engine. */
class GemmEngine
{
  public:
    virtual ~GemmEngine() = default;

    /**
     * C = A x B, or C += A x B when @p accumulate.
     * Shapes: A is MxK, B is KxN, C is MxN.
     */
    virtual void multiply(const Matrix &a, const Matrix &b, Matrix &c,
                          bool accumulate = false) const = 0;

    virtual Encoding encoding() const = 0;
    std::string name() const { return encodingName(encoding()); }

  protected:
    /** Validate operand shapes; shared by implementations. */
    static void checkShapes(const Matrix &a, const Matrix &b,
                            const Matrix &c);
};

/** Exact binary32 GEMM with double accumulation (the fp32 reference). */
class Fp32Gemm : public GemmEngine
{
  public:
    void multiply(const Matrix &a, const Matrix &b, Matrix &c,
                  bool accumulate) const override;
    Encoding encoding() const override { return Encoding::Fp32; }
};

/**
 * bfloat16 GEMM: operands rounded to bfloat16, products and accumulation
 * in binary32 (the standard fp32-accumulator datapath of TPU/Volta class
 * accelerators), output rounded back to bfloat16.
 */
class Bf16Gemm : public GemmEngine
{
  public:
    void multiply(const Matrix &a, const Matrix &b, Matrix &c,
                  bool accumulate) const override;
    Encoding encoding() const override { return Encoding::Bfloat16; }
};

/**
 * hbfp8 GEMM: operands quantized into BFP blocks along the inner (K)
 * dimension, multiplied as integer dot products with narrow saturating
 * accumulators, partial block results combined in bfloat16 (the SIMD
 * unit's encoding), matching the Equinox datapath of section 3.2.
 */
class HbfpGemm : public GemmEngine
{
  public:
    /**
     * @param fmt mantissa/exponent/accumulator widths
     * @param block_len BFP block length along K (the tile side in the
     *        hardware); defaults to 256
     */
    explicit HbfpGemm(BfpFormat fmt = hbfp8Format(),
                      std::size_t block_len = 256);

    void multiply(const Matrix &a, const Matrix &b, Matrix &c,
                  bool accumulate) const override;
    Encoding encoding() const override { return Encoding::Hbfp8; }

    const BfpFormat &format() const { return fmt; }
    std::size_t blockLength() const { return block_len_; }

  private:
    BfpFormat fmt;
    std::size_t block_len_;
};

/** Build the engine for @p e with default parameters. */
std::unique_ptr<GemmEngine> makeGemmEngine(Encoding e);

} // namespace arith
} // namespace equinox

#endif // EQUINOX_ARITH_GEMM_HH

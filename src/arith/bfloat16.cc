#include "arith/bfloat16.hh"

#include <bit>
#include <cmath>

namespace equinox
{
namespace arith
{

std::uint16_t
Bfloat16::roundFromFloat(float v)
{
    std::uint32_t bits = std::bit_cast<std::uint32_t>(v);

    if (std::isnan(v)) {
        // Quiet NaN, preserving the sign.
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }

    // Round to nearest even on the 16 discarded bits.
    std::uint32_t lsb = (bits >> 16) & 1u;
    std::uint32_t rounding_bias = 0x7FFFu + lsb;
    bits += rounding_bias;
    return static_cast<std::uint16_t>(bits >> 16);
}

float
Bfloat16::toFloat() const
{
    std::uint32_t wide = static_cast<std::uint32_t>(bits_) << 16;
    return std::bit_cast<float>(wide);
}

Bfloat16
Bfloat16::fromBits(std::uint16_t b)
{
    Bfloat16 r;
    r.bits_ = b;
    return r;
}

Bfloat16
Bfloat16::operator+(Bfloat16 o) const
{
    return Bfloat16(toFloat() + o.toFloat());
}

Bfloat16
Bfloat16::operator-(Bfloat16 o) const
{
    return Bfloat16(toFloat() - o.toFloat());
}

Bfloat16
Bfloat16::operator*(Bfloat16 o) const
{
    return Bfloat16(toFloat() * o.toFloat());
}

Bfloat16
Bfloat16::operator/(Bfloat16 o) const
{
    return Bfloat16(toFloat() / o.toFloat());
}

Bfloat16
Bfloat16::operator-() const
{
    return Bfloat16(-toFloat());
}

float
roundToBf16(float v)
{
    return Bfloat16(v).toFloat();
}

} // namespace arith
} // namespace equinox

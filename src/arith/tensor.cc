#include "arith/tensor.hh"

#include <algorithm>
#include <cmath>

namespace equinox
{
namespace arith
{

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(s);
}

float
Matrix::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::abs(v));
    return m;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    EQX_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in maxAbsDiff");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = std::abs(static_cast<double>(a.data()[i]) -
                            static_cast<double>(b.data()[i]));
        m = std::max(m, d);
    }
    return m;
}

} // namespace arith
} // namespace equinox

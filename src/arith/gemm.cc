#include "arith/gemm.hh"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "arith/bfloat16.hh"
#include "common/logging.hh"

namespace equinox
{
namespace arith
{

const char *
encodingName(Encoding e)
{
    switch (e) {
      case Encoding::Fp32: return "fp32";
      case Encoding::Bfloat16: return "bfloat16";
      case Encoding::Hbfp8: return "hbfp8";
      default: return "?";
    }
}

void
GemmEngine::checkShapes(const Matrix &a, const Matrix &b, const Matrix &c)
{
    EQX_ASSERT(a.cols() == b.rows(),
               "GEMM inner-dimension mismatch: ", a.cols(), " vs ",
               b.rows());
    EQX_ASSERT(c.rows() == a.rows() && c.cols() == b.cols(),
               "GEMM output shape mismatch");
}

void
Fp32Gemm::multiply(const Matrix &a, const Matrix &b, Matrix &c,
                   bool accumulate) const
{
    checkShapes(a, b, c);
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = accumulate ? c.at(i, j) : 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                acc += static_cast<double>(a.at(i, p)) *
                       static_cast<double>(b.at(p, j));
            }
            c.at(i, j) = static_cast<float>(acc);
        }
    }
}

void
Bf16Gemm::multiply(const Matrix &a, const Matrix &b, Matrix &c,
                   bool accumulate) const
{
    checkShapes(a, b, c);
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();

    // Pre-round the operands once (they live in bfloat16 buffers).
    std::vector<float> ar(a.size()), br(b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ar[i] = roundToBf16(a.data()[i]);
    for (std::size_t i = 0; i < b.size(); ++i)
        br[i] = roundToBf16(b.data()[i]);

    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            // fp32 accumulator, as in TPU-class hardware.
            float acc = accumulate ? c.at(i, j) : 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += ar[i * k + p] * br[p * n + j];
            c.at(i, j) = roundToBf16(acc);
        }
    }
}

HbfpGemm::HbfpGemm(BfpFormat format, std::size_t block_len)
    : fmt(format), block_len_(block_len)
{
    EQX_ASSERT(block_len_ > 0, "BFP block length must be positive");
}

void
HbfpGemm::multiply(const Matrix &a, const Matrix &b, Matrix &c,
                   bool accumulate) const
{
    checkShapes(a, b, c);
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    const std::size_t nblocks = (k + block_len_ - 1) / block_len_;

    // Quantize every (row, k-block) strip of A and (k-block, col) strip of
    // B once; the hardware does the same when loading tiles into the
    // activation/weight buffers.
    Matrix bt = b.transposed();
    std::vector<BfpBlock> a_blocks(m * nblocks), b_blocks(n * nblocks);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t blk = 0; blk < nblocks; ++blk) {
            std::size_t lo = blk * block_len_;
            std::size_t len = std::min(block_len_, k - lo);
            a_blocks[i * nblocks + blk] = BfpBlock::quantize(
                std::span<const float>(a.rowPtr(i) + lo, len), fmt);
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t blk = 0; blk < nblocks; ++blk) {
            std::size_t lo = blk * block_len_;
            std::size_t len = std::min(block_len_, k - lo);
            b_blocks[j * nblocks + blk] = BfpBlock::quantize(
                std::span<const float>(bt.rowPtr(j) + lo, len), fmt);
        }
    }

    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            // Partial block products leave the array as block floating
            // point, get converted to bfloat16 and combined by the SIMD
            // unit (section 3.2).
            float acc = accumulate ? c.at(i, j) : 0.0f;
            for (std::size_t blk = 0; blk < nblocks; ++blk) {
                float partial = BfpBlock::dot(a_blocks[i * nblocks + blk],
                                              b_blocks[j * nblocks + blk]);
                acc = roundToBf16(acc + roundToBf16(partial));
            }
            c.at(i, j) = acc;
        }
    }
}

std::unique_ptr<GemmEngine>
makeGemmEngine(Encoding e)
{
    switch (e) {
      case Encoding::Fp32:
        return std::make_unique<Fp32Gemm>();
      case Encoding::Bfloat16:
        return std::make_unique<Bf16Gemm>();
      case Encoding::Hbfp8:
        return std::make_unique<HbfpGemm>();
      default:
        EQX_PANIC("unknown encoding");
    }
}

} // namespace arith
} // namespace equinox

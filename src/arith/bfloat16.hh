/**
 * @file
 * Software bfloat16: the 16-bit brain floating-point encoding used by the
 * SIMD unit and by the bfloat16 MMU variant (truncated-significand IEEE
 * binary32 with round-to-nearest-even).
 */

#ifndef EQUINOX_ARITH_BFLOAT16_HH
#define EQUINOX_ARITH_BFLOAT16_HH

#include <cstdint>

namespace equinox
{
namespace arith
{

/**
 * A bfloat16 value: 1 sign, 8 exponent, 7 mantissa bits.
 *
 * Stored as the upper half of the equivalent binary32 pattern. All
 * arithmetic is performed by widening to float (which is exact) and
 * re-rounding, matching hardware that keeps fp32 accumulators.
 */
class Bfloat16
{
  public:
    Bfloat16() = default;

    /** Round a binary32 value to bfloat16 (round-to-nearest-even). */
    explicit Bfloat16(float v) : bits_(roundFromFloat(v)) {}

    /** Widen to binary32; exact. */
    float toFloat() const;

    /** Raw 16-bit pattern. */
    std::uint16_t bits() const { return bits_; }

    /** Build from a raw 16-bit pattern. */
    static Bfloat16 fromBits(std::uint16_t b);

    /** Round-to-nearest-even conversion from binary32 bits. */
    static std::uint16_t roundFromFloat(float v);

    Bfloat16 operator+(Bfloat16 o) const;
    Bfloat16 operator-(Bfloat16 o) const;
    Bfloat16 operator*(Bfloat16 o) const;
    Bfloat16 operator/(Bfloat16 o) const;
    Bfloat16 operator-() const;

    bool operator==(Bfloat16 o) const { return bits_ == o.bits_; }

  private:
    std::uint16_t bits_ = 0;
};

/** Convenience: round a float through bfloat16 precision and widen back. */
float roundToBf16(float v);

} // namespace arith
} // namespace equinox

#endif // EQUINOX_ARITH_BFLOAT16_HH

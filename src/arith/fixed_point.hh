/**
 * @file
 * Saturating signed fixed-point accumulator, parameterised on width.
 *
 * The hbfp8 systolic arrays use 8-bit multipliers feeding 25-bit
 * accumulators (paper section 3.2); this template models the accumulator's
 * saturation behaviour exactly.
 */

#ifndef EQUINOX_ARITH_FIXED_POINT_HH
#define EQUINOX_ARITH_FIXED_POINT_HH

#include <cstdint>

namespace equinox
{
namespace arith
{

/**
 * A signed two's-complement accumulator with @p Bits total width that
 * saturates instead of wrapping.
 */
template <unsigned Bits>
class SatAccumulator
{
    static_assert(Bits >= 2 && Bits <= 63, "unsupported accumulator width");

  public:
    static constexpr std::int64_t kMax = (std::int64_t{1} << (Bits - 1)) - 1;
    static constexpr std::int64_t kMin = -(std::int64_t{1} << (Bits - 1));

    SatAccumulator() = default;
    explicit SatAccumulator(std::int64_t v) { add(v); }

    /** Add @p v, saturating at the width limits. */
    void
    add(std::int64_t v)
    {
        // Both operands fit in 63 bits, so the sum cannot overflow int64.
        std::int64_t sum = value_ + v;
        if (sum > kMax) {
            value_ = kMax;
            saturated_ = true;
        } else if (sum < kMin) {
            value_ = kMin;
            saturated_ = true;
        } else {
            value_ = sum;
        }
    }

    /** Multiply-accumulate of two narrow operands. */
    void
    mac(std::int32_t a, std::int32_t b)
    {
        add(static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b));
    }

    std::int64_t value() const { return value_; }

    /** True if any addition clipped. */
    bool saturated() const { return saturated_; }

    void
    reset()
    {
        value_ = 0;
        saturated_ = false;
    }

  private:
    std::int64_t value_ = 0;
    bool saturated_ = false;
};

/** Clamp @p v into the signed range of @p bits total width. */
constexpr std::int32_t
clampToBits(std::int64_t v, unsigned bits)
{
    std::int64_t max = (std::int64_t{1} << (bits - 1)) - 1;
    std::int64_t min = -max; // symmetric range, as quantizers produce
    if (v > max)
        return static_cast<std::int32_t>(max);
    if (v < min)
        return static_cast<std::int32_t>(min);
    return static_cast<std::int32_t>(v);
}

} // namespace arith
} // namespace equinox

#endif // EQUINOX_ARITH_FIXED_POINT_HH

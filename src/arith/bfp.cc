#include "arith/bfp.hh"

#include <algorithm>
#include <cmath>

#include "arith/fixed_point.hh"
#include "common/logging.hh"

namespace equinox
{
namespace arith
{

BfpFormat
hbfp8Format()
{
    return BfpFormat{8, 12, 25};
}

BfpBlock
BfpBlock::quantize(std::span<const float> values, const BfpFormat &fmt)
{
    EQX_ASSERT(fmt.mantissa_bits >= 2 && fmt.mantissa_bits <= 15,
               "unsupported mantissa width ", fmt.mantissa_bits);

    BfpBlock blk;
    blk.fmt_ = fmt;
    blk.mantissas.resize(values.size());

    float max_abs = 0.0f;
    for (float v : values)
        max_abs = std::max(max_abs, std::abs(v));

    if (max_abs == 0.0f) {
        blk.exponent_ = fmt.exponentMin();
        std::fill(blk.mantissas.begin(), blk.mantissas.end(),
                  std::int16_t{0});
        return blk;
    }

    // Shared exponent: smallest e with max_abs < 2^e, so that all scaled
    // mantissas land in (-1, 1). Rounding can still push the largest
    // mantissa to 2^(mbits-1); bump the exponent once in that case so the
    // round-to-nearest half-step error bound holds for every element.
    int e = static_cast<int>(std::floor(std::log2(max_abs))) + 1;
    std::int32_t mmax = fmt.mantissaMax();
    double ratio = static_cast<double>(max_abs) * std::ldexp(1.0, -e);
    if (std::nearbyint(ratio * std::ldexp(1.0, fmt.mantissa_bits - 1)) >
        mmax) {
        ++e;
    }
    e = std::clamp<int>(e, fmt.exponentMin(), fmt.exponentMax());
    blk.exponent_ = e;

    double scale = std::ldexp(1.0, -(e - static_cast<int>(
        fmt.mantissa_bits - 1)));
    for (std::size_t i = 0; i < values.size(); ++i) {
        auto q = static_cast<std::int64_t>(
            std::nearbyint(static_cast<double>(values[i]) * scale));
        q = std::clamp<std::int64_t>(q, -static_cast<std::int64_t>(mmax),
                                     static_cast<std::int64_t>(mmax));
        blk.mantissas[i] = static_cast<std::int16_t>(q);
    }
    return blk;
}

std::vector<float>
BfpBlock::dequantize() const
{
    std::vector<float> out(mantissas.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = dequantize(i);
    return out;
}

float
BfpBlock::dequantize(std::size_t i) const
{
    EQX_ASSERT(i < mantissas.size(), "BFP index out of range");
    double v = std::ldexp(static_cast<double>(mantissas[i]),
                          exponent_ -
                              static_cast<int>(fmt_.mantissa_bits - 1));
    return static_cast<float>(v);
}

float
BfpBlock::dot(const BfpBlock &a, const BfpBlock &b)
{
    EQX_ASSERT(a.size() == b.size(), "BFP dot size mismatch: ",
               a.size(), " vs ", b.size());
    EQX_ASSERT(a.fmt_.mantissa_bits == b.fmt_.mantissa_bits,
               "BFP dot format mismatch");

    // The hardware accumulates int products into a narrow saturating
    // register. We model the canonical 25-bit case with the generic
    // template instantiated at the configured width.
    const unsigned acc_bits = a.fmt_.accumulator_bits;
    std::int64_t acc = 0;
    const std::int64_t acc_max = (std::int64_t{1} << (acc_bits - 1)) - 1;
    const std::int64_t acc_min = -(std::int64_t{1} << (acc_bits - 1));
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc += static_cast<std::int64_t>(a.mantissas[i]) *
               static_cast<std::int64_t>(b.mantissas[i]);
        acc = std::clamp(acc, acc_min, acc_max);
    }

    int frac_bits = 2 * static_cast<int>(a.fmt_.mantissa_bits - 1);
    double v = std::ldexp(static_cast<double>(acc),
                          a.exponent_ + b.exponent_ - frac_bits);
    return static_cast<float>(v);
}

double
BfpBlock::quantizationStep(std::int32_t exponent, const BfpFormat &fmt)
{
    return std::ldexp(1.0,
                      exponent - static_cast<int>(fmt.mantissa_bits - 1));
}

} // namespace arith
} // namespace equinox

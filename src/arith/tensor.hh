/**
 * @file
 * Minimal row-major fp32 matrix used by the arithmetic engines and the
 * training substrate.
 */

#ifndef EQUINOX_ARITH_TENSOR_HH
#define EQUINOX_ARITH_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace equinox
{
namespace arith
{

/** Dense row-major matrix of binary32 values. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(std::size_t n_rows, std::size_t n_cols, float fill = 0.0f)
        : rows_(n_rows), cols_(n_cols), data_(n_rows * n_cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(std::size_t r, std::size_t c)
    {
        EQX_ASSERT(r < rows_ && c < cols_,
                   "matrix index (", r, ",", c, ") out of (", rows_, ",",
                   cols_, ")");
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        EQX_ASSERT(r < rows_ && c < cols_,
                   "matrix index (", r, ",", c, ") out of (", rows_, ",",
                   cols_, ")");
        return data_[r * cols_ + c];
    }

    float *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with zeros. */
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Fill with N(0, sd) samples from @p rng. */
    void
    randomize(Rng &rng, double sd)
    {
        for (auto &v : data_)
            v = static_cast<float>(rng.normal(0.0, sd));
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute element. */
    float maxAbs() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** Max absolute elementwise difference between same-shape matrices. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

} // namespace arith
} // namespace equinox

#endif // EQUINOX_ARITH_TENSOR_HH

/**
 * @file
 * Block floating point: a vector of narrow fixed-point mantissas sharing a
 * single exponent, the building block of HBFP (Drumond et al., NeurIPS'18).
 *
 * Equinox's hbfp8 datapath uses 8-bit mantissas with a 12-bit shared
 * exponent; two blocks are multiplied as an integer dot product plus an
 * exponent addition, accumulating into a 25-bit fixed-point register.
 */

#ifndef EQUINOX_ARITH_BFP_HH
#define EQUINOX_ARITH_BFP_HH

#include <cstdint>
#include <span>
#include <vector>

namespace equinox
{
namespace arith
{

/** Static parameters of a BFP encoding. */
struct BfpFormat
{
    unsigned mantissa_bits = 8;  //!< total signed mantissa width
    unsigned exponent_bits = 12; //!< shared-exponent width (biased)
    unsigned accumulator_bits = 25; //!< systolic-array accumulator width

    /** Largest representable mantissa magnitude. */
    std::int32_t
    mantissaMax() const
    {
        return (std::int32_t{1} << (mantissa_bits - 1)) - 1;
    }

    /** Most negative representable shared exponent. */
    std::int32_t
    exponentMin() const
    {
        return -(std::int32_t{1} << (exponent_bits - 1));
    }

    /** Most positive representable shared exponent. */
    std::int32_t
    exponentMax() const
    {
        return (std::int32_t{1} << (exponent_bits - 1)) - 1;
    }
};

/** The canonical Equinox encoding: hbfp8. */
BfpFormat hbfp8Format();

/**
 * One block: narrow mantissas sharing one exponent.
 *
 * A value i decodes as mantissa[i] * 2^exponent / 2^(mantissa_bits-1),
 * i.e. mantissas are fixed point in (-1, 1) scaled by 2^exponent.
 */
class BfpBlock
{
  public:
    BfpBlock() = default;

    /** Quantize @p values into the block under @p fmt. */
    static BfpBlock quantize(std::span<const float> values,
                             const BfpFormat &fmt);

    /** Decode back to binary32. */
    std::vector<float> dequantize() const;

    /** Decode a single element. */
    float dequantize(std::size_t i) const;

    std::size_t size() const { return mantissas.size(); }
    std::int32_t exponent() const { return exponent_; }
    std::int32_t mantissa(std::size_t i) const { return mantissas.at(i); }
    const BfpFormat &format() const { return fmt_; }

    /**
     * Integer dot product of two equally sized blocks, the way the systolic
     * array computes it: int8 x int8 products accumulated into a saturating
     * accumulator of fmt.accumulator_bits, exponents added.
     *
     * @return the dot product decoded to binary32 (including any
     *         saturation that occurred in the narrow accumulator).
     */
    static float dot(const BfpBlock &a, const BfpBlock &b);

    /**
     * Worst-case absolute quantization error for a block with shared
     * exponent e under @p fmt (half a mantissa ulp).
     */
    static double quantizationStep(std::int32_t exponent,
                                   const BfpFormat &fmt);

  private:
    BfpFormat fmt_;
    std::int32_t exponent_ = 0;
    std::vector<std::int16_t> mantissas; // int16 holds up to 15-bit formats
};

} // namespace arith
} // namespace equinox

#endif // EQUINOX_ARITH_BFP_HH

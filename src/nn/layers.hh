/**
 * @file
 * Neural-network layers with a pluggable GEMM engine.
 *
 * All matrix products (forward, input-gradient and weight-gradient) run
 * through an arith::GemmEngine, so the identical SGD loop can train in
 * fp32, bfloat16 or hbfp8 arithmetic -- the setup behind Figure 2. Element
 * wise operations run in binary32, standing in for the bfloat16 SIMD unit
 * (whose precision exceeds fp32's only in range, not in the behaviours the
 * figure compares).
 */

#ifndef EQUINOX_NN_LAYERS_HH
#define EQUINOX_NN_LAYERS_HH

#include <memory>

#include "arith/gemm.hh"
#include "arith/tensor.hh"
#include "common/random.hh"

namespace equinox
{
namespace nn
{

using arith::Matrix;

/** Elementwise nonlinearity selector. */
enum class Activation
{
    None,
    Relu,
    Tanh,
};

/** Apply @p act elementwise. */
void applyActivation(Activation act, Matrix &m);

/**
 * Multiply @p upstream by the activation derivative evaluated at the
 * pre-activation output @p activated (both ReLU and tanh derivatives are
 * expressible from the activated value).
 */
void applyActivationGrad(Activation act, const Matrix &activated,
                         Matrix &upstream);

/**
 * Fully connected layer: Y = act(X W + b).
 *
 * Gradients: dX = dY_pre W^T, dW = X^T dY_pre, db = colsum(dY_pre).
 */
class DenseLayer
{
  public:
    /**
     * @param in_dim input feature count
     * @param out_dim output feature count
     * @param act nonlinearity
     * @param rng weight-initialisation stream (Xavier/Glorot)
     */
    DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
               Rng &rng);

    /**
     * Forward pass; caches input and output for backward().
     * @param x batch-major input (batch x in_dim)
     * @param engine arithmetic to run the GEMM in
     * @return activated output (batch x out_dim)
     */
    Matrix forward(const Matrix &x, const arith::GemmEngine &engine);

    /**
     * Backward pass; accumulates weight/bias gradients internally.
     * @param d_out gradient w.r.t. this layer's output
     * @return gradient w.r.t. this layer's input
     */
    Matrix backward(const Matrix &d_out, const arith::GemmEngine &engine);

    /** SGD step with momentum; clears accumulated gradients. */
    void step(double lr, double momentum);

    std::size_t inDim() const { return weights.rows(); }
    std::size_t outDim() const { return weights.cols(); }
    const Matrix &weightMatrix() const { return weights; }

  private:
    Matrix weights;  // in_dim x out_dim
    Matrix bias;     // 1 x out_dim
    Matrix w_grad;
    Matrix b_grad;
    Matrix w_vel;    // momentum buffers
    Matrix b_vel;
    Matrix cached_in;
    Matrix cached_out;
    Activation activation;
};

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_LAYERS_HH

/**
 * @file
 * A recurrent network trained with backpropagation through time, with
 * every matrix product routed through an arith::GemmEngine.
 *
 * Equinox's training workload is an LSTM; this Elman cell exercises the
 * same structure the datapath sees -- a recurrent weight GEMM per step
 * in the forward pass, transposed-weight GEMMs in the data-gradient
 * pass, and per-step weight-gradient GEMMs accumulated across time --
 * so the Figure 2 comparison also covers recurrent training, not just
 * feed-forward nets.
 */

#ifndef EQUINOX_NN_RNN_HH
#define EQUINOX_NN_RNN_HH

#include <cstdint>
#include <vector>

#include "arith/gemm.hh"
#include "arith/tensor.hh"
#include "common/random.hh"

namespace equinox
{
namespace nn
{

using arith::Matrix;

/**
 * Elman recurrent classifier with mean-pooled readout:
 *   h_t = tanh(x_t Wx + h_{t-1} Wh + b),
 *   logits = mean_t(h_t) Wy + by.
 */
class ElmanRnn
{
  public:
    /**
     * @param in_dim per-step input width
     * @param hidden recurrent state width
     * @param classes output classes
     * @param rng weight-initialisation stream
     */
    ElmanRnn(std::size_t in_dim, std::size_t hidden, std::size_t classes,
             Rng &rng);

    /**
     * Forward pass over a batch of sequences.
     * @param x batch x (steps * in_dim), step-major
     * @param steps sequence length
     * @return logits (batch x classes); state cached for backward()
     */
    Matrix forward(const Matrix &x, std::size_t steps,
                   const arith::GemmEngine &engine);

    /** BPTT from logit gradients; accumulates weight gradients. */
    void backward(const Matrix &logit_grad,
                  const arith::GemmEngine &engine);

    /** SGD-with-momentum step; clears gradients. */
    void step(double lr, double momentum);

    std::size_t inDim() const { return wx.rows(); }
    std::size_t hiddenDim() const { return wh.rows(); }
    std::size_t classCount() const { return wy.cols(); }

  private:
    /** Slice step @p t of the step-major input into a batch x in_dim. */
    Matrix sliceStep(const Matrix &x, std::size_t t) const;

    Matrix wx;  // in_dim x hidden
    Matrix wh;  // hidden x hidden
    Matrix wy;  // hidden x classes
    Matrix bh;  // 1 x hidden
    Matrix by;  // 1 x classes

    Matrix g_wx, g_wh, g_wy, g_bh, g_by;
    Matrix v_wx, v_wh, v_wy, v_bh, v_by;

    // caches for BPTT
    Matrix cached_x;
    Matrix pooled_cache;
    std::size_t cached_steps = 0;
    std::vector<Matrix> hidden_states; // h_1 .. h_T (batch x hidden)
};

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_RNN_HH

#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace nn
{

SoftmaxLossResult
softmaxCrossEntropy(const Matrix &logits,
                    const std::vector<std::uint32_t> &labels)
{
    EQX_ASSERT(logits.rows() == labels.size(),
               "label count ", labels.size(), " != batch ", logits.rows());
    const std::size_t batch = logits.rows();
    const std::size_t classes = logits.cols();
    EQX_ASSERT(batch > 0 && classes > 0, "empty softmax batch");

    SoftmaxLossResult res;
    res.logit_grad = Matrix(batch, classes);

    double loss_sum = 0.0;
    std::size_t errors = 0;
    for (std::size_t r = 0; r < batch; ++r) {
        EQX_ASSERT(labels[r] < classes, "label out of range: ", labels[r]);

        // Stable softmax.
        float mx = logits.at(r, 0);
        std::size_t argmax = 0;
        for (std::size_t c = 1; c < classes; ++c) {
            if (logits.at(r, c) > mx) {
                mx = logits.at(r, c);
                argmax = c;
            }
        }
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits.at(r, c) - mx));

        double log_denom = std::log(denom);
        double log_p_label =
            static_cast<double>(logits.at(r, labels[r]) - mx) - log_denom;
        loss_sum -= log_p_label;
        if (argmax != labels[r])
            ++errors;

        double inv_batch = 1.0 / static_cast<double>(batch);
        for (std::size_t c = 0; c < classes; ++c) {
            double p = std::exp(
                static_cast<double>(logits.at(r, c) - mx)) / denom;
            double t = (c == labels[r]) ? 1.0 : 0.0;
            res.logit_grad.at(r, c) = static_cast<float>((p - t) *
                                                         inv_batch);
        }
    }

    res.mean_loss = loss_sum / static_cast<double>(batch);
    res.error_rate = static_cast<double>(errors) /
                     static_cast<double>(batch);
    return res;
}

double
perplexityFromLoss(double mean_loss)
{
    return std::exp(mean_loss);
}

MseResult
meanSquaredError(const Matrix &predictions, const Matrix &targets)
{
    EQX_ASSERT(predictions.rows() == targets.rows() &&
                   predictions.cols() == targets.cols(),
               "MSE shape mismatch");
    MseResult res;
    res.grad = Matrix(predictions.rows(), predictions.cols());
    double inv_batch = 1.0 / static_cast<double>(predictions.rows());
    double sum = 0.0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        double d = static_cast<double>(predictions.data()[i]) -
                   static_cast<double>(targets.data()[i]);
        sum += 0.5 * d * d;
        res.grad.data()[i] = static_cast<float>(d * inv_batch);
    }
    res.mean_loss = sum * inv_batch;
    return res;
}

} // namespace nn
} // namespace equinox

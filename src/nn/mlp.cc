#include "nn/mlp.hh"

#include "common/logging.hh"

namespace equinox
{
namespace nn
{

Mlp::Mlp(const std::vector<std::size_t> &dims, Activation hidden_act,
         const arith::GemmEngine &engine, Rng &rng)
    : engine_(engine)
{
    EQX_ASSERT(dims.size() >= 2, "MLP needs at least input/output dims");
    layers.reserve(dims.size() - 1);
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        bool last = (i + 2 == dims.size());
        layers.emplace_back(dims[i], dims[i + 1],
                            last ? Activation::None : hidden_act, rng);
    }
}

Matrix
Mlp::forward(const Matrix &x)
{
    Matrix cur = x;
    for (auto &layer : layers)
        cur = layer.forward(cur, engine_);
    return cur;
}

void
Mlp::backward(const Matrix &logit_grad)
{
    Matrix grad = logit_grad;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        grad = it->backward(grad, engine_);
}

void
Mlp::step(double lr, double momentum)
{
    for (auto &layer : layers)
        layer.step(lr, momentum);
}

} // namespace nn
} // namespace equinox

/**
 * @file
 * SGD hyper-parameters and learning-rate schedules.
 */

#ifndef EQUINOX_NN_OPTIMIZER_HH
#define EQUINOX_NN_OPTIMIZER_HH

#include <cstddef>
#include <vector>

namespace equinox
{
namespace nn
{

/** Plain SGD-with-momentum hyper-parameters plus a step-decay schedule. */
struct SgdConfig
{
    double learning_rate = 0.05;
    double momentum = 0.9;
    /** Multiply the rate by decay_factor at each epoch in decay_epochs. */
    double decay_factor = 0.1;
    std::vector<std::size_t> decay_epochs;

    /** Effective learning rate for @p epoch (0-based). */
    double rateForEpoch(std::size_t epoch) const;
};

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_OPTIMIZER_HH

#include "nn/rnn.hh"

#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace nn
{

namespace
{

/** SGD-with-momentum update of one tensor. */
void
sgdStep(Matrix &weights, Matrix &grad, Matrix &velocity, double lr,
        double momentum)
{
    for (std::size_t i = 0; i < weights.size(); ++i) {
        float v = static_cast<float>(momentum) * velocity.data()[i] -
                  static_cast<float>(lr) * grad.data()[i];
        velocity.data()[i] = v;
        weights.data()[i] += v;
    }
    grad.zero();
}

} // namespace

ElmanRnn::ElmanRnn(std::size_t in_dim, std::size_t hidden,
                   std::size_t classes, Rng &rng)
    : wx(in_dim, hidden),
      wh(hidden, hidden),
      wy(hidden, classes),
      bh(1, hidden),
      by(1, classes),
      g_wx(in_dim, hidden),
      g_wh(hidden, hidden),
      g_wy(hidden, classes),
      g_bh(1, hidden),
      g_by(1, classes),
      v_wx(in_dim, hidden),
      v_wh(hidden, hidden),
      v_wy(hidden, classes),
      v_bh(1, hidden),
      v_by(1, classes)
{
    wx.randomize(rng, std::sqrt(1.0 / static_cast<double>(in_dim)));
    // Scaled orthogonal-ish recurrent init keeps gradients stable.
    wh.randomize(rng, std::sqrt(0.5 / static_cast<double>(hidden)));
    wy.randomize(rng, std::sqrt(1.0 / static_cast<double>(hidden)));
}

Matrix
ElmanRnn::sliceStep(const Matrix &x, std::size_t t) const
{
    const std::size_t in_dim = wx.rows();
    Matrix out(x.rows(), in_dim);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const float *src = x.rowPtr(r) + t * in_dim;
        std::copy(src, src + in_dim, out.rowPtr(r));
    }
    return out;
}

Matrix
ElmanRnn::forward(const Matrix &x, std::size_t steps,
                  const arith::GemmEngine &engine)
{
    const std::size_t in_dim = wx.rows();
    const std::size_t hidden = wh.rows();
    EQX_ASSERT(x.cols() == steps * in_dim,
               "sequence width ", x.cols(), " != steps*in_dim ",
               steps * in_dim);

    cached_x = x;
    cached_steps = steps;
    hidden_states.assign(steps, Matrix());

    Matrix h(x.rows(), hidden, 0.0f);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix xt = sliceStep(x, t);
        Matrix pre(x.rows(), hidden);
        engine.multiply(xt, wx, pre, false);
        engine.multiply(h, wh, pre, true);
        for (std::size_t r = 0; r < pre.rows(); ++r)
            for (std::size_t c = 0; c < hidden; ++c)
                pre.at(r, c) = std::tanh(pre.at(r, c) + bh.at(0, c));
        h = pre;
        hidden_states[t] = h;
    }

    // Mean-pooled readout over all hidden states.
    Matrix pooled(x.rows(), hidden, 0.0f);
    for (const auto &ht : hidden_states)
        for (std::size_t i = 0; i < pooled.size(); ++i)
            pooled.data()[i] += ht.data()[i];
    float inv_steps = 1.0f / static_cast<float>(steps);
    for (std::size_t i = 0; i < pooled.size(); ++i)
        pooled.data()[i] *= inv_steps;
    pooled_cache = pooled;

    Matrix logits(x.rows(), wy.cols());
    engine.multiply(pooled, wy, logits, false);
    for (std::size_t r = 0; r < logits.rows(); ++r)
        for (std::size_t c = 0; c < logits.cols(); ++c)
            logits.at(r, c) += by.at(0, c);
    return logits;
}

void
ElmanRnn::backward(const Matrix &logit_grad,
                   const arith::GemmEngine &engine)
{
    EQX_ASSERT(cached_steps > 0, "backward() before forward()");
    const std::size_t hidden = wh.rows();

    // Classifier gradients against the pooled state.
    {
        Matrix pt = pooled_cache.transposed();
        engine.multiply(pt, logit_grad, g_wy, true);
        for (std::size_t r = 0; r < logit_grad.rows(); ++r)
            for (std::size_t c = 0; c < logit_grad.cols(); ++c)
                g_by.at(0, c) += logit_grad.at(r, c);
    }

    // Every step's hidden state receives dPool = dLogits Wy^T / T in
    // addition to the recurrent gradient flow.
    Matrix wy_t = wy.transposed();
    Matrix dpool(logit_grad.rows(), hidden);
    engine.multiply(logit_grad, wy_t, dpool, false);
    float inv_steps = 1.0f / static_cast<float>(cached_steps);
    for (std::size_t i = 0; i < dpool.size(); ++i)
        dpool.data()[i] *= inv_steps;

    Matrix dh = dpool;
    Matrix wh_t = wh.transposed();
    for (std::size_t t = cached_steps; t-- > 0;) {
        const Matrix &h_t = hidden_states[t];
        // dPre = dh * (1 - h^2).
        Matrix dpre = dh;
        for (std::size_t i = 0; i < dpre.size(); ++i) {
            float y = h_t.data()[i];
            dpre.data()[i] *= (1.0f - y * y);
        }

        // Weight gradients: dWx += x_t^T dPre, dWh += h_{t-1}^T dPre.
        Matrix xt = sliceStep(cached_x, t).transposed();
        engine.multiply(xt, dpre, g_wx, true);
        if (t > 0) {
            Matrix hprev_t = hidden_states[t - 1].transposed();
            engine.multiply(hprev_t, dpre, g_wh, true);
        }
        for (std::size_t r = 0; r < dpre.rows(); ++r)
            for (std::size_t c = 0; c < hidden; ++c)
                g_bh.at(0, c) += dpre.at(r, c);

        // dh for the previous step: recurrent flow plus its own share
        // of the pooled readout gradient.
        if (t > 0) {
            Matrix next(dpre.rows(), hidden);
            engine.multiply(dpre, wh_t, next, false);
            for (std::size_t i = 0; i < next.size(); ++i)
                next.data()[i] += dpool.data()[i];
            dh = next;
        }
    }
}

void
ElmanRnn::step(double lr, double momentum)
{
    sgdStep(wx, g_wx, v_wx, lr, momentum);
    sgdStep(wh, g_wh, v_wh, lr, momentum);
    sgdStep(wy, g_wy, v_wy, lr, momentum);
    sgdStep(bh, g_bh, v_bh, lr, momentum);
    sgdStep(by, g_by, v_by, lr, momentum);
}

} // namespace nn
} // namespace equinox

#include "nn/datasets.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace equinox
{
namespace nn
{

namespace
{

/** Deterministic per-epoch permutation of [0, n). */
std::vector<std::size_t>
epochPermutation(std::size_t n, std::size_t epoch, std::uint64_t seed)
{
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (epoch + 1)));
    for (std::size_t i = n; i > 1; --i) {
        std::size_t j = rng.uniformInt(0, i - 1);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

/** Gather a minibatch from a full split via a permutation window. */
Batch
gatherBatch(const Batch &full, const std::vector<std::size_t> &perm,
            std::size_t index, std::size_t batch_size)
{
    std::size_t n = full.labels.size();
    std::size_t lo = index * batch_size;
    EQX_ASSERT(lo < n, "batch index ", index, " beyond dataset");
    std::size_t hi = std::min(lo + batch_size, n);

    Batch out;
    out.inputs = Matrix(hi - lo, full.inputs.cols());
    out.labels.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
        std::size_t src = perm[i];
        for (std::size_t c = 0; c < full.inputs.cols(); ++c)
            out.inputs.at(i - lo, c) = full.inputs.at(src, c);
        out.labels[i - lo] = full.labels[src];
    }
    return out;
}

} // namespace

ClusterDataset::ClusterDataset(std::size_t classes, std::size_t dim,
                               std::size_t train_n, std::size_t valid_n,
                               double noise, std::uint64_t seed)
    : classes_(classes), dim_(dim)
{
    EQX_ASSERT(classes >= 2 && dim >= 2, "degenerate cluster dataset");
    Rng rng(seed);

    // Latent class centroids in a low-dimensional space, mapped up through
    // a fixed random nonlinear feature map so classes are not linearly
    // separable in the observed space.
    const std::size_t latent = 4;
    Matrix centroids(classes, latent);
    centroids.randomize(rng, 1.5);
    Matrix projection(latent, dim);
    projection.randomize(rng, 1.0);
    Matrix bend(dim, dim);
    bend.randomize(rng, 0.6 / std::sqrt(static_cast<double>(dim)));

    auto sample_split = [&](std::size_t n, Batch &out) {
        out.inputs = Matrix(n, dim);
        out.labels.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            auto cls = static_cast<std::uint32_t>(
                rng.uniformInt(0, classes - 1));
            out.labels[i] = cls;
            std::vector<double> z(latent);
            for (std::size_t l = 0; l < latent; ++l)
                z[l] = centroids.at(cls, l) + rng.normal(0.0, noise);
            // Linear projection ...
            std::vector<double> x(dim, 0.0);
            for (std::size_t d = 0; d < dim; ++d)
                for (std::size_t l = 0; l < latent; ++l)
                    x[d] += z[l] * projection.at(l, d);
            // ... then a fixed quadratic bend and observation noise.
            for (std::size_t d = 0; d < dim; ++d) {
                double bent = x[d];
                for (std::size_t e = 0; e < dim; ++e)
                    bent += bend.at(d, e) * x[e] * std::tanh(x[e]);
                out.inputs.at(i, d) = static_cast<float>(
                    bent + rng.normal(0.0, noise * 0.5));
            }
        }
    };

    sample_split(train_n, train);
    sample_split(valid_n, valid);
}

Batch
ClusterDataset::trainBatch(std::size_t epoch, std::size_t index,
                           std::size_t batch_size) const
{
    auto perm = epochPermutation(train.labels.size(), epoch, 0xC105ul);
    return gatherBatch(train, perm, index, batch_size);
}

MarkovTextDataset::MarkovTextDataset(std::size_t vocab, std::size_t context,
                                     std::size_t train_n,
                                     std::size_t valid_n,
                                     double concentration,
                                     std::uint64_t seed)
    : vocab_(vocab), context_(context)
{
    EQX_ASSERT(vocab >= 2 && context >= 1, "degenerate text dataset");
    Rng rng(seed);

    // Random row-stochastic transition matrix with tunable sharpness.
    std::vector<std::vector<double>> transition(vocab,
                                                std::vector<double>(vocab));
    for (std::size_t r = 0; r < vocab; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < vocab; ++c) {
            double g = -std::log(1.0 - rng.uniform());
            double v = std::pow(g, concentration);
            transition[r][c] = v;
            sum += v;
        }
        for (std::size_t c = 0; c < vocab; ++c)
            transition[r][c] /= sum;
    }

    // Conditional entropy of the chain (the perplexity floor), weighted by
    // an empirical stationary estimate from a long rollout.
    std::vector<double> visits(vocab, 0.0);
    {
        std::size_t state = 0;
        for (std::size_t t = 0; t < 200000; ++t) {
            visits[state] += 1.0;
            double u = rng.uniform(), acc = 0.0;
            std::size_t next = vocab - 1;
            for (std::size_t c = 0; c < vocab; ++c) {
                acc += transition[state][c];
                if (u < acc) {
                    next = c;
                    break;
                }
            }
            state = next;
        }
    }
    double total_visits = std::accumulate(visits.begin(), visits.end(), 0.0);
    entropy = 0.0;
    for (std::size_t r = 0; r < vocab; ++r) {
        double pi = visits[r] / total_visits;
        for (std::size_t c = 0; c < vocab; ++c) {
            double p = transition[r][c];
            if (p > 0.0)
                entropy -= pi * p * std::log(p);
        }
    }

    auto sample_split = [&](std::size_t n, Batch &out) {
        out.inputs = Matrix(n, vocab * context);
        out.labels.resize(n);
        std::vector<std::size_t> window(context, 0);
        std::size_t state = rng.uniformInt(0, vocab - 1);
        for (std::size_t i = 0; i < n; ++i) {
            // Advance the chain `context` steps recording the window, then
            // one more step for the label.
            for (std::size_t w = 0; w < context; ++w) {
                window[w] = state;
                double u = rng.uniform(), acc = 0.0;
                std::size_t next = vocab - 1;
                for (std::size_t c = 0; c < vocab; ++c) {
                    acc += transition[state][c];
                    if (u < acc) {
                        next = c;
                        break;
                    }
                }
                state = next;
            }
            for (std::size_t w = 0; w < context; ++w)
                out.inputs.at(i, w * vocab + window[w]) = 1.0f;
            out.labels[i] = static_cast<std::uint32_t>(state);
        }
    };

    sample_split(train_n, train);
    sample_split(valid_n, valid);
}

Batch
MarkovTextDataset::trainBatch(std::size_t epoch, std::size_t index,
                              std::size_t batch_size) const
{
    auto perm = epochPermutation(train.labels.size(), epoch, 0x7E47ul);
    return gatherBatch(train, perm, index, batch_size);
}

ChainSequenceDataset::ChainSequenceDataset(std::size_t chains,
                                           std::size_t vocab,
                                           std::size_t steps,
                                           std::size_t train_n,
                                           std::size_t valid_n,
                                           double concentration,
                                           std::uint64_t seed)
    : chains_(chains), vocab_(vocab), steps_(steps)
{
    EQX_ASSERT(chains >= 2 && vocab >= 2 && steps >= 2,
               "degenerate sequence dataset");
    Rng rng(seed);

    // One random row-stochastic transition matrix per class.
    std::vector<std::vector<std::vector<double>>> transition(
        chains,
        std::vector<std::vector<double>>(vocab,
                                         std::vector<double>(vocab)));
    for (std::size_t k = 0; k < chains; ++k) {
        for (std::size_t r = 0; r < vocab; ++r) {
            double sum = 0.0;
            for (std::size_t c = 0; c < vocab; ++c) {
                double g = -std::log(1.0 - rng.uniform());
                double v = std::pow(g, concentration);
                transition[k][r][c] = v;
                sum += v;
            }
            for (std::size_t c = 0; c < vocab; ++c)
                transition[k][r][c] /= sum;
        }
    }

    auto sample_split = [&](std::size_t n, Batch &out) {
        out.inputs = Matrix(n, vocab * steps);
        out.labels.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            auto k = static_cast<std::uint32_t>(
                rng.uniformInt(0, chains - 1));
            out.labels[i] = k;
            std::size_t state = rng.uniformInt(0, vocab - 1);
            for (std::size_t t = 0; t < steps; ++t) {
                out.inputs.at(i, t * vocab + state) = 1.0f;
                double u = rng.uniform(), acc = 0.0;
                std::size_t next = vocab - 1;
                for (std::size_t c = 0; c < vocab; ++c) {
                    acc += transition[k][state][c];
                    if (u < acc) {
                        next = c;
                        break;
                    }
                }
                state = next;
            }
        }
    };

    sample_split(train_n, train);
    sample_split(valid_n, valid);
}

Batch
ChainSequenceDataset::trainBatch(std::size_t epoch, std::size_t index,
                                 std::size_t batch_size) const
{
    auto perm = epochPermutation(train.labels.size(), epoch, 0x5EC5ul);
    return gatherBatch(train, perm, index, batch_size);
}

} // namespace nn
} // namespace equinox

#include "nn/layers.hh"

#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace nn
{

void
applyActivation(Activation act, Matrix &m)
{
    switch (act) {
      case Activation::None:
        return;
      case Activation::Relu:
        for (std::size_t i = 0; i < m.size(); ++i)
            m.data()[i] = std::max(0.0f, m.data()[i]);
        return;
      case Activation::Tanh:
        for (std::size_t i = 0; i < m.size(); ++i)
            m.data()[i] = std::tanh(m.data()[i]);
        return;
    }
}

void
applyActivationGrad(Activation act, const Matrix &activated,
                    Matrix &upstream)
{
    EQX_ASSERT(activated.size() == upstream.size(),
               "activation gradient shape mismatch");
    switch (act) {
      case Activation::None:
        return;
      case Activation::Relu:
        for (std::size_t i = 0; i < upstream.size(); ++i) {
            if (activated.data()[i] <= 0.0f)
                upstream.data()[i] = 0.0f;
        }
        return;
      case Activation::Tanh:
        for (std::size_t i = 0; i < upstream.size(); ++i) {
            float y = activated.data()[i];
            upstream.data()[i] *= (1.0f - y * y);
        }
        return;
    }
}

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim,
                       Activation act, Rng &rng)
    : weights(in_dim, out_dim),
      bias(1, out_dim),
      w_grad(in_dim, out_dim),
      b_grad(1, out_dim),
      w_vel(in_dim, out_dim),
      b_vel(1, out_dim),
      activation(act)
{
    double sd = std::sqrt(2.0 / static_cast<double>(in_dim + out_dim));
    weights.randomize(rng, sd);
}

Matrix
DenseLayer::forward(const Matrix &x, const arith::GemmEngine &engine)
{
    EQX_ASSERT(x.cols() == weights.rows(), "dense layer input dim ",
               x.cols(), " != ", weights.rows());
    cached_in = x;
    Matrix y(x.rows(), weights.cols());
    engine.multiply(x, weights, y, false);
    for (std::size_t r = 0; r < y.rows(); ++r)
        for (std::size_t c = 0; c < y.cols(); ++c)
            y.at(r, c) += bias.at(0, c);
    applyActivation(activation, y);
    cached_out = y;
    return y;
}

Matrix
DenseLayer::backward(const Matrix &d_out, const arith::GemmEngine &engine)
{
    EQX_ASSERT(d_out.rows() == cached_in.rows() &&
                   d_out.cols() == weights.cols(),
               "dense layer upstream gradient shape mismatch");

    Matrix d_pre = d_out;
    applyActivationGrad(activation, cached_out, d_pre);

    // dW = X^T dPre   (weight-gradient GEMM, the "wgrad" pass)
    Matrix xt = cached_in.transposed();
    engine.multiply(xt, d_pre, w_grad, true);

    // db = column sums of dPre
    for (std::size_t r = 0; r < d_pre.rows(); ++r)
        for (std::size_t c = 0; c < d_pre.cols(); ++c)
            b_grad.at(0, c) += d_pre.at(r, c);

    // dX = dPre W^T   (data-gradient GEMM, the "dgrad" pass)
    Matrix wt = weights.transposed();
    Matrix d_in(d_pre.rows(), weights.rows());
    engine.multiply(d_pre, wt, d_in, false);
    return d_in;
}

void
DenseLayer::step(double lr, double momentum)
{
    for (std::size_t i = 0; i < weights.size(); ++i) {
        float v = static_cast<float>(momentum) * w_vel.data()[i] -
                  static_cast<float>(lr) * w_grad.data()[i];
        w_vel.data()[i] = v;
        weights.data()[i] += v;
    }
    for (std::size_t i = 0; i < bias.size(); ++i) {
        float v = static_cast<float>(momentum) * b_vel.data()[i] -
                  static_cast<float>(lr) * b_grad.data()[i];
        b_vel.data()[i] = v;
        bias.data()[i] += v;
    }
    w_grad.zero();
    b_grad.zero();
}

} // namespace nn
} // namespace equinox

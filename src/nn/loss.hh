/**
 * @file
 * Losses and evaluation metrics for the convergence experiments.
 */

#ifndef EQUINOX_NN_LOSS_HH
#define EQUINOX_NN_LOSS_HH

#include <cstdint>
#include <vector>

#include "arith/tensor.hh"

namespace equinox
{
namespace nn
{

using arith::Matrix;

/** Result of a softmax-cross-entropy evaluation. */
struct SoftmaxLossResult
{
    double mean_loss = 0.0;    //!< mean cross entropy (nats)
    double error_rate = 0.0;   //!< top-1 classification error in [0, 1]
    Matrix logit_grad;         //!< d(mean loss)/d(logits)
};

/**
 * Softmax cross entropy over a batch.
 * @param logits batch x classes
 * @param labels class index per batch row
 */
SoftmaxLossResult softmaxCrossEntropy(const Matrix &logits,
                                      const std::vector<std::uint32_t>
                                          &labels);

/** Perplexity = exp(mean cross entropy). */
double perplexityFromLoss(double mean_loss);

/** Mean squared error and its gradient (0.5 ||y - t||^2 / batch). */
struct MseResult
{
    double mean_loss = 0.0;
    Matrix grad;
};

MseResult meanSquaredError(const Matrix &predictions,
                           const Matrix &targets);

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_LOSS_HH

#include "nn/trainer.hh"

#include "common/logging.hh"
#include "nn/loss.hh"
#include "nn/rnn.hh"

namespace equinox
{
namespace nn
{

TrainHistory
trainClassifier(const Dataset &data, const arith::GemmEngine &engine,
                const TrainConfig &config)
{
    Rng init_rng(config.init_seed);
    std::vector<std::size_t> dims;
    dims.push_back(data.featureDim());
    for (std::size_t h : config.hidden_dims)
        dims.push_back(h);
    dims.push_back(data.classCount());

    Mlp net(dims, config.hidden_act, engine, init_rng);

    const std::size_t batches =
        (data.trainSize() + config.batch_size - 1) / config.batch_size;
    EQX_ASSERT(batches > 0, "dataset has no training batches");

    TrainHistory history;
    history.reserve(config.epochs);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        double lr = config.sgd.rateForEpoch(epoch);
        double loss_sum = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            Batch batch = data.trainBatch(epoch, b, config.batch_size);
            Matrix logits = net.forward(batch.inputs);
            auto loss = softmaxCrossEntropy(logits, batch.labels);
            loss_sum += loss.mean_loss;
            net.backward(loss.logit_grad);
            net.step(lr, config.sgd.momentum);
        }

        const Batch &val = data.validation();
        Matrix val_logits = net.forward(val.inputs);
        auto val_loss = softmaxCrossEntropy(val_logits, val.labels);

        EpochMetrics m;
        m.epoch = epoch;
        m.train_loss = loss_sum / static_cast<double>(batches);
        m.valid_loss = val_loss.mean_loss;
        m.valid_error = val_loss.error_rate;
        m.valid_perplexity = perplexityFromLoss(val_loss.mean_loss);
        history.push_back(m);
    }
    return history;
}

TrainHistory
trainSequenceClassifier(const ChainSequenceDataset &data,
                        const arith::GemmEngine &engine,
                        const TrainConfig &config)
{
    EQX_ASSERT(!config.hidden_dims.empty(),
               "sequence classifier needs a hidden width");
    Rng init_rng(config.init_seed);
    ElmanRnn net(data.vocab(), config.hidden_dims.front(),
                 data.classCount(), init_rng);

    const std::size_t batches =
        (data.trainSize() + config.batch_size - 1) / config.batch_size;
    EQX_ASSERT(batches > 0, "dataset has no training batches");

    TrainHistory history;
    history.reserve(config.epochs);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        double lr = config.sgd.rateForEpoch(epoch);
        double loss_sum = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
            Batch batch = data.trainBatch(epoch, b, config.batch_size);
            Matrix logits = net.forward(batch.inputs, data.steps(),
                                        engine);
            auto loss = softmaxCrossEntropy(logits, batch.labels);
            loss_sum += loss.mean_loss;
            net.backward(loss.logit_grad, engine);
            net.step(lr, config.sgd.momentum);
        }

        const Batch &val = data.validation();
        Matrix val_logits = net.forward(val.inputs, data.steps(),
                                        engine);
        auto val_loss = softmaxCrossEntropy(val_logits, val.labels);

        EpochMetrics m;
        m.epoch = epoch;
        m.train_loss = loss_sum / static_cast<double>(batches);
        m.valid_loss = val_loss.mean_loss;
        m.valid_error = val_loss.error_rate;
        m.valid_perplexity = perplexityFromLoss(val_loss.mean_loss);
        history.push_back(m);
    }
    return history;
}

} // namespace nn
} // namespace equinox

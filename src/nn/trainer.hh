/**
 * @file
 * The training loop used by the Figure 2 reproduction: identical SGD in
 * every encoding, per-epoch validation metrics.
 */

#ifndef EQUINOX_NN_TRAINER_HH
#define EQUINOX_NN_TRAINER_HH

#include <vector>

#include "arith/gemm.hh"
#include "nn/datasets.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"

namespace equinox
{
namespace nn
{

/** One epoch's validation metrics. */
struct EpochMetrics
{
    std::size_t epoch = 0;
    double train_loss = 0.0;   //!< mean minibatch loss over the epoch
    double valid_loss = 0.0;   //!< validation cross entropy (nats)
    double valid_error = 0.0;  //!< validation top-1 error in [0, 1]
    double valid_perplexity = 0.0;
};

/** Full convergence trajectory. */
using TrainHistory = std::vector<EpochMetrics>;

/** Trainer configuration. */
struct TrainConfig
{
    std::size_t epochs = 30;
    std::size_t batch_size = 64;
    SgdConfig sgd;
    std::vector<std::size_t> hidden_dims{128, 64};
    Activation hidden_act = Activation::Relu;
    std::uint64_t init_seed = 42;
};

/**
 * Train an MLP on @p data with @p engine arithmetic.
 * The weight initialisation and data order are identical across engines
 * (seeded), so trajectories differ only through the arithmetic.
 */
TrainHistory trainClassifier(const Dataset &data,
                             const arith::GemmEngine &engine,
                             const TrainConfig &config);

/**
 * Train an Elman recurrent classifier with BPTT on a sequence dataset
 * (ChainSequenceDataset); hidden width comes from
 * config.hidden_dims.front().
 */
TrainHistory trainSequenceClassifier(const ChainSequenceDataset &data,
                                     const arith::GemmEngine &engine,
                                     const TrainConfig &config);

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_TRAINER_HH

/**
 * @file
 * A small multi-layer perceptron assembled from DenseLayers with one GEMM
 * engine for all its matrix products.
 */

#ifndef EQUINOX_NN_MLP_HH
#define EQUINOX_NN_MLP_HH

#include <memory>
#include <vector>

#include "arith/gemm.hh"
#include "nn/layers.hh"

namespace equinox
{
namespace nn
{

/** Feed-forward network: dims[0] -> dims[1] -> ... -> dims.back(). */
class Mlp
{
  public:
    /**
     * @param dims layer widths including input and output
     * @param hidden_act activation of every layer except the last (which
     *        is linear; the loss applies softmax)
     * @param engine the arithmetic engine; not owned, must outlive the Mlp
     * @param rng weight-initialisation stream
     */
    Mlp(const std::vector<std::size_t> &dims, Activation hidden_act,
        const arith::GemmEngine &engine, Rng &rng);

    /** Forward pass over a batch; returns logits. */
    Matrix forward(const Matrix &x);

    /** Backward pass from logit gradients; caches layer gradients. */
    void backward(const Matrix &logit_grad);

    /** Apply one SGD step to all layers. */
    void step(double lr, double momentum);

    std::size_t layerCount() const { return layers.size(); }
    const DenseLayer &layer(std::size_t i) const { return layers.at(i); }

  private:
    std::vector<DenseLayer> layers;
    const arith::GemmEngine &engine_;
};

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_MLP_HH

/**
 * @file
 * Synthetic datasets for the Figure 2 convergence reproduction.
 *
 * The paper trains ResNet50/ImageNet and BERT/Wikipedia; neither dataset is
 * available offline, so we substitute two synthetic tasks that exercise the
 * same comparison (does hbfp8 track fp32 convergence?) on the identical
 * arithmetic code path:
 *
 *  - ClusterDataset: an image-like classification task -- overlapping
 *    anisotropic Gaussian clusters pushed through a fixed random nonlinear
 *    feature map, so validation error decays gradually over epochs rather
 *    than snapping to zero.
 *  - MarkovTextDataset: a language-like task -- next-token prediction on
 *    sequences from a random first-order Markov chain, evaluated in
 *    perplexity, with a learnable structure (the transition matrix) and an
 *    irreducible entropy floor.
 */

#ifndef EQUINOX_NN_DATASETS_HH
#define EQUINOX_NN_DATASETS_HH

#include <cstdint>
#include <vector>

#include "arith/tensor.hh"
#include "common/random.hh"

namespace equinox
{
namespace nn
{

using arith::Matrix;

/** A labelled batch. */
struct Batch
{
    Matrix inputs;                      // batch x features
    std::vector<std::uint32_t> labels;  // batch
};

/** Common dataset interface: deterministic train/validation splits. */
class Dataset
{
  public:
    virtual ~Dataset() = default;

    virtual std::size_t featureDim() const = 0;
    virtual std::size_t classCount() const = 0;
    virtual std::size_t trainSize() const = 0;

    /** The i-th minibatch of the epoch under a fixed shuffle per epoch. */
    virtual Batch trainBatch(std::size_t epoch, std::size_t index,
                             std::size_t batch_size) const = 0;

    /** The whole validation split. */
    virtual const Batch &validation() const = 0;
};

/** Nonlinearly separable Gaussian-mixture classification. */
class ClusterDataset : public Dataset
{
  public:
    /**
     * @param classes number of classes
     * @param dim observed feature dimensionality
     * @param train_n training examples
     * @param valid_n validation examples
     * @param noise cluster noise scale (controls task difficulty)
     * @param seed deterministic generation seed
     */
    ClusterDataset(std::size_t classes, std::size_t dim,
                   std::size_t train_n, std::size_t valid_n,
                   double noise, std::uint64_t seed);

    std::size_t featureDim() const override { return dim_; }
    std::size_t classCount() const override { return classes_; }
    std::size_t trainSize() const override { return train.labels.size(); }

    Batch trainBatch(std::size_t epoch, std::size_t index,
                     std::size_t batch_size) const override;
    const Batch &validation() const override { return valid; }

  private:
    std::size_t classes_;
    std::size_t dim_;
    Batch train;
    Batch valid;
};

/** Next-token prediction over a random Markov chain. */
class MarkovTextDataset : public Dataset
{
  public:
    /**
     * @param vocab vocabulary size (= class count)
     * @param context tokens of left context, one-hot concatenated
     * @param train_n training positions
     * @param valid_n validation positions
     * @param concentration Dirichlet-ish sharpness of transition rows;
     *        larger means more predictable text (lower entropy floor)
     * @param seed deterministic generation seed
     */
    MarkovTextDataset(std::size_t vocab, std::size_t context,
                      std::size_t train_n, std::size_t valid_n,
                      double concentration, std::uint64_t seed);

    std::size_t featureDim() const override { return vocab_ * context_; }
    std::size_t classCount() const override { return vocab_; }
    std::size_t trainSize() const override { return train.labels.size(); }

    Batch trainBatch(std::size_t epoch, std::size_t index,
                     std::size_t batch_size) const override;
    const Batch &validation() const override { return valid; }

    /** Entropy floor of the generating chain (nats/token). */
    double sourceEntropy() const { return entropy; }

  private:
    std::size_t vocab_;
    std::size_t context_;
    Batch train;
    Batch valid;
    double entropy = 0.0;
};

/**
 * Sequence classification: which of K random Markov chains generated
 * this token sequence? Inputs are step-major one-hot sequences, the
 * task for the recurrent (BPTT) convergence experiments.
 */
class ChainSequenceDataset : public Dataset
{
  public:
    /**
     * @param chains number of generator chains (= classes)
     * @param vocab token vocabulary (per-step one-hot width)
     * @param steps sequence length
     * @param train_n training sequences
     * @param valid_n validation sequences
     * @param concentration transition-row sharpness (separability)
     * @param seed deterministic generation seed
     */
    ChainSequenceDataset(std::size_t chains, std::size_t vocab,
                         std::size_t steps, std::size_t train_n,
                         std::size_t valid_n, double concentration,
                         std::uint64_t seed);

    std::size_t featureDim() const override { return vocab_ * steps_; }
    std::size_t classCount() const override { return chains_; }
    std::size_t trainSize() const override { return train.labels.size(); }

    Batch trainBatch(std::size_t epoch, std::size_t index,
                     std::size_t batch_size) const override;
    const Batch &validation() const override { return valid; }

    std::size_t vocab() const { return vocab_; }
    std::size_t steps() const { return steps_; }

  private:
    std::size_t chains_;
    std::size_t vocab_;
    std::size_t steps_;
    Batch train;
    Batch valid;
};

} // namespace nn
} // namespace equinox

#endif // EQUINOX_NN_DATASETS_HH

#include "nn/optimizer.hh"

namespace equinox
{
namespace nn
{

double
SgdConfig::rateForEpoch(std::size_t epoch) const
{
    double rate = learning_rate;
    for (std::size_t e : decay_epochs) {
        if (epoch >= e)
            rate *= decay_factor;
    }
    return rate;
}

} // namespace nn
} // namespace equinox

#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace equinox
{
namespace obs
{

Json::Json(std::uint64_t v)
{
    // Counters larger than int64 cannot occur in bounded experiment
    // windows; keep the integral kind and fall back to double only at
    // the boundary so serialized counters never pick up a fraction.
    if (v <= static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
        kind_ = Kind::Int;
        int_ = static_cast<std::int64_t>(v);
    } else {
        kind_ = Kind::Double;
        double_ = static_cast<double>(v);
    }
}

bool
Json::asBool() const
{
    EQX_ASSERT(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (kind_ == Kind::Double)
        return static_cast<std::int64_t>(double_);
    EQX_ASSERT(kind_ == Kind::Int, "JSON value is not a number");
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    EQX_ASSERT(kind_ == Kind::Double, "JSON value is not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    EQX_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return string_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

Json &
Json::append(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    EQX_ASSERT(kind_ == Kind::Array, "append on a non-array JSON value");
    array_.push_back(std::move(v));
    return array_.back();
}

const Json &
Json::at(std::size_t i) const
{
    EQX_ASSERT(kind_ == Kind::Array, "indexing a non-array JSON value");
    EQX_ASSERT(i < array_.size(), "JSON array index out of range: ", i);
    return array_[i];
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    EQX_ASSERT(kind_ == Kind::Object,
               "member access on a non-object JSON value");
    return object_[key];
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    EQX_ASSERT(v, "JSON object has no member '", key, "'");
    return *v;
}

const Json::Array &
Json::items() const
{
    EQX_ASSERT(kind_ == Kind::Array, "items() on a non-array JSON value");
    return array_;
}

const Json::Object &
Json::members() const
{
    EQX_ASSERT(kind_ == Kind::Object,
               "members() on a non-object JSON value");
    return object_;
}

namespace
{

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeDouble(std::string &out, double v)
{
    // NaN/inf are not representable in JSON; the exporters never
    // produce them (the stats layer rejects NaN samples), but a
    // defensive serialization must still emit *valid* JSON.
    if (!std::isfinite(v)) {
        out += std::isnan(v) ? "null" : (v > 0 ? "1e999" : "-1e999");
        return;
    }
    // Shortest round-trip form: deterministic and parses back to the
    // exact same bits, which the byte-identity tests rely on.
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
    // Keep doubles visually distinct from ints ("1" -> "1.0") so the
    // parser reconstructs the same Kind and re-dumps byte-identically.
    bool has_mark = false;
    for (const char *p = buf; p != res.ptr; ++p)
        has_mark = has_mark || *p == '.' || *p == 'e' || *p == 'E' ||
                   *p == 'n' || *p == 'i';
    if (!has_mark)
        out += ".0";
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof buf, int_);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Double:
        writeDouble(out, double_);
        break;
      case Kind::String:
        writeEscaped(out, string_);
        break;
      case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const auto &v : array_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, v] : object_) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            writeEscaped(out, key);
            out += indent < 0 ? ":" : ": ";
            v.write(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent >= 0)
        out += '\n';
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a bounded in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Json>
    run()
    {
        skipWs();
        Json v;
        if (!value(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (error_ && error_->empty())
            *error_ = why + " at byte " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, Json v, Json &out)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0) {
            fail("invalid literal");
            return false;
        }
        pos_ += n;
        out = std::move(v);
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            fail("expected string");
            return false;
        }
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= text_.size()) {
                    fail("truncated escape");
                    return false;
                }
                char e = text_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape digit");
                            return false;
                        }
                    }
                    pos_ += 4;
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else {
                        // Exporters only escape control characters;
                        // reconstruct basic-plane code points as UTF-8.
                        if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(
                                0x80 | ((code >> 6) & 0x3f));
                        }
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return false;
                }
            } else {
                out += c;
                ++pos_;
            }
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    number(Json &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") {
            fail("expected number");
            return false;
        }
        if (integral) {
            std::int64_t v = 0;
            auto res =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (res.ec != std::errc() ||
                res.ptr != tok.data() + tok.size()) {
                fail("bad integer");
                return false;
            }
            out = Json(v);
        } else {
            char *end = nullptr;
            double v = std::strtod(tok.c_str(), &end);
            if (!end || *end != '\0') {
                fail("bad number");
                return false;
            }
            out = Json(v);
        }
        return true;
    }

    bool
    value(Json &out)
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out = Json::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':') {
                    fail("expected ':'");
                    return false;
                }
                ++pos_;
                skipWs();
                Json member;
                if (!value(member))
                    return false;
                out[key] = std::move(member);
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                fail("expected ',' or '}'");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out = Json::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                Json element;
                if (!value(element))
                    return false;
                out.append(std::move(element));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                fail("expected ',' or ']'");
                return false;
            }
        }
        if (c == '"') {
            std::string s;
            if (!string(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == 't')
            return literal("true", Json(true), out);
        if (c == 'f')
            return literal("false", Json(false), out);
        if (c == 'n')
            return literal("null", Json(), out);
        return number(out);
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

} // namespace obs
} // namespace equinox

/**
 * @file
 * MetricsSnapshot: a machine-readable export of everything the stats
 * layer measures, as one stable, versioned JSON document.
 *
 * The document layout (schema version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "scalars":         { "<name>": <number>, ... },
 *     "latency":         { "<name>": {count, mean, p50, p90, p99, max} },
 *     "log_histograms":  { "<name>": {buckets: [{mid, count}...],
 *                                     underflows, overflows} },
 *     "cycle_breakdown": { "<name>": {working, dummy, idle, other,
 *                                     total} },
 *     "fault_stats":     { "<name>": {<every FaultStats counter>,
 *                                     recovery: {...percentiles...}} },
 *     ...free-form sections added via section()...
 *   }
 *
 * Serialization is deterministic -- objects sorted by key, shortest
 * round-trip numbers -- so byte-identical experiment results produce
 * byte-identical documents (the jobs=1 vs jobs=N conformance check in
 * tests/test_obs.cc depends on this). parse() round-trips any document
 * toJson() produced and validates the schema version.
 */

#ifndef EQUINOX_OBS_METRICS_SNAPSHOT_HH
#define EQUINOX_OBS_METRICS_SNAPSHOT_HH

#include <optional>
#include <string>

#include "obs/json.hh"

namespace equinox
{
namespace stats
{
class CycleBreakdown;
class LatencyTracker;
class LogHistogram;
class StatRegistry;
struct FaultStats;
}

namespace obs
{

/** Versioned JSON snapshot of counters, percentiles, and breakdowns. */
class MetricsSnapshot
{
  public:
    static constexpr std::int64_t kSchemaVersion = 1;

    MetricsSnapshot();

    /** Scalar under "scalars" (dotted names encouraged: "mmu.busy"). */
    void set(const std::string &name, double value);
    void set(const std::string &name, std::uint64_t value);

    /** Every entry of @p reg under "scalars" as "<prefix><name>". */
    void addRegistry(const stats::StatRegistry &reg,
                     const std::string &prefix = "");

    /** Exact percentile summary of @p t under "latency.<name>". */
    void addLatency(const std::string &name,
                    const stats::LatencyTracker &t,
                    double scale = 1.0);

    /** Bucket dump of @p h under "log_histograms.<name>". */
    void addLogHistogram(const std::string &name,
                         const stats::LogHistogram &h);

    /** Figure-8 cycle classes under "cycle_breakdown.<name>". */
    void addCycleBreakdown(const std::string &name,
                           const stats::CycleBreakdown &b);

    /** Every fault/recovery counter under "fault_stats.<name>". */
    void addFaultStats(const std::string &name,
                       const stats::FaultStats &fs);

    /** Free-form top-level section (created on first access). */
    Json &section(const std::string &name) { return root_[name]; }

    const Json &root() const { return root_; }

    /** The full document, deterministically serialized. */
    std::string toJson() const { return root_.dump(2); }

    /** Write toJson() to @p path; false + warning when unwritable. */
    bool writeTo(const std::string &path) const;

    /**
     * Parse a document toJson() produced; nullopt (with a reason in
     * @p error when given) on malformed input or a schema-version
     * mismatch.
     */
    static std::optional<MetricsSnapshot>
    parse(const std::string &text, std::string *error = nullptr);

  private:
    Json root_;
};

} // namespace obs
} // namespace equinox

#endif // EQUINOX_OBS_METRICS_SNAPSHOT_HH

/**
 * @file
 * Minimal JSON value model for the observability layer.
 *
 * The export layer needs three things no heavier dependency is worth:
 * a value tree it can assemble programmatically, a *deterministic*
 * serializer (objects sorted by key, shortest round-trip numbers) so
 * identical experiment results produce byte-identical documents, and a
 * strict parser so tests can round-trip every exported artefact. This
 * is deliberately not a general-purpose JSON library: documents are
 * bounded (metrics snapshots, trace files we wrote ourselves) and the
 * parser rejects anything the serializer cannot produce.
 */

#ifndef EQUINOX_OBS_JSON_HH
#define EQUINOX_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace equinox
{
namespace obs
{

/** One JSON value: null, bool, integer, double, string, array, object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(std::uint64_t v);
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *v) : kind_(Kind::String), string_(v) {}
    Json(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

    static Json array() { return Json(Kind::Array); }
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal on kind mismatch (isNumber() coerces). */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Array/object element count; 0 for scalars. */
    std::size_t size() const;

    /** Append to an array (converts a Null value into an array). */
    Json &append(Json v);
    /** Indexed array element; fatal out of range. */
    const Json &at(std::size_t i) const;

    /**
     * Object member access (converts a Null value into an object and
     * inserts the key when absent, like std::map).
     */
    Json &operator[](const std::string &key);
    /** Member lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** Member lookup; fatal when absent. */
    const Json &at(const std::string &key) const;

    const Array &items() const;
    const Object &members() const;

    /**
     * Deterministic serialization: object keys sorted (std::map
     * order), numbers in shortest round-trip form, 2-space indent when
     * @p indent >= 0 (-1 = compact single line).
     */
    std::string dump(int indent = 2) const;

    /**
     * Strict parse; nullopt on malformed input with a human-readable
     * reason in @p error (byte offset included) when provided.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string *error = nullptr);

  private:
    explicit Json(Kind k) : kind_(k) {}

    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace obs
} // namespace equinox

#endif // EQUINOX_OBS_JSON_HH

/**
 * @file
 * LatencyProbe: exact per-request latency percentiles reconstructed
 * purely from trace events.
 *
 * The Datapath emits one RequestRetired event per request in the
 * measured window, carrying the request's arrival-to-retire span in
 * cycles (payload `a`). The probe accumulates those spans into exact
 * percentile trackers, overall and per service -- so a trace consumer
 * gets the same p50/p99/max the SimResult reports, without touching
 * any simulator state. tests/test_obs.cc checks the match is exact.
 */

#ifndef EQUINOX_OBS_LATENCY_PROBE_HH
#define EQUINOX_OBS_LATENCY_PROBE_HH

#include <string>
#include <vector>

#include "sim/blocks/trace.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace obs
{

class MetricsSnapshot;

/** Trace sink computing exact request-latency percentiles. */
class LatencyProbe : public sim::TraceSink
{
  public:
    void record(const sim::TraceEvent &ev) override;

    /** Arrival-to-retire spans in cycles (measured window). */
    const stats::LatencyTracker &cycles() const { return all_; }

    /** Per-service spans; nullptr when the service retired nothing. */
    const stats::LatencyTracker *serviceCycles(ContextId ctx) const;

    std::size_t serviceCount() const { return per_service_.size(); }

    /** The percentile report, converted to seconds at @p frequency_hz. */
    struct Report
    {
        std::uint64_t count = 0;
        double mean_s = 0.0;
        double p50_s = 0.0;
        double p90_s = 0.0;
        double p99_s = 0.0;
        double max_s = 0.0;
    };
    Report report(double frequency_hz) const;

    /** Add the report under "latency.<name>" in @p snap. */
    void addTo(MetricsSnapshot &snap, const std::string &name,
               double frequency_hz) const;

    void clear();

  private:
    stats::LatencyTracker all_;
    std::vector<stats::LatencyTracker> per_service_;
};

} // namespace obs
} // namespace equinox

#endif // EQUINOX_OBS_LATENCY_PROBE_HH

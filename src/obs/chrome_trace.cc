#include "obs/chrome_trace.hh"

#include <fstream>
#include <map>
#include <ostream>

#include "common/logging.hh"

namespace equinox
{
namespace obs
{

namespace
{

/**
 * Track (tid) per block name, assigned in first-seen order so the
 * document layout is a pure function of the event stream.
 */
std::map<std::string, int>
assignTracks(const std::vector<sim::TraceEvent> &events)
{
    std::map<std::string, int> tids;
    int next = 1;
    for (const auto &ev : events) {
        auto [it, inserted] = tids.emplace(ev.block, 0);
        if (inserted)
            it->second = next++;
    }
    return tids;
}

Json
metadataEvent(const char *name, int pid, int tid,
              const std::string &label)
{
    Json m = Json::object();
    m["ph"] = "M";
    m["pid"] = pid;
    m["tid"] = tid;
    m["name"] = name;
    m["args"]["name"] = label;
    return m;
}

Json
instantEvent(const sim::TraceEvent &ev, int pid, int tid,
             double us_per_tick)
{
    Json e = Json::object();
    e["name"] = sim::traceEventTypeName(ev.type);
    e["ph"] = "i";
    e["s"] = "t"; // thread-scoped instant
    e["pid"] = pid;
    e["tid"] = tid;
    e["ts"] = static_cast<double>(ev.tick) * us_per_tick;
    e["args"]["tick"] = static_cast<std::uint64_t>(ev.tick);
    e["args"]["svc"] = static_cast<std::uint64_t>(ev.ctx);
    e["args"]["a"] = ev.a;
    e["args"]["b"] = ev.b;
    return e;
}

/**
 * Queue-depth counter track: RequestArrival events carry the pending
 * queue depth in payload `a`, which Perfetto renders as a step graph.
 */
Json
counterEvent(const sim::TraceEvent &ev, int pid, double us_per_tick)
{
    Json e = Json::object();
    e["name"] =
        "pending_requests.svc" + std::to_string(ev.ctx);
    e["ph"] = "C";
    e["pid"] = pid;
    e["ts"] = static_cast<double>(ev.tick) * us_per_tick;
    e["args"]["depth"] = ev.a;
    return e;
}

/**
 * Scratchpad staging counter track: MemStage events carry the staged
 * (consumable) byte count in payload `b` -- the double-buffer sawtooth
 * renders as a step graph alongside the queue-depth track.
 */
Json
memStageCounterEvent(const sim::TraceEvent &ev, int pid,
                     double us_per_tick)
{
    Json e = Json::object();
    e["name"] = "mem.staged_bytes";
    e["ph"] = "C";
    e["pid"] = pid;
    e["ts"] = static_cast<double>(ev.tick) * us_per_tick;
    e["args"]["bytes"] = ev.b;
    return e;
}

/** Shared framing for write()/writeMergedTrace(): one row per line. */
void
writeDocument(std::ostream &os, const Json &doc)
{
    os << "{\n\"displayTimeUnit\": "
       << doc.at("displayTimeUnit").dump(-1)
       << ",\n\"otherData\": " << doc.at("otherData").dump(-1)
       << ",\n\"traceEvents\": [\n";
    const auto &rows = doc.at("traceEvents").items();
    for (std::size_t i = 0; i < rows.size(); ++i)
        os << rows[i].dump(-1) << (i + 1 < rows.size() ? ",\n" : "\n");
    os << "]}\n";
}

} // namespace

ChromeTraceSink::ChromeTraceSink(double frequency_hz, std::size_t cap,
                                 int pid, std::string process_name)
    : us_per_tick_(1e6 / frequency_hz), cap_(cap), pid_(pid),
      process_name_(std::move(process_name))
{
    EQX_ASSERT(frequency_hz > 0.0, "trace sink needs a positive clock");
}

void
ChromeTraceSink::record(const sim::TraceEvent &ev)
{
    ++total_;
    if (events_.size() < cap_)
        events_.push_back(ev);
    else
        ++dropped_;
}

Json
ChromeTraceSink::toJson() const
{
    Json doc = Json::object();
    doc["displayTimeUnit"] = "ms";
    doc["otherData"]["tool"] = "equinox";
    doc["otherData"]["clock"] = "simulated";
    doc["otherData"]["events_total"] = total_;
    doc["otherData"]["events_dropped"] = dropped_;

    auto tids = assignTracks(events_);
    Json &rows = doc["traceEvents"];
    rows = Json::array();
    rows.append(metadataEvent("process_name", pid_, 0, process_name_));
    for (const auto &[block, tid] : tids)
        rows.append(metadataEvent("thread_name", pid_, tid, block));
    // Events are buffered in dispatch order, so per-track timestamps
    // are monotone by construction (simulated time never runs
    // backwards); the conformance suite checks this invariant.
    for (const auto &ev : events_) {
        rows.append(
            instantEvent(ev, pid_, tids.at(ev.block), us_per_tick_));
        if (ev.type == sim::TraceEventType::RequestArrival)
            rows.append(counterEvent(ev, pid_, us_per_tick_));
        if (ev.type == sim::TraceEventType::MemStage)
            rows.append(memStageCounterEvent(ev, pid_, us_per_tick_));
    }
    return doc;
}

void
ChromeTraceSink::write(std::ostream &os) const
{
    // Hand-rolled framing with one compact event per line: a million
    // buffered events serialize without building a giant indented tree,
    // and the result is still a single valid JSON document.
    writeDocument(os, toJson());
}

bool
writeMergedTrace(const std::string &path,
                 const std::vector<const ChromeTraceSink *> &sinks)
{
    Json doc = Json::object();
    doc["displayTimeUnit"] = "ms";
    doc["otherData"]["tool"] = "equinox";
    doc["otherData"]["clock"] = "simulated";
    std::uint64_t total = 0;
    std::uint64_t dropped = 0;
    Json &rows = doc["traceEvents"];
    rows = Json::array();
    for (const auto *sink : sinks) {
        EQX_ASSERT(sink, "null sink in merged trace");
        total += sink->total();
        dropped += sink->dropped();
        Json part = sink->toJson();
        for (const auto &row : part.at("traceEvents").items())
            rows.append(row);
    }
    doc["otherData"]["events_total"] = total;
    doc["otherData"]["events_dropped"] = dropped;

    std::ofstream out(path);
    if (!out) {
        EQX_WARN("cannot write trace file ", path);
        return false;
    }
    writeDocument(out, doc);
    return static_cast<bool>(out);
}

bool
ChromeTraceSink::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        EQX_WARN("cannot write trace file ", path);
        return false;
    }
    write(out);
    return static_cast<bool>(out);
}

void
ChromeTraceSink::clear()
{
    events_.clear();
    total_ = 0;
    dropped_ = 0;
}

void
MultiSink::add(sim::TraceSink *sink)
{
    EQX_ASSERT(sink, "null sink attached to MultiSink");
    sinks_.push_back(sink);
}

void
MultiSink::record(const sim::TraceEvent &ev)
{
    for (auto *s : sinks_)
        s->record(ev);
}

} // namespace obs
} // namespace equinox

#include "obs/metrics_snapshot.hh"

#include <fstream>

#include "common/logging.hh"
#include "obs/latency_probe.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/fault_stats.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace obs
{

namespace
{

Json
latencyJson(const stats::LatencyTracker &t, double scale)
{
    Json j = Json::object();
    j["count"] = static_cast<std::uint64_t>(t.count());
    j["mean"] = t.mean() * scale;
    j["p50"] = t.percentile(0.50) * scale;
    j["p90"] = t.percentile(0.90) * scale;
    j["p99"] = t.percentile(0.99) * scale;
    j["max"] = t.max() * scale;
    return j;
}

} // namespace

MetricsSnapshot::MetricsSnapshot()
{
    root_["schema_version"] = kSchemaVersion;
}

void
MetricsSnapshot::set(const std::string &name, double value)
{
    root_["scalars"][name] = value;
}

void
MetricsSnapshot::set(const std::string &name, std::uint64_t value)
{
    root_["scalars"][name] = value;
}

void
MetricsSnapshot::addRegistry(const stats::StatRegistry &reg,
                             const std::string &prefix)
{
    reg.forEach([&](const std::string &name, double value,
                    const std::string &) {
        root_["scalars"][prefix + name] = value;
    });
}

void
MetricsSnapshot::addLatency(const std::string &name,
                            const stats::LatencyTracker &t, double scale)
{
    root_["latency"][name] = latencyJson(t, scale);
}

void
MetricsSnapshot::addLogHistogram(const std::string &name,
                                 const stats::LogHistogram &h)
{
    Json j = Json::object();
    Json &buckets = j["buckets"];
    buckets = Json::array();
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        Json b = Json::object();
        b["mid"] = h.bucketMid(i);
        b["count"] = h.bucketValue(i);
        buckets.append(std::move(b));
    }
    j["underflows"] = h.underflows();
    j["overflows"] = h.overflows();
    root_["log_histograms"][name] = std::move(j);
}

void
MetricsSnapshot::addCycleBreakdown(const std::string &name,
                                   const stats::CycleBreakdown &b)
{
    Json j = Json::object();
    j["working"] = b.get(stats::CycleClass::Working);
    j["dummy"] = b.get(stats::CycleClass::Dummy);
    j["idle"] = b.get(stats::CycleClass::Idle);
    j["other"] = b.get(stats::CycleClass::Other);
    j["total"] = b.total();
    root_["cycle_breakdown"][name] = std::move(j);
}

void
MetricsSnapshot::addFaultStats(const std::string &name,
                               const stats::FaultStats &fs)
{
    Json j = Json::object();
    j["dram_corrected"] = fs.dram_corrected;
    j["dram_uncorrectable"] = fs.dram_uncorrectable;
    j["host_drops"] = fs.host_drops;
    j["host_corruptions"] = fs.host_corruptions;
    j["mmu_hangs"] = fs.mmu_hangs;
    j["host_retries"] = fs.host_retries;
    j["host_give_ups"] = fs.host_give_ups;
    j["watchdog_resets"] = fs.watchdog_resets;
    j["checkpoints_written"] = fs.checkpoints_written;
    j["rollbacks"] = fs.rollbacks;
    j["lost_training_iterations"] = fs.lost_training_iterations;
    j["shed_requests"] = fs.shed_requests;
    j["storms_entered"] = fs.storms_entered;
    j["downtime_cycles"] = static_cast<std::uint64_t>(fs.downtime_cycles);
    j["total_faults"] = fs.totalFaults();
    j["recovery"] = latencyJson(fs.recovery_cycles, 1.0);
    root_["fault_stats"][name] = std::move(j);
}

bool
MetricsSnapshot::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        EQX_WARN("cannot write metrics file ", path);
        return false;
    }
    out << toJson();
    return static_cast<bool>(out);
}

std::optional<MetricsSnapshot>
MetricsSnapshot::parse(const std::string &text, std::string *error)
{
    auto doc = Json::parse(text, error);
    if (!doc)
        return std::nullopt;
    const Json *version = doc->find("schema_version");
    if (!version || !version->isNumber() ||
        version->asInt() != kSchemaVersion) {
        if (error)
            *error = "missing or unsupported schema_version";
        return std::nullopt;
    }
    MetricsSnapshot snap;
    snap.root_ = std::move(*doc);
    return snap;
}

} // namespace obs
} // namespace equinox

/**
 * @file
 * ChromeTraceSink: streams block TraceEvents as Chrome/Perfetto
 * `trace_event` JSON (load the file at https://ui.perfetto.dev or
 * chrome://tracing).
 *
 * Every SimBlock gets its own track (thread) in first-seen order;
 * timestamps are *simulated* time converted to microseconds at the
 * design frequency, so the trace shows accelerator cycles, not host
 * wall clock. Events buffer in memory (bounded, drops counted) and
 * flush with writeTo()/write(); the sink is observation-only and never
 * perturbs simulated behaviour (see tests/test_obs.cc, which re-checks
 * the golden refactor-identity digests with a sink installed).
 */

#ifndef EQUINOX_OBS_CHROME_TRACE_HH
#define EQUINOX_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/blocks/trace.hh"

namespace equinox
{
namespace obs
{

/** Buffers block events and exports Chrome trace_event JSON. */
class ChromeTraceSink : public sim::TraceSink
{
  public:
    /**
     * @param frequency_hz design clock, converts ticks to microseconds
     * @param cap buffered-event bound; drops beyond it are counted
     * @param pid Chrome trace process id -- one per cluster replica so
     *        a merged document shows each replica as its own process
     * @param process_name process_name metadata label for @p pid
     *
     * The defaults reproduce the single-accelerator document
     * byte-identically (pid 0, "equinox-sim").
     */
    explicit ChromeTraceSink(double frequency_hz,
                             std::size_t cap = 1u << 22, int pid = 0,
                             std::string process_name = "equinox-sim");

    void record(const sim::TraceEvent &ev) override;

    /** Buffered events + everything dropped past the cap. */
    std::uint64_t total() const { return total_; }
    std::uint64_t dropped() const { return dropped_; }

    /** Build the whole document (metadata + events, buffered order). */
    Json toJson() const;

    /** Serialize to a stream (compact rows, one event per line). */
    void write(std::ostream &os) const;

    /** Flush to @p path; false (with a warning) when unwritable. */
    bool writeTo(const std::string &path) const;

    void clear();

  private:
    double us_per_tick_;
    std::size_t cap_;
    int pid_;
    std::string process_name_;
    std::vector<sim::TraceEvent> events_;
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Write one Chrome trace document combining several sinks' events
 * (e.g. one per cluster replica, each constructed with its own pid).
 * Rows appear sink by sink in the given order, so the output is a
 * deterministic function of the sinks regardless of how many workers
 * produced them. Returns false (with a warning) when unwritable.
 */
bool writeMergedTrace(const std::string &path,
                      const std::vector<const ChromeTraceSink *> &sinks);

/** Fans one event stream out to several sinks (e.g. trace + probe). */
class MultiSink : public sim::TraceSink
{
  public:
    /** Attach @p sink (not owned; must outlive the runs observed). */
    void add(sim::TraceSink *sink);

    void record(const sim::TraceEvent &ev) override;

  private:
    std::vector<sim::TraceSink *> sinks_;
};

} // namespace obs
} // namespace equinox

#endif // EQUINOX_OBS_CHROME_TRACE_HH

#include "obs/latency_probe.hh"

#include "common/logging.hh"
#include "obs/metrics_snapshot.hh"

namespace equinox
{
namespace obs
{

void
LatencyProbe::record(const sim::TraceEvent &ev)
{
    if (ev.type != sim::TraceEventType::RequestRetired)
        return;
    double span = static_cast<double>(ev.a);
    all_.record(span);
    if (ev.ctx >= per_service_.size())
        per_service_.resize(ev.ctx + 1);
    per_service_[ev.ctx].record(span);
}

const stats::LatencyTracker *
LatencyProbe::serviceCycles(ContextId ctx) const
{
    if (ctx >= per_service_.size() || per_service_[ctx].count() == 0)
        return nullptr;
    return &per_service_[ctx];
}

LatencyProbe::Report
LatencyProbe::report(double frequency_hz) const
{
    EQX_ASSERT(frequency_hz > 0.0, "probe report needs a clock");
    double inv_f = 1.0 / frequency_hz;
    Report r;
    r.count = all_.count();
    r.mean_s = all_.mean() * inv_f;
    r.p50_s = all_.percentile(0.50) * inv_f;
    r.p90_s = all_.percentile(0.90) * inv_f;
    r.p99_s = all_.percentile(0.99) * inv_f;
    r.max_s = all_.max() * inv_f;
    return r;
}

void
LatencyProbe::addTo(MetricsSnapshot &snap, const std::string &name,
                    double frequency_hz) const
{
    snap.addLatency(name, all_, 1.0 / frequency_hz);
    for (std::size_t i = 0; i < per_service_.size(); ++i) {
        if (per_service_[i].count() == 0)
            continue;
        snap.addLatency(name + ".svc" + std::to_string(i),
                        per_service_[i], 1.0 / frequency_hz);
    }
}

void
LatencyProbe::clear()
{
    all_.reset();
    per_service_.clear();
}

} // namespace obs
} // namespace equinox

#include "fault/traffic_mix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace fault
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Max factor over the scheduled windows containing @p t_s. */
double
surgeFactorAt(const std::vector<SurgeWindow> &surges, double t_s)
{
    double factor = 1.0;
    for (const auto &s : surges) {
        if (t_s >= s.from_s && t_s < s.to_s)
            factor = std::max(factor, s.factor);
    }
    return factor;
}

void
validateSurges(const std::vector<SurgeWindow> &surges,
               const std::string &who, std::vector<std::string> &errors)
{
    for (const auto &s : surges) {
        if (s.from_s < 0.0 || s.to_s < s.from_s)
            errors.push_back(who + " surge window [" +
                             std::to_string(s.from_s) + ", " +
                             std::to_string(s.to_s) +
                             ") must be ordered and non-negative");
        if (s.factor < 1.0)
            errors.push_back(who + " surge factor must be >= 1");
    }
}

void
validateDiurnal(const DiurnalPolicy &d, const std::string &who,
                std::vector<std::string> &errors)
{
    if (d.period_s < 0.0)
        errors.push_back(who + " diurnal period_s must be >= 0");
    if (!d.enabled())
        return;
    if (d.peak_factor < 1.0)
        errors.push_back(who + " diurnal peak_factor must be >= 1");
    if (d.segments_per_period < 2)
        errors.push_back(who + " diurnal needs >= 2 segments per period");
    if (d.phase < 0.0 || d.phase >= 1.0)
        errors.push_back(who + " diurnal phase must be in [0, 1)");
}

} // namespace

double
DiurnalPolicy::factorAt(double t_s) const
{
    if (!enabled())
        return 1.0;
    // Raised cosine: 1x at the trough, peak_factor at phase * period.
    // The [1, peak] range (never below the base rate) is what lets the
    // flattened windows ride the router's thinning path, which asserts
    // factor >= 1 per window.
    double x = t_s / period_s - phase;
    double wave = 0.5 * (1.0 + std::cos(2.0 * kPi * x));
    return 1.0 + (peak_factor - 1.0) * wave;
}

bool
TrafficMix::enabled() const
{
    if (diurnal.enabled() || !flash_crowds.empty())
        return true;
    for (const auto &t : tenants) {
        if (t.diurnal.enabled() || !t.surges.empty())
            return true;
    }
    return false;
}

std::vector<std::string>
TrafficMix::validate() const
{
    std::vector<std::string> errors;
    validateDiurnal(diurnal, "fleet", errors);
    validateSurges(flash_crowds, "fleet", errors);
    for (const auto &t : tenants) {
        if (!(t.share > 0.0))
            errors.push_back("tenant '" + t.name +
                             "' share must be > 0");
        validateDiurnal(t.diurnal, "tenant '" + t.name + "'", errors);
        validateSurges(t.surges, "tenant '" + t.name + "'", errors);
    }
    return errors;
}

double
TrafficMix::factorAt(double t_s) const
{
    // The tenant blend is the share-weighted average of per-tenant
    // factors (each >= 1, so the blend is too); the fleet diurnal and
    // flash-crowd factors multiply on top.
    double blend = 1.0;
    if (!tenants.empty()) {
        double weighted = 0.0;
        double total_share = 0.0;
        for (const auto &t : tenants) {
            double f = t.diurnal.factorAt(t_s) *
                       surgeFactorAt(t.surges, t_s);
            weighted += t.share * f;
            total_share += t.share;
        }
        blend = weighted / total_share;
    }
    return blend * diurnal.factorAt(t_s) *
           surgeFactorAt(flash_crowds, t_s);
}

std::vector<SurgeWindow>
materializeTraffic(const TrafficMix &mix, double horizon_s)
{
    std::vector<SurgeWindow> windows;
    if (!mix.enabled() || horizon_s <= 0.0)
        return windows;
    if (auto errors = mix.validate(); !errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid traffic mix:", joined);
    }

    // Build the discretization grid: every scheduled surge edge is a
    // breakpoint (so window factors are exact constants between them),
    // and the finest active diurnal contributes a uniform step so the
    // cosine is sampled segments_per_period times per period.
    std::vector<double> edges = {0.0, horizon_s};
    auto add_edge = [&edges, horizon_s](double e) {
        if (e > 0.0 && e < horizon_s)
            edges.push_back(e);
    };
    auto add_surge_edges = [&](const std::vector<SurgeWindow> &ss) {
        for (const auto &s : ss) {
            add_edge(s.from_s);
            add_edge(s.to_s);
        }
    };
    add_surge_edges(mix.flash_crowds);
    double step = horizon_s;
    auto add_diurnal_step = [&step](const DiurnalPolicy &d) {
        if (d.enabled())
            step = std::min(
                step, d.period_s /
                          static_cast<double>(d.segments_per_period));
    };
    add_diurnal_step(mix.diurnal);
    for (const auto &t : mix.tenants) {
        add_surge_edges(t.surges);
        add_diurnal_step(t.diurnal);
    }
    if (step < horizon_s) {
        for (double e = step; e < horizon_s; e += step)
            edges.push_back(e);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // Evaluate each cell at its midpoint, drop factor-1 spans, and
    // coalesce equal-factor neighbours: the thinning loop pays O(#
    // windows) per candidate, so fewer windows is directly cheaper.
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
        double from = edges[i];
        double to = edges[i + 1];
        double factor = mix.factorAt(0.5 * (from + to));
        if (factor <= 1.0 + 1e-12)
            continue;
        if (!windows.empty() && windows.back().to_s == from &&
            windows.back().factor == factor) {
            windows.back().to_s = to;
            continue;
        }
        windows.push_back({from, to, factor});
    }
    return windows;
}

std::vector<std::string>
trafficScenarioNames()
{
    return {"diurnal", "flash_crowd", "multi_tenant"};
}

TrafficMix
trafficScenario(const std::string &name, double horizon_s)
{
    EQX_ASSERT(horizon_s > 0.0, "traffic scenario needs a horizon");
    TrafficMix mix;
    if (name == "diurnal") {
        // Two full day/night cycles peaking at 3x: the autoscaler has
        // to follow the swell up and hand replicas back in the trough.
        mix.diurnal.period_s = horizon_s / 2.0;
        mix.diurnal.peak_factor = 3.0;
        mix.diurnal.segments_per_period = 16;
        mix.diurnal.phase = 0.25;
        return mix;
    }
    if (name == "flash_crowd") {
        // A mild background swell with two sharp crowd spikes riding
        // on it, echoing the chaos "flash_crowd" scenario shape.
        mix.diurnal.period_s = horizon_s;
        mix.diurnal.peak_factor = 1.5;
        mix.diurnal.segments_per_period = 8;
        mix.diurnal.phase = 0.5;
        mix.flash_crowds.push_back(
            {0.20 * horizon_s, 0.30 * horizon_s, 3.0});
        mix.flash_crowds.push_back(
            {0.60 * horizon_s, 0.68 * horizon_s, 4.0});
        return mix;
    }
    if (name == "multi_tenant") {
        // A flat batch majority, an interactive tenant with a strong
        // day/night cycle, and a small spiky tenant whose private 5x
        // surges move the blend by its share only.
        TenantClass batch;
        batch.name = "batch";
        batch.share = 0.5;
        TenantClass interactive;
        interactive.name = "interactive";
        interactive.share = 0.3;
        interactive.diurnal.period_s = horizon_s / 2.0;
        interactive.diurnal.peak_factor = 4.0;
        interactive.diurnal.segments_per_period = 16;
        interactive.diurnal.phase = 0.3;
        TenantClass spiky;
        spiky.name = "spiky";
        spiky.share = 0.2;
        spiky.surges.push_back(
            {0.15 * horizon_s, 0.25 * horizon_s, 5.0});
        spiky.surges.push_back(
            {0.70 * horizon_s, 0.75 * horizon_s, 5.0});
        mix.tenants = {batch, interactive, spiky};
        return mix;
    }
    EQX_FATAL("unknown traffic scenario '", name,
              "' (valid: diurnal, flash_crowd, multi_tenant)");
}

} // namespace fault
} // namespace equinox

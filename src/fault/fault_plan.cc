#include "fault/fault_plan.hh"

#include <sstream>

namespace equinox
{
namespace fault
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::DramBitError: return "dram-bit-error";
      case FaultKind::DramUncorrectable: return "dram-uncorrectable";
      case FaultKind::HostLinkDrop: return "host-link-drop";
      case FaultKind::HostLinkCorrupt: return "host-link-corrupt";
      case FaultKind::MmuHang: return "mmu-hang";
      default: return "?";
    }
}

bool
FaultPlan::enabled() const
{
    return dram_bit_error_rate > 0.0 || host_drop_prob > 0.0 ||
           host_corrupt_prob > 0.0 || mmu_hang_rate_per_s > 0.0 ||
           !scheduled.empty();
}

std::vector<std::string>
FaultPlan::validate() const
{
    std::vector<std::string> errors;
    auto complain = [&errors](auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    if (dram_bit_error_rate < 0.0) {
        complain("dram_bit_error_rate must be >= 0 (got ",
                 dram_bit_error_rate, "); it is flips per bit moved");
    }
    if (host_drop_prob < 0.0 || host_drop_prob >= 1.0) {
        complain("host_drop_prob must be in [0, 1) (got ", host_drop_prob,
                 "); 1.0 would make every transfer fail forever");
    }
    if (host_corrupt_prob < 0.0 || host_corrupt_prob >= 1.0) {
        complain("host_corrupt_prob must be in [0, 1) (got ",
                 host_corrupt_prob, ")");
    }
    if (host_drop_prob + host_corrupt_prob >= 1.0) {
        complain("host_drop_prob + host_corrupt_prob must stay below 1 "
                 "(got ", host_drop_prob + host_corrupt_prob,
                 ") or retries can never succeed");
    }
    if (mmu_hang_rate_per_s < 0.0) {
        complain("mmu_hang_rate_per_s must be >= 0 (got ",
                 mmu_hang_rate_per_s, ")");
    }
    for (const auto &sf : scheduled) {
        if (sf.at_s < 0.0) {
            complain("scheduled fault '", faultKindName(sf.kind),
                     "' has a negative time (", sf.at_s, " s)");
        }
    }
    if (ecc.word_bits == 0) {
        complain("ecc.word_bits must be positive; SECDED(72,64) uses 64");
    }
    if (retry.backoff_multiplier < 1.0) {
        complain("retry.backoff_multiplier must be >= 1 (got ",
                 retry.backoff_multiplier,
                 "); shrinking backoff invites livelock");
    }
    if (retry.base_backoff_s < 0.0 || retry.jitter_frac < 0.0 ||
        retry.deadline_s < 0.0) {
        complain("retry backoff/jitter/deadline values must be >= 0");
    }
    if (watchdog.timeout_s <= 0.0 || watchdog.reset_cost_s < 0.0 ||
        watchdog.hang_duration_s <= 0.0) {
        complain("watchdog timeout and hang duration must be positive "
                 "and reset cost >= 0");
    }
    if (degrade.enabled && degrade.storm_faults == 0) {
        complain("degrade.storm_faults must be >= 1 when degradation is "
                 "enabled, else every run is a permanent storm");
    }
    if (degrade.enabled && degrade.storm_window_s <= 0.0) {
        complain("degrade.storm_window_s must be positive (got ",
                 degrade.storm_window_s, ")");
    }
    return errors;
}

} // namespace fault
} // namespace equinox

#include "fault/injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace equinox
{
namespace fault
{

// ---------------------------------------------------------------------
// SECDED ECC model
// ---------------------------------------------------------------------

EccModel::Outcome
EccModel::apply(unsigned flips, ByteCount bytes, Rng &rng) const
{
    Outcome out;
    if (flips == 0)
        return out;
    std::uint64_t words =
        std::max<std::uint64_t>(1, (bytes * 8 + cfg.word_bits - 1) /
                                       cfg.word_bits);
    // Land each flip in a uniform codeword; a word with one flip is
    // corrected, two or more in the same word defeat SECDED's single
    // correction and are detected uncorrectable. Flip counts are tiny
    // (transient upsets), so a sorted scan beats a per-word array.
    std::vector<std::uint64_t> hit;
    hit.reserve(flips);
    for (unsigned i = 0; i < flips; ++i)
        hit.push_back(rng.uniformInt(0, words - 1));
    std::sort(hit.begin(), hit.end());
    for (std::size_t i = 0; i < hit.size();) {
        std::size_t j = i + 1;
        while (j < hit.size() && hit[j] == hit[i])
            ++j;
        if (j - i == 1)
            ++out.corrected;
        else
            ++out.uncorrectable;
        i = j;
    }
    out.extra_cycles =
        static_cast<Tick>(out.corrected) * cfg.correction_cycles;
    return out;
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan &plan, double freq_hz,
                             stats::FaultStats *fault_stats)
    : plan_(plan),
      frequency_hz(freq_hz),
      stats(fault_stats),
      ecc(plan.ecc),
      // Fixed offsets fork one seed into independent streams.
      dram_rng(plan.seed * 6364136223846793005ull + 1),
      host_rng(plan.seed * 6364136223846793005ull + 2),
      hang_rng(plan.seed * 6364136223846793005ull + 3),
      retry_rng(plan.seed * 6364136223846793005ull + 4)
{
    EQX_ASSERT(frequency_hz > 0.0, "injector needs a positive clock");
    for (const auto &sf : plan_.scheduled) {
        Tick at = units::secondsToCycles(sf.at_s, frequency_hz);
        switch (sf.kind) {
          case FaultKind::DramBitError:
          case FaultKind::DramUncorrectable:
            forced_dram.push_back({at, sf.kind});
            break;
          case FaultKind::HostLinkDrop:
          case FaultKind::HostLinkCorrupt:
            forced_host.push_back({at, sf.kind});
            break;
          case FaultKind::MmuHang:
            break; // folded into hangSchedule()
        }
    }
    auto by_time = [](const Forced &a, const Forced &b) {
        return a.at < b.at;
    };
    std::sort(forced_dram.begin(), forced_dram.end(), by_time);
    std::sort(forced_host.begin(), forced_host.end(), by_time);
}

void
FaultInjector::record(Tick tick, FaultKind kind, ByteCount bytes)
{
    if (trace_.size() < kTraceCap)
        trace_.push_back({tick, kind, bytes});
}

std::vector<Tick>
FaultInjector::hangSchedule(Tick horizon)
{
    std::vector<Tick> ticks;
    for (const auto &sf : plan_.scheduled) {
        if (sf.kind != FaultKind::MmuHang)
            continue;
        Tick at = units::secondsToCycles(sf.at_s, frequency_hz);
        if (at <= horizon)
            ticks.push_back(at);
    }
    if (plan_.mmu_hang_rate_per_s > 0.0) {
        double rate_per_cycle = plan_.mmu_hang_rate_per_s / frequency_hz;
        double t = 0.0;
        while (true) {
            t += hang_rng.exponential(rate_per_cycle);
            if (t > static_cast<double>(horizon))
                break;
            ticks.push_back(static_cast<Tick>(t));
        }
    }
    std::sort(ticks.begin(), ticks.end());
    return ticks;
}

Tick
FaultInjector::backoffCycles(unsigned attempt)
{
    const auto &rp = plan_.retry;
    double wait_s = rp.base_backoff_s *
                    std::pow(rp.backoff_multiplier,
                             static_cast<double>(attempt));
    wait_s *= 1.0 + rp.jitter_frac * retry_rng.uniform();
    return std::max<Tick>(1, units::secondsToCycles(wait_s,
                                                    frequency_hz));
}

dram::TransferFault
FaultInjector::DramHook::onTransfer(Tick now, ByteCount bytes,
                                    dram::Priority)
{
    auto &inj = injector;
    dram::TransferFault out;

    unsigned flips = 0;
    unsigned forced_due = 0;
    if (inj.next_forced_dram < inj.forced_dram.size() &&
        now >= inj.forced_dram[inj.next_forced_dram].at) {
        const auto &f = inj.forced_dram[inj.next_forced_dram++];
        if (f.kind == FaultKind::DramUncorrectable)
            forced_due = 1;
        else
            flips = 1;
    }
    if (inj.plan_.dram_bit_error_rate > 0.0) {
        double mean = static_cast<double>(bytes) * 8.0 *
                      inj.plan_.dram_bit_error_rate;
        std::poisson_distribution<unsigned> dist(mean);
        flips += dist(inj.dram_rng.raw());
    }
    if (flips == 0 && forced_due == 0)
        return out;

    auto ecc = inj.ecc.apply(flips, bytes, inj.dram_rng);
    ecc.uncorrectable += forced_due;
    if (inj.stats) {
        inj.stats->dram_corrected += ecc.corrected;
        inj.stats->dram_uncorrectable += ecc.uncorrectable;
    }
    if (ecc.corrected > 0)
        inj.record(now, FaultKind::DramBitError, bytes);
    if (ecc.uncorrectable > 0)
        inj.record(now, FaultKind::DramUncorrectable, bytes);
    out.extra_cycles = ecc.extra_cycles;
    out.uncorrectable = ecc.uncorrectable > 0;
    return out;
}

dram::TransferFault
FaultInjector::HostHook::onTransfer(Tick now, ByteCount bytes,
                                    dram::Priority)
{
    auto &inj = injector;
    dram::TransferFault out;

    if (inj.next_forced_host < inj.forced_host.size() &&
        now >= inj.forced_host[inj.next_forced_host].at) {
        const auto &f = inj.forced_host[inj.next_forced_host++];
        out.failed = true;
        if (inj.stats) {
            if (f.kind == FaultKind::HostLinkDrop)
                ++inj.stats->host_drops;
            else
                ++inj.stats->host_corruptions;
        }
        inj.record(now, f.kind, bytes);
        return out;
    }

    double drop = inj.plan_.host_drop_prob;
    double corrupt = inj.plan_.host_corrupt_prob;
    if (drop <= 0.0 && corrupt <= 0.0)
        return out;
    double u = inj.host_rng.uniform();
    if (u < drop) {
        out.failed = true;
        if (inj.stats)
            ++inj.stats->host_drops;
        inj.record(now, FaultKind::HostLinkDrop, bytes);
    } else if (u < drop + corrupt) {
        out.failed = true;
        if (inj.stats)
            ++inj.stats->host_corruptions;
        inj.record(now, FaultKind::HostLinkCorrupt, bytes);
    }
    return out;
}

} // namespace fault
} // namespace equinox

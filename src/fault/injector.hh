/**
 * @file
 * The deterministic fault injector: turns a FaultPlan into concrete fault
 * events using seeded per-process random streams, so identical
 * (seed, plan) pairs produce bit-identical fault traces.
 *
 * Three injection surfaces:
 *  - a DRAM hook that samples transient bit flips per access and pushes
 *    them through a SECDED ECC model (corrected errors cost extra access
 *    latency, double-bit errors in one codeword are detected
 *    uncorrectable and must be answered by rollback upstairs);
 *  - a host-link hook that drops or corrupts whole transfers (both
 *    CRC/timeout-detected, so the caller retries);
 *  - a pre-sampled Poisson schedule of MMU/dispatcher hang events the
 *    simulator turns into watchdog recoveries.
 *
 * Every injected fault is appended to a bounded trace for determinism
 * tests and debugging.
 */

#ifndef EQUINOX_FAULT_INJECTOR_HH
#define EQUINOX_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "dram/link.hh"
#include "fault/fault_plan.hh"
#include "stats/fault_stats.hh"

namespace equinox
{
namespace fault
{

/** One injected fault, as recorded in the trace. */
struct FaultRecord
{
    Tick tick = 0;
    FaultKind kind = FaultKind::MmuHang;
    /** Bytes of the affected access (0 for hangs). */
    ByteCount bytes = 0;

    bool
    operator==(const FaultRecord &o) const
    {
        return tick == o.tick && kind == o.kind && bytes == o.bytes;
    }
};

/**
 * SECDED ECC outcome model. Bit flips land uniformly in the access's
 * codewords; a codeword with exactly one flip is corrected (costing
 * correction_cycles of extra latency), one with two or more is a
 * detected-uncorrectable error. Stateless apart from the caller's Rng.
 */
class EccModel
{
  public:
    struct Outcome
    {
        unsigned corrected = 0;
        unsigned uncorrectable = 0;
        Tick extra_cycles = 0;
    };

    explicit EccModel(const EccConfig &config) : cfg(config) {}

    /**
     * Push @p flips bit errors in an access of @p bytes through SECDED.
     * @p rng decides which codewords the flips land in.
     */
    Outcome apply(unsigned flips, ByteCount bytes, Rng &rng) const;

  private:
    EccConfig cfg;
};

/** Per-run fault event source; owns the hooks the links call back into. */
class FaultInjector
{
  public:
    /**
     * @param plan the fault processes and policies to realise
     * @param frequency_hz accelerator clock, to convert plan seconds
     * @param stats counters updated as faults are injected
     */
    FaultInjector(const FaultPlan &plan, double frequency_hz,
                  stats::FaultStats *stats);

    /** Hook for the DRAM (HBM) interface: ECC bit-error model. */
    dram::LinkFaultHook *dramHook() { return &dram_hook; }

    /** Hook for the host (PCIe) interface: drop/corruption model. */
    dram::LinkFaultHook *hostHook() { return &host_hook; }

    /**
     * All MMU-hang ticks (Poisson-sampled plus scheduled) inside
     * [0, horizon], ascending. Sampled once; stable for the run.
     */
    std::vector<Tick> hangSchedule(Tick horizon);

    /** Jittered exponential-backoff wait before retry @p attempt. */
    Tick backoffCycles(unsigned attempt);

    /** The plan being realised. */
    const FaultPlan &plan() const { return plan_; }

    /** Everything injected so far (bounded at kTraceCap records). */
    const std::vector<FaultRecord> &trace() const { return trace_; }

    static constexpr std::size_t kTraceCap = 65536;

  private:
    class DramHook : public dram::LinkFaultHook
    {
      public:
        explicit DramHook(FaultInjector &inj) : injector(inj) {}
        dram::TransferFault onTransfer(Tick now, ByteCount bytes,
                                       dram::Priority p) override;

      private:
        FaultInjector &injector;
    };

    class HostHook : public dram::LinkFaultHook
    {
      public:
        explicit HostHook(FaultInjector &inj) : injector(inj) {}
        dram::TransferFault onTransfer(Tick now, ByteCount bytes,
                                       dram::Priority p) override;

      private:
        FaultInjector &injector;
    };

    void record(Tick tick, FaultKind kind, ByteCount bytes);

    /** A scheduled fault armed against the next matching transfer. */
    struct Forced
    {
        Tick at = 0;
        FaultKind kind = FaultKind::DramBitError;
    };

    FaultPlan plan_;
    double frequency_hz;
    stats::FaultStats *stats;
    EccModel ecc;

    // Independent deterministic streams so one process's draw count
    // cannot perturb another's sequence.
    Rng dram_rng;
    Rng host_rng;
    Rng hang_rng;
    Rng retry_rng;

    DramHook dram_hook{*this};
    HostHook host_hook{*this};

    // Scheduled link faults fire on the first transfer at/after their
    // time (ascending; next_* indexes the next unconsumed entry).
    std::vector<Forced> forced_dram;
    std::vector<Forced> forced_host;
    std::size_t next_forced_dram = 0;
    std::size_t next_forced_host = 0;

    std::vector<FaultRecord> trace_;
};

} // namespace fault
} // namespace equinox

#endif // EQUINOX_FAULT_INJECTOR_HH

/**
 * @file
 * TrafficMix: fleet-scale arrival-rate shapes on top of the candidate
 * generator.
 *
 * ChaosPlan perturbs a fleet with faults; a TrafficMix shapes what the
 * fleet is asked to serve: diurnal day/night swings, scheduled flash
 * crowds, and multi-tenant blends where each tenant class contributes
 * its own share of the base rate with its own modulation. Like chaos,
 * a mix is purely declarative: materializeTraffic() flattens the
 * composed rate profile into piecewise-constant SurgeWindows, which
 * the router's existing Lewis-Shedler thinning (generateCandidateTicks)
 * consumes unchanged -- candidates are drawn at the peak rate and
 * thinned against the instantaneous factor. Because the windows are
 * non-overlapping, the router's max-over-windows semantics reduce to
 * "the factor of the window containing t"; chaos flash crowds laid on
 * top compose by max, not product, matching the existing rule.
 *
 * The default-constructed mix shapes nothing: materializeTraffic()
 * returns no windows and the arrival stream is byte-identical to a
 * build without this subsystem.
 */

#ifndef EQUINOX_FAULT_TRAFFIC_MIX_HH
#define EQUINOX_FAULT_TRAFFIC_MIX_HH

#include <cstddef>
#include <string>
#include <vector>

#include "fault/chaos_plan.hh"

namespace equinox
{
namespace fault
{

/**
 * Smooth day/night arrival modulation: a raised cosine between 1x (the
 * trough) and peak_factor (the peak), discretized into
 * segments_per_period piecewise-constant steps per period so the
 * thinning path stays a pure function of the window list.
 */
struct DiurnalPolicy
{
    /** Length of one day/night cycle; 0 disables the modulation. */
    double period_s = 0.0;
    /** Rate multiplier at the peak of the cycle (>= 1). */
    double peak_factor = 2.0;
    /** Piecewise-constant steps per period (>= 2). */
    std::size_t segments_per_period = 16;
    /** Peak position as a fraction of the period in [0, 1). */
    double phase = 0.25;

    bool enabled() const { return period_s > 0.0; }
    /** Instantaneous multiplier at @p t_s in [1, peak_factor]. */
    double factorAt(double t_s) const;
};

/**
 * One tenant class: a fraction of the base traffic with its own
 * diurnal cycle and scheduled surges. The blended fleet factor is the
 * share-weighted average of the tenant factors, so tenants whose peaks
 * are out of phase flatten each other and a spiky minority tenant
 * moves the blend by its share only.
 */
struct TenantClass
{
    /** Label for docs and error messages. */
    std::string name = "tenant";
    /** Fraction of the base traffic this class contributes (> 0). */
    double share = 1.0;
    DiurnalPolicy diurnal;
    /** Scheduled surge windows private to this tenant. */
    std::vector<SurgeWindow> surges;
};

/** A complete declarative traffic shape for one run. */
struct TrafficMix
{
    /** Fleet-wide diurnal modulation. */
    DiurnalPolicy diurnal;
    /** Scheduled fleet-wide flash-crowd windows. */
    std::vector<SurgeWindow> flash_crowds;
    /** Tenant blend; empty = one implicit flat tenant. */
    std::vector<TenantClass> tenants;

    /** True when the mix shapes the arrival stream at all. */
    bool enabled() const;
    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
    /** Composed instantaneous multiplier at @p t_s (>= 1). */
    double factorAt(double t_s) const;
};

/**
 * Flatten @p mix into non-overlapping piecewise-constant surge
 * windows over [0, horizon_s), coalescing equal-factor neighbours and
 * dropping factor-1 spans. Pure function of (mix, horizon_s); an empty
 * result means the stream runs at the unshaped base rate.
 */
std::vector<SurgeWindow> materializeTraffic(const TrafficMix &mix,
                                            double horizon_s);

/** Names of the built-in traffic scenarios (bench/fleet_scaling). */
std::vector<std::string> trafficScenarioNames();

/**
 * A named traffic scenario sized to @p horizon_s of simulated time:
 *   - "diurnal": two day/night cycles peaking at 3x the base rate,
 *   - "flash_crowd": a mild diurnal swell with two scheduled crowd
 *     spikes (3x and 4x) riding on it,
 *   - "multi_tenant": a flat batch tenant, an interactive tenant with
 *     a strong diurnal cycle, and a small spiky tenant with private
 *     5x surges.
 * Dies on an unknown name (trafficScenarioNames() lists the valid
 * ones).
 */
TrafficMix trafficScenario(const std::string &name, double horizon_s);

} // namespace fault
} // namespace equinox

#endif // EQUINOX_FAULT_TRAFFIC_MIX_HH

/**
 * @file
 * ChaosPlan: FaultPlan lifted to cluster scope.
 *
 * A FaultPlan describes what goes wrong inside ONE accelerator; a
 * ChaosPlan describes what goes wrong to a FLEET: replicas crashing
 * and restarting, whole racks going dark together, latency storms
 * pinning single replicas, and flash crowds multiplying the offered
 * arrival rate. Like FaultPlan, a ChaosPlan is purely declarative and
 * seeded: materializeChaos() expands the stochastic policies into
 * concrete outage windows, per-replica scheduled faults, and arrival
 * surge windows, drawing every event from its own seeded per-component
 * RNG stream so components decorrelate and a plan with one policy
 * zeroed produces byte-identical events for the others.
 *
 * The default-constructed plan injects nothing; the cluster layer
 * skips materialization entirely and stays byte-identical to a build
 * without this subsystem.
 */

#ifndef EQUINOX_FAULT_CHAOS_PLAN_HH
#define EQUINOX_FAULT_CHAOS_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"

namespace equinox
{
namespace fault
{

/** Sentinel replica index: the event hits every replica at once. */
constexpr std::size_t kEveryReplica = static_cast<std::size_t>(-1);

/** Stochastic replica crash/restart churn (Poisson per replica). */
struct ReplicaCrashPolicy
{
    /** Crash events per replica-second; 0 disables churn. */
    double rate_per_replica_s = 0.0;
    /** Mean time to repair: how long a crashed replica stays dark. */
    double mttr_s = 0.02;
};

/** Correlated whole-rack outages (Poisson per rack). */
struct RackOutagePolicy
{
    /** Replicas per rack; 0 disables rack outages. */
    std::size_t rack_size = 0;
    /** Rack-outage events per second across the fleet. */
    double rate_per_s = 0.0;
    /** How long a dark rack stays dark. */
    double outage_s = 0.01;
};

/**
 * Latency storms: windows during which one replica's dispatcher keeps
 * hanging (materialized as scheduled MmuHang faults, so the existing
 * watchdog/reset machinery answers them and the replica's tail
 * latency spikes without the replica going formally dark).
 */
struct LatencyStormPolicy
{
    /** Storm events per second across the fleet; 0 disables storms. */
    double rate_per_s = 0.0;
    /** Length of one storm window. */
    double duration_s = 0.005;
    /** Scheduled MmuHang faults injected inside one window. */
    unsigned hangs_per_storm = 4;
};

/** Flash crowds: windows where the offered arrival rate multiplies. */
struct FlashCrowdPolicy
{
    /** Crowd events per second; 0 disables stochastic crowds. */
    double rate_per_s = 0.0;
    /** Length of one crowd window. */
    double duration_s = 0.005;
    /** Rate multiplier inside the window (> 1). */
    double factor = 3.0;
};

/** One concrete replica-dark window in seconds of simulated time. */
struct ChaosOutageWindow
{
    /** Replica index, or kEveryReplica for a fleet-wide blackout. */
    std::size_t replica = 0;
    double from_s = 0.0;
    double to_s = 0.0;
};

/** One concrete arrival-rate surge window. */
struct SurgeWindow
{
    double from_s = 0.0;
    double to_s = 0.0;
    /** Rate multiplier inside [from_s, to_s) (> 1). */
    double factor = 3.0;
};

/** A complete, seeded cluster-scope chaos plan for one run. */
struct ChaosPlan
{
    std::uint64_t seed = 1;

    // -- stochastic cluster fault processes (default "never") ---------
    ReplicaCrashPolicy crash;
    RackOutagePolicy rack;
    LatencyStormPolicy storm;
    FlashCrowdPolicy crowd;

    // -- explicitly scheduled cluster events (scenario building) ------
    std::vector<ChaosOutageWindow> scheduled_outages;
    std::vector<SurgeWindow> scheduled_surges;

    /** True when the plan can produce at least one cluster event. */
    bool enabled() const;

    /**
     * Sanity-check the plan; returns actionable messages for each
     * out-of-range knob (empty = valid). Replica indexes in
     * scheduled_outages are range-checked by ClusterSpec::validate,
     * which knows the replica count.
     */
    std::vector<std::string> validate() const;
};

/** Everything materializeChaos() expands a plan into. */
struct MaterializedChaos
{
    /** Concrete replica-dark windows (kEveryReplica expanded). */
    std::vector<ChaosOutageWindow> outages;
    /** Extra scheduled faults per replica (index = replica). */
    std::vector<std::vector<ScheduledFault>> replica_faults;
    /** Concrete arrival surge windows, in event-draw order. */
    std::vector<SurgeWindow> surges;
};

/**
 * Expand @p plan into concrete events over @p horizon_s for a fleet
 * of @p replicas. Pure function of (plan, replicas, horizon_s): each
 * stochastic component draws from its own Rng stream seeded from
 * plan.seed, so runs are reproducible and components decorrelated.
 */
MaterializedChaos materializeChaos(const ChaosPlan &plan,
                                   std::size_t replicas,
                                   double horizon_s);

/** Names of the built-in chaos scenarios (bench/overload_resilience). */
std::vector<std::string> chaosScenarioNames();

/**
 * A named chaos scenario sized to @p horizon_s of simulated time:
 *   - "replica_churn": Poisson crash/restart churn on every replica,
 *   - "rack_blackout": one scheduled fleet-wide dark window,
 *   - "latency_storm": Poisson per-replica MmuHang storm windows,
 *   - "flash_crowd": two scheduled arrival surges (3x and 4x),
 *   - "flash_crowd_outage": two transient surges (2x and 2.5x) with a
 *     fleet blackout in the lull between them, plus latency storms --
 *     the overload-resilience acceptance scenario (the surges are
 *     drainable on purpose: a sustained-infeasible crowd would reward
 *     a queue-everything baseline on availability).
 * Dies on an unknown name (chaosScenarioNames() lists the valid ones).
 */
ChaosPlan chaosScenario(const std::string &name, double horizon_s,
                        std::uint64_t seed = 1);

} // namespace fault
} // namespace equinox

#endif // EQUINOX_FAULT_CHAOS_PLAN_HH

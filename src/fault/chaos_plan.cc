#include "fault/chaos_plan.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace equinox
{
namespace fault
{

namespace
{

// Per-component seed decorrelation: each stochastic chaos process forks
// its own Rng stream from plan.seed and a distinct odd constant, so
// zeroing one policy never shifts the event draws of another, and
// per-replica / per-rack streams decorrelate via a further odd stride.
constexpr std::uint64_t kCrashStream = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kRackStream = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kStormStream = 0x165667B19E3779F9ull;
constexpr std::uint64_t kCrowdStream = 0x27D4EB2F165667C5ull;

Rng
streamRng(std::uint64_t seed, std::uint64_t stream, std::uint64_t lane)
{
    return Rng(seed * 6364136223846793005ull + stream + lane * 7919ull);
}

} // namespace

bool
ChaosPlan::enabled() const
{
    return crash.rate_per_replica_s > 0.0 ||
           (rack.rack_size > 0 && rack.rate_per_s > 0.0) ||
           storm.rate_per_s > 0.0 || crowd.rate_per_s > 0.0 ||
           !scheduled_outages.empty() || !scheduled_surges.empty();
}

std::vector<std::string>
ChaosPlan::validate() const
{
    std::vector<std::string> errors;
    auto complain = [&errors](auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    if (crash.rate_per_replica_s < 0.0) {
        complain("chaos crash.rate_per_replica_s must be >= 0 (got ",
                 crash.rate_per_replica_s,
                 "); it is crash events per replica-second");
    }
    if (crash.rate_per_replica_s > 0.0 && crash.mttr_s <= 0.0) {
        complain("chaos crash.mttr_s must be positive when churn is "
                 "enabled (got ", crash.mttr_s,
                 "); a zero repair time makes crashes invisible");
    }
    if (rack.rate_per_s < 0.0) {
        complain("chaos rack.rate_per_s must be >= 0 (got ",
                 rack.rate_per_s, ")");
    }
    if (rack.rate_per_s > 0.0 && rack.rack_size == 0) {
        complain("chaos rack.rack_size must be >= 1 when rack outages "
                 "are enabled; 0 racks cannot fail");
    }
    if (rack.rate_per_s > 0.0 && rack.outage_s <= 0.0) {
        complain("chaos rack.outage_s must be positive when rack "
                 "outages are enabled (got ", rack.outage_s, ")");
    }
    if (storm.rate_per_s < 0.0) {
        complain("chaos storm.rate_per_s must be >= 0 (got ",
                 storm.rate_per_s, ")");
    }
    if (storm.rate_per_s > 0.0 && storm.duration_s <= 0.0) {
        complain("chaos storm.duration_s must be positive when latency "
                 "storms are enabled (got ", storm.duration_s, ")");
    }
    if (storm.rate_per_s > 0.0 && storm.hangs_per_storm == 0) {
        complain("chaos storm.hangs_per_storm must be >= 1 when latency "
                 "storms are enabled, else a storm injects nothing");
    }
    if (crowd.rate_per_s < 0.0) {
        complain("chaos crowd.rate_per_s must be >= 0 (got ",
                 crowd.rate_per_s, ")");
    }
    if (crowd.rate_per_s > 0.0 && crowd.duration_s <= 0.0) {
        complain("chaos crowd.duration_s must be positive when flash "
                 "crowds are enabled (got ", crowd.duration_s, ")");
    }
    if (crowd.rate_per_s > 0.0 && crowd.factor <= 1.0) {
        complain("chaos crowd.factor must be > 1 (got ", crowd.factor,
                 "); a surge that does not raise the rate is not a "
                 "surge");
    }
    for (const auto &o : scheduled_outages) {
        if (o.from_s < 0.0 || o.to_s <= o.from_s) {
            complain("chaos scheduled outage of replica ",
                     o.replica == kEveryReplica
                         ? std::string("<all>")
                         : std::to_string(o.replica),
                     " needs 0 <= from_s < to_s (got [", o.from_s, ", ",
                     o.to_s, "))");
        }
    }
    for (const auto &s : scheduled_surges) {
        if (s.from_s < 0.0 || s.to_s <= s.from_s) {
            complain("chaos scheduled surge needs 0 <= from_s < to_s "
                     "(got [", s.from_s, ", ", s.to_s, "))");
        }
        if (s.factor <= 1.0) {
            complain("chaos scheduled surge factor must be > 1 (got ",
                     s.factor, ")");
        }
    }
    return errors;
}

MaterializedChaos
materializeChaos(const ChaosPlan &plan, std::size_t replicas,
                 double horizon_s)
{
    EQX_ASSERT(replicas > 0, "chaos needs at least one replica");
    MaterializedChaos mat;
    mat.replica_faults.resize(replicas);

    // Explicitly scheduled outages first, with the fleet-wide sentinel
    // expanded in replica order so downstream consumers never see it.
    for (const auto &o : plan.scheduled_outages) {
        if (o.replica == kEveryReplica) {
            for (std::size_t r = 0; r < replicas; ++r)
                mat.outages.push_back({r, o.from_s, o.to_s});
        } else {
            mat.outages.push_back(o);
        }
    }
    mat.surges = plan.scheduled_surges;

    // Replica churn: an independent Poisson crash process per replica.
    if (plan.crash.rate_per_replica_s > 0.0) {
        for (std::size_t r = 0; r < replicas; ++r) {
            Rng rng = streamRng(plan.seed, kCrashStream, r);
            double t = rng.exponential(plan.crash.rate_per_replica_s);
            while (t < horizon_s) {
                double up = std::min(t + plan.crash.mttr_s, horizon_s);
                mat.outages.push_back({r, t, up});
                t = up + rng.exponential(plan.crash.rate_per_replica_s);
            }
        }
    }

    // Correlated rack outages: one Poisson process per rack; a rack
    // event darkens every replica in the rack over the same window.
    if (plan.rack.rack_size > 0 && plan.rack.rate_per_s > 0.0) {
        std::size_t racks =
            (replicas + plan.rack.rack_size - 1) / plan.rack.rack_size;
        for (std::size_t k = 0; k < racks; ++k) {
            Rng rng = streamRng(plan.seed, kRackStream, k);
            double t = rng.exponential(plan.rack.rate_per_s);
            while (t < horizon_s) {
                double up = std::min(t + plan.rack.outage_s, horizon_s);
                std::size_t lo = k * plan.rack.rack_size;
                std::size_t hi =
                    std::min(lo + plan.rack.rack_size, replicas);
                for (std::size_t r = lo; r < hi; ++r)
                    mat.outages.push_back({r, t, up});
                t = up + rng.exponential(plan.rack.rate_per_s);
            }
        }
    }

    // Latency storms: each event picks one replica and sprinkles
    // scheduled MmuHang faults evenly across the storm window, letting
    // the per-replica watchdog/reset machinery turn them into latency
    // spikes instead of formal downtime.
    if (plan.storm.rate_per_s > 0.0) {
        Rng rng = streamRng(plan.seed, kStormStream, 0);
        double t = rng.exponential(plan.storm.rate_per_s);
        while (t < horizon_s) {
            std::size_t victim = static_cast<std::size_t>(
                rng.uniformInt(0, replicas - 1));
            double step =
                plan.storm.duration_s / plan.storm.hangs_per_storm;
            for (unsigned h = 0; h < plan.storm.hangs_per_storm; ++h) {
                double at = t + h * step;
                if (at >= horizon_s)
                    break;
                mat.replica_faults[victim].push_back(
                    {at, FaultKind::MmuHang});
            }
            t += plan.storm.duration_s +
                 rng.exponential(plan.storm.rate_per_s);
        }
    }

    // Flash crowds: arrival-rate surge windows, drawn back-to-back so
    // windows never overlap (overlap would multiply factors).
    if (plan.crowd.rate_per_s > 0.0) {
        Rng rng = streamRng(plan.seed, kCrowdStream, 0);
        double t = rng.exponential(plan.crowd.rate_per_s);
        while (t < horizon_s) {
            double up = std::min(t + plan.crowd.duration_s, horizon_s);
            mat.surges.push_back({t, up, plan.crowd.factor});
            t = up + rng.exponential(plan.crowd.rate_per_s);
        }
    }

    // Deterministic canonical order, independent of draw order.
    std::sort(mat.outages.begin(), mat.outages.end(),
              [](const ChaosOutageWindow &a, const ChaosOutageWindow &b) {
                  if (a.from_s != b.from_s)
                      return a.from_s < b.from_s;
                  if (a.replica != b.replica)
                      return a.replica < b.replica;
                  return a.to_s < b.to_s;
              });
    std::sort(mat.surges.begin(), mat.surges.end(),
              [](const SurgeWindow &a, const SurgeWindow &b) {
                  if (a.from_s != b.from_s)
                      return a.from_s < b.from_s;
                  return a.to_s < b.to_s;
              });
    for (auto &faults : mat.replica_faults) {
        std::sort(faults.begin(), faults.end(),
                  [](const ScheduledFault &a, const ScheduledFault &b) {
                      return a.at_s < b.at_s;
                  });
    }
    return mat;
}

std::vector<std::string>
chaosScenarioNames()
{
    return {"replica_churn", "rack_blackout", "latency_storm",
            "flash_crowd", "flash_crowd_outage"};
}

ChaosPlan
chaosScenario(const std::string &name, double horizon_s,
              std::uint64_t seed)
{
    EQX_ASSERT(horizon_s > 0.0, "chaos scenario horizon must be positive");
    ChaosPlan plan;
    plan.seed = seed;
    if (name == "replica_churn") {
        plan.crash.rate_per_replica_s = 2.0 / horizon_s;
        plan.crash.mttr_s = 0.05 * horizon_s;
    } else if (name == "rack_blackout") {
        plan.scheduled_outages.push_back(
            {kEveryReplica, 0.40 * horizon_s, 0.46 * horizon_s});
    } else if (name == "latency_storm") {
        plan.storm.rate_per_s = 6.0 / horizon_s;
        plan.storm.duration_s = 0.05 * horizon_s;
        plan.storm.hangs_per_storm = 3;
    } else if (name == "flash_crowd") {
        plan.scheduled_surges.push_back(
            {0.25 * horizon_s, 0.50 * horizon_s, 3.0});
        plan.scheduled_surges.push_back(
            {0.70 * horizon_s, 0.80 * horizon_s, 4.0});
    } else if (name == "flash_crowd_outage") {
        // Transient crowds the fleet can drain between windows, plus a
        // fleet-wide blackout in the lull: the acceptance scenario.
        // Sustained-infeasible surges would reward queue-everything on
        // availability; these are sized so shedding background and
        // retrying through the blackout is strictly better on both
        // availability and goodput.
        plan.scheduled_surges.push_back(
            {0.25 * horizon_s, 0.35 * horizon_s, 2.0});
        plan.scheduled_surges.push_back(
            {0.70 * horizon_s, 0.75 * horizon_s, 2.5});
        plan.scheduled_outages.push_back(
            {kEveryReplica, 0.45 * horizon_s, 0.51 * horizon_s});
        plan.storm.rate_per_s = 4.0 / horizon_s;
        plan.storm.duration_s = 0.04 * horizon_s;
        plan.storm.hangs_per_storm = 2;
    } else {
        EQX_FATAL("unknown chaos scenario '", name,
                  "'; valid names are replica_churn, rack_blackout, "
                  "latency_storm, flash_crowd, flash_crowd_outage");
    }
    return plan;
}

} // namespace fault
} // namespace equinox

/**
 * @file
 * FaultPlan: the deterministic, seeded description of every fault process
 * and recovery policy a simulation run is subjected to.
 *
 * A plan combines stochastic fault processes (Poisson/Bernoulli rates for
 * DRAM transient bit errors, host-link drops and corruptions, and
 * MMU/dispatcher hangs) with explicitly scheduled faults, plus the
 * recovery policies the machine answers them with: per-request retry with
 * exponential backoff and jitter at the host interface, a watchdog that
 * detects hung service and performs a costed reset, periodic
 * training-weight checkpoints with rollback-and-replay, and a
 * graceful-degradation policy that sheds work during fault storms.
 *
 * The default-constructed plan has every rate at zero and injects
 * nothing: the simulator skips the fault layer entirely, so fault-free
 * runs are byte-identical to a build without this subsystem.
 */

#ifndef EQUINOX_FAULT_FAULT_PLAN_HH
#define EQUINOX_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace equinox
{
namespace fault
{

/** Kinds of injectable faults. */
enum class FaultKind
{
    DramBitError,      //!< transient DRAM bit flip(s) during one access
    DramUncorrectable, //!< multi-bit flip in one codeword (forced DUE)
    HostLinkDrop,      //!< host-link request lost in flight
    HostLinkCorrupt,   //!< host-link payload corrupted (CRC-detected)
    MmuHang,           //!< MMU/dispatcher stops issuing until recovered
};

const char *faultKindName(FaultKind k);

/** One explicitly scheduled (non-stochastic) fault. */
struct ScheduledFault
{
    double at_s = 0.0;
    FaultKind kind = FaultKind::MmuHang;
};

/** Host-interface retry policy (exponential backoff with jitter). */
struct RetryPolicy
{
    /** Retries after the first attempt before giving up. */
    unsigned max_retries = 8;
    /** First backoff wait. */
    double base_backoff_s = 2e-6;
    /** Geometric backoff growth per retry. */
    double backoff_multiplier = 2.0;
    /** Uniform jitter fraction added to each wait (decorrelates herds). */
    double jitter_frac = 0.25;
    /**
     * Per-request recovery deadline; once the accumulated retry delay
     * exceeds it the request is shed instead of retried. 0 = none.
     */
    double deadline_s = 0.0;
};

/** Watchdog policy for hung-service detection and reset. */
struct WatchdogPolicy
{
    bool enabled = true;
    /** Silence interval after which the service is declared hung. */
    double timeout_s = 500e-6;
    /** Fixed controller-reset cost before weights re-install from DRAM. */
    double reset_cost_s = 50e-6;
    /**
     * How long an undetected hang persists before clearing on its own
     * (models a transient dispatcher stall); only used when the
     * watchdog is disabled.
     */
    double hang_duration_s = 5e-3;
};

/** Periodic training-weight checkpoint policy. */
struct CheckpointPolicy
{
    /** Iterations between checkpoints to DRAM; 0 disables them. */
    unsigned interval_iterations = 10;
};

/** Graceful degradation during fault storms. */
struct DegradePolicy
{
    bool enabled = true;
    /** Faults inside the window that declare a storm. */
    unsigned storm_faults = 8;
    /** Sliding storm-detection window. */
    double storm_window_s = 1e-3;
    /**
     * Storm severity (multiple of storm_faults in the window) at which
     * inference requests are shed in addition to training.
     */
    unsigned shed_inference_factor = 2;
};

/** SECDED ECC model parameters for the DRAM interface. */
struct EccConfig
{
    /** Data bits per codeword (SECDED(72,64) by default). */
    unsigned word_bits = 64;
    /** Extra access latency charged per corrected error. */
    unsigned correction_cycles = 32;
};

/** A complete, seeded fault-injection and recovery plan for one run. */
struct FaultPlan
{
    std::uint64_t seed = 1;

    // -- stochastic fault processes (all default to "never") ----------
    /** Transient DRAM bit flips per bit transferred (Poisson). */
    double dram_bit_error_rate = 0.0;
    /** Probability one host-link transfer is dropped in flight. */
    double host_drop_prob = 0.0;
    /** Probability one host-link transfer arrives corrupted. */
    double host_corrupt_prob = 0.0;
    /** MMU/dispatcher hang events per simulated second (Poisson). */
    double mmu_hang_rate_per_s = 0.0;

    /** Explicitly scheduled faults, any order. */
    std::vector<ScheduledFault> scheduled;

    // -- recovery policies --------------------------------------------
    EccConfig ecc;
    RetryPolicy retry;
    WatchdogPolicy watchdog;
    CheckpointPolicy checkpoint;
    DegradePolicy degrade;

    /** True when the plan can inject at least one fault. */
    bool enabled() const;

    /**
     * Sanity-check the plan; returns actionable messages for each
     * out-of-range knob (empty = valid).
     */
    std::vector<std::string> validate() const;
};

} // namespace fault
} // namespace equinox

#endif // EQUINOX_FAULT_FAULT_PLAN_HH

/**
 * @file
 * TSMC-28nm technology constants for the first-order models of section 4.
 *
 * The paper derives per-ALU area/energy from Synopsys Design Compiler
 * syntheses (TCBN28HPMBWP35, 0.9 V) and SRAM values from CACTI 6.5 scaled
 * 32nm -> 28nm. Without the proprietary flow we invert Equations 1-3
 * against the published endpoints (Table 1 throughput/frequency pairs and
 * the Table 3 component breakdown) to recover the same constants, then use
 * them unchanged for the entire design-space sweep. The derivation is in
 * DESIGN.md section 5.
 */

#ifndef EQUINOX_MODEL_TECH_PARAMS_HH
#define EQUINOX_MODEL_TECH_PARAMS_HH

#include "arith/gemm.hh"
#include "common/types.hh"

namespace equinox
{
namespace model
{

/** Per-technology constants at the synthesis corner (0.9 V). */
struct TechParams
{
    // -- ALUs (per MAC unit, at 0.9 V) ---------------------------------
    /** hbfp8 MAC (8-bit multiplier + 25-bit accumulator) energy [J]. */
    double e_alu_hbfp8 = 0.42e-12;
    /** bfloat16 FMA (fp32 accumulator) energy [J]. */
    double e_alu_bf16 = 2.48e-12;
    /** hbfp8 MAC area [mm^2]. */
    double a_alu_hbfp8 = 5.6e-4;
    /** bfloat16 FMA area [mm^2]. */
    double a_alu_bf16 = 2.55e-3;

    // -- SRAM (CACTI 6.5, 32nm scaled to 28nm) -------------------------
    /** Dynamic energy per byte accessed [J]. */
    double e_sram_byte = 2.63e-12;
    /** Area per MiB [mm^2]. */
    double a_sram_mb = 0.92;
    /** Leakage per MiB [W]. */
    double p_sram_static_mb = 0.0667;

    // -- DRAM (HBM) interface, from Tran [33] --------------------------
    double a_dram = 46.9; //!< mm^2
    double p_dram = 28.6; //!< W, provisioned for the full 1 TB/s stack

    // -- Envelopes (section 4.1) ----------------------------------------
    double die_area = 300.0;     //!< mm^2
    double power_budget = 75.0;  //!< W
    ByteCount sram_capacity = 75ull << 20; //!< 75 MiB total on-chip SRAM

    // -- Voltage/frequency scaling (near-threshold, Pahlevan [28]) ------
    double f_min = 532e6;
    double f_max = 2.4e9;
    double v_min = 0.6;  //!< V at f_min
    double v_max = 0.9;  //!< V at f_max (the synthesis corner)

    /** Operating voltage at frequency @p f (linear V/f, clamped). */
    double voltageAt(double f) const;

    /** Dynamic-energy scale factor at @p f relative to the 0.9 V corner. */
    double energyScaleAt(double f) const;

    /** Per-MAC energy for @p enc at the synthesis corner. */
    double aluEnergy(arith::Encoding enc) const;

    /** Per-MAC area for @p enc. */
    double aluArea(arith::Encoding enc) const;

    /** Buffer bytes touched per value for @p enc. */
    double bytesPerValue(arith::Encoding enc) const;

    /** Total SRAM area [mm^2]. */
    double sramArea() const;

    /** Total SRAM leakage [W]. */
    double sramStaticPower() const;
};

/** The default calibrated parameter set. */
TechParams defaultTechParams();

} // namespace model
} // namespace equinox

#endif // EQUINOX_MODEL_TECH_PARAMS_HH

/**
 * @file
 * A miniature CACTI: SRAM area, access energy and leakage as functions of
 * macro capacity and access width, scaled from the 32nm node to 28nm with
 * the constant-field methodology of Esmaeilzadeh et al. [15].
 *
 * The functional forms are standard first-order CACTI behaviour: per-bit
 * area with a fixed peripheral overhead amortised over capacity; access
 * energy that grows with the square root of capacity (longer bit/word
 * lines); and capacity-proportional leakage.
 */

#ifndef EQUINOX_MODEL_CACTI_LITE_HH
#define EQUINOX_MODEL_CACTI_LITE_HH

#include "common/types.hh"

namespace equinox
{
namespace model
{

/** SRAM macro estimates at 28nm, 0.9 V. */
struct CactiLite
{
    /** 32nm baseline values (CACTI 6.5 style). */
    double base_area_per_mb_32 = 1.25;    //!< mm^2 / MiB at 32nm
    double base_energy_byte_32 = 2.4e-12; //!< J/B for a 1 MiB macro
    double base_leak_per_mb_32 = 0.05;    //!< W / MiB
    /** 32nm -> 28nm constant-field scale on linear dimension. */
    double linear_scale = 28.0 / 32.0;

    /** Macro area in mm^2 for @p bytes of capacity. */
    double areaMm2(ByteCount bytes) const;

    /** Dynamic energy per byte accessed for a macro of @p bytes. */
    double energyPerByte(ByteCount bytes) const;

    /** Leakage power for @p bytes of capacity. */
    double leakageW(ByteCount bytes) const;
};

} // namespace model
} // namespace equinox

#endif // EQUINOX_MODEL_CACTI_LITE_HH

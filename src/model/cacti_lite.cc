#include "model/cacti_lite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace model
{

double
CactiLite::areaMm2(ByteCount bytes) const
{
    EQX_ASSERT(bytes > 0, "zero-capacity SRAM");
    double mb = static_cast<double>(bytes) / (1 << 20);
    // Area scales with the square of the linear dimension; small macros
    // pay a peripheral overhead amortised away by 1 MiB.
    double per_mb = base_area_per_mb_32 * linear_scale * linear_scale;
    double overhead = 0.02 * linear_scale * linear_scale; // mm^2 fixed
    return per_mb * mb + overhead;
}

double
CactiLite::energyPerByte(ByteCount bytes) const
{
    EQX_ASSERT(bytes > 0, "zero-capacity SRAM");
    double mb = static_cast<double>(bytes) / (1 << 20);
    // Wordline/bitline energy grows ~sqrt(capacity) until the macro
    // subdivides into <=2 MiB banks, after which per-access energy is
    // flat (plus routing, folded into the cap). Capacitance scales
    // linearly with feature size.
    double scale = linear_scale;
    double eff_mb = std::clamp(mb, 0.015625, 2.0);
    return base_energy_byte_32 * scale * std::sqrt(eff_mb);
}

double
CactiLite::leakageW(ByteCount bytes) const
{
    double mb = static_cast<double>(bytes) / (1 << 20);
    // Leakage per cell roughly constant across one scaling step.
    return base_leak_per_mb_32 * linear_scale * mb;
}

} // namespace model
} // namespace equinox

#include "model/tech_params.hh"

#include <algorithm>

#include "common/logging.hh"

namespace equinox
{
namespace model
{

double
TechParams::voltageAt(double f) const
{
    double fc = std::clamp(f, f_min, f_max);
    return v_min + (v_max - v_min) * (fc - f_min) / (f_max - f_min);
}

double
TechParams::energyScaleAt(double f) const
{
    double v = voltageAt(f);
    return (v * v) / (v_max * v_max);
}

double
TechParams::aluEnergy(arith::Encoding enc) const
{
    switch (enc) {
      case arith::Encoding::Hbfp8: return e_alu_hbfp8;
      case arith::Encoding::Bfloat16: return e_alu_bf16;
      default: EQX_FATAL("no ALU model for encoding ",
                         arith::encodingName(enc));
    }
}

double
TechParams::aluArea(arith::Encoding enc) const
{
    switch (enc) {
      case arith::Encoding::Hbfp8: return a_alu_hbfp8;
      case arith::Encoding::Bfloat16: return a_alu_bf16;
      default: EQX_FATAL("no ALU model for encoding ",
                         arith::encodingName(enc));
    }
}

double
TechParams::bytesPerValue(arith::Encoding enc) const
{
    switch (enc) {
      case arith::Encoding::Hbfp8: return (8.0 + 12.0 / 256.0) / 8.0;
      case arith::Encoding::Bfloat16: return 2.0;
      default: return 4.0;
    }
}

double
TechParams::sramArea() const
{
    return a_sram_mb * static_cast<double>(sram_capacity) / (1 << 20);
}

double
TechParams::sramStaticPower() const
{
    return p_sram_static_mb * static_cast<double>(sram_capacity) /
           (1 << 20);
}

TechParams
defaultTechParams()
{
    return TechParams{};
}

} // namespace model
} // namespace equinox

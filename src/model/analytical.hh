/**
 * @file
 * First-order area / power / performance models of section 4.1
 * (Equations 1-3), evaluated per design point.
 */

#ifndef EQUINOX_MODEL_ANALYTICAL_HH
#define EQUINOX_MODEL_ANALYTICAL_HH

#include "arith/gemm.hh"
#include "model/tech_params.hh"

namespace equinox
{
namespace model
{

/** One candidate accelerator design. */
struct DesignPoint
{
    unsigned n = 0;
    unsigned m = 0;
    unsigned w = 0;
    double frequency_hz = 0.0;
    arith::Encoding encoding = arith::Encoding::Hbfp8;

    double area_mm2 = 0.0;
    double power_w = 0.0;
    /** Peak arithmetic throughput, Eq. 3 (ops/s). */
    double throughput_ops = 0.0;
    /** LSTM batch-of-n service time (seconds). */
    double service_time_s = 0.0;
    bool pareto = false;
};

/** Evaluates Equations 1-3 for one encoding. */
class AnalyticalModel
{
  public:
    AnalyticalModel(TechParams tech_params, arith::Encoding enc);

    /** Eq. 1: A = m n^2 w a_alu + A_sram + A_dram [mm^2]. */
    double area(unsigned n, unsigned m, unsigned w) const;

    /**
     * Eq. 2: P = f (m n^2 w e_alu + e_sram (w n + m w n + m n))
     *            + P_dram + P_static [W], with the near-threshold
     * voltage/frequency energy scaling applied to the dynamic terms.
     */
    double power(unsigned n, unsigned m, unsigned w, double f) const;

    /** Eq. 3: T = 2 m n^2 w f [ops/s]. */
    double throughput(unsigned n, unsigned m, unsigned w, double f) const;

    /** True when the design fits both envelopes. */
    bool feasible(unsigned n, unsigned m, unsigned w, double f) const;

    /**
     * Largest m for given (n, w, f) under both envelopes;
     * 0 when even m = 1 does not fit.
     */
    unsigned maxM(unsigned n, unsigned w, double f) const;

    const TechParams &tech() const { return tp; }
    arith::Encoding encoding() const { return enc_; }

  private:
    TechParams tp;
    arith::Encoding enc_;
};

} // namespace model
} // namespace equinox

#endif // EQUINOX_MODEL_ANALYTICAL_HH

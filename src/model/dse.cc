#include "model/dse.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/units.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace model
{

namespace
{

std::vector<unsigned>
defaultNs()
{
    std::vector<unsigned> ns;
    for (unsigned n = 1; n <= 256; ++n)
        ns.push_back(n);
    return ns;
}

std::vector<double>
defaultFrequencies()
{
    using units::MHz;
    return {MHz(532), MHz(610), MHz(700), MHz(800), MHz(1000),
            MHz(1200), MHz(1600), MHz(2000), MHz(2400)};
}

/** LSTM batch-of-n service time on this design (the Table 1 metric). */
double
lstmServiceTime(const DesignPoint &p)
{
    sim::AcceleratorConfig cfg = toAcceleratorConfig(p, "dse-probe");
    workload::Compiler compiler(cfg);
    auto svc = compiler.compileInference(workload::DnnModel::lstm2048());
    return svc.service_time_s;
}

} // namespace

sim::AcceleratorConfig
toAcceleratorConfig(const DesignPoint &p, const std::string &name)
{
    sim::AcceleratorConfig cfg;
    cfg.name = name;
    cfg.n = p.n;
    cfg.m = p.m;
    cfg.w = p.w;
    cfg.frequency_hz = p.frequency_hz;
    cfg.encoding = p.encoding;
    return cfg;
}

namespace
{

/**
 * Evaluate one (n, f) grid cell: for each candidate w, take the
 * largest feasible m; keep the throughput-maximal (then power-minimal)
 * design. Returns nullopt when nothing fits the envelopes.
 */
std::optional<DesignPoint>
bestDesignAt(const AnalyticalModel &eq, arith::Encoding enc, unsigned n,
             double f, unsigned max_w)
{
    DesignPoint best;
    double best_t = -1.0;
    double best_p = std::numeric_limits<double>::infinity();
    for (unsigned w = 1; w <= max_w; ++w) {
        unsigned m = eq.maxM(n, w, f);
        if (m == 0) {
            // Power/area already exceeded by the wn SRAM term or
            // the per-m cost; larger w only makes it worse.
            if (w > 1)
                break;
            continue;
        }
        double t = eq.throughput(n, m, w, f);
        double p = eq.power(n, m, w, f);
        if (t > best_t * (1.0 + 1e-9) ||
            (std::abs(t - best_t) <= best_t * 1e-9 && p < best_p)) {
            best_t = t;
            best_p = p;
            best.n = n;
            best.m = m;
            best.w = w;
            best.frequency_hz = f;
            best.encoding = enc;
            best.throughput_ops = t;
            best.power_w = p;
            best.area_mm2 = eq.area(n, m, w);
        }
    }
    if (best_t <= 0.0)
        return std::nullopt;
    best.service_time_s = lstmServiceTime(best);
    return best;
}

} // namespace

DseResult
exploreDesignSpace(const TechParams &tech, arith::Encoding enc,
                   const DseConfig &cfg)
{
    const AnalyticalModel eq(tech, enc);
    std::vector<unsigned> ns =
        cfg.n_values.empty() ? defaultNs() : cfg.n_values;
    std::vector<double> fs =
        cfg.frequencies.empty() ? defaultFrequencies() : cfg.frequencies;

    // Fan the grid cells out; every cell is independent (the analytic
    // model is consulted read-only, the LSTM probe compiles its own
    // Compiler) and cells land in a slot vector by grid index, so the
    // point order — and therefore every downstream frontier/preset
    // selection — is byte-identical to the serial double loop.
    std::vector<std::optional<DesignPoint>> cells(ns.size() * fs.size());
    parallelFor(cfg.jobs, cells.size(), [&](std::size_t idx) {
        unsigned n = ns[idx / fs.size()];
        double f = fs[idx % fs.size()];
        cells[idx] = bestDesignAt(eq, enc, n, f, cfg.max_w);
    });

    DseResult result;
    for (const auto &cell : cells) {
        if (cell)
            result.points.push_back(*cell);
    }
    return result;
}

std::vector<DesignPoint>
paretoFrontier(DseResult &result)
{
    // Sort by throughput descending, latency ascending; sweep keeping the
    // running latency minimum.
    std::vector<std::size_t> order(result.points.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        const auto &pa = result.points[a];
        const auto &pb = result.points[b];
        if (pa.throughput_ops != pb.throughput_ops)
            return pa.throughput_ops > pb.throughput_ops;
        return pa.service_time_s < pb.service_time_s;
    });

    std::vector<DesignPoint> frontier;
    double best_latency = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        auto &p = result.points[idx];
        p.pareto = false;
        if (p.service_time_s < best_latency) {
            best_latency = p.service_time_s;
            p.pareto = true;
            frontier.push_back(p);
        }
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  return a.throughput_ops < b.throughput_ops;
              });
    return frontier;
}

std::optional<DesignPoint>
bestUnderLatency(const DseResult &result, double latency_limit_s)
{
    std::optional<DesignPoint> best;
    for (const auto &p : result.points) {
        if (p.service_time_s > latency_limit_s)
            continue;
        if (!best || p.throughput_ops > best->throughput_ops ||
            (p.throughput_ops == best->throughput_ops &&
             p.service_time_s < best->service_time_s)) {
            best = p;
        }
    }
    if (!best)
        return best;
    // Knee tie-break: past the Pareto knee throughput is flat while
    // latency keeps growing (section 4.2); take the lowest-latency design
    // within 0.1% of the best throughput.
    for (const auto &p : result.points) {
        if (p.service_time_s > latency_limit_s)
            continue;
        if (p.throughput_ops >= 0.999 * best->throughput_ops &&
            p.service_time_s < best->service_time_s) {
            best = p;
        }
    }
    return best;
}

std::optional<DesignPoint>
minLatencyDesign(const DseResult &result)
{
    std::optional<DesignPoint> best;
    for (const auto &p : result.points) {
        if (!best || p.service_time_s < best->service_time_s ||
            (p.service_time_s == best->service_time_s &&
             p.throughput_ops > best->throughput_ops)) {
            best = p;
        }
    }
    return best;
}

} // namespace model
} // namespace equinox

#include "model/analytical.hh"

#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace model
{

AnalyticalModel::AnalyticalModel(TechParams tech_params,
                                 arith::Encoding enc)
    : tp(tech_params), enc_(enc)
{
}

double
AnalyticalModel::area(unsigned n, unsigned m, unsigned w) const
{
    double alus = static_cast<double>(m) * n * n * w;
    return alus * tp.aluArea(enc_) + tp.sramArea() + tp.a_dram;
}

double
AnalyticalModel::power(unsigned n, unsigned m, unsigned w, double f) const
{
    double alus = static_cast<double>(m) * n * n * w;
    // Buffer traffic per cycle (values): activations w*n, weights m*w*n,
    // outputs m*n -- Eq. 2's (wn + mwn + mn) term.
    double traffic_values =
        static_cast<double>(w) * n +
        static_cast<double>(m) * w * n +
        static_cast<double>(m) * n;
    double traffic_bytes = traffic_values * tp.bytesPerValue(enc_);
    double scale = tp.energyScaleAt(f);
    double dynamic = f * scale *
                     (alus * tp.aluEnergy(enc_) +
                      traffic_bytes * tp.e_sram_byte);
    return dynamic + tp.p_dram + tp.sramStaticPower();
}

double
AnalyticalModel::throughput(unsigned n, unsigned m, unsigned w,
                            double f) const
{
    return 2.0 * static_cast<double>(m) * n * n * w * f;
}

bool
AnalyticalModel::feasible(unsigned n, unsigned m, unsigned w,
                          double f) const
{
    return area(n, m, w) <= tp.die_area &&
           power(n, m, w, f) <= tp.power_budget;
}

unsigned
AnalyticalModel::maxM(unsigned n, unsigned w, double f) const
{
    double nn = static_cast<double>(n);
    double ww = static_cast<double>(w);
    double bpv = tp.bytesPerValue(enc_);
    double scale = tp.energyScaleAt(f);

    // Area bound: m n^2 w a_alu <= die - sram - dram.
    double area_budget = tp.die_area - tp.sramArea() - tp.a_dram;
    if (area_budget <= 0.0)
        return 0;
    double m_area = area_budget / (nn * nn * ww * tp.aluArea(enc_));

    // Power bound: solve the linear-in-m Eq. 2 for m.
    double p_avail = tp.power_budget - tp.p_dram - tp.sramStaticPower();
    if (p_avail <= 0.0)
        return 0;
    double per_cycle_fixed = ww * nn * bpv * tp.e_sram_byte; // wn term
    double per_cycle_per_m =
        nn * nn * ww * tp.aluEnergy(enc_) +
        (ww * nn + nn) * bpv * tp.e_sram_byte; // mwn + mn terms
    double budget_cycles = p_avail / (f * scale);
    if (budget_cycles <= per_cycle_fixed)
        return 0;
    double m_power = (budget_cycles - per_cycle_fixed) / per_cycle_per_m;

    double m_best = std::floor(std::min(m_area, m_power));
    if (m_best < 1.0)
        return 0;
    return static_cast<unsigned>(m_best);
}

} // namespace model
} // namespace equinox

/**
 * @file
 * Design-space exploration (section 4): sweep the array batch dimension n
 * and the design frequency, maximise (m, w) under the area/power
 * envelopes, estimate each design's LSTM service time, and extract the
 * Pareto-optimal latency/throughput frontier (Figure 6 / Table 1).
 */

#ifndef EQUINOX_MODEL_DSE_HH
#define EQUINOX_MODEL_DSE_HH

#include <optional>
#include <vector>

#include "model/analytical.hh"
#include "sim/config.hh"

namespace equinox
{
namespace model
{

/** Sweep ranges. */
struct DseConfig
{
    /** n values; empty = {1 .. 256}. */
    std::vector<unsigned> n_values;
    /** Frequencies; empty = {532, 610, 700, 800, 1000, 1200, 1600,
     *  2000, 2400} MHz. */
    std::vector<double> frequencies;
    unsigned max_w = 4096;
    /**
     * Worker threads the (n, frequency) grid cells fan out across.
     * Each cell evaluates the analytic model and compiles the LSTM
     * probe independently; results are collected in grid order, so any
     * jobs value yields byte-identical output. 1 = serial code path,
     * 0 = defaultJobs().
     */
    std::size_t jobs = 1;
};

/** Sweep output. */
struct DseResult
{
    /** Best design per (n, frequency) pair, all feasible. */
    std::vector<DesignPoint> points;
};

/** Run the sweep for one encoding. */
DseResult exploreDesignSpace(const TechParams &tech, arith::Encoding enc,
                             const DseConfig &cfg = {});

/** Mark and return the Pareto frontier (max throughput at min latency). */
std::vector<DesignPoint> paretoFrontier(DseResult &result);

/**
 * Best design with service time below @p latency_limit_s
 * (infinity = unconstrained); nullopt when none qualifies.
 */
std::optional<DesignPoint> bestUnderLatency(const DseResult &result,
                                            double latency_limit_s);

/** The minimum-service-time design. */
std::optional<DesignPoint> minLatencyDesign(const DseResult &result);

/** Convert a design point into a simulator configuration. */
sim::AcceleratorConfig toAcceleratorConfig(const DesignPoint &p,
                                           const std::string &name);

} // namespace model
} // namespace equinox

#endif // EQUINOX_MODEL_DSE_HH

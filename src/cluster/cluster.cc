#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "cluster/router.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/units.hh"
#include "fault/traffic_mix.hh"
#include "sim/accelerator.hh"

namespace equinox
{
namespace cluster
{

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b ? (a + b - 1) / b : a;
}

} // namespace

std::vector<std::string>
ClusterSpec::validate() const
{
    std::vector<std::string> errors;
    if (replicas < 1)
        errors.push_back("replicas must be >= 1");
    if (latency_window < 1)
        errors.push_back("latency_window must be >= 1");
    if (burst_factor < 1.0)
        errors.push_back("burst_factor must be >= 1");
    if (arrival_process == sim::ArrivalProcess::Bursty &&
        burst_period_s <= 0.0)
        errors.push_back("bursty arrivals need burst_period_s > 0");
    for (const auto &o : outages) {
        if (o.replica >= replicas)
            errors.push_back("outage names replica " +
                             std::to_string(o.replica) + " but only " +
                             std::to_string(replicas) + " exist");
        if (o.from_s < 0.0 || o.to_s < o.from_s)
            errors.push_back("outage window [" +
                             std::to_string(o.from_s) + ", " +
                             std::to_string(o.to_s) +
                             ") must be ordered and non-negative");
    }
    if (!replica_faults.empty() && replica_faults.size() != replicas)
        errors.push_back(
            "replica_faults must be empty or name every replica (" +
            std::to_string(replica_faults.size()) + " plans for " +
            std::to_string(replicas) + " replicas)");
    for (auto &e : resilience.validate())
        errors.push_back("resilience: " + std::move(e));
    for (auto &e : chaos.validate())
        errors.push_back("chaos: " + std::move(e));
    for (auto &e : fleet.validate())
        errors.push_back("fleet: " + std::move(e));
    if (fleet.shards > replicas)
        errors.push_back("fleet: " + std::to_string(fleet.shards) +
                         " shards need at least that many replicas (" +
                         std::to_string(replicas) + " configured)");
    if (fleet.autoscaler.enabled &&
        fleet.autoscaler.min_replicas > replicas)
        errors.push_back(
            "fleet: autoscaler min_replicas exceeds the fleet size");
    if (fleet.routesHierarchically() && resilience.enabled())
        errors.push_back(
            "fleet: sharding/autoscaling cannot compose with the "
            "resilience control plane yet (pick one)");
    for (const auto &o : chaos.scheduled_outages) {
        if (o.replica != fault::kEveryReplica && o.replica >= replicas)
            errors.push_back("chaos scheduled outage names replica " +
                             std::to_string(o.replica) + " but only " +
                             std::to_string(replicas) + " exist");
    }
    return errors;
}

Cluster::Cluster(sim::AcceleratorConfig cfg, ClusterSpec spec)
    : cfg_(std::move(cfg)), spec_(std::move(spec))
{
    if (auto errors = cfg_.validate(); !errors.empty()) {
        EQX_FATAL("invalid accelerator configuration '", cfg_.name,
                  "':\n", sim::formatConfigErrors(errors));
    }
    if (auto errors = spec_.validate(); !errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid cluster spec:", joined);
    }
    for (const auto &plan : spec_.replica_faults) {
        if (auto errors = plan.validate(); !errors.empty()) {
            std::string joined;
            for (const auto &e : errors)
                joined += "\n  " + e;
            EQX_FATAL("invalid replica fault plan:", joined);
        }
    }
}

ClusterPointResult
Cluster::run(double load, const core::ExperimentOptions &opts) const
{
    return run(load, opts, core::compileWorkload(cfg_, opts));
}

ClusterPointResult
Cluster::run(double load, const core::ExperimentOptions &opts,
             const core::CompiledWorkload &compiled,
             const std::vector<sim::TraceSink *> &replica_sinks) const
{
    if (auto errors = opts.fault_plan.validate(); !errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid fault plan:", joined);
    }

    const std::size_t n = spec_.replicas;
    const double f = cfg_.frequency_hz;

    // One replica's saturation request rate, with the exact arithmetic
    // of Accelerator::maxRequestRate() so a 1-replica cluster offers
    // bit-identical rates to the single-accelerator path.
    const isa::CompiledProgram &prog = compiled.inference.program;
    double op_rate = static_cast<double>(prog.totalRealOps()) /
                     static_cast<double>(prog.mmuBusyCycles()) * f;
    double mu_req = op_rate / prog.opsPerRequest();
    double per_replica_rate = load * mu_req;
    Tick max_ticks = units::secondsToCycles(opts.max_sim_s, f);

    // Cluster-scope chaos: expand the plan into concrete outage
    // windows, per-replica scheduled faults, and arrival surges. A
    // default plan skips this entirely, so chaos-free runs stay
    // byte-identical to a build without the subsystem.
    fault::MaterializedChaos chaos;
    const bool chaos_on = spec_.chaos.enabled();
    if (chaos_on)
        chaos = fault::materializeChaos(spec_.chaos, n, opts.max_sim_s);

    std::vector<RouterOutage> outages;
    for (const auto &o : spec_.outages) {
        outages.push_back({o.replica, units::secondsToCycles(o.from_s, f),
                           units::secondsToCycles(o.to_s, f)});
    }
    for (const auto &o : chaos.outages) {
        outages.push_back({o.replica, units::secondsToCycles(o.from_s, f),
                           units::secondsToCycles(o.to_s, f)});
    }
    std::vector<RouterSurge> surges;
    for (const auto &s : chaos.surges) {
        surges.push_back({units::secondsToCycles(s.from_s, f),
                          units::secondsToCycles(s.to_s, f), s.factor});
    }
    // Traffic mixes (diurnal swings, flash crowds, tenant blends)
    // flatten into the same surge-window thinning mechanism chaos
    // flash crowds use; overlapping chaos windows compose by max, the
    // existing rule. A default mix materializes nothing.
    if (spec_.fleet.traffic.enabled()) {
        for (const auto &s : fault::materializeTraffic(
                 spec_.fleet.traffic, opts.max_sim_s)) {
            surges.push_back({units::secondsToCycles(s.from_s, f),
                              units::secondsToCycles(s.to_s, f),
                              s.factor});
        }
    }

    // Route the global candidate stream. `load` is the offered
    // fraction of the AGGREGATE capacity, so the stream runs at
    // per-replica rate x N; bursty mode draws candidates at the peak
    // rate and the replicas thin them at arrival, mirroring the
    // single-accelerator generator. An enabled resilience spec swaps
    // the bare Router for the ControlPlane (admission, retries,
    // hedging, breakers); disabled specs never construct one, so the
    // legacy path is bit-for-bit untouched.
    double rate_cycle =
        per_replica_rate * static_cast<double>(n) / f;
    if (spec_.arrival_process == sim::ArrivalProcess::Bursty)
        rate_cycle *= spec_.burst_factor;
    const bool cp_on = spec_.resilience.enabled();
    const bool fleet_on = spec_.fleet.routesHierarchically();
    RouterResult routed;
    ResilienceStats rstats;
    double overload_frac = 0.0;
    // The FleetRouter outlives routing: the training coordinator and
    // the per-shard/autoscaler reporting below query it.
    std::optional<FleetRouter> fleet_router;
    if (cp_on) {
        ControlPlane cp(spec_.resilience, spec_.policy, n, mu_req / f,
                        spec_.latency_window, outages);
        routed = cp.route(rate_cycle, opts.seed, max_ticks, surges);
        rstats = cp.stats();
        overload_frac = cp.overloadFraction();
    } else if (fleet_on) {
        // Hierarchical path: shard-level policy over per-shard flat
        // routers, optionally with the SLO autoscaler. All knobs
        // convert to the cycle domain here; the router never sees
        // seconds.
        FleetRouter::Config fc;
        fc.replica_policy = spec_.policy;
        fc.shard_policy = spec_.fleet.shard_policy;
        fc.replicas = n;
        fc.shards = std::max<std::size_t>(spec_.fleet.shards, 1);
        fc.service_rate_per_cycle = mu_req / f;
        fc.latency_window = spec_.latency_window;
        const AutoscalerSpec &as = spec_.fleet.autoscaler;
        if (as.enabled) {
            fc.autoscale = true;
            fc.min_active = as.min_replicas;
            fc.max_active = as.max_replicas;
            fc.initial_active = as.initial_replicas;
            fc.target_p99_cycles = as.target_p99_s * f;
            fc.low_watermark = as.low_watermark;
            fc.target_utilization = as.target_utilization;
            fc.decision_interval = std::max<Tick>(
                units::secondsToCycles(as.decision_interval_s, f), 1);
            fc.cooldown = units::secondsToCycles(as.cooldown_s, f);
            fc.warmup = units::secondsToCycles(as.warmup_s, f);
            fc.estimate_window = as.estimate_window;
            fc.min_samples = as.min_samples;
        }
        fleet_router.emplace(fc, outages);
        routed = fleet_router->route(rate_cycle, opts.seed, max_ticks,
                                     surges);
    } else {
        Router router(spec_.policy, n, mu_req / f, spec_.latency_window,
                      outages);
        routed = router.route(rate_cycle, opts.seed, max_ticks, surges);
    }

    // Training coordinator: place the piggybacked training service on
    // the replicas the router loaded least -- most free cycles, the
    // "training for free" invariant at fleet scale. Stable sort with
    // an index tiebreak keeps the placement deterministic.
    std::vector<char> trains(n, 0);
    if (compiled.training) {
        std::size_t k = spec_.train_replicas == 0
                            ? n
                            : std::min(spec_.train_replicas, n);
        // Graceful degradation: the fraction of the run the fleet
        // spent over the overload threshold sheds that fraction of
        // the training replicas -- training hands back its free
        // cycles before inference suffers.
        if (cp_on && spec_.resilience.shed_training_under_overload) {
            auto shed = std::min(
                k, static_cast<std::size_t>(std::floor(
                       overload_frac * static_cast<double>(k))));
            rstats.training_replicas_shed = shed;
            k -= shed;
        }
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), std::size_t{0});
        if (fleet_router && spec_.fleet.autoscaler.enabled) {
            // Replicas the autoscaler never powered run no traffic;
            // placing training there would model training on machines
            // that do not exist. Restrict the coordinator to the
            // ever-provisioned set.
            order.erase(std::remove_if(order.begin(), order.end(),
                                       [&](std::size_t r) {
                                           return !fleet_router
                                                       ->everActive(r);
                                       }),
                        order.end());
            k = std::min(k, order.size());
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return routed.assigned[a] <
                                    routed.assigned[b];
                         });
        for (std::size_t i = 0; i < k; ++i)
            trains[order[i]] = 1;
    }

    // Run the replicas, round-robined across min(jobs, n) workers
    // (strided: a 1024-replica fleet on 8 workers submits 8 tasks, not
    // 1024). Each run is self-contained (own Accelerator, own trace
    // slice, optional own sink), so the fan-out is byte-identical to a
    // serial loop.
    std::vector<ReplicaOutcome> out(n);
    parallelForStrided(opts.jobs, n, [&](std::size_t r) {
        sim::Accelerator accel(cfg_);
        accel.installInference(compiled.inference);
        if (trains[r])
            accel.installTraining(*compiled.training);
        if (r < replica_sinks.size() && replica_sinks[r])
            accel.setTraceSink(replica_sinks[r]);

        sim::RunSpec rs;
        // A replica whose trace is empty (dead all run, or never
        // activated by the autoscaler) must offer rate 0: the
        // dispatcher falls back to stochastic draws at the given rate
        // when the tick trace is empty, and the replica would invent
        // traffic the router never sent it.
        rs.arrival_rate_per_s =
            routed.traces[r].empty() ? 0.0 : per_replica_rate;
        rs.arrival_process = spec_.arrival_process;
        rs.burst_factor = spec_.burst_factor;
        rs.burst_period_s = spec_.burst_period_s;
        rs.arrival_trace_ticks = routed.traces[r];
        rs.warmup_requests = ceilDiv(opts.warmup_requests, n);
        rs.warmup_s = opts.warmup_s;
        rs.measure_requests = ceilDiv(opts.measure_requests, n);
        rs.min_measure_s = opts.min_measure_s;
        rs.measure_iterations = opts.measure_iterations;
        rs.max_sim_s = opts.max_sim_s;
        rs.seed = opts.seed + r;
        rs.fast_forward = opts.fast_forward;
        if (!spec_.replica_faults.empty()) {
            rs.faults = spec_.replica_faults[r];
        } else {
            rs.faults = opts.fault_plan;
            // Decorrelate replica fault streams; replica 0 keeps the
            // plan exactly (the 1-replica differential depends on it).
            if (r > 0)
                rs.faults.seed += static_cast<std::uint64_t>(r) * 9973;
        }
        // Chaos latency storms land as extra scheduled faults on the
        // victim replica's plan (the watchdog machinery answers them).
        if (chaos_on) {
            for (const auto &sf : chaos.replica_faults[r])
                rs.faults.scheduled.push_back(sf);
        }

        ReplicaOutcome &o = out[r];
        o.replica = r;
        o.assigned_candidates = routed.assigned[r];
        o.training = trains[r] != 0;
        o.sim = accel.run(rs);
    });

    // Deterministic merge, replicas in index order.
    ClusterPointResult res;
    res.load = load;
    res.replicas = n;
    res.policy = spec_.policy;
    res.generated_candidates = routed.generated;
    res.router_shed = routed.shed;
    res.rerouted = routed.rerouted;
    for (const auto &o : out) {
        const sim::SimResult &s = o.sim;
        res.aggregate_inference_ops += s.inference_throughput_ops;
        res.aggregate_training_ops += s.training_throughput_ops;
        res.completed_requests += s.completed_requests;
        res.training_iterations += s.training_iterations;
        res.committed_training_iterations +=
            s.committed_training_iterations;
        res.merged_latency_cycles.merge(s.latency_cycles);
        res.admitted_requests += s.admitted_requests;
        res.retired_requests += s.retired_requests;
        res.inflight_requests += s.inflight_requests;
        res.shed_requests += s.faults.shed_requests;
        res.faults.merge(s.faults);
    }
    res.aggregate_inference_tops = res.aggregate_inference_ops / 1e12;
    res.aggregate_training_tops = res.aggregate_training_ops / 1e12;
    double inv_f = 1.0 / f;
    if (res.merged_latency_cycles.count() > 0) {
        res.mean_latency_s = res.merged_latency_cycles.mean() * inv_f;
        res.p50_latency_s =
            res.merged_latency_cycles.percentile(0.5) * inv_f;
        res.p99_latency_s =
            res.merged_latency_cycles.percentile(0.99) * inv_f;
        res.max_latency_s = res.merged_latency_cycles.max() * inv_f;
    }
    // Planned and chaos outages are fleet downtime: account them in
    // the merged FaultStats and in the availability over the run
    // horizon.
    for (const auto &o : outages) {
        Tick from = std::min(o.from, max_ticks);
        Tick to = std::min(o.to, max_ticks);
        res.outage_cycles += to - from;
    }
    res.faults.downtime_cycles += res.outage_cycles;
    double span = static_cast<double>(n) *
                  static_cast<double>(std::max<Tick>(max_ticks, 1));
    double down =
        std::min(static_cast<double>(res.faults.downtime_cycles), span);
    res.availability = 1.0 - down / span;

    // Resilience reporting. Request availability is candidate-level
    // (all sheds); inference availability excludes sheds the priority
    // tags steered onto background work. Goodput counts measured
    // completions inside the admission deadline (all of them when no
    // deadline is set), normalized per replica-measured-second.
    res.control_plane = cp_on;
    res.resilience = rstats;
    std::uint64_t total_shed = cp_on ? rstats.totalShed() : routed.shed;
    if (routed.generated > 0) {
        res.request_availability =
            1.0 - static_cast<double>(total_shed) /
                      static_cast<double>(routed.generated);
    }
    std::uint64_t inference_offered =
        rstats.admission.offered - rstats.admission.offered_background;
    if (cp_on && inference_offered > 0) {
        res.inference_availability =
            1.0 - static_cast<double>(rstats.shed_inference_total) /
                      static_cast<double>(inference_offered);
    } else {
        res.inference_availability = res.request_availability;
    }
    const Tick deadline = spec_.resilience.admission.deadline_cycles;
    for (const auto &o : out) {
        std::uint64_t good = 0;
        for (double s : o.sim.latency_cycles.rawSamples()) {
            if (deadline == 0 || s <= static_cast<double>(deadline))
                ++good;
        }
        res.deadline_met += good;
        if (o.sim.sim_seconds > 0.0) {
            res.goodput_rps +=
                static_cast<double>(good) / o.sim.sim_seconds;
        }
    }
    // Fleet tier reporting: per-shard slices merge their replicas in
    // index order -- the same order the fleet-level merge above walked,
    // so shard-tracker merging reproduces the fleet percentiles
    // bitwise -- plus the autoscaler's decision accounting.
    if (fleet_router) {
        res.shards = fleet_router->shardCount();
        res.shard_policy = spec_.fleet.shard_policy;
        res.shard_rerouted = fleet_router->shardRerouted();
        res.per_shard.resize(res.shards);
        for (std::size_t s = 0; s < res.shards; ++s) {
            ShardOutcome &sh = res.per_shard[s];
            sh.shard = s;
            sh.first_replica = fleet_router->shardBase(s);
            sh.replicas = fleet_router->shardSize(s);
            for (std::size_t r = sh.first_replica;
                 r < sh.first_replica + sh.replicas; ++r) {
                sh.assigned_candidates += out[r].assigned_candidates;
                sh.completed_requests += out[r].sim.completed_requests;
                sh.merged_latency_cycles.merge(out[r].sim.latency_cycles);
                sh.faults.merge(out[r].sim.faults);
            }
            if (sh.merged_latency_cycles.count() > 0)
                sh.p99_latency_s =
                    sh.merged_latency_cycles.percentile(0.99) * inv_f;
        }
        res.autoscaled = spec_.fleet.autoscaler.enabled;
        if (res.autoscaled)
            res.autoscaler = fleet_router->autoscalerStats();
    }
    res.per_replica = std::move(out);
    return res;
}

} // namespace cluster
} // namespace equinox

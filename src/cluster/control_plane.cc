#include "cluster/control_plane.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/min_heap.hh"
#include "common/random.hh"

namespace equinox
{
namespace cluster
{

namespace
{

// Per-stream seed decorrelation: the priority tags and the retry
// jitter draw from their own Rng streams, so switching retries on
// never perturbs the candidate ticks or the priority split.
constexpr std::uint64_t kPriorityStream = 104729ull;
constexpr std::uint64_t kJitterStream = 130363ull;

/**
 * The interpolated order statistic LatencyTracker::percentile defines,
 * over the hedging layer's sliding estimate window.
 */
double
windowP99(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    double rank = 0.99 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    return (frac == 0.0 || lo + 1 >= sorted.size())
               ? sorted[lo]
               : sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

/** One dispatch attempt in the global time-ordered event heap. */
struct DispatchEvent
{
    Tick t = 0;
    std::uint64_t seq = 0; //!< FIFO tiebreak at equal ticks
    unsigned attempt = 0;  //!< 0 = first offer, > 0 = retry
    bool background = false;
};

struct LaterEvent
{
    bool
    operator()(const DispatchEvent &a, const DispatchEvent &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

} // namespace

bool
ResilienceSpec::enabled() const
{
    return admission.policy != AdmissionPolicy::None ||
           admission.background_fraction > 0.0 ||
           admission.deadline_cycles > 0 || retry.enabled ||
           hedge.enabled || breaker.enabled ||
           shed_training_under_overload;
}

std::vector<std::string>
ResilienceSpec::validate() const
{
    std::vector<std::string> errors = admission.validate();
    for (auto &e : breaker.validate())
        errors.push_back(std::move(e));
    auto complain = [&errors](auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    if (retry.enabled) {
        if (retry.max_attempts < 2) {
            complain("retry.max_attempts must be >= 2 when retries are "
                     "enabled (got ", retry.max_attempts,
                     "); the first attempt is not a retry");
        }
        if (retry.max_budget <= 0.0) {
            complain("retry.max_budget must be positive when retries "
                     "are enabled (got ", retry.max_budget,
                     "); a zero budget sheds every retry it allows");
        }
        if (retry.budget_ratio < 0.0) {
            complain("retry.budget_ratio must be >= 0 (got ",
                     retry.budget_ratio, ")");
        }
        if (retry.base_backoff_cycles == 0) {
            complain("retry.base_backoff_cycles must be >= 1 when "
                     "retries are enabled; an instant retry re-offers "
                     "into the same outage window");
        }
        if (retry.backoff_multiplier < 1.0) {
            complain("retry.backoff_multiplier must be >= 1 (got ",
                     retry.backoff_multiplier,
                     "); shrinking backoff invites livelock");
        }
        if (retry.jitter_frac < 0.0) {
            complain("retry.jitter_frac must be >= 0 (got ",
                     retry.jitter_frac, ")");
        }
    }
    if (hedge.enabled) {
        if (hedge.latency_factor <= 0.0) {
            complain("hedge.latency_factor must be > 0 when hedging is "
                     "enabled (got ", hedge.latency_factor,
                     "); a non-positive threshold hedges every "
                     "request");
        }
        if (hedge.window == 0) {
            complain("hedge.window must be >= 1 when hedging is "
                     "enabled");
        }
        if (hedge.min_samples == 0 ||
            hedge.min_samples > hedge.window) {
            complain("hedge.min_samples must be in [1, hedge.window] "
                     "(got ", hedge.min_samples, " with window ",
                     hedge.window, ")");
        }
        if (hedge.max_hedge_fraction <= 0.0 ||
            hedge.max_hedge_fraction > 1.0) {
            complain("hedge.max_hedge_fraction must be in (0, 1] (got ",
                     hedge.max_hedge_fraction,
                     "); the hedge budget caps duplicates as a "
                     "fraction of dispatched requests");
        }
    }
    if (shed_training_under_overload && training_shed_backlog <= 0.0) {
        complain("training_shed_backlog must be positive when "
                 "shed_training_under_overload is set (got ",
                 training_shed_backlog,
                 "); a zero threshold sheds training permanently");
    }
    return errors;
}

ControlPlane::ControlPlane(const ResilienceSpec &spec,
                           RoutingPolicy policy, std::size_t replicas,
                           double service_rate_per_cycle,
                           std::size_t latency_window,
                           std::vector<RouterOutage> outages)
    : spec_(spec), replicas_(replicas),
      router_(policy, replicas, service_rate_per_cycle, latency_window,
              std::move(outages)),
      admission_(spec.admission, spec.admission.rate_factor *
                                     static_cast<double>(replicas) *
                                     service_rate_per_cycle)
{
    if (spec_.breaker.enabled) {
        breakers_.reserve(replicas);
        for (std::size_t r = 0; r < replicas; ++r)
            breakers_.emplace_back(spec_.breaker);
        router_.setAvailabilityFilter([this](std::size_t r, Tick t) {
            return breakers_[r].allows(t);
        });
    }
}

void
ControlPlane::observeHealth(Tick t)
{
    // One probe round per dispatch event; each breaker rate-limits
    // itself to probe_interval_cycles. Health is causal: the outage
    // calendar plus the replica's own window-p99 estimate.
    for (std::size_t r = 0; r < replicas_; ++r) {
        bool healthy = router_.alive(r, t);
        if (healthy && spec_.breaker.latency_trip_cycles > 0.0) {
            healthy = router_.estimators()[r].windowP99() <=
                      spec_.breaker.latency_trip_cycles;
        }
        breakers_[r].observe(t, healthy);
    }
}

double
ControlPlane::overloadFraction() const
{
    if (stats_.admission.offered == 0)
        return 0.0;
    return static_cast<double>(stats_.overload_candidates) /
           static_cast<double>(stats_.admission.offered);
}

RouterResult
ControlPlane::route(double rate_per_cycle, std::uint64_t seed,
                    Tick max_ticks,
                    const std::vector<RouterSurge> &surges)
{
    RouterResult res;
    res.traces.resize(replicas_);
    res.assigned.assign(replicas_, 0);

    std::vector<Tick> ticks =
        generateCandidateTicks(rate_per_cycle, seed, max_ticks, surges);
    res.generated = ticks.size();

    Rng priority_rng(seed * kPriorityStream + 7);
    Rng jitter_rng(seed * kJitterStream + 11);

    // All dispatch attempts -- fresh candidates and backed-off retries
    // -- drain through one global min-heap ordered by (tick, seq), so
    // the per-replica traces come out non-decreasing no matter how
    // retries interleave with later arrivals. The candidate count is
    // the heap's provable high-water mark (every round pops one event
    // and pushes at most one retry), so one reserve() up front keeps
    // the whole routing pass allocation-free.
    ReservedMinHeap<DispatchEvent, LaterEvent> heap;
    heap.reserve(ticks.size());
    std::uint64_t seq = 0;
    const double bg_frac = spec_.admission.background_fraction;
    for (Tick t : ticks) {
        bool bg = bg_frac > 0.0 && priority_rng.uniform() < bg_frac;
        heap.push({t, seq++, 0, bg});
    }

    double retry_tokens = spec_.retry.max_budget;
    std::vector<double> hedge_window;
    hedge_window.reserve(spec_.hedge.window + 1);

    auto shedPriority = [this](bool background) {
        if (background)
            ++stats_.shed_background_total;
        else
            ++stats_.shed_inference_total;
    };

    while (!heap.empty()) {
        DispatchEvent ev = heap.pop();
        const Tick t = ev.t;

        router_.drainAll(t);
        if (spec_.breaker.enabled)
            observeHealth(t);

        if (ev.attempt == 0) {
            double mean_backlog = router_.meanBacklog();
            if (mean_backlog > spec_.training_shed_backlog)
                ++stats_.overload_candidates;
            if (!admission_.offer(t, ev.background, mean_backlog)) {
                shedPriority(ev.background);
                continue;
            }
        }

        std::size_t r = router_.pick(t);
        if (r == kNoReplica) {
            // No replica available. Distinguish "breakers vetoed an
            // otherwise-alive fleet" for the accounting, then spend a
            // retry token if the budget and attempt cap allow.
            bool any_alive = false;
            for (std::size_t i = 0; i < replicas_ && !any_alive; ++i)
                any_alive = router_.alive(i, t);
            if (any_alive && spec_.breaker.enabled)
                ++stats_.breaker_denials;

            if (spec_.retry.enabled &&
                ev.attempt + 1 < spec_.retry.max_attempts) {
                if (retry_tokens >= 1.0) {
                    retry_tokens -= 1.0;
                    ++stats_.retry_attempts;
                    double backoff =
                        static_cast<double>(
                            spec_.retry.base_backoff_cycles) *
                        std::pow(spec_.retry.backoff_multiplier,
                                 static_cast<double>(ev.attempt));
                    backoff *= 1.0 + spec_.retry.jitter_frac *
                                         jitter_rng.uniform();
                    Tick delay = std::max<Tick>(
                        1, static_cast<Tick>(backoff));
                    heap.push({t + delay, seq++, ev.attempt + 1,
                               ev.background});
                    continue;
                }
                ++stats_.retry_budget_exhausted;
            }
            if (ev.attempt > 0)
                ++stats_.retry_shed;
            else
                ++stats_.outage_shed;
            shedPriority(ev.background);
            continue;
        }

        if (ev.attempt > 0)
            ++stats_.retry_recovered;
        res.traces[r].push_back(t);
        ++res.assigned[r];
        ++stats_.dispatched;
        if (ev.background)
            ++stats_.dispatched_background;
        retry_tokens = std::min(spec_.retry.max_budget,
                                retry_tokens + spec_.retry.budget_ratio);

        double est =
            router_.estimators()[r].lastAssignmentEstimateCycles();
        admission_.noteDispatch(est);

        if (spec_.hedge.enabled) {
            // The hedge budget compares against dispatches so far, so
            // sustained overload (every estimate past the window p99)
            // settles at the cap instead of doubling offered load.
            bool budget_ok =
                static_cast<double>(stats_.hedges_issued) <
                spec_.hedge.max_hedge_fraction *
                    static_cast<double>(stats_.dispatched);
            if (budget_ok &&
                hedge_window.size() >= spec_.hedge.min_samples &&
                est > spec_.hedge.latency_factor *
                          windowP99(hedge_window)) {
                std::size_t alt = router_.pickAlternate(t, r);
                if (alt != kNoReplica) {
                    router_.assignTo(alt, t);
                    res.traces[alt].push_back(t);
                    ++res.assigned[alt];
                    ++stats_.hedges_issued;
                    // First-wins against the causal model: the copy
                    // predicted faster wins; the loser is accounted
                    // cancelled but still occupies its replica (the
                    // honest capacity cost of hedging).
                    double est_alt = router_.estimators()[alt]
                                         .lastAssignmentEstimateCycles();
                    if (est_alt < est)
                        ++stats_.hedge_wins;
                }
            }
            hedge_window.push_back(est);
            if (hedge_window.size() > spec_.hedge.window)
                hedge_window.erase(hedge_window.begin());
        }
    }

    EQX_ASSERT(heap.reallocations() == 0,
               "dispatch heap reallocated mid-route: reserve(",
               ticks.size(), ") was not the high-water mark (saw ",
               heap.highWater(), ")");
    stats_.dispatch_heap_reallocs = heap.reallocations();
    stats_.dispatch_heap_high_water = heap.highWater();

    for (const auto &b : breakers_) {
        stats_.breaker_opens += b.opens();
        stats_.breaker_reopens += b.reopens();
        stats_.breaker_closes += b.closes();
    }
    stats_.admission = admission_.stats();
    res.shed = stats_.totalShed();
    res.rerouted = router_.reroutedCount();
    return res;
}

} // namespace cluster
} // namespace equinox

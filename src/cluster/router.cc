#include "cluster/router.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace equinox
{
namespace cluster
{

std::vector<Tick>
generateCandidateTicks(double rate_per_cycle, std::uint64_t seed,
                       Tick max_ticks,
                       const std::vector<RouterSurge> &surges)
{
    std::vector<Tick> ticks;
    if (rate_per_cycle <= 0.0)
        return ticks;

    // Replay of RequestDispatcher's service-0 arrival recipe: same
    // seeding, same draw, same Tick(wait) + 1 increment. Any change
    // there must land here too or the 1-replica differential test
    // breaks.
    Rng rng(seed * 7919 + 1);
    if (surges.empty()) {
        Tick t = 0;
        while (true) {
            double wait = rng.exponential(rate_per_cycle);
            t += static_cast<Tick>(wait) + 1;
            ticks.push_back(t);
            // Include the first candidate beyond the horizon: the
            // replica event loop dispatches one event past max_ticks,
            // so the trace must cover it for byte-identity with a
            // stochastic run.
            if (t > max_ticks)
                break;
        }
        return ticks;
    }

    // Flash-crowd path: draw at the peak rate and thin each candidate
    // against the instantaneous rate (Lewis-Shedler thinning), so the
    // accepted stream runs `factor` times denser inside each surge
    // window and at the base rate outside. One seeded stream drives
    // both the waits and the acceptance draws, keeping the whole
    // stream a pure function of (rate, seed, surges).
    double peak_factor = 1.0;
    for (const auto &s : surges) {
        EQX_ASSERT(s.factor >= 1.0, "surge factor must be >= 1");
        peak_factor = std::max(peak_factor, s.factor);
    }
    auto factor_at = [&surges](Tick t) {
        double factor = 1.0;
        for (const auto &s : surges) {
            if (t >= s.from && t < s.to)
                factor = std::max(factor, s.factor);
        }
        return factor;
    };
    Tick t = 0;
    while (true) {
        double wait = rng.exponential(rate_per_cycle * peak_factor);
        t += static_cast<Tick>(wait) + 1;
        if (t > max_ticks) {
            // The one-past-the-horizon candidate is always accepted so
            // every trace covers the final dispatched event.
            ticks.push_back(t);
            break;
        }
        if (rng.uniform() * peak_factor < factor_at(t))
            ticks.push_back(t);
    }
    return ticks;
}

Router::Router(RoutingPolicy policy, std::size_t replicas,
               double service_rate_per_cycle, std::size_t latency_window,
               std::vector<RouterOutage> outages)
    : policy_(policy), replicas_(replicas), outages_(std::move(outages))
{
    EQX_ASSERT(replicas >= 1, "router needs at least one replica");
    estimators_.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r)
        estimators_.emplace_back(service_rate_per_cycle, latency_window);
    for (const auto &o : outages_) {
        EQX_ASSERT(o.replica < replicas,
                   "outage names replica ", o.replica, " of ", replicas);
        EQX_ASSERT(o.from <= o.to, "outage window runs backwards");
    }
}

bool
Router::alive(std::size_t replica, Tick t) const
{
    for (const auto &o : outages_) {
        if (o.replica == replica && t >= o.from && t < o.to)
            return false;
    }
    return true;
}

bool
Router::available(std::size_t replica, Tick t) const
{
    return alive(replica, t) && (!filter_ || filter_(replica, t));
}

bool
Router::anyAvailable(Tick t) const
{
    for (std::size_t r = 0; r < replicas_; ++r) {
        if (available(r, t))
            return true;
    }
    return false;
}

void
Router::drainAll(Tick t)
{
    for (auto &e : estimators_)
        e.drainTo(t);
}

double
Router::meanBacklog() const
{
    double sum = 0.0;
    for (const auto &e : estimators_)
        sum += e.backlog();
    return sum / static_cast<double>(replicas_);
}

std::size_t
Router::pickRoundRobin(Tick t)
{
    // The rotation pointer advances past dead replicas; the first
    // healthy replica at or after it wins and the pointer moves on.
    for (std::size_t i = 0; i < replicas_; ++i) {
        std::size_t cand = (rr_next_ + i) % replicas_;
        if (available(cand, t)) {
            if (i > 0)
                ++rerouted_;
            rr_next_ = (cand + 1) % replicas_;
            return cand;
        }
    }
    rr_next_ = (rr_next_ + 1) % replicas_;
    return kNoReplica;
}

double
Router::metric(std::size_t r) const
{
    // LatencyAware ranks by observed window p99; every other policy
    // (JSQ picks, round-robin hedge alternates) ranks by backlog.
    return policy_ == RoutingPolicy::LatencyAware
               ? estimators_[r].windowP99()
               : estimators_[r].backlog();
}

std::size_t
Router::pickMin(Tick t, bool healthy_only) const
{
    // Strict < with ascending scan: ties break to the lowest index,
    // which the determinism contract (DESIGN.md section 2.4) requires.
    std::size_t best = kNoReplica;
    for (std::size_t r = 0; r < replicas_; ++r) {
        if (healthy_only && !available(r, t))
            continue;
        if (best == kNoReplica || metric(r) < metric(best))
            best = r;
    }
    return best;
}

std::size_t
Router::pickAlternate(Tick t, std::size_t exclude) const
{
    std::size_t best = kNoReplica;
    for (std::size_t r = 0; r < replicas_; ++r) {
        if (r == exclude || !available(r, t))
            continue;
        if (best == kNoReplica || metric(r) < metric(best))
            best = r;
    }
    return best;
}

void
Router::assignTo(std::size_t r, Tick t)
{
    EQX_ASSERT(r < replicas_, "assignTo names replica ", r, " of ",
               replicas_);
    estimators_[r].assign(t);
}

std::size_t
Router::pick(Tick t)
{
    drainAll(t);

    std::size_t choice;
    if (policy_ == RoutingPolicy::RoundRobin) {
        choice = pickRoundRobin(t);
    } else {
        choice = pickMin(t, true);
        // Re-routed: the pick made ignoring health would have landed
        // on a dead or vetoed replica (the round-robin path counts
        // its own skips).
        if (choice != kNoReplica && !available(pickMin(t, false), t))
            ++rerouted_;
    }
    if (choice == kNoReplica) {
        ++shed_;
        return kNoReplica;
    }
    estimators_[choice].assign(t);
    return choice;
}

RouterResult
Router::route(double rate_per_cycle, std::uint64_t seed, Tick max_ticks,
              const std::vector<RouterSurge> &surges)
{
    RouterResult res;
    res.traces.resize(replicas_);
    res.assigned.assign(replicas_, 0);

    std::vector<Tick> ticks =
        generateCandidateTicks(rate_per_cycle, seed, max_ticks, surges);
    res.generated = ticks.size();
    for (Tick t : ticks) {
        std::size_t r = pick(t);
        if (r != kNoReplica) {
            res.traces[r].push_back(t);
            ++res.assigned[r];
        }
    }
    res.shed = shed_;
    res.rerouted = rerouted_;
    return res;
}

} // namespace cluster
} // namespace equinox

#include "cluster/router.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace equinox
{
namespace cluster
{

Router::Router(RoutingPolicy policy, std::size_t replicas,
               double service_rate_per_cycle, std::size_t latency_window,
               std::vector<RouterOutage> outages)
    : policy_(policy), replicas_(replicas), outages_(std::move(outages))
{
    EQX_ASSERT(replicas >= 1, "router needs at least one replica");
    estimators_.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r)
        estimators_.emplace_back(service_rate_per_cycle, latency_window);
    for (const auto &o : outages_) {
        EQX_ASSERT(o.replica < replicas,
                   "outage names replica ", o.replica, " of ", replicas);
        EQX_ASSERT(o.from <= o.to, "outage window runs backwards");
    }
}

bool
Router::alive(std::size_t replica, Tick t) const
{
    for (const auto &o : outages_) {
        if (o.replica == replica && t >= o.from && t < o.to)
            return false;
    }
    return true;
}

std::size_t
Router::pickRoundRobin(Tick t)
{
    // The rotation pointer advances past dead replicas; the first
    // healthy replica at or after it wins and the pointer moves on.
    for (std::size_t i = 0; i < replicas_; ++i) {
        std::size_t cand = (rr_next_ + i) % replicas_;
        if (alive(cand, t)) {
            if (i > 0)
                ++rerouted_;
            rr_next_ = (cand + 1) % replicas_;
            return cand;
        }
    }
    rr_next_ = (rr_next_ + 1) % replicas_;
    return kNoReplica;
}

double
Router::metric(std::size_t r) const
{
    return policy_ == RoutingPolicy::JoinShortestQueue
               ? estimators_[r].backlog()
               : estimators_[r].windowP99();
}

std::size_t
Router::pickMin(Tick t, bool healthy_only) const
{
    // Strict < with ascending scan: ties break to the lowest index,
    // which the determinism contract (DESIGN.md section 2.4) requires.
    std::size_t best = kNoReplica;
    for (std::size_t r = 0; r < replicas_; ++r) {
        if (healthy_only && !alive(r, t))
            continue;
        if (best == kNoReplica || metric(r) < metric(best))
            best = r;
    }
    return best;
}

std::size_t
Router::pick(Tick t)
{
    for (auto &e : estimators_)
        e.drainTo(t);

    std::size_t choice;
    if (policy_ == RoutingPolicy::RoundRobin) {
        choice = pickRoundRobin(t);
    } else {
        choice = pickMin(t, true);
        // Re-routed: the pick made ignoring health would have landed
        // on a dead replica (the round-robin path counts its own
        // skips).
        if (choice != kNoReplica && !alive(pickMin(t, false), t))
            ++rerouted_;
    }
    if (choice == kNoReplica) {
        ++shed_;
        return kNoReplica;
    }
    estimators_[choice].assign(t);
    return choice;
}

RouterResult
Router::route(double rate_per_cycle, std::uint64_t seed, Tick max_ticks)
{
    RouterResult res;
    res.traces.resize(replicas_);
    res.assigned.assign(replicas_, 0);
    if (rate_per_cycle <= 0.0)
        return res;

    // Replay of RequestDispatcher's service-0 arrival recipe: same
    // seeding, same draw, same Tick(wait) + 1 increment. Any change
    // there must land here too or the 1-replica differential test
    // breaks.
    Rng rng(seed * 7919 + 1);
    Tick t = 0;
    while (true) {
        double wait = rng.exponential(rate_per_cycle);
        t += static_cast<Tick>(wait) + 1;
        ++res.generated;
        std::size_t r = pick(t);
        if (r != kNoReplica) {
            res.traces[r].push_back(t);
            ++res.assigned[r];
        }
        // Include the first candidate beyond the horizon: the replica
        // event loop dispatches one event past max_ticks, so the trace
        // must cover it for byte-identity with a stochastic run.
        if (t > max_ticks)
            break;
    }
    res.shed = shed_;
    res.rerouted = rerouted_;
    return res;
}

} // namespace cluster
} // namespace equinox

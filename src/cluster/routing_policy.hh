/**
 * @file
 * Routing policies of the cluster front-end and the causal per-replica
 * queue estimator they consult.
 *
 * The router makes every routing decision from its own deterministic
 * model of each replica -- the requests it has assigned so far and a
 * fluid drain at the replica's saturation service rate -- never from
 * the replica simulations themselves. That is exactly the information a
 * real L7 load balancer has (its own accounting, not the server's
 * internals), and it keeps the replicas fully independent so they can
 * run one-per-worker and still merge deterministically (DESIGN.md
 * section 2.4).
 */

#ifndef EQUINOX_CLUSTER_ROUTING_POLICY_HH
#define EQUINOX_CLUSTER_ROUTING_POLICY_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace cluster
{

/** How the front-end picks a replica for each arriving request. */
enum class RoutingPolicy
{
    RoundRobin,        //!< rotate over healthy replicas
    JoinShortestQueue, //!< fewest estimated in-system requests
    LatencyAware,      //!< lowest estimated p99 over a sliding window
};

/** Stable short name ("round_robin", ...) for labels and JSON. */
const char *routingPolicyName(RoutingPolicy policy);

/** Every policy, in enum order (sweeps and property tests). */
std::vector<RoutingPolicy> allRoutingPolicies();

/**
 * The router's causal model of one replica: an M/D/1-style fluid queue
 * that grows by one per assigned request and drains at the replica's
 * saturation request rate. estimatedLatencyCycles() is the queueing
 * delay a newly assigned request would see under that model;
 * windowP99() is the p99 of the last `window` such estimates, the
 * "observed p99" the latency-aware policy ranks replicas by.
 */
class ReplicaEstimator
{
  public:
    /**
     * @param service_rate_per_cycle replica saturation rate in
     *        requests per clock cycle (must be > 0)
     * @param window sliding-window length for windowP99()
     */
    ReplicaEstimator(double service_rate_per_cycle, std::size_t window);

    /** Advance the fluid drain to @p now (monotone). */
    void drainTo(Tick now);

    /** Account one request assigned at @p now (drains first). */
    void assign(Tick now);

    /** Estimated requests in system after the last drain/assign. */
    double backlog() const { return backlog_; }

    /** Model latency (cycles) a request assigned now would see. */
    double estimatedLatencyCycles() const;

    /**
     * p99 of the last `window` assignment-time latency estimates --
     * the same interpolated order statistic stats::LatencyTracker
     * computes, refreshed once per assignment and read for free.
     */
    double windowP99() const { return window_p99_; }

    /** Requests assigned to this replica so far. */
    std::uint64_t assigned() const { return assigned_; }

    /**
     * The latency estimate recorded for the most recent assignment --
     * i.e. the model latency THAT request is predicted to see. The
     * control plane's deadline accounting and hedging threshold read
     * it right after Router::pick()/assignTo(). 0 before any
     * assignment.
     */
    double
    lastAssignmentEstimateCycles() const
    {
        return recent_.empty() ? 0.0 : recent_.back();
    }

  private:
    void refreshWindowP99();

    double rate_per_cycle_;
    std::size_t window_;
    double backlog_ = 0.0;
    Tick last_ = 0;
    std::uint64_t assigned_ = 0;
    std::deque<double> recent_;
    std::vector<double> scratch_; //!< reused per-assignment sort buffer
    double window_p99_ = 0.0;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_ROUTING_POLICY_HH

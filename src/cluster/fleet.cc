#include "cluster/fleet.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace cluster
{

namespace
{

constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();
constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

std::size_t
clampCount(std::size_t v, std::size_t lo, std::size_t hi)
{
    return std::min(std::max(v, lo), hi);
}

} // namespace

std::vector<std::string>
AutoscalerSpec::validate() const
{
    std::vector<std::string> errors;
    if (!enabled)
        return errors;
    if (min_replicas < 1)
        errors.push_back("autoscaler min_replicas must be >= 1");
    if (max_replicas != 0 && max_replicas < min_replicas)
        errors.push_back("autoscaler max_replicas must be 0 or >= "
                         "min_replicas");
    if (initial_replicas != 0 &&
        (initial_replicas < min_replicas ||
         (max_replicas != 0 && initial_replicas > max_replicas)))
        errors.push_back("autoscaler initial_replicas must be 0 or in "
                         "[min_replicas, max_replicas]");
    if (!(target_p99_s > 0.0))
        errors.push_back("autoscaler needs target_p99_s > 0");
    if (!(low_watermark > 0.0 && low_watermark < 1.0))
        errors.push_back("autoscaler low_watermark must be in (0, 1)");
    if (!(target_utilization > 0.0 && target_utilization <= 1.0))
        errors.push_back(
            "autoscaler target_utilization must be in (0, 1]");
    if (!(decision_interval_s > 0.0))
        errors.push_back("autoscaler needs decision_interval_s > 0");
    if (cooldown_s < 0.0)
        errors.push_back("autoscaler cooldown_s must be >= 0");
    if (warmup_s < 0.0)
        errors.push_back("autoscaler warmup_s must be >= 0");
    if (estimate_window < 1)
        errors.push_back("autoscaler estimate_window must be >= 1");
    if (min_samples < 1)
        errors.push_back("autoscaler min_samples must be >= 1");
    return errors;
}

std::vector<std::string>
FleetSpec::validate() const
{
    std::vector<std::string> errors;
    for (auto &e : autoscaler.validate())
        errors.push_back(std::move(e));
    for (auto &e : traffic.validate())
        errors.push_back("traffic: " + std::move(e));
    return errors;
}

FleetRouter::FleetRouter(const Config &cfg,
                         std::vector<RouterOutage> outages)
    : cfg_(cfg), shards_(cfg.shards)
{
    const std::size_t n = cfg_.replicas;
    EQX_ASSERT(n >= 1, "fleet needs at least one replica");
    EQX_ASSERT(shards_ >= 1 && shards_ <= n, "shard count ", shards_,
               " must be in [1, ", n, "]");
    EQX_ASSERT(cfg_.service_rate_per_cycle > 0.0,
               "fleet needs a positive service rate");

    // Contiguous balanced partition: the first n % S shards take one
    // extra replica, so sizes differ by at most 1 and shardOf() is a
    // closed-form computation.
    base_.resize(shards_ + 1);
    std::size_t size = n / shards_;
    std::size_t rem = n % shards_;
    base_[0] = 0;
    for (std::size_t s = 0; s < shards_; ++s)
        base_[s + 1] = base_[s] + size + (s < rem ? 1 : 0);

    // Split the global outage plan into per-shard local plans.
    std::vector<std::vector<RouterOutage>> local(shards_);
    shard_has_outage_.assign(shards_, 0);
    for (const auto &o : outages) {
        EQX_ASSERT(o.replica < n, "outage names replica ", o.replica,
                   " of ", n);
        std::size_t s = shardOf(o.replica);
        local[s].push_back({o.replica - base_[s], o.from, o.to});
        shard_has_outage_[s] = 1;
    }

    inner_.reserve(shards_);
    shard_est_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
        inner_.emplace_back(cfg_.replica_policy, shardSize(s),
                            cfg_.service_rate_per_cycle,
                            cfg_.latency_window, std::move(local[s]));
        // The shard estimator models the shard as one fat server with
        // the shard's aggregate capacity -- the same M/D/1-style fluid
        // queue the replica estimators run, one level up.
        shard_est_.emplace_back(cfg_.service_rate_per_cycle *
                                    static_cast<double>(shardSize(s)),
                                cfg_.latency_window);
    }

    if (cfg_.autoscale) {
        EQX_ASSERT(cfg_.decision_interval >= 1,
                   "autoscaler needs a nonzero decision interval");
        max_active_ = cfg_.max_active == 0
                          ? n
                          : std::min(cfg_.max_active, n);
        std::size_t min_active = clampCount(cfg_.min_active, 1,
                                            max_active_);
        std::size_t initial = cfg_.initial_active == 0
                                  ? min_active
                                  : clampCount(cfg_.initial_active,
                                               min_active, max_active_);
        routable_from_.assign(n, kNeverTick);
        ever_active_.assign(n, 0);
        for (std::size_t r = 0; r < initial; ++r) {
            routable_from_[r] = 0;
            ever_active_[r] = 1;
        }
        provisioned_ = initial;
        next_decision_ = cfg_.decision_interval;
        horizon_ = kNeverTick;
        stats_.min_active = initial;
        stats_.max_active = initial;
        stats_.final_active = initial;
        // The routability veto rides the same filter hook the control
        // plane's breakers use: inner picks skip deactivated and
        // still-warming replicas exactly like dead ones.
        for (std::size_t s = 0; s < shards_; ++s) {
            std::size_t b = base_[s];
            inner_[s].setAvailabilityFilter(
                [this, b](std::size_t local_r, Tick t) {
                    return routable(b + local_r, t);
                });
        }
    }
}

std::size_t
FleetRouter::shardOf(std::size_t replica) const
{
    EQX_ASSERT(replica < cfg_.replicas, "replica ", replica, " of ",
               cfg_.replicas);
    std::size_t n = cfg_.replicas;
    std::size_t size = n / shards_;
    std::size_t rem = n % shards_;
    std::size_t fat = rem * (size + 1); //!< replicas in the fat shards
    if (replica < fat)
        return replica / (size + 1);
    return rem + (replica - fat) / size;
}

bool
FleetRouter::routable(std::size_t replica, Tick t) const
{
    return routable_from_[replica] <= t;
}

bool
FleetRouter::everActive(std::size_t replica) const
{
    if (!cfg_.autoscale)
        return true;
    return ever_active_[replica] != 0;
}

bool
FleetRouter::shardAvailable(std::size_t s, Tick t) const
{
    // Provisioning is a prefix of the global index space and
    // routable_from_ is non-decreasing in the replica index
    // (activations always append to the provisioned prefix with later
    // timestamps), so the shard's FIRST replica decides whether ANY
    // member is routable -- an O(1) gate in front of the O(shard)
    // outage scan, which only runs for shards that have outages at
    // all.
    if (cfg_.autoscale && !routable(base_[s], t))
        return false;
    if (!shard_has_outage_[s])
        return true;
    return inner_[s].anyAvailable(t);
}

double
FleetRouter::shardMetric(std::size_t s) const
{
    return cfg_.shard_policy == RoutingPolicy::LatencyAware
               ? shard_est_[s].windowP99()
               : shard_est_[s].backlog();
}

std::size_t
FleetRouter::pickShard(Tick t)
{
    if (cfg_.shard_policy == RoutingPolicy::RoundRobin) {
        for (std::size_t i = 0; i < shards_; ++i) {
            std::size_t cand = (shard_rr_ + i) % shards_;
            if (shardAvailable(cand, t)) {
                if (i > 0)
                    ++shard_rerouted_;
                shard_rr_ = (cand + 1) % shards_;
                return cand;
            }
        }
        // No shard has an available replica. The candidate still goes
        // to the cursor's shard so THAT inner router sheds it and
        // advances its own rotation -- with one shard this is exactly
        // the flat router's shed path, which the byte-identity lemma
        // requires.
        std::size_t cand = shard_rr_;
        shard_rr_ = (shard_rr_ + 1) % shards_;
        return cand;
    }

    // Min-metric shard policies: strict < with ascending scan, ties to
    // the lowest index (the same determinism contract as the flat
    // pickMin).
    std::size_t best_avail = kNoShard;
    std::size_t best_all = kNoShard;
    for (std::size_t s = 0; s < shards_; ++s) {
        if (best_all == kNoShard ||
            shardMetric(s) < shardMetric(best_all))
            best_all = s;
        if (!shardAvailable(s, t))
            continue;
        if (best_avail == kNoShard ||
            shardMetric(s) < shardMetric(best_avail))
            best_avail = s;
    }
    if (best_avail == kNoShard)
        return best_all; // inner pick sheds
    if (!shardAvailable(best_all, t))
        ++shard_rerouted_;
    return best_avail;
}

std::size_t
FleetRouter::pick(Tick t)
{
    if (cfg_.autoscale)
        onCandidate(t);
    for (auto &e : shard_est_)
        e.drainTo(t);

    std::size_t s = pickShard(t);
    std::size_t local = inner_[s].pick(t);
    if (local == kNoReplica)
        return kNoReplica; // the inner router counted the shed
    shard_est_[s].assign(t);

    if (cfg_.autoscale) {
        // Feedback signal: the model latency the just-assigned request
        // is predicted to see, from the chosen replica's estimator.
        estimates_.push_back(inner_[s]
                                 .estimators()[local]
                                 .lastAssignmentEstimateCycles());
        if (estimates_.size() > cfg_.estimate_window)
            estimates_.pop_front();
    }
    return base_[s] + local;
}

void
FleetRouter::onCandidate(Tick t)
{
    // Close every decision boundary the stream has passed, then count
    // this candidate into the now-current interval. Candidates beyond
    // the horizon (the one-past-the-end candidate the event loop
    // needs) close boundaries but are not counted.
    while (next_decision_ <= horizon_ && next_decision_ <= t) {
        decide(next_decision_);
        next_decision_ += cfg_.decision_interval;
    }
    if (t <= horizon_)
        ++interval_candidates_;
}

void
FleetRouter::decide(Tick boundary)
{
    ++stats_.decisions;
    double len = static_cast<double>(cfg_.decision_interval);
    double rate = static_cast<double>(interval_candidates_) / len;
    interval_candidates_ = 0;

    // Feed-forward capacity plan: replicas needed to serve the
    // interval's observed arrival rate at the target utilization.
    double mu = cfg_.service_rate_per_cycle;
    auto ff_raw = static_cast<std::size_t>(
        std::ceil(rate / (mu * cfg_.target_utilization)));
    std::size_t needed = clampCount(ff_raw, cfg_.min_active,
                                    max_active_);

    // Account the closed interval (provisioned_ is constant across it:
    // it only changes at boundaries).
    double active = static_cast<double>(provisioned_);
    stats_.active_replica_ticks += active * len;
    stats_.needed_replica_ticks += static_cast<double>(needed) * len;
    if (provisioned_ > needed)
        stats_.over_provisioned_ticks +=
            static_cast<double>(provisioned_ - needed) * len;

    // Control: proportional feedback on the estimate-stream p99 when
    // enough samples exist, feed-forward tracking before that. The
    // dead band between low_watermark * target and target holds the
    // current size (hysteresis); the cooldown below rate-limits
    // actions in both directions.
    std::size_t desired = provisioned_;
    if (estimates_.size() >= cfg_.min_samples) {
        scratch_.assign(estimates_.begin(), estimates_.end());
        std::sort(scratch_.begin(), scratch_.end());
        double p99 = stats::exactPercentileSorted(scratch_, 0.99);
        if (p99 > cfg_.target_p99_cycles) {
            // Overload: proportional jump, never below the
            // feed-forward plan. The ratio is capped so a transient
            // backlog estimate cannot demand a absurd fleet (the
            // clamp to max_active_ would hide the cap anyway).
            double ratio =
                std::min(p99 / cfg_.target_p99_cycles, 64.0);
            auto fb = static_cast<std::size_t>(std::ceil(
                static_cast<double>(provisioned_) * ratio));
            desired = std::max(needed, fb);
        } else if (p99 <
                   cfg_.low_watermark * cfg_.target_p99_cycles) {
            desired = needed;
        }
    } else {
        desired = std::max(provisioned_, needed);
    }
    desired = clampCount(desired, cfg_.min_active, max_active_);

    if (desired != provisioned_ &&
        (!acted_ || boundary >= last_action_ + cfg_.cooldown))
        setProvisioned(boundary, desired);
}

void
FleetRouter::setProvisioned(Tick boundary, std::size_t desired)
{
    if (desired > provisioned_) {
        // Activate the lowest inactive indices; they become routable
        // only after the warm-up lag. Appending to the provisioned
        // prefix with the latest timestamp keeps routable_from_
        // non-decreasing in the index, which shardAvailable's O(1)
        // gate depends on.
        for (std::size_t r = provisioned_; r < desired; ++r) {
            routable_from_[r] = boundary + cfg_.warmup;
            ever_active_[r] = 1;
        }
        ++stats_.scale_ups;
    } else {
        for (std::size_t r = desired; r < provisioned_; ++r)
            routable_from_[r] = kNeverTick;
        ++stats_.scale_downs;
    }
    provisioned_ = desired;
    acted_ = true;
    last_action_ = boundary;
    stats_.min_active = std::min(stats_.min_active, provisioned_);
    stats_.max_active = std::max(stats_.max_active, provisioned_);
    stats_.transitions.emplace_back(boundary, provisioned_);
}

void
FleetRouter::finishRoute(Tick max_ticks)
{
    if (!cfg_.autoscale)
        return;
    horizon_ = max_ticks;
    while (next_decision_ <= max_ticks) {
        decide(next_decision_);
        next_decision_ += cfg_.decision_interval;
    }
    // Account the partial tail interval [last boundary, horizon).
    Tick prev = next_decision_ - cfg_.decision_interval;
    if (max_ticks > prev) {
        double tail = static_cast<double>(max_ticks - prev);
        double rate =
            static_cast<double>(interval_candidates_) / tail;
        auto ff_raw = static_cast<std::size_t>(std::ceil(
            rate /
            (cfg_.service_rate_per_cycle * cfg_.target_utilization)));
        std::size_t needed = clampCount(ff_raw, cfg_.min_active,
                                        max_active_);
        stats_.active_replica_ticks +=
            static_cast<double>(provisioned_) * tail;
        stats_.needed_replica_ticks +=
            static_cast<double>(needed) * tail;
        if (provisioned_ > needed)
            stats_.over_provisioned_ticks +=
                static_cast<double>(provisioned_ - needed) * tail;
        interval_candidates_ = 0;
    }
    stats_.final_active = provisioned_;
    stats_.over_provision_frac =
        stats_.active_replica_ticks > 0.0
            ? stats_.over_provisioned_ticks /
                  stats_.active_replica_ticks
            : 0.0;
}

RouterResult
FleetRouter::route(double rate_per_cycle, std::uint64_t seed,
                   Tick max_ticks, const std::vector<RouterSurge> &surges)
{
    horizon_ = max_ticks;
    RouterResult res;
    res.traces.resize(cfg_.replicas);
    res.assigned.assign(cfg_.replicas, 0);

    std::vector<Tick> ticks =
        generateCandidateTicks(rate_per_cycle, seed, max_ticks, surges);
    res.generated = ticks.size();
    for (Tick t : ticks) {
        std::size_t g = pick(t);
        if (g != kNoReplica) {
            res.traces[g].push_back(t);
            ++res.assigned[g];
        }
    }
    finishRoute(max_ticks);

    for (const auto &r : inner_) {
        res.shed += r.shedCount();
        res.rerouted += r.reroutedCount();
    }
    res.rerouted += shard_rerouted_;
    return res;
}

} // namespace cluster
} // namespace equinox

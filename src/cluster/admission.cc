#include "cluster/admission.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace equinox
{
namespace cluster
{

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
    case AdmissionPolicy::None:
        return "none";
    case AdmissionPolicy::TokenBucket:
        return "token_bucket";
    case AdmissionPolicy::QueueDepth:
        return "queue_depth";
    case AdmissionPolicy::PriorityShed:
        return "priority_shed";
    }
    return "unknown";
}

std::vector<AdmissionPolicy>
allAdmissionPolicies()
{
    return {AdmissionPolicy::None, AdmissionPolicy::TokenBucket,
            AdmissionPolicy::QueueDepth, AdmissionPolicy::PriorityShed};
}

std::vector<std::string>
AdmissionConfig::validate() const
{
    std::vector<std::string> errors;
    auto complain = [&errors](auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    if (background_fraction < 0.0 || background_fraction > 1.0) {
        complain("admission.background_fraction must be in [0, 1] "
                 "(got ", background_fraction, ")");
    }
    if (policy == AdmissionPolicy::TokenBucket && rate_factor <= 0.0) {
        complain("admission.rate_factor must be positive with the "
                 "token_bucket policy (got ", rate_factor,
                 "); 0 would admit nothing, ever");
    }
    if (policy == AdmissionPolicy::TokenBucket && burst < 1.0) {
        complain("admission.burst must be >= 1 with the token_bucket "
                 "policy (got ", burst,
                 "); the bucket must hold at least one request");
    }
    if (policy == AdmissionPolicy::QueueDepth && target_backlog <= 0.0) {
        complain("admission.target_backlog must be positive with the "
                 "queue_depth policy (got ", target_backlog, ")");
    }
    if (policy == AdmissionPolicy::QueueDepth && interval_cycles == 0) {
        complain("admission.interval_cycles must be >= 1 with the "
                 "queue_depth policy; a zero CoDel interval sheds on "
                 "the first backlog excursion");
    }
    if (policy == AdmissionPolicy::PriorityShed) {
        if (background_watermark <= 0.0) {
            complain("admission.background_watermark must be positive "
                     "with the priority_shed policy (got ",
                     background_watermark, ")");
        }
        if (inference_watermark <= background_watermark) {
            complain("admission.inference_watermark (",
                     inference_watermark,
                     ") must exceed background_watermark (",
                     background_watermark,
                     ") or background is never shed first");
        }
    }
    return errors;
}

void
AdmissionStats::merge(const AdmissionStats &other)
{
    offered += other.offered;
    offered_background += other.offered_background;
    admitted += other.admitted;
    shed_rate_limited += other.shed_rate_limited;
    shed_queue += other.shed_queue;
    shed_background += other.shed_background;
    shed_inference += other.shed_inference;
    deadline_missed += other.deadline_missed;
}

AdmissionController::AdmissionController(const AdmissionConfig &cfg,
                                         double tokens_per_cycle)
    : cfg_(cfg), tokens_per_cycle_(tokens_per_cycle),
      tokens_(cfg.burst)
{
    if (cfg_.policy == AdmissionPolicy::TokenBucket) {
        EQX_ASSERT(tokens_per_cycle_ > 0.0,
                   "token bucket needs a positive refill rate");
    }
}

bool
AdmissionController::offerTokenBucket(Tick t)
{
    tokens_ = std::min(
        cfg_.burst,
        tokens_ + static_cast<double>(t - last_refill_) *
                      tokens_per_cycle_);
    last_refill_ = t;
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    ++stats_.shed_rate_limited;
    return false;
}

bool
AdmissionController::offerQueueDepth(Tick t, double mean_backlog)
{
    // CoDel's control law on the fluid backlog: shedding starts only
    // once the backlog has stayed above target for a full interval,
    // then spaces drops at interval / sqrt(drop_count) so pressure
    // ramps up the longer the overload persists, and stops the moment
    // the backlog dips back under target.
    if (mean_backlog <= cfg_.target_backlog) {
        above_target_ = false;
        dropping_ = false;
        drop_count_ = 0;
        return true;
    }
    if (!above_target_) {
        above_target_ = true;
        above_since_ = t;
        return true;
    }
    if (!dropping_) {
        if (t - above_since_ < cfg_.interval_cycles)
            return true;
        dropping_ = true;
        drop_count_ = 1;
        next_drop_ =
            t + static_cast<Tick>(
                    static_cast<double>(cfg_.interval_cycles) /
                    std::sqrt(static_cast<double>(drop_count_ + 1)));
        ++stats_.shed_queue;
        return false;
    }
    if (t >= next_drop_) {
        ++drop_count_;
        next_drop_ =
            t + static_cast<Tick>(
                    static_cast<double>(cfg_.interval_cycles) /
                    std::sqrt(static_cast<double>(drop_count_ + 1)));
        ++stats_.shed_queue;
        return false;
    }
    return true;
}

bool
AdmissionController::offerPriority(bool background, double mean_backlog)
{
    if (background && mean_backlog > cfg_.background_watermark) {
        ++stats_.shed_background;
        return false;
    }
    if (!background && mean_backlog > cfg_.inference_watermark) {
        ++stats_.shed_inference;
        return false;
    }
    return true;
}

bool
AdmissionController::offer(Tick t, bool background, double mean_backlog)
{
    ++stats_.offered;
    if (background)
        ++stats_.offered_background;

    bool admit = true;
    switch (cfg_.policy) {
    case AdmissionPolicy::None:
        break;
    case AdmissionPolicy::TokenBucket:
        admit = offerTokenBucket(t);
        break;
    case AdmissionPolicy::QueueDepth:
        admit = offerQueueDepth(t, mean_backlog);
        break;
    case AdmissionPolicy::PriorityShed:
        admit = offerPriority(background, mean_backlog);
        break;
    }
    if (admit)
        ++stats_.admitted;
    return admit;
}

void
AdmissionController::noteDispatch(double estimate_cycles)
{
    if (cfg_.deadline_cycles > 0 &&
        estimate_cycles > static_cast<double>(cfg_.deadline_cycles))
        ++stats_.deadline_missed;
}

} // namespace cluster
} // namespace equinox

/**
 * @file
 * Per-replica circuit breaker + health-check state machine.
 *
 * Classic three-state breaker driven by the router's own causal
 * signals: a health probe (rate-limited to one observation per
 * probe_interval_cycles) reports whether the replica is inside an
 * outage window and whether its ReplicaEstimator window-p99 has blown
 * past the latency trip threshold.
 *
 *   Closed --(trip_failures consecutive bad probes)--> Open
 *   Open --(cooldown_cycles elapse)--> HalfOpen
 *   HalfOpen --(halfopen_probes consecutive good probes)--> Closed
 *   HalfOpen --(one bad probe)--> Open (cooldown restarts)
 *
 * While Open the routing policies skip the replica via the Router's
 * availability filter; HalfOpen lets traffic through so the probes
 * have something to observe. Everything is deterministic: state moves
 * only on observe()/allows() calls at event ticks, never on wall time.
 */

#ifndef EQUINOX_CLUSTER_CIRCUIT_BREAKER_HH
#define EQUINOX_CLUSTER_CIRCUIT_BREAKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace cluster
{

/** Knobs of one replica's breaker (defaults: disabled). */
struct BreakerConfig
{
    bool enabled = false;
    /** Consecutive bad health probes that trip Closed -> Open. */
    unsigned trip_failures = 4;
    /** Minimum spacing between health observations. */
    Tick probe_interval_cycles = 2000;
    /** How long an Open breaker waits before probing (HalfOpen). */
    Tick cooldown_cycles = 100000;
    /** Consecutive good probes that close a HalfOpen breaker. */
    unsigned halfopen_probes = 3;
    /**
     * Replica window-p99 latency estimate (cycles) above which a
     * probe counts as bad even when the replica is up. 0 disables the
     * latency signal (outages alone drive the breaker).
     */
    double latency_trip_cycles = 0.0;

    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** One replica's breaker state machine. */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(const BreakerConfig &cfg);

    /**
     * Feed one health observation at @p t (@p healthy from the
     * outage + latency signals). Observations closer than
     * probe_interval_cycles to the last accepted one are ignored, so
     * a burst of arrivals counts as one probe.
     */
    void observe(Tick t, bool healthy);

    /**
     * Whether routing may use the replica at @p t. Advances
     * Open -> HalfOpen once the cooldown has elapsed, so callers see
     * the probe window without a separate clock.
     */
    bool allows(Tick t);

    State state() const { return state_; }

    /** Closed -> Open trips. */
    std::uint64_t opens() const { return opens_; }
    /** HalfOpen -> Open re-trips. */
    std::uint64_t reopens() const { return reopens_; }
    /** HalfOpen -> Closed recoveries. */
    std::uint64_t closes() const { return closes_; }

  private:
    void trip(Tick t, bool reopen);

    BreakerConfig cfg_;
    State state_ = State::Closed;
    unsigned consecutive_failures_ = 0;
    unsigned probe_successes_ = 0;
    Tick open_until_ = 0;
    Tick last_probe_ = 0;
    bool probed_ = false;
    std::uint64_t opens_ = 0;
    std::uint64_t reopens_ = 0;
    std::uint64_t closes_ = 0;
};

/** Stable name ("closed", "open", "half_open") for labels and JSON. */
const char *breakerStateName(CircuitBreaker::State state);

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_CIRCUIT_BREAKER_HH

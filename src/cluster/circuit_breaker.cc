#include "cluster/circuit_breaker.hh"

#include <sstream>

#include "common/logging.hh"

namespace equinox
{
namespace cluster
{

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
    case CircuitBreaker::State::Closed:
        return "closed";
    case CircuitBreaker::State::Open:
        return "open";
    case CircuitBreaker::State::HalfOpen:
        return "half_open";
    }
    return "unknown";
}

std::vector<std::string>
BreakerConfig::validate() const
{
    std::vector<std::string> errors;
    if (!enabled)
        return errors;
    auto complain = [&errors](auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back(oss.str());
    };

    if (trip_failures == 0) {
        complain("breaker.trip_failures must be >= 1 when the breaker "
                 "is enabled; tripping on zero failures opens it "
                 "immediately and forever");
    }
    if (probe_interval_cycles == 0) {
        complain("breaker.probe_interval_cycles must be >= 1 when the "
                 "breaker is enabled, else every arrival is a probe "
                 "and one burst trips it");
    }
    if (cooldown_cycles == 0) {
        complain("breaker.cooldown_cycles must be >= 1 when the "
                 "breaker is enabled; an Open state that expires "
                 "instantly never sheds anything");
    }
    if (halfopen_probes == 0) {
        complain("breaker.halfopen_probes must be >= 1 when the "
                 "breaker is enabled, else HalfOpen closes without "
                 "evidence");
    }
    if (latency_trip_cycles < 0.0) {
        complain("breaker.latency_trip_cycles must be >= 0 (got ",
                 latency_trip_cycles, "); 0 disables the latency "
                 "signal");
    }
    return errors;
}

CircuitBreaker::CircuitBreaker(const BreakerConfig &cfg) : cfg_(cfg) {}

void
CircuitBreaker::trip(Tick t, bool reopen)
{
    state_ = State::Open;
    open_until_ = t + cfg_.cooldown_cycles;
    consecutive_failures_ = 0;
    probe_successes_ = 0;
    if (reopen)
        ++reopens_;
    else
        ++opens_;
}

void
CircuitBreaker::observe(Tick t, bool healthy)
{
    if (!cfg_.enabled)
        return;
    // Rate-limit: a burst of same-window arrivals is one probe.
    if (probed_ && t < last_probe_ + cfg_.probe_interval_cycles)
        return;
    probed_ = true;
    last_probe_ = t;

    switch (state_) {
    case State::Closed:
        if (healthy) {
            consecutive_failures_ = 0;
        } else if (++consecutive_failures_ >= cfg_.trip_failures) {
            trip(t, false);
        }
        break;
    case State::Open:
        // Cooldown only; allows() moves Open -> HalfOpen.
        break;
    case State::HalfOpen:
        if (!healthy) {
            trip(t, true);
        } else if (++probe_successes_ >= cfg_.halfopen_probes) {
            state_ = State::Closed;
            consecutive_failures_ = 0;
            probe_successes_ = 0;
            ++closes_;
        }
        break;
    }
}

bool
CircuitBreaker::allows(Tick t)
{
    if (!cfg_.enabled)
        return true;
    if (state_ == State::Open) {
        if (t < open_until_)
            return false;
        state_ = State::HalfOpen;
        probe_successes_ = 0;
    }
    return true;
}

} // namespace cluster
} // namespace equinox

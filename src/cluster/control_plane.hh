/**
 * @file
 * The overload-resilience control plane of the cluster front-end.
 *
 * Sits between the arrival generator and the Router and layers four
 * mechanisms over plain routing (DESIGN.md section 2.5):
 *
 *   admission -> routing -> hedging -> circuit breaking
 *
 *   - An AdmissionController sheds at the front door (token bucket,
 *     CoDel on the estimated backlog, or priority watermarks).
 *   - A client-side retry budget re-offers candidates that found no
 *     available replica, with exponential backoff and seeded jitter,
 *     bounded by a token budget refilled by successful dispatches.
 *   - A hedging layer duplicates a dispatch whose latency estimate
 *     exceeds latency_factor x the sliding-window p99 of recent
 *     estimates, onto the best alternate replica; first-wins
 *     cancellation is accounted against the router's causal model
 *     (the predicted-faster copy "wins"), while both copies occupy
 *     real replica capacity -- the honest cost of hedging.
 *   - Per-replica CircuitBreakers veto routing to replicas whose
 *     health probes (outage state + window-p99 latency) keep failing.
 *
 * Determinism: candidates, priority tags, retry jitter, and chaos all
 * draw from separate seeded Rng streams; retries and hedges are
 * processed through one global time-ordered event heap so per-replica
 * traces stay non-decreasing and a run is a pure function of
 * (spec, rate, seed, horizon, surges). With every mechanism disabled
 * the Cluster never constructs a ControlPlane at all, so golden
 * digests are untouched.
 */

#ifndef EQUINOX_CLUSTER_CONTROL_PLANE_HH
#define EQUINOX_CLUSTER_CONTROL_PLANE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/admission.hh"
#include "cluster/circuit_breaker.hh"
#include "cluster/router.hh"

namespace equinox
{
namespace cluster
{

/** Client-side retry budget over the Router (defaults: off). */
struct RetryConfig
{
    bool enabled = false;
    /** Total attempts per candidate including the first (>= 2). */
    unsigned max_attempts = 3;
    /** Retry-token bucket depth; the budget starts full. */
    double max_budget = 32.0;
    /** Tokens deposited per successfully dispatched primary. */
    double budget_ratio = 0.1;
    /** First backoff wait, in cycles. */
    Tick base_backoff_cycles = 2000;
    /** Geometric backoff growth per attempt. */
    double backoff_multiplier = 2.0;
    /** Uniform jitter fraction added to each wait (seeded stream). */
    double jitter_frac = 0.25;
};

/** Hedged-request layer (defaults: off). */
struct HedgeConfig
{
    bool enabled = false;
    /** Hedge when the estimate exceeds factor x window p99 (> 0). */
    double latency_factor = 2.0;
    /** Sliding window of recent dispatch estimates. */
    std::size_t window = 128;
    /** Estimates required before hedging starts (warm-up guard). */
    std::size_t min_samples = 16;
    /**
     * Hedge budget: duplicates are suppressed once they exceed this
     * fraction of dispatched requests, so overload (which pushes every
     * estimate past the window p99) cannot trigger a hedge storm that
     * doubles the offered load. In (0, 1].
     */
    double max_hedge_fraction = 0.02;
};

/** Everything the resilience control plane can switch on. */
struct ResilienceSpec
{
    AdmissionConfig admission;
    RetryConfig retry;
    HedgeConfig hedge;
    BreakerConfig breaker;
    /**
     * Cluster-wide graceful degradation: when the mean backlog spends
     * part of the run above training_shed_backlog, the training
     * coordinator sheds that fraction of its training replicas --
     * training gives back its free cycles before inference suffers.
     */
    bool shed_training_under_overload = false;
    double training_shed_backlog = 2.0;

    /** True when any mechanism (or priority tagging) is active. */
    bool enabled() const;

    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** FaultStats-style accounting of one control-plane routing pass. */
struct ResilienceStats
{
    AdmissionStats admission;

    /** Primary dispatches (candidates that reached a replica). */
    std::uint64_t dispatched = 0;
    std::uint64_t dispatched_background = 0;

    std::uint64_t retry_attempts = 0;
    /** Retried candidates that eventually dispatched. */
    std::uint64_t retry_recovered = 0;
    /** Candidates shed after at least one retry. */
    std::uint64_t retry_shed = 0;
    /** Retries denied because the token budget ran dry. */
    std::uint64_t retry_budget_exhausted = 0;
    /** Candidates shed with no replica available and no retry left. */
    std::uint64_t outage_shed = 0;
    /** Picks that failed although an outage-alive replica existed. */
    std::uint64_t breaker_denials = 0;

    std::uint64_t hedges_issued = 0;
    /** Hedges whose duplicate was predicted to beat the primary. */
    std::uint64_t hedge_wins = 0;

    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_reopens = 0;
    std::uint64_t breaker_closes = 0;

    /** Sheds of any cause, split by the candidate's priority tag. */
    std::uint64_t shed_background_total = 0;
    std::uint64_t shed_inference_total = 0;

    /** Candidates that arrived with the fleet over the training-shed
     *  backlog threshold (drives the degradation fraction). */
    std::uint64_t overload_candidates = 0;

    /**
     * Allocation audit of the global dispatch heap: route() reserves
     * the candidate count up front (each round pops one event and
     * pushes at most one retry, so the initial fill is the provable
     * high-water mark) and these must come out 0-realloc; the
     * resilience suite pins that.
     */
    std::uint64_t dispatch_heap_reallocs = 0;
    std::size_t dispatch_heap_high_water = 0;
    /** Training replicas the coordinator shed (filled by Cluster). */
    std::size_t training_replicas_shed = 0;

    /** All candidates shed by any mechanism. */
    std::uint64_t
    totalShed() const
    {
        return admission.totalShed() + retry_shed + outage_shed;
    }
};

/** Admission + retries + hedging + breakers around one Router. */
class ControlPlane
{
  public:
    /**
     * @param spec validated resilience knobs
     * @param policy,replicas,service_rate_per_cycle,latency_window,
     *        outages forwarded to the underlying Router; the token
     *        bucket refills at
     *        admission.rate_factor x replicas x service rate
     */
    ControlPlane(const ResilienceSpec &spec, RoutingPolicy policy,
                 std::size_t replicas, double service_rate_per_cycle,
                 std::size_t latency_window,
                 std::vector<RouterOutage> outages);

    /**
     * Route one run's candidate stream through the control plane.
     * Same contract as Router::route, plus: RouterResult::shed counts
     * every control-plane shed (stats().totalShed()), and the
     * conservation identities become
     *   generated == dispatched + shed
     *   sum(assigned) == dispatched + hedges_issued.
     */
    RouterResult route(double rate_per_cycle, std::uint64_t seed,
                       Tick max_ticks,
                       const std::vector<RouterSurge> &surges = {});

    const ResilienceStats &stats() const { return stats_; }

    /** Fraction of candidates that arrived during fleet overload. */
    double overloadFraction() const;

    /** Breaker of replica @p r (tests; empty unless enabled). */
    const CircuitBreaker &breaker(std::size_t r) const
    {
        return breakers_[r];
    }

  private:
    void observeHealth(Tick t);

    ResilienceSpec spec_;
    std::size_t replicas_;
    Router router_;
    AdmissionController admission_;
    std::vector<CircuitBreaker> breakers_;
    ResilienceStats stats_;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_CONTROL_PLANE_HH

/**
 * @file
 * Cluster load sweeps wired into the core experiment harness: compile
 * the workload once (the same CompiledWorkload cache the single-chip
 * sweeps use), run every load point through a Cluster, and export the
 * points into a MetricsSnapshot "cluster" section.
 *
 * Lives in namespace core beside runLoadSweep -- the cluster layer is
 * the fleet-scale sibling of that API -- but is built into the
 * equinox_cluster library, which layers on top of the core one.
 */

#ifndef EQUINOX_CLUSTER_SWEEP_HH
#define EQUINOX_CLUSTER_SWEEP_HH

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "core/experiment.hh"

namespace equinox
{
namespace core
{

/**
 * Run a whole cluster load sweep: the workload compiles once, then
 * each point routes the global stream and time-multiplexes its
 * replicas across min(opts.jobs, replicas) workers (round-robin
 * striding -- a 1024-replica fleet on 8 workers runs 128 replicas per
 * worker, byte-identical to serial). Points run in input order;
 * results are a pure function of (cfg, cspec, loads, opts).
 */
std::vector<cluster::ClusterPointResult> runClusterSweep(
    const sim::AcceleratorConfig &cfg, const cluster::ClusterSpec &cspec,
    const std::vector<double> &loads, const ExperimentOptions &opts = {});

/**
 * Append one cluster point under "cluster.<label>" in @p snap:
 * routing/aggregate/conservation counters, the exact merged latency
 * percentiles, per-replica rows, and fault/availability accounting.
 * Deterministic field order and formatting, like addLoadPoint.
 */
void addClusterPoint(obs::MetricsSnapshot &snap, const std::string &label,
                     const cluster::ClusterPointResult &r);

/** addClusterPoint over a whole sweep, in input order. */
void addClusterSweep(obs::MetricsSnapshot &snap, const std::string &label,
                     const std::vector<cluster::ClusterPointResult> &rs);

/**
 * Append one control-plane point under "resilience.<label>" in @p
 * snap: availability/goodput headline numbers plus the full admission,
 * retry, hedge, and breaker counter breakdown. Only meaningful for
 * points run with the resilience control plane enabled
 * (r.control_plane); plain points export their availability headline
 * and zeroed mechanism counters.
 */
void addResiliencePoint(obs::MetricsSnapshot &snap,
                        const std::string &label,
                        const cluster::ClusterPointResult &r);

/**
 * Append one fleet-routed point under "fleet.<label>" in @p snap:
 * the hierarchy shape (shards, shard policy, shard-level re-routes),
 * per-SHARD rows (a 1024-replica fleet exports ~32 shard rows, not
 * 1024 replica rows), and the autoscaler's decision accounting
 * (scale events, provisioned envelope, over-provision fraction).
 * Points routed by the flat Router export the headline numbers with
 * shards = 0 and no shard rows.
 */
void addFleetPoint(obs::MetricsSnapshot &snap, const std::string &label,
                   const cluster::ClusterPointResult &r);

/** addFleetPoint over a whole sweep, in input order. */
void addFleetSweep(obs::MetricsSnapshot &snap, const std::string &label,
                   const std::vector<cluster::ClusterPointResult> &rs);

} // namespace core
} // namespace equinox

#endif // EQUINOX_CLUSTER_SWEEP_HH

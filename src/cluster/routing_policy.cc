#include "cluster/routing_policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace cluster
{

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
    case RoutingPolicy::RoundRobin:
        return "round_robin";
    case RoutingPolicy::JoinShortestQueue:
        return "join_shortest_queue";
    case RoutingPolicy::LatencyAware:
        return "latency_aware";
    }
    return "unknown";
}

std::vector<RoutingPolicy>
allRoutingPolicies()
{
    return {RoutingPolicy::RoundRobin, RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::LatencyAware};
}

ReplicaEstimator::ReplicaEstimator(double service_rate_per_cycle,
                                   std::size_t window)
    : rate_per_cycle_(service_rate_per_cycle), window_(window)
{
    EQX_ASSERT(service_rate_per_cycle > 0.0,
               "estimator needs a positive service rate");
    EQX_ASSERT(window > 0, "estimator needs a nonzero window");
}

void
ReplicaEstimator::drainTo(Tick now)
{
    EQX_ASSERT(now >= last_, "estimator time ran backwards");
    double drained =
        static_cast<double>(now - last_) * rate_per_cycle_;
    backlog_ = backlog_ > drained ? backlog_ - drained : 0.0;
    last_ = now;
}

double
ReplicaEstimator::estimatedLatencyCycles() const
{
    // One in-system request occupies the server for 1/mu cycles; a new
    // arrival waits for the backlog plus its own service.
    return (backlog_ + 1.0) / rate_per_cycle_;
}

void
ReplicaEstimator::assign(Tick now)
{
    drainTo(now);
    recent_.push_back(estimatedLatencyCycles());
    if (recent_.size() > window_)
        recent_.pop_front();
    backlog_ += 1.0;
    ++assigned_;
    refreshWindowP99();
}

void
ReplicaEstimator::refreshWindowP99()
{
    // The window only changes on assignment, so the p99 is refreshed
    // here once and read for free by every later routing decision.
    // This runs once per routed request -- a long-horizon stream is
    // millions of refreshes -- so it reuses a scratch buffer instead
    // of building a LatencyTracker, but the interpolation itself is
    // stats::exactPercentileSorted, the one percentile kernel: it
    // carries the exact-rank guard that keeps +inf samples from
    // surfacing as 0 * inf = NaN, and sharing it makes windowP99()
    // bit-identical to LatencyTracker::percentile by construction
    // (the policy contract windowP99() documents).
    scratch_.assign(recent_.begin(), recent_.end());
    std::sort(scratch_.begin(), scratch_.end());
    window_p99_ = stats::exactPercentileSorted(scratch_, 0.99);
}

} // namespace cluster
} // namespace equinox

/**
 * @file
 * Fleet layer: hierarchical sharded routing and SLO-aware autoscaling
 * on top of the flat Router.
 *
 * At O(1024) replicas the flat router's per-candidate O(N) scans and
 * its single rotation/argmin become both a simulation cost and a
 * modeling lie (real fleets route through a shard tier). FleetRouter
 * splits the fleet into contiguous balanced shards, runs ONE flat
 * Router per shard, and adds a shard-level RoutingPolicy over per-shard
 * fluid estimators whose service rate is the shard's aggregate
 * capacity. A candidate picks a shard (round-robin / JSQ / latency-
 * aware, same tie-to-lowest-index contract), then the shard's inner
 * Router picks the replica -- O(S + N/S) per candidate instead of
 * O(N).
 *
 * Identity lemma (tests/test_fleet_differential.cc): with 1 shard,
 * every pick delegates to the single inner Router with the exact call
 * sequence of the flat path -- including the shed path, where the
 * chosen shard's inner pick still runs so its round-robin cursor
 * advances exactly like the flat router's -- so a 1-shard fleet is
 * byte-identical to the flat Router under every policy, outage plan,
 * and traffic shape.
 *
 * The autoscaler is causal like every routing decision: it reads only
 * the router-side estimate stream and its own candidate counts, never
 * the replica simulations. Replicas activate/deactivate as a prefix of
 * the global index space (lowest indices first), activations pay a
 * warm-up lag before becoming routable, and decisions respect a
 * cooldown (hysteresis). Scale-up combines a feed-forward plan from
 * the observed arrival rate with proportional feedback on the p99 of
 * recent assignment-latency estimates -- the same exact-rank
 * percentile every tracker in the repo computes.
 */

#ifndef EQUINOX_CLUSTER_FLEET_HH
#define EQUINOX_CLUSTER_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.hh"
#include "cluster/routing_policy.hh"
#include "common/types.hh"
#include "fault/traffic_mix.hh"

namespace equinox
{
namespace cluster
{

/** SLO-aware replica autoscaling, declaratively (seconds domain). */
struct AutoscalerSpec
{
    bool enabled = false;
    /** Active-replica floor (>= 1). */
    std::size_t min_replicas = 1;
    /** Active-replica ceiling; 0 = the fleet size. */
    std::size_t max_replicas = 0;
    /** Replicas active at t = 0; 0 = min_replicas. */
    std::size_t initial_replicas = 0;
    /** p99 latency target the controller defends (> 0 when enabled). */
    double target_p99_s = 0.0;
    /**
     * Scale down only when the observed p99 sits below
     * low_watermark * target (in (0, 1)); the dead band between the
     * watermark and the target is the hysteresis that keeps the fleet
     * from flapping around the SLO boundary.
     */
    double low_watermark = 0.5;
    /**
     * Utilization the feed-forward capacity plan provisions for, in
     * (0, 1]: needed = ceil(rate / (mu * target_utilization)). Also
     * the baseline the over-provision accounting charges against.
     */
    double target_utilization = 0.85;
    /** Controller decision cadence (> 0 when enabled). */
    double decision_interval_s = 1e-3;
    /** Minimum spacing between consecutive scaling actions (>= 0). */
    double cooldown_s = 3e-3;
    /** Lag between activating a replica and it becoming routable. */
    double warmup_s = 5e-4;
    /** Sliding window of assignment-latency estimates (>= 1). */
    std::size_t estimate_window = 256;
    /** No feedback decisions before this many samples (>= 1). */
    std::size_t min_samples = 16;

    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** Everything one autoscaled routing pass reports. */
struct AutoscalerStats
{
    std::uint64_t decisions = 0;
    std::uint64_t scale_ups = 0;
    std::uint64_t scale_downs = 0;
    /** Provisioned-count envelope over the run. */
    std::size_t min_active = 0;
    std::size_t max_active = 0;
    std::size_t final_active = 0;
    /** Integral of provisioned replicas over the horizon (ticks). */
    double active_replica_ticks = 0.0;
    /** Integral of the feed-forward capacity plan (ticks). */
    double needed_replica_ticks = 0.0;
    /** Integral of max(0, provisioned - needed) (ticks). */
    double over_provisioned_ticks = 0.0;
    /** over_provisioned_ticks / active_replica_ticks (0 when idle). */
    double over_provision_frac = 0.0;
    /** (tick, provisioned count after the action), per action. */
    std::vector<std::pair<Tick, std::size_t>> transitions;
};

/** Fleet-scale serving knobs riding on a ClusterSpec. */
struct FleetSpec
{
    /**
     * Shard count for the hierarchical router; 0 keeps the flat
     * Router (the fleet layer constructs nothing). Shards partition
     * the replicas contiguously and balanced (sizes differ by <= 1).
     */
    std::size_t shards = 0;
    /** Policy of the shard tier (replica tier uses ClusterSpec's). */
    RoutingPolicy shard_policy = RoutingPolicy::JoinShortestQueue;
    AutoscalerSpec autoscaler;
    /** Diurnal / flash-crowd / multi-tenant arrival shaping. */
    fault::TrafficMix traffic;

    /** True when any fleet mechanism is configured. */
    bool
    enabled() const
    {
        return shards > 0 || autoscaler.enabled || traffic.enabled();
    }
    /** True when routing must go through the FleetRouter. */
    bool
    routesHierarchically() const
    {
        return shards > 0 || autoscaler.enabled;
    }
    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** Two-level router: shard-level policy over per-shard flat Routers. */
class FleetRouter
{
  public:
    /** Construction knobs, converted to the cycle domain by the
     *  cluster layer (the router never sees wall-clock seconds). */
    struct Config
    {
        RoutingPolicy replica_policy = RoutingPolicy::RoundRobin;
        RoutingPolicy shard_policy = RoutingPolicy::JoinShortestQueue;
        std::size_t replicas = 1;
        std::size_t shards = 1;
        /** One replica's saturation rate, requests per cycle. */
        double service_rate_per_cycle = 0.0;
        std::size_t latency_window = 64;

        // -- autoscaler, cycle domain (autoscale=false ignores all) --
        bool autoscale = false;
        std::size_t min_active = 1;
        std::size_t max_active = 0; //!< 0 = replicas
        std::size_t initial_active = 0; //!< 0 = min_active
        double target_p99_cycles = 0.0;
        double low_watermark = 0.5;
        double target_utilization = 0.85;
        Tick decision_interval = 1;
        Tick cooldown = 0;
        Tick warmup = 0;
        std::size_t estimate_window = 256;
        std::size_t min_samples = 16;
    };

    FleetRouter(const Config &cfg, std::vector<RouterOutage> outages);

    /** Route the global candidate stream; same contract as
     *  Router::route, with global replica indices in the result. */
    RouterResult route(double rate_per_cycle, std::uint64_t seed,
                       Tick max_ticks,
                       const std::vector<RouterSurge> &surges = {});

    /**
     * Route one candidate at @p t: autoscaler bookkeeping, shard pick,
     * inner replica pick; returns the global replica index or
     * kNoReplica. Exposed for unit tests; route() calls this.
     */
    std::size_t pick(Tick t);

    /**
     * Close the autoscaler's interval accounting at the run horizon.
     * route() calls this; standalone pick() users call it once at the
     * end (idempotent per horizon).
     */
    void finishRoute(Tick max_ticks);

    std::size_t shardCount() const { return shards_; }
    std::size_t shardOf(std::size_t replica) const;
    std::size_t shardBase(std::size_t s) const { return base_[s]; }
    std::size_t
    shardSize(std::size_t s) const
    {
        return base_[s + 1] - base_[s];
    }

    /** Candidates whose first-choice SHARD was skipped (the inner
     *  routers count their own replica-level re-routes). */
    std::uint64_t shardRerouted() const { return shard_rerouted_; }

    /** True when @p replica was provisioned at any point of the run
     *  (always true with the autoscaler off). */
    bool everActive(std::size_t replica) const;

    const AutoscalerStats &autoscalerStats() const { return stats_; }

    const std::vector<Router> &innerRouters() const { return inner_; }

  private:
    bool shardAvailable(std::size_t s, Tick t) const;
    double shardMetric(std::size_t s) const;
    std::size_t pickShard(Tick t);
    bool routable(std::size_t replica, Tick t) const;
    void onCandidate(Tick t);
    void decide(Tick boundary);
    void setProvisioned(Tick boundary, std::size_t desired);

    Config cfg_;
    std::size_t shards_;
    /** base_[s] = first global replica of shard s; size shards_+1. */
    std::vector<std::size_t> base_;
    std::vector<Router> inner_;
    std::vector<ReplicaEstimator> shard_est_;
    /** True when shard s has any outage window (fast-path gate). */
    std::vector<char> shard_has_outage_;
    std::size_t shard_rr_ = 0;
    std::uint64_t shard_rerouted_ = 0;

    // -- autoscaler state (untouched when cfg_.autoscale is false) ----
    /** First tick replica r serves; kNeverTick = not provisioned. */
    std::vector<Tick> routable_from_;
    std::vector<char> ever_active_;
    std::size_t provisioned_ = 0;
    std::size_t max_active_ = 0; //!< resolved ceiling
    Tick next_decision_ = 0;
    Tick horizon_ = 0;
    bool acted_ = false;
    Tick last_action_ = 0;
    std::uint64_t interval_candidates_ = 0;
    std::deque<double> estimates_;
    std::vector<double> scratch_;
    AutoscalerStats stats_;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_FLEET_HH

/**
 * @file
 * Cluster: N independent Accelerator replicas behind a Router.
 *
 * Models the fleet deployment the paper's single-chip evaluation stops
 * short of: a front-end splits one global Poisson/bursty arrival
 * stream across replicas by routing policy, each replica simulates
 * independently (own SimContext, seed, and fault plan -- so replicas
 * can fan out one-per-worker), and the results merge deterministically
 * in replica order with exact percentile merging over the concatenated
 * latency samples. A cluster-wide training coordinator steers the
 * piggybacked training work to the replicas the router loaded least --
 * the paper's "training for free" invariant at fleet scale.
 *
 * Determinism rules (DESIGN.md section 2.4): routing is causal on
 * router-side state only, replicas never feed back into routing, and
 * every merge walks replicas in index order; a run is a pure function
 * of (config, ClusterSpec, load, options).
 */

#ifndef EQUINOX_CLUSTER_CLUSTER_HH
#define EQUINOX_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/control_plane.hh"
#include "cluster/fleet.hh"
#include "cluster/routing_policy.hh"
#include "core/experiment.hh"
#include "fault/chaos_plan.hh"
#include "sim/accelerator_types.hh"
#include "sim/config.hh"
#include "stats/fault_stats.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace cluster
{

/** One planned replica outage in seconds of simulated time. */
struct ReplicaOutage
{
    std::size_t replica = 0;
    double from_s = 0.0;
    double to_s = 0.0;
};

/** Static shape of the cluster (everything but the load point). */
struct ClusterSpec
{
    std::size_t replicas = 1;
    RoutingPolicy policy = RoutingPolicy::RoundRobin;
    /** Sliding-window length of the latency-aware policy. */
    std::size_t latency_window = 64;
    /**
     * Training coordinator: how many replicas run the piggybacked
     * training service. 0 (default) trains everywhere; otherwise the
     * min(train_replicas, replicas) replicas the router assigned the
     * fewest requests train (ties to the lowest index).
     */
    std::size_t train_replicas = 0;
    /** Arrival-process shape shared by the whole fleet. */
    sim::ArrivalProcess arrival_process = sim::ArrivalProcess::Poisson;
    double burst_factor = 4.0;
    double burst_period_s = 2e-3;
    /** Dead windows the router routes traffic around. */
    std::vector<ReplicaOutage> outages;
    /**
     * Per-replica fault plans; empty uses the experiment's plan on
     * every replica (seed decorrelated by replica index, replica 0
     * exact), non-empty must have one entry per replica.
     */
    std::vector<fault::FaultPlan> replica_faults;
    /**
     * Overload-resilience control plane (admission, retries, hedging,
     * breakers). Default-constructed = disabled: the run never builds
     * a ControlPlane and routes exactly as before.
     */
    ResilienceSpec resilience;
    /**
     * Cluster-scope chaos (replica churn, rack outages, latency
     * storms, flash crowds). Default-constructed = none: the run
     * skips materialization entirely.
     */
    fault::ChaosPlan chaos;
    /**
     * Fleet-scale serving: hierarchical sharded routing, SLO-aware
     * autoscaling, and traffic mixes. Default-constructed = off: the
     * run routes through the flat Router exactly as before. Sharding
     * and autoscaling cannot yet compose with the resilience control
     * plane (validate() rejects the combination).
     */
    FleetSpec fleet;

    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** One replica's slice of a cluster run. */
struct ReplicaOutcome
{
    std::size_t replica = 0;
    /** Arrival candidates the router assigned to this replica. */
    std::uint64_t assigned_candidates = 0;
    /** Whether the training coordinator placed training here. */
    bool training = false;
    sim::SimResult sim;
};

/** One shard's slice of a fleet-routed cluster run. */
struct ShardOutcome
{
    std::size_t shard = 0;
    /** First global replica index of the shard. */
    std::size_t first_replica = 0;
    /** Replicas in the shard (contiguous from first_replica). */
    std::size_t replicas = 0;
    /** Candidates the hierarchy assigned into this shard. */
    std::uint64_t assigned_candidates = 0;
    std::uint64_t completed_requests = 0;
    /**
     * Exact merged latency over the shard's replicas, concatenated in
     * index order -- the same order the fleet-level merge walks, so
     * merging the shard trackers reproduces the fleet percentiles
     * bitwise (tests/test_fleet_properties.cc pins this).
     */
    stats::LatencyTracker merged_latency_cycles;
    stats::FaultStats faults;
    double p99_latency_s = 0.0;
};

/** One measured cluster load point. */
struct ClusterPointResult
{
    double load = 0.0;
    std::size_t replicas = 1;
    RoutingPolicy policy = RoutingPolicy::RoundRobin;

    // -- router accounting --------------------------------------------
    std::uint64_t generated_candidates = 0;
    /** Candidates dropped because every replica was down. */
    std::uint64_t router_shed = 0;
    /** Candidates whose first-choice replica was down. */
    std::uint64_t rerouted = 0;

    // -- fleet aggregates (sums over replicas, measured windows) ------
    double aggregate_inference_ops = 0.0; //!< ops/s
    double aggregate_training_ops = 0.0;  //!< ops/s
    double aggregate_inference_tops = 0.0;
    double aggregate_training_tops = 0.0;
    std::uint64_t completed_requests = 0;
    std::uint64_t training_iterations = 0;
    std::uint64_t committed_training_iterations = 0;

    // -- exact merged latency (concatenated replica samples) ----------
    stats::LatencyTracker merged_latency_cycles;
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double max_latency_s = 0.0;

    // -- request conservation (run totals, not just measured) ---------
    std::uint64_t admitted_requests = 0;
    std::uint64_t retired_requests = 0;
    std::uint64_t inflight_requests = 0;
    std::uint64_t shed_requests = 0; //!< replica-side fault shedding

    // -- faults and availability --------------------------------------
    /** Replica FaultStats merged, outages added to downtime_cycles. */
    stats::FaultStats faults;
    /** Planned-outage cycles summed over replicas (run horizon). */
    Tick outage_cycles = 0;
    /** 1 - downtime / (replicas x run horizon). */
    double availability = 1.0;

    // -- resilience control plane -------------------------------------
    /** True when the run routed through the ControlPlane. */
    bool control_plane = false;
    ResilienceStats resilience;
    /** 1 - all sheds / generated candidates (request-level). */
    double request_availability = 1.0;
    /**
     * 1 - inference-priority sheds / inference candidates. Equals
     * request_availability without the control plane (no priority
     * tags), exceeds it when background work absorbs the shedding.
     */
    double inference_availability = 1.0;
    /** Measured completions inside the deadline, summed per replica. */
    std::uint64_t deadline_met = 0;
    /**
     * Deadline-meeting completions per second of measured time,
     * summed over replicas (all completions when no deadline is set).
     */
    double goodput_rps = 0.0;

    // -- fleet tier (hierarchical routing + autoscaler) ---------------
    /** Shard count of the hierarchical router; 0 = flat path. */
    std::size_t shards = 0;
    RoutingPolicy shard_policy = RoutingPolicy::JoinShortestQueue;
    /** Candidates whose first-choice SHARD was skipped (also counted
     *  inside the `rerouted` total). */
    std::uint64_t shard_rerouted = 0;
    /** Per-shard slices, in shard order; empty on the flat path. */
    std::vector<ShardOutcome> per_shard;
    /** True when the run routed through the autoscaler. */
    bool autoscaled = false;
    AutoscalerStats autoscaler;

    std::vector<ReplicaOutcome> per_replica;
};

/** N Accelerator replicas behind a Router. */
class Cluster
{
  public:
    /** Validates both; dies with an actionable report on bad input. */
    Cluster(sim::AcceleratorConfig cfg, ClusterSpec spec);

    /**
     * Run one load point: route the global stream, run every replica
     * (round-robined across min(opts.jobs, replicas) workers), and
     * merge in replica order. @p load is the offered fraction of the
     * AGGREGATE saturation rate: load 0.7 on 4 replicas offers
     * 0.7 * 4 * maxRequestRate requests/s fleet-wide.
     *
     * @p replica_sinks optionally attaches one TraceSink per replica
     * (index r observes replica r; shorter vectors leave the rest
     * unobserved). Sinks are per-replica state, so the fan-out stays
     * parallel and byte-identical.
     *
     * Cost note: the router pre-routes the candidate stream over the
     * FULL opts.max_sim_s horizon (it cannot know when replicas stop
     * early, and a short trace would change their behaviour), so time
     * and memory scale with rate x horizon. Size opts.max_sim_s to the
     * simulated time the experiment actually needs, not the
     * single-chip default of 30 s.
     */
    ClusterPointResult run(
        double load, const core::ExperimentOptions &opts,
        const core::CompiledWorkload &compiled,
        const std::vector<sim::TraceSink *> &replica_sinks = {}) const;

    /** As above, compiling the workload on the spot. */
    ClusterPointResult run(double load,
                           const core::ExperimentOptions &opts) const;

    const ClusterSpec &spec() const { return spec_; }
    const sim::AcceleratorConfig &config() const { return cfg_; }

  private:
    sim::AcceleratorConfig cfg_;
    ClusterSpec spec_;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_CLUSTER_HH

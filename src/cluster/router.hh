/**
 * @file
 * The cluster front-end: generates the global inference arrival stream
 * and splits it into one candidate tick trace per replica.
 *
 * The arrival generator replays the single-accelerator recipe exactly
 * -- Rng(seed * 7919 + 1), exponential inter-arrival draws at the
 * aggregate candidate rate, `Tick(wait) + 1` increments -- so a
 * 1-replica cluster hands its only replica the very tick sequence a
 * stochastic single-accelerator run would have drawn, and the replica
 * run is byte-identical to it (tests/test_cluster_differential.cc).
 *
 * Routing decisions are causal: they read only the router's own
 * ReplicaEstimator state, never the replica simulations, so the
 * replicas stay independent and can run one-per-worker.
 */

#ifndef EQUINOX_CLUSTER_ROUTER_HH
#define EQUINOX_CLUSTER_ROUTER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/routing_policy.hh"
#include "common/types.hh"

namespace equinox
{
namespace cluster
{

/** Returned by Router::pick when no healthy replica exists. */
constexpr std::size_t kNoReplica = static_cast<std::size_t>(-1);

/** One planned replica outage, in absolute ticks [from, to). */
struct RouterOutage
{
    std::size_t replica = 0;
    Tick from = 0;
    Tick to = 0;
};

/** One arrival-rate surge window, in absolute ticks [from, to). */
struct RouterSurge
{
    Tick from = 0;
    Tick to = 0;
    /** Arrival-rate multiplier inside the window (> 1). */
    double factor = 1.0;
};

/**
 * Draw the global candidate tick stream for one run. With no surge
 * windows this replays RequestDispatcher's service-0 arrival recipe
 * exactly -- Rng(seed * 7919 + 1), exponential draws at
 * @p rate_per_cycle, `Tick(wait) + 1` increments, one candidate past
 * @p max_ticks -- so trace-fed replicas stay byte-identical to their
 * stochastic twins. With surge windows the stream is drawn at the peak
 * rate (base x max factor) and thinned against the instantaneous rate,
 * so candidates inside a window arrive factor-times denser; this path
 * only runs under chaos, where no golden digest applies.
 */
std::vector<Tick> generateCandidateTicks(
    double rate_per_cycle, std::uint64_t seed, Tick max_ticks,
    const std::vector<RouterSurge> &surges = {});

/** Everything one routing pass produces. */
struct RouterResult
{
    /** Per-replica candidate arrival ticks (feed RunSpec traces). */
    std::vector<std::vector<Tick>> traces;
    /** Candidates assigned per replica (== traces[r].size()). */
    std::vector<std::uint64_t> assigned;
    /** Candidates drawn from the global arrival process. */
    std::uint64_t generated = 0;
    /** Candidates dropped because every replica was down. */
    std::uint64_t shed = 0;
    /** Candidates whose first-choice replica was down (re-routed). */
    std::uint64_t rerouted = 0;
};

/** Splits the global arrival stream across replicas by policy. */
class Router
{
  public:
    /**
     * @param policy replica-selection strategy
     * @param replicas replica count (>= 1)
     * @param service_rate_per_cycle one replica's saturation request
     *        rate in requests per cycle (feeds the estimators)
     * @param latency_window sliding window of the latency-aware policy
     * @param outages planned dead windows the router routes around
     */
    Router(RoutingPolicy policy, std::size_t replicas,
           double service_rate_per_cycle, std::size_t latency_window,
           std::vector<RouterOutage> outages);

    /**
     * Draw the global candidate stream and route every candidate.
     * @param rate_per_cycle aggregate candidate rate in arrivals per
     *        cycle (bursty peak rate included); <= 0 yields no traffic
     * @param seed the RunSpec seed the stream replays
     * @param max_ticks run horizon; generation stops at the first
     *        candidate beyond it (which is still routed -- the event
     *        loop dispatches one event past the horizon)
     * @param surges optional arrival surge windows (flash crowds)
     */
    RouterResult route(double rate_per_cycle, std::uint64_t seed,
                       Tick max_ticks,
                       const std::vector<RouterSurge> &surges = {});

    /**
     * Route one candidate at @p t: updates the estimators and health
     * view, returns the chosen replica or kNoReplica when every
     * replica is down. Exposed for unit tests; route() calls this.
     */
    std::size_t pick(Tick t);

    /** True when @p replica is inside a planned outage at @p t. */
    bool alive(std::size_t replica, Tick t) const;

    /**
     * True when at least one replica is available (alive AND not
     * vetoed by the availability filter) at @p t. The fleet tier's
     * shard-availability check reads this for shards with outages.
     */
    bool anyAvailable(Tick t) const;

    /**
     * Install a health veto consulted on top of the outage windows
     * (the control plane's circuit breakers). A vetoed replica is
     * skipped by pick() exactly like a dead one; alive() itself stays
     * outage-only so health checks observe the raw outage state.
     */
    void
    setAvailabilityFilter(std::function<bool(std::size_t, Tick)> filter)
    {
        filter_ = std::move(filter);
    }

    /** Advance every estimator's fluid drain to @p t. */
    void drainAll(Tick t);

    /** Mean estimated backlog across replicas (after drainAll). */
    double meanBacklog() const;

    /**
     * The best available replica other than @p exclude by the policy
     * metric (backlog, or window p99 for LatencyAware), ties to the
     * lowest index; kNoReplica when none. Does NOT assign -- the
     * hedging layer decides and then calls assignTo().
     */
    std::size_t pickAlternate(Tick t, std::size_t exclude) const;

    /** Account one (hedged) request assigned to @p r at @p t. */
    void assignTo(std::size_t r, Tick t);

    const std::vector<ReplicaEstimator> &estimators() const
    {
        return estimators_;
    }

    std::uint64_t shedCount() const { return shed_; }
    std::uint64_t reroutedCount() const { return rerouted_; }

  private:
    bool available(std::size_t replica, Tick t) const;
    std::size_t pickRoundRobin(Tick t);
    double metric(std::size_t r) const;
    std::size_t pickMin(Tick t, bool healthy_only) const;

    RoutingPolicy policy_;
    std::size_t replicas_;
    std::vector<ReplicaEstimator> estimators_;
    std::vector<RouterOutage> outages_;
    std::function<bool(std::size_t, Tick)> filter_;
    std::size_t rr_next_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t rerouted_ = 0;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_ROUTER_HH

/**
 * @file
 * Admission control at the cluster front door.
 *
 * The AdmissionController sits before the Router and decides, per
 * arriving candidate, whether the fleet takes the request at all.
 * Three pluggable policies cover the classic overload shapes:
 *
 *   - TokenBucket: a rate limiter refilled at a configurable multiple
 *     of the fleet's saturation request rate with a bounded burst
 *     allowance -- flash crowds are clipped at the door.
 *   - QueueDepth: CoDel-style shedding on the router's estimated mean
 *     backlog -- sheds only once the backlog has stayed above target
 *     for a full interval, then sheds at the inverse-sqrt-spaced CoDel
 *     cadence until the backlog recovers.
 *   - PriorityShed: two backlog watermarks -- background/training
 *     traffic sheds at the lower one, inference only above the higher
 *     one, the paper's "shed training before inference" rule.
 *
 * All decisions are pure functions of the candidate's tick, its
 * priority tag, and the router-side backlog estimate, so admission
 * stays causal and deterministic like routing itself. Accounting
 * follows the FaultStats idiom: plain counters, mergeable, reset-able.
 */

#ifndef EQUINOX_CLUSTER_ADMISSION_HH
#define EQUINOX_CLUSTER_ADMISSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace cluster
{

/** How the front door decides what the fleet takes under load. */
enum class AdmissionPolicy
{
    None,         //!< admit everything (shed-only baseline)
    TokenBucket,  //!< rate-limit at a multiple of fleet capacity
    QueueDepth,   //!< CoDel-style shedding on estimated backlog
    PriorityShed, //!< shed background before inference by watermark
};

/** Stable short name ("token_bucket", ...) for labels and JSON. */
const char *admissionPolicyName(AdmissionPolicy policy);

/** Every policy, in enum order (sweeps and property tests). */
std::vector<AdmissionPolicy> allAdmissionPolicies();

/** Knobs of the admission layer (defaults admit everything). */
struct AdmissionConfig
{
    AdmissionPolicy policy = AdmissionPolicy::None;
    /**
     * Fraction of candidates tagged background/training priority
     * (deterministic per-candidate draw from the run seed). Tagging
     * runs whenever the control plane does, so the shed-only baseline
     * and the resilient run split traffic identically.
     */
    double background_fraction = 0.0;
    /** TokenBucket: refill rate as a multiple of fleet capacity. */
    double rate_factor = 1.0;
    /** TokenBucket: bucket depth (burst allowance, requests). */
    double burst = 32.0;
    /** QueueDepth: mean-backlog target (requests per replica). */
    double target_backlog = 4.0;
    /** QueueDepth: CoDel interval in cycles. */
    Tick interval_cycles = 50000;
    /** PriorityShed: mean backlog above which background sheds. */
    double background_watermark = 2.0;
    /** PriorityShed: mean backlog above which inference sheds too. */
    double inference_watermark = 8.0;
    /**
     * Deadline on the model latency estimate of a dispatched request;
     * estimates beyond it count deadline_missed (and miss goodput).
     * 0 disables deadline accounting.
     */
    Tick deadline_cycles = 0;

    /** Actionable configuration errors; empty when usable. */
    std::vector<std::string> validate() const;
};

/** FaultStats-style accounting of one admission controller. */
struct AdmissionStats
{
    std::uint64_t offered = 0;            //!< candidates seen
    std::uint64_t offered_background = 0; //!< of which background
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate_limited = 0; //!< TokenBucket drops
    std::uint64_t shed_queue = 0;        //!< QueueDepth (CoDel) drops
    std::uint64_t shed_background = 0;   //!< PriorityShed, background
    std::uint64_t shed_inference = 0;    //!< PriorityShed, inference
    /** Dispatched requests whose latency estimate broke the deadline. */
    std::uint64_t deadline_missed = 0;

    std::uint64_t
    totalShed() const
    {
        return shed_rate_limited + shed_queue + shed_background +
               shed_inference;
    }

    /** Accumulate counters from another controller (plain sums). */
    void merge(const AdmissionStats &other);

    void reset() { *this = AdmissionStats{}; }
};

/** The front-door gate; one instance per cluster run. */
class AdmissionController
{
  public:
    /**
     * @param cfg validated admission knobs
     * @param tokens_per_cycle TokenBucket refill rate in requests per
     *        cycle (rate_factor x fleet saturation rate); ignored by
     *        the other policies
     */
    AdmissionController(const AdmissionConfig &cfg,
                        double tokens_per_cycle);

    /**
     * Decide one candidate arriving at @p t. @p background is its
     * priority tag; @p mean_backlog the router's mean estimated
     * backlog per replica at @p t. True admits; false sheds (the
     * cause lands in stats()).
     */
    bool offer(Tick t, bool background, double mean_backlog);

    /** Account the latency estimate of a dispatched request. */
    void noteDispatch(double estimate_cycles);

    const AdmissionStats &stats() const { return stats_; }

  private:
    bool offerTokenBucket(Tick t);
    bool offerQueueDepth(Tick t, double mean_backlog);
    bool offerPriority(bool background, double mean_backlog);

    AdmissionConfig cfg_;
    double tokens_per_cycle_;
    AdmissionStats stats_;

    // TokenBucket state.
    double tokens_;
    Tick last_refill_ = 0;

    // QueueDepth (CoDel) state.
    bool above_target_ = false;
    bool dropping_ = false;
    Tick above_since_ = 0;
    Tick next_drop_ = 0;
    std::uint64_t drop_count_ = 0;
};

} // namespace cluster
} // namespace equinox

#endif // EQUINOX_CLUSTER_ADMISSION_HH

#include "cluster/sweep.hh"

#include "obs/metrics_snapshot.hh"

namespace equinox
{
namespace core
{

std::vector<cluster::ClusterPointResult>
runClusterSweep(const sim::AcceleratorConfig &cfg,
                const cluster::ClusterSpec &cspec,
                const std::vector<double> &loads,
                const ExperimentOptions &opts)
{
    cluster::Cluster fleet(cfg, cspec);
    // Compile once per (config, options); every point and every
    // replica installs copies of the same descriptors. The replicas
    // inside each point are the parallel dimension (round-robined
    // across the worker pool), so the points themselves run in input
    // order.
    CompiledWorkload compiled = compileWorkload(cfg, opts);
    std::vector<cluster::ClusterPointResult> out;
    out.reserve(loads.size());
    for (double load : loads)
        out.push_back(fleet.run(load, opts, compiled));
    return out;
}

void
addClusterPoint(obs::MetricsSnapshot &snap, const std::string &label,
                const cluster::ClusterPointResult &r)
{
    obs::Json point = obs::Json::object();
    point["load"] = r.load;
    point["replicas"] = static_cast<std::uint64_t>(r.replicas);
    point["policy"] = cluster::routingPolicyName(r.policy);

    point["generated_candidates"] = r.generated_candidates;
    point["router_shed"] = r.router_shed;
    point["rerouted"] = r.rerouted;

    point["aggregate_inference_tops"] = r.aggregate_inference_tops;
    point["aggregate_training_tops"] = r.aggregate_training_tops;
    point["completed_requests"] = r.completed_requests;
    point["training_iterations"] = r.training_iterations;
    point["committed_training_iterations"] =
        r.committed_training_iterations;

    point["mean_latency_s"] = r.mean_latency_s;
    point["p50_latency_s"] = r.p50_latency_s;
    point["p99_latency_s"] = r.p99_latency_s;
    point["max_latency_s"] = r.max_latency_s;
    point["merged_samples"] =
        static_cast<std::uint64_t>(r.merged_latency_cycles.count());

    point["admitted_requests"] = r.admitted_requests;
    point["retired_requests"] = r.retired_requests;
    point["inflight_requests"] = r.inflight_requests;
    point["shed_requests"] = r.shed_requests;

    point["availability"] = r.availability;
    point["request_availability"] = r.request_availability;
    point["inference_availability"] = r.inference_availability;
    point["goodput_rps"] = r.goodput_rps;
    point["deadline_met"] = r.deadline_met;
    point["outage_cycles"] = static_cast<std::uint64_t>(r.outage_cycles);
    if (r.faults.totalFaults() > 0 || r.faults.recoveryEvents() > 0) {
        obs::Json &faults = point["faults"];
        faults["total"] = r.faults.totalFaults();
        faults["recovery_events"] = r.faults.recoveryEvents();
        faults["downtime_cycles"] =
            static_cast<std::uint64_t>(r.faults.downtime_cycles);
    }

    for (const auto &rep : r.per_replica) {
        obs::Json row = obs::Json::object();
        row["assigned_candidates"] = rep.assigned_candidates;
        row["training"] = rep.training;
        row["completed_requests"] = rep.sim.completed_requests;
        row["admitted_requests"] = rep.sim.admitted_requests;
        row["p99_latency_s"] = rep.sim.p99_latency_s;
        row["inference_tops"] =
            rep.sim.inference_throughput_ops / 1e12;
        row["training_tops"] = rep.sim.training_throughput_ops / 1e12;
        row["availability"] = rep.sim.availability;
        point["per_replica"]["r" + std::to_string(rep.replica)] =
            std::move(row);
    }

    snap.section("cluster")[label].append(std::move(point));
}

void
addClusterSweep(obs::MetricsSnapshot &snap, const std::string &label,
                const std::vector<cluster::ClusterPointResult> &rs)
{
    for (const auto &r : rs)
        addClusterPoint(snap, label, r);
}

void
addResiliencePoint(obs::MetricsSnapshot &snap, const std::string &label,
                   const cluster::ClusterPointResult &r)
{
    const cluster::ResilienceStats &s = r.resilience;
    obs::Json point = obs::Json::object();
    point["load"] = r.load;
    point["control_plane"] = r.control_plane;
    point["request_availability"] = r.request_availability;
    point["inference_availability"] = r.inference_availability;
    point["goodput_rps"] = r.goodput_rps;
    point["deadline_met"] = r.deadline_met;
    point["p99_latency_s"] = r.p99_latency_s;

    obs::Json &admission = point["admission"];
    admission["offered"] = s.admission.offered;
    admission["offered_background"] = s.admission.offered_background;
    admission["admitted"] = s.admission.admitted;
    admission["shed_rate_limited"] = s.admission.shed_rate_limited;
    admission["shed_queue"] = s.admission.shed_queue;
    admission["shed_background"] = s.admission.shed_background;
    admission["shed_inference"] = s.admission.shed_inference;
    admission["deadline_missed"] = s.admission.deadline_missed;

    obs::Json &retry = point["retry"];
    retry["attempts"] = s.retry_attempts;
    retry["recovered"] = s.retry_recovered;
    retry["shed"] = s.retry_shed;
    retry["budget_exhausted"] = s.retry_budget_exhausted;
    retry["outage_shed"] = s.outage_shed;

    obs::Json &hedge = point["hedge"];
    hedge["issued"] = s.hedges_issued;
    hedge["wins"] = s.hedge_wins;

    obs::Json &breaker = point["breaker"];
    breaker["opens"] = s.breaker_opens;
    breaker["reopens"] = s.breaker_reopens;
    breaker["closes"] = s.breaker_closes;
    breaker["denials"] = s.breaker_denials;

    point["dispatched"] = s.dispatched;
    point["dispatched_background"] = s.dispatched_background;
    point["shed_background_total"] = s.shed_background_total;
    point["shed_inference_total"] = s.shed_inference_total;
    point["total_shed"] = s.totalShed();
    point["training_replicas_shed"] =
        static_cast<std::uint64_t>(s.training_replicas_shed);

    snap.section("resilience")[label].append(std::move(point));
}

void
addFleetPoint(obs::MetricsSnapshot &snap, const std::string &label,
              const cluster::ClusterPointResult &r)
{
    obs::Json point = obs::Json::object();
    point["load"] = r.load;
    point["replicas"] = static_cast<std::uint64_t>(r.replicas);
    point["policy"] = cluster::routingPolicyName(r.policy);
    point["shards"] = static_cast<std::uint64_t>(r.shards);
    point["shard_policy"] = cluster::routingPolicyName(r.shard_policy);

    point["generated_candidates"] = r.generated_candidates;
    point["router_shed"] = r.router_shed;
    point["rerouted"] = r.rerouted;
    point["shard_rerouted"] = r.shard_rerouted;
    point["completed_requests"] = r.completed_requests;
    point["aggregate_inference_tops"] = r.aggregate_inference_tops;
    point["aggregate_training_tops"] = r.aggregate_training_tops;
    point["mean_latency_s"] = r.mean_latency_s;
    point["p50_latency_s"] = r.p50_latency_s;
    point["p99_latency_s"] = r.p99_latency_s;
    point["max_latency_s"] = r.max_latency_s;
    point["availability"] = r.availability;
    point["request_availability"] = r.request_availability;

    // Per-SHARD rows: at fleet scale the per-replica table would be
    // thousands of rows; the shard tier is the reporting granularity.
    for (const auto &sh : r.per_shard) {
        obs::Json row = obs::Json::object();
        row["first_replica"] =
            static_cast<std::uint64_t>(sh.first_replica);
        row["replicas"] = static_cast<std::uint64_t>(sh.replicas);
        row["assigned_candidates"] = sh.assigned_candidates;
        row["completed_requests"] = sh.completed_requests;
        row["p99_latency_s"] = sh.p99_latency_s;
        if (sh.faults.totalFaults() > 0)
            row["faults"] = sh.faults.totalFaults();
        point["per_shard"]["s" + std::to_string(sh.shard)] =
            std::move(row);
    }

    point["autoscaled"] = r.autoscaled;
    if (r.autoscaled) {
        const cluster::AutoscalerStats &a = r.autoscaler;
        obs::Json &scaler = point["autoscaler"];
        scaler["decisions"] = a.decisions;
        scaler["scale_ups"] = a.scale_ups;
        scaler["scale_downs"] = a.scale_downs;
        scaler["min_active"] = static_cast<std::uint64_t>(a.min_active);
        scaler["max_active"] = static_cast<std::uint64_t>(a.max_active);
        scaler["final_active"] =
            static_cast<std::uint64_t>(a.final_active);
        scaler["active_replica_ticks"] = a.active_replica_ticks;
        scaler["needed_replica_ticks"] = a.needed_replica_ticks;
        scaler["over_provisioned_ticks"] = a.over_provisioned_ticks;
        scaler["over_provision_frac"] = a.over_provision_frac;
    }

    snap.section("fleet")[label].append(std::move(point));
}

void
addFleetSweep(obs::MetricsSnapshot &snap, const std::string &label,
              const std::vector<cluster::ClusterPointResult> &rs)
{
    for (const auto &r : rs)
        addFleetPoint(snap, label, r);
}

} // namespace core
} // namespace equinox

#include "cluster/sweep.hh"

#include "obs/metrics_snapshot.hh"

namespace equinox
{
namespace core
{

std::vector<cluster::ClusterPointResult>
runClusterSweep(const sim::AcceleratorConfig &cfg,
                const cluster::ClusterSpec &cspec,
                const std::vector<double> &loads,
                const ExperimentOptions &opts)
{
    cluster::Cluster fleet(cfg, cspec);
    // Compile once per (config, options); every point and every
    // replica installs copies of the same descriptors. The replicas
    // inside each point are the parallel dimension (one per worker),
    // so the points themselves run in input order.
    CompiledWorkload compiled = compileWorkload(cfg, opts);
    std::vector<cluster::ClusterPointResult> out;
    out.reserve(loads.size());
    for (double load : loads)
        out.push_back(fleet.run(load, opts, compiled));
    return out;
}

void
addClusterPoint(obs::MetricsSnapshot &snap, const std::string &label,
                const cluster::ClusterPointResult &r)
{
    obs::Json point = obs::Json::object();
    point["load"] = r.load;
    point["replicas"] = static_cast<std::uint64_t>(r.replicas);
    point["policy"] = cluster::routingPolicyName(r.policy);

    point["generated_candidates"] = r.generated_candidates;
    point["router_shed"] = r.router_shed;
    point["rerouted"] = r.rerouted;

    point["aggregate_inference_tops"] = r.aggregate_inference_tops;
    point["aggregate_training_tops"] = r.aggregate_training_tops;
    point["completed_requests"] = r.completed_requests;
    point["training_iterations"] = r.training_iterations;
    point["committed_training_iterations"] =
        r.committed_training_iterations;

    point["mean_latency_s"] = r.mean_latency_s;
    point["p50_latency_s"] = r.p50_latency_s;
    point["p99_latency_s"] = r.p99_latency_s;
    point["max_latency_s"] = r.max_latency_s;
    point["merged_samples"] =
        static_cast<std::uint64_t>(r.merged_latency_cycles.count());

    point["admitted_requests"] = r.admitted_requests;
    point["retired_requests"] = r.retired_requests;
    point["inflight_requests"] = r.inflight_requests;
    point["shed_requests"] = r.shed_requests;

    point["availability"] = r.availability;
    point["outage_cycles"] = static_cast<std::uint64_t>(r.outage_cycles);
    if (r.faults.totalFaults() > 0 || r.faults.recoveryEvents() > 0) {
        obs::Json &faults = point["faults"];
        faults["total"] = r.faults.totalFaults();
        faults["recovery_events"] = r.faults.recoveryEvents();
        faults["downtime_cycles"] =
            static_cast<std::uint64_t>(r.faults.downtime_cycles);
    }

    for (const auto &rep : r.per_replica) {
        obs::Json row = obs::Json::object();
        row["assigned_candidates"] = rep.assigned_candidates;
        row["training"] = rep.training;
        row["completed_requests"] = rep.sim.completed_requests;
        row["admitted_requests"] = rep.sim.admitted_requests;
        row["p99_latency_s"] = rep.sim.p99_latency_s;
        row["inference_tops"] =
            rep.sim.inference_throughput_ops / 1e12;
        row["training_tops"] = rep.sim.training_throughput_ops / 1e12;
        row["availability"] = rep.sim.availability;
        point["per_replica"]["r" + std::to_string(rep.replica)] =
            std::move(row);
    }

    snap.section("cluster")[label].append(std::move(point));
}

void
addClusterSweep(obs::MetricsSnapshot &snap, const std::string &label,
                const std::vector<cluster::ClusterPointResult> &rs)
{
    for (const auto &r : rs)
        addClusterPoint(snap, label, r);
}

} // namespace core
} // namespace equinox

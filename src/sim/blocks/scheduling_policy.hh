/**
 * @file
 * Pluggable execution-unit scheduling policies (Figure 5, section 3.2).
 *
 * Each decision round the instruction dispatcher builds a SchedulerView
 * of the machine -- what is ready, plus lazy predicates for the more
 * expensive queue inspections -- and asks the installed policy which
 * service classes may issue. The dispatcher keeps the round-robin
 * alternation and the actual issue; the policy only vetoes.
 *
 * To add a policy: subclass SchedulingPolicy, implement decide(), and
 * extend makeSchedulingPolicy(); nothing else in the simulator changes.
 */

#ifndef EQUINOX_SIM_BLOCKS_SCHEDULING_POLICY_HH
#define EQUINOX_SIM_BLOCKS_SCHEDULING_POLICY_HH

#include <functional>
#include <memory>

#include "common/types.hh"
#include "sim/config.hh"

namespace equinox
{
namespace sim
{

/**
 * What a policy can see of the machine at one decision round. The
 * function members are lazy so a policy only pays for the queue scans
 * it actually consults; all predicates are pure (no side effects).
 */
struct SchedulerView
{
    Tick now = 0;
    /** A formed batch is dependence-ready for the MMU. */
    bool inference_ready = false;
    /** Training has staged operands and is dependence-ready. */
    bool training_ready = false;
    /** Load spike: unstarted batches piled past the install threshold. */
    std::function<bool()> spike;
    /** At most one batch anywhere and no full raw batch waiting. */
    std::function<bool()> queue_low;
    /** Raw requests + unfinished batched requests in the pipeline. */
    std::function<std::uint64_t()> pending_work;
};

/** A policy's verdict for one decision round. */
struct SchedDecision
{
    bool allow_inference = true;
    bool allow_training = true;
    /**
     * When != kTickMax: re-run the dispatcher at this tick even if no
     * completion wakes it (used by the software scheduler's decision
     * turnaround gate).
     */
    Tick revisit_at = kTickMax;
};

/** Strategy interface the instruction dispatcher consults. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /** Clear per-run state (start of Accelerator::run). */
    virtual void reset() {}

    /** Veto service classes for this round. Must not schedule events. */
    virtual SchedDecision decide(const SchedulerView &view) = 0;

    /** Training issued as the sole winner of the round at @p now. */
    virtual void onTrainingIssue(Tick now) { (void)now; }

    /** A full training iteration just retired. */
    virtual void onTrainingIteration() {}
};

/** Baseline: training never issues. */
class InferenceOnlyPolicy final : public SchedulingPolicy
{
  public:
    const char *name() const override { return "inference_only"; }
    SchedDecision decide(const SchedulerView &view) override;
};

/**
 * The paper's hardware priority scheduler, three regimes: round-robin
 * while inference queuing is low; inference-first (training fills
 * dependence gaps) when batches back up; training frozen entirely
 * during a load spike.
 */
class PriorityPolicy final : public SchedulingPolicy
{
  public:
    const char *name() const override { return "priority"; }
    SchedDecision decide(const SchedulerView &view) override;
};

/** Hardware fair-share: always round-robin, never vetoes. */
class FairSharePolicy final : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fair_share"; }
    SchedDecision decide(const SchedulerView &view) override;
};

/**
 * The section-6 software control plane: training only at batch
 * granularity, only into a fully idle machine, and only after the
 * software decision turnaround elapses; once issued, the training
 * batch cannot be preempted until its iteration retires.
 */
class SoftwareBatchPolicy final : public SchedulingPolicy
{
  public:
    explicit SoftwareBatchPolicy(Tick turnaround_cycles)
        : turnaround(turnaround_cycles)
    {
    }

    const char *name() const override { return "software_batch"; }
    void reset() override;
    SchedDecision decide(const SchedulerView &view) override;
    void onTrainingIssue(Tick now) override;
    void onTrainingIteration() override;

    /** Exposed for tests: the unpreemptible-training latch. */
    bool exclusiveTraining() const { return exclusive_training; }

  private:
    Tick turnaround;
    Tick next_decision = 0;       //!< decision-turnaround gate
    bool exclusive_training = false;
};

/** Build the policy configured by @p cfg.sched_policy. */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const AcceleratorConfig &cfg);

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_SCHEDULING_POLICY_HH

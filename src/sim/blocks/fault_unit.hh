/**
 * @file
 * FaultUnit: the thin block adapter over the fault-injection subsystem
 * (src/fault/) and the recovery machinery that answers it.
 *
 * Owns the per-run FaultInjector and FaultStats, the hang/watchdog
 * state machine, the storm-detection/degradation policy, training
 * checkpoint/rollback, and the retrying host-interface transfer every
 * other block routes its host traffic through. On fault-free runs (the
 * default plan) no injector exists and every path reduces to the bare
 * interface call, keeping results byte-identical.
 */

#ifndef EQUINOX_SIM_BLOCKS_FAULT_UNIT_HH
#define EQUINOX_SIM_BLOCKS_FAULT_UNIT_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/link.hh"
#include "fault/injector.hh"
#include "sim/blocks/sim_block.hh"
#include "stats/fault_stats.hh"

namespace equinox
{
namespace sim
{

class InstructionDispatcher;
class TrainPrefetcher;

/** Fault injection, recovery policies, and degradation control. */
class FaultUnit final : public SimBlock
{
  public:
    explicit FaultUnit(SimContext &context);
    ~FaultUnit() override;

    /** Wire control ports (composition root, once). */
    void connect(InstructionDispatcher *dispatcher_,
                 TrainPrefetcher *prefetcher_);

    void resetRun() override;
    void registerStats(stats::StatRegistry &reg) override;

    /**
     * Validate the run's fault plan and build the injector + link
     * hooks; a plan that can inject nothing leaves the unit inactive.
     * Call after the run's HBM/host models exist.
     */
    void beginRun();

    /** Schedule every MMU-hang event inside [0, horizon]. */
    void scheduleHangs(Tick horizon);

    /** An injector exists (the plan can inject faults). */
    bool active() const { return injector != nullptr; }

    /** The dispatcher is hung and must not issue. */
    bool mmuHung() const { return mmu_hung; }

    /** Degradation: training shed during a fault storm. */
    bool stormActive() const { return storm_active; }

    /** Degradation: inference shed at admission too. */
    bool shedInference() const { return shed_inference; }

    /** Count one request shed at admission. */
    void countShedRequest() { ++fstats.shed_requests; }

    /**
     * Host-interface transfer with fault-aware retry: on drop or
     * corruption, retries with exponential backoff and jitter until
     * success, the retry budget, or the per-request deadline. With no
     * injector this is exactly host->transfer().
     * @param ok when non-null, set false if the payload was lost for good
     * @return the delivery tick of the last (successful or final) attempt
     */
    Tick hostTransfer(Tick start, ByteCount bytes, dram::Priority prio,
                      bool *ok = nullptr);

    /** Roll training back to the last committed checkpoint and replay. */
    void trainingRollback();

    /** Commit a periodic training checkpoint when the interval passed. */
    void maybeWriteCheckpoint();

    /**
     * Feed faults newly counted in fstats (by the link hooks or the
     * hang machinery) to the storm detector, one event per fault.
     */
    void syncFaults();

    /** Attribute trailing downtime when the run ends inside a hang. */
    void finalizeDowntime();

    /** Fault counters and recovery actions (live). */
    const stats::FaultStats &stats() const { return fstats; }

    /** Every injected fault so far (empty when inactive). */
    std::vector<fault::FaultRecord> trace() const;

  private:
    void onMmuHang();
    void onWatchdogFire();
    void finishReset(Tick hang_start);
    void clearTransientHang(Tick hang_start);
    void accountDowntime(Tick from, Tick upto);
    /** Register one fault occurrence with the storm detector. */
    void noteFault();
    void stormCheck();

    InstructionDispatcher *dispatcher = nullptr;
    TrainPrefetcher *prefetcher = nullptr;

    std::unique_ptr<fault::FaultInjector> injector;
    stats::FaultStats fstats;
    bool mmu_hung = false;
    Tick hang_started_at = 0;
    bool storm_active = false;     //!< degradation: training shed
    bool shed_inference = false;   //!< degradation: requests shed too
    bool storm_check_armed = false;
    std::uint64_t faults_seen = 0; //!< fstats faults already storm-fed
    std::deque<Tick> recent_faults;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_FAULT_UNIT_HH

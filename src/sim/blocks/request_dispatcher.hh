/**
 * @file
 * RequestDispatcher: the front-end block -- per-service request arrival
 * processes (Poisson, bursty, trace playback), the batch former with
 * static/adaptive policies and dummy padding, and the adaptive
 * batch-formation timeout machinery (section 3.1).
 *
 * Produces formed InfBatches into the shared BatchQueue port and pokes
 * the instruction dispatcher; routes batch-input DMA through the fault
 * unit's retrying host port.
 */

#ifndef EQUINOX_SIM_BLOCKS_REQUEST_DISPATCHER_HH
#define EQUINOX_SIM_BLOCKS_REQUEST_DISPATCHER_HH

#include <vector>

#include "common/types.hh"
#include "sim/blocks/inf_types.hh"
#include "sim/blocks/sim_block.hh"

namespace equinox
{
namespace sim
{

class FaultUnit;
class InstructionDispatcher;

/** Request dispatcher and batch former (hardware contexts, Figure 5). */
class RequestDispatcher final : public SimBlock
{
  public:
    explicit RequestDispatcher(SimContext &context);
    ~RequestDispatcher() override;

    /** Wire control ports (composition root, once). */
    void connect(InstructionDispatcher *dispatcher_, FaultUnit *faults_);

    void resetRun() override;
    void beginMeasurement() override;
    void registerStats(stats::StatRegistry &reg) override;

    /**
     * Reset every installed service's run state (queues, RNG streams,
     * arrival rates from the spec) and schedule the first arrivals --
     * stochastic per service in install order, then the explicit trace.
     * Sets ctx.inference_load. Must run before the event loop starts.
     */
    void beginRun();

    /** Raw requests + unfinished batched requests in the pipeline. */
    std::uint64_t pendingInferenceWork() const;

    /** Requests admitted past shedding (run total). */
    std::uint64_t requestsAdmitted() const { return requests_admitted; }

    // -- measured-window batch-formation tallies ------------------------
    std::uint64_t batchesFormed() const { return batches_formed; }
    std::uint64_t batchesIncomplete() const { return batches_incomplete; }
    double batchFillSum() const { return batch_fill_sum; }

  private:
    void onRequestArrival(std::size_t svc_idx);
    void scheduleNextArrival(std::size_t svc_idx);
    bool inBurstOnPhase() const;
    void formFullBatches(InfService &svc);
    void formPartialBatch(InfService &svc);
    void armBatchTimeout(InfService &svc);
    void onBatchTimeout(InfService *svc);

    InstructionDispatcher *dispatcher = nullptr;
    FaultUnit *faults = nullptr;

    // measured window
    std::uint64_t batches_formed = 0;
    std::uint64_t batches_incomplete = 0;
    double batch_fill_sum = 0.0;

    // run totals (observability only)
    std::uint64_t requests_admitted = 0;

    /** Next unplayed entry of spec.arrival_trace_ticks (service 0). */
    std::size_t trace_pos = 0;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_REQUEST_DISPATCHER_HH

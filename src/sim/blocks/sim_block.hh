/**
 * @file
 * SimBlock: the interface every simulation block implements.
 *
 * A block is one hardware unit of the Figure 3 organisation (request
 * dispatcher, instruction dispatcher, MMU/SIMD datapath, training
 * prefetcher, fault/recovery unit). Blocks share the SimContext, talk
 * to each other through the typed ports wired by the composition root,
 * and participate in three framework seams:
 *
 *  - resetRun(): clear all per-run dynamic state; must not schedule
 *    events or draw randomness (run() re-seeds and re-schedules in a
 *    fixed order afterwards);
 *  - beginMeasurement(): drop measured-window accumulators when the
 *    warmup ends (again side-effect free w.r.t. simulated behaviour);
 *  - registerStats(): expose per-block cycle/occupancy counters under
 *    "<block>.<stat>" names in a stats::StatRegistry;
 *
 * plus the emit() helper that reports block events to the optional
 * TraceSink (a no-op null check when tracing is off).
 */

#ifndef EQUINOX_SIM_BLOCKS_SIM_BLOCK_HH
#define EQUINOX_SIM_BLOCKS_SIM_BLOCK_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/blocks/context.hh"
#include "sim/blocks/trace.hh"

namespace equinox
{
namespace stats
{
class StatRegistry;
}

namespace sim
{

/** Base class of every simulation block. */
class SimBlock
{
  public:
    SimBlock(SimContext &context, const char *block_name);
    virtual ~SimBlock();

    SimBlock(const SimBlock &) = delete;
    SimBlock &operator=(const SimBlock &) = delete;

    /** Stable block name, e.g. "request_dispatcher". */
    const char *name() const { return name_; }

    /** Clear all per-run dynamic state (start of Accelerator::run). */
    virtual void resetRun() = 0;

    /** Drop measured-window accumulators (warmup just ended). */
    virtual void beginMeasurement() {}

    /** Register per-block counters/gauges under "<name>.<stat>". */
    virtual void registerStats(stats::StatRegistry &reg);

  protected:
    /**
     * Report a block event to the trace sink, if one is installed.
     * Sink-off is the zero-cost default: the guard inlines to one
     * predicted-not-taken branch on the hot retire/issue paths, and
     * everything that builds the TraceEvent stays outlined in
     * emitSlow().
     */
    void
    emit(TraceEventType type, ContextId svc = 0, std::uint64_t a = 0,
         std::uint64_t b = 0) const
    {
        if (EQX_LIKELY(ctx.trace == nullptr))
            return;
        emitSlow(type, svc, a, b);
    }

    SimContext &ctx;

  private:
    void emitSlow(TraceEventType type, ContextId svc, std::uint64_t a,
                  std::uint64_t b) const;

    const char *name_;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_SIM_BLOCK_HH

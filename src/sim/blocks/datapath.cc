#include "sim/blocks/datapath.hh"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/logging.hh"
#include "common/units.hh"
#include "sim/blocks/context.hh"
#include "sim/blocks/fault_unit.hh"
#include "sim/blocks/instruction_dispatcher.hh"
#include "sim/blocks/train_prefetcher.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

namespace
{

/**
 * Synthesized address-space split for the memory hierarchy: training
 * operand reads stream from offset 0 (see TrainPrefetcher), store-backs
 * land in a disjoint region so the two streams never alias in the LLC.
 */
constexpr mem::Addr kTrainStoreBase = mem::Addr{1} << 40;

} // namespace

Datapath::Datapath(SimContext &context) : SimBlock(context, "datapath")
{
}

Datapath::~Datapath() = default;

void
Datapath::connect(InstructionDispatcher *dispatcher_,
                  TrainPrefetcher *prefetcher_, FaultUnit *faults_)
{
    dispatcher = dispatcher_;
    prefetcher = prefetcher_;
    faults = faults_;
}

void
Datapath::resetRun()
{
    mmu_busy = false;
    mmu_last_release = 0;
    inf_waiting_at_release = false;
    simd_free = 0;
}

void
Datapath::beginMeasurement()
{
    breakdown.reset();
    latency_cycles.reset();
    service_cycles.reset();
    inf_useful_ops = 0.0;
    train_useful_ops = 0.0;
    mmu_busy_measured = 0.0;
    simd_busy_measured = 0.0;
}

void
Datapath::registerStats(stats::StatRegistry &reg)
{
    reg.registerStat("datapath.mmu_busy_cycles",
                     [this] { return mmu_busy_measured; },
                     "MMU-occupied cycles (measured window)");
    reg.registerStat("datapath.simd_busy_cycles",
                     [this] { return simd_busy_measured; },
                     "SIMD-occupied cycles (measured window)");
    reg.registerStat("datapath.inference_useful_ops",
                     [this] { return inf_useful_ops; },
                     "useful inference MACs (measured window)");
    reg.registerStat("datapath.training_useful_ops",
                     [this] { return train_useful_ops; },
                     "useful training MACs (measured window)");
    // The Figure 8 cycle breakdown, one gauge per category.
    for (unsigned c = 0;
         c < static_cast<unsigned>(stats::CycleClass::NumClasses); ++c) {
        auto cls = static_cast<stats::CycleClass>(c);
        std::string label = stats::cycleClassName(cls);
        std::transform(label.begin(), label.end(), label.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        reg.registerStat("datapath.cycles_" + label,
                         [this, cls] { return breakdown.get(cls); },
                         "Figure 8 MMU cycles (measured window)");
    }
}

void
Datapath::accountGap(Tick upto)
{
    if (!ctx.measuring)
        return;
    Tick from = std::max(mmu_last_release, ctx.measure_start);
    if (upto <= from)
        return;
    auto gap = static_cast<double>(upto - from);
    // Dependence stalls while inference work exists count as Other;
    // load-dependent emptiness (including training starved on DRAM)
    // counts as Idle, matching the Figure 8 categories.
    if (inf_waiting_at_release)
        breakdown.add(stats::CycleClass::Other, gap);
    else
        breakdown.add(stats::CycleClass::Idle, gap);
}

void
Datapath::chargeMmu(const isa::TileWork &tw, Tick cycles,
                    double real_frac)
{
    if (!ctx.measuring)
        return;
    auto c = static_cast<double>(cycles);
    mmu_busy_measured += c;
    double working = c * tw.geom_frac * real_frac;
    double dummy = c * tw.geom_frac * (1.0 - real_frac);
    breakdown.add(stats::CycleClass::Working, working);
    breakdown.add(stats::CycleClass::Dummy, dummy);
    breakdown.add(stats::CycleClass::Other, c - working - dummy);
}

void
Datapath::issueInferenceChunk(InfBatch *batch)
{
    Tick now = ctx.events.now();
    accountGap(now);

    const auto &prog = batch->svc->desc.program;
    const auto &sb = prog.steps[batch->step];
    double real_frac = static_cast<double>(batch->real) /
                       static_cast<double>(prog.batch_rows);

    if (batch->first_issue == kTickMax) {
        batch->first_issue = now;
        EQX_ASSERT(ctx.unstarted_batches > 0,
                   "unstarted-batch counter underflow");
        --ctx.unstarted_batches;
    }
    dispatcher->noteInferenceServed(batch->svc->id);

    // With a training context installed, the instruction controller
    // interleaves the two services at instruction granularity
    // (section 3.2); issue one instruction's worth of cycles at a time
    // so training can slot in between. Without training, the whole step
    // issues at once (no interleaving opportunity exists).
    Tick remaining = sb.mmu.occupancy - batch->issued_in_step;
    Tick chunk = remaining;
    if (ctx.train) {
        Tick granule = std::max<Tick>(
            sb.mmu.occupancy / std::max(1u, sb.mmu.instructions), 64);
        chunk = std::min(remaining, granule);
    }

    chargeMmu(sb.mmu, chunk, real_frac);
    if (ctx.measuring) {
        inf_useful_ops += static_cast<double>(sb.mmu.real_ops) *
                          real_frac * static_cast<double>(chunk) /
                          static_cast<double>(sb.mmu.occupancy);
    }
    emit(TraceEventType::InferenceChunkIssue, batch->svc->id, chunk,
         batch->step);

    mmu_busy = true;
    batch->in_flight = true;
    // Tail position of the whole dispatch chain (tryDispatch ->
    // issueInferenceChunk): when this completion is the analytically
    // next event, the fast-forward engine dispatches it inline instead
    // of round-tripping through the event heap (DESIGN.md 2.7).
    ctx.events.scheduleFastIn(chunk, [this, batch, chunk] {
        completeInferenceChunk(batch, chunk);
    });
}

void
Datapath::completeInferenceChunk(InfBatch *batch, Tick chunk)
{
    Tick now = ctx.events.now();
    mmu_busy = false;
    batch->in_flight = false;
    mmu_last_release = now;

    const auto &prog = batch->svc->desc.program;
    const auto &sb = prog.steps[batch->step];

    batch->issued_in_step += chunk;
    if (batch->issued_in_step < sb.mmu.occupancy) {
        // Step not finished: more instructions to issue immediately.
        inf_waiting_at_release = true;
        dispatcher->tryDispatch();
        return;
    }
    batch->issued_in_step = 0;

    // Results drain from the array, then the SIMD unit's epilogue
    // (activation functions, recurrence updates) serialises the next
    // step. The SIMD unit is shared, so back-to-back batches queue on it.
    Tick drained = now + sb.drain_cycles;
    Tick simd_start = std::max(drained, simd_free);
    Tick ready = simd_start + sb.simd_cycles;
    if (sb.simd_cycles > 0)
        simd_free = ready;
    if (ctx.measuring)
        simd_busy_measured += static_cast<double>(sb.simd_cycles);

    ++batch->step;
    if (batch->step < prog.steps.size()) {
        batch->ready_at = ready;
    } else {
        // Batch complete: stream results to the host and retire.
        ByteCount out = static_cast<ByteCount>(batch->real) *
                        batch->svc->desc.output_bytes_per_request;
        Tick finish = out ? faults->hostTransfer(ready, out,
                                                 dram::Priority::High)
                          : ready;
        if (ctx.measuring) {
            for (Tick a : batch->arrivals) {
                latency_cycles.record(static_cast<double>(finish - a));
                batch->svc->latency_cycles.record(
                    static_cast<double>(finish - a));
                // Arrival-to-retire span, one event per measured
                // request: lets a trace sink reproduce the latency
                // percentiles exactly (obs::LatencyProbe).
                emit(TraceEventType::RequestRetired, batch->svc->id,
                     finish - a, finish);
            }
            service_cycles.record(
                static_cast<double>(finish - batch->first_issue));
            ctx.host_bytes_measured += out;
            ctx.completed_measured += batch->real;
        }
        ctx.completed_total += batch->real;
        batch->done = true;
        bool queued = ctx.batch_queue.retire(batch);
        EQX_ASSERT(queued, "finished batch not queued");
        emit(TraceEventType::BatchRetired, batch->svc->id, batch->real,
             finish - batch->first_issue);
        // Last use of the batch: hand its storage back to the arena.
        // No re-acquire can happen inside this call chain -- batch
        // formation runs only from arrivals/timeouts, which the
        // fast-forward engine never inlines.
        ctx.batch_arena.release(batch);
        batch = nullptr;
        ctx.maybeFinishWarmup();
        if (ctx.measuring && ctx.inference_load &&
            ctx.completed_measured >= ctx.spec.measure_requests &&
            units::cyclesToSeconds(ctx.events.now() - ctx.measure_start,
                                   ctx.cfg.frequency_hz) >=
                ctx.spec.min_measure_s) {
            ctx.stopping = true;
        }
    }

    // Any queued batch means gaps are dependence stalls, not idle. (A
    // dependence-READY batch implies a queued one, so the old extra
    // firstReadyBatchWaiting() scan here was subsumed by this check --
    // dropping it halves the ready-scan count per retire.)
    inf_waiting_at_release = !ctx.batch_queue.empty();
    dispatcher->tryDispatch();
}

void
Datapath::issueTrainingChunk()
{
    Tick now = ctx.events.now();
    accountGap(now);

    auto &train = ctx.train;
    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    Tick remaining = tw.occupancy - train->issued_in_step;
    Tick chunk = remaining;
    double bpc = 0.0;
    if (tw.stream_bytes > 0) {
        bpc = static_cast<double>(tw.stream_bytes) /
              static_cast<double>(tw.occupancy);
        chunk = std::min(chunk, static_cast<Tick>(train->staged_bytes /
                                                  bpc));
    }
    EQX_ASSERT(chunk > 0, "training issued with no issuable cycles");

    double bytes = static_cast<double>(chunk) * bpc;
    train->staged_bytes -= bytes;
    // With the banked scratchpad, the consumed bytes advance its drain
    // tail -- fully drained banks become refillable, which is what the
    // prefetcher's ping-pong headroom check below keys off.
    ctx.mem->noteScratchpadDrain(bytes);
    // Consuming staged operands frees staging space: restart the
    // prefetcher immediately so DRAM streams while the array computes.
    prefetcher->pump();

    chargeMmu(tw, chunk, 1.0);
    if (ctx.measuring) {
        train_useful_ops += static_cast<double>(tw.real_ops) *
                            static_cast<double>(chunk) /
                            static_cast<double>(tw.occupancy);
    }
    emit(TraceEventType::TrainChunkIssue, 0, chunk, train->step);

    mmu_busy = true;
    train->in_flight = true;
    std::uint64_t epoch = train->epoch;
    // Tail position (see issueInferenceChunk): eligible for inline
    // fast-forward dispatch. The epoch guard already tolerates the
    // completion firing in any legal order relative to rollbacks.
    ctx.events.scheduleFastIn(chunk, [this, chunk, epoch] {
        if (epoch != ctx.train->epoch) {
            // A rollback/reset invalidated this chunk mid-flight: free
            // the array but do not advance the (replayed) iteration.
            mmu_busy = false;
            ctx.train->in_flight = false;
            mmu_last_release = ctx.events.now();
            inf_waiting_at_release = !ctx.batch_queue.empty();
            dispatcher->tryDispatch();
            return;
        }
        completeTrainingChunk(chunk);
    });
}

void
Datapath::completeTrainingChunk(Tick chunk)
{
    Tick now = ctx.events.now();
    auto &train = ctx.train;
    mmu_busy = false;
    train->in_flight = false;
    mmu_last_release = now;
    inf_waiting_at_release = !ctx.batch_queue.empty();

    train->issued_in_step += chunk;
    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    if (train->issued_in_step >= tw.occupancy)
        advanceTrainingStep();

    prefetcher->pump();
    dispatcher->tryDispatch();
}

void
Datapath::advanceTrainingStep()
{
    Tick now = ctx.events.now();
    auto &train = ctx.train;
    const auto &prog = train->desc.iteration;
    const auto &sb = prog.steps[train->step];

    // Write results (activations for the backward pass, gradient
    // accumulations) back to DRAM at best-effort priority, through the
    // memory hierarchy's write path (write-combining when enabled;
    // verbatim link transfer in passthrough).
    if (sb.store_bytes > 0) {
        mem::Addr addr = kTrainStoreBase + train->mem_store_cursor;
        train->mem_store_cursor += sb.store_bytes;
        dram::TransferFault f;
        ctx.mem->write(now, addr, sb.store_bytes, dram::Priority::Low,
                       faults->active() ? &f : nullptr);
        faults->syncFaults();
        if (f.uncorrectable) {
            // The written-back gradients are poisoned; finish this
            // event's bookkeeping, then roll back to the checkpoint.
            ctx.events.schedule(now, [this] {
                faults->trainingRollback();
            });
        }
    }

    Tick drained = now + sb.drain_cycles;
    Tick simd_start = std::max(drained, simd_free);
    Tick ready = simd_start + sb.simd_cycles;
    if (sb.simd_cycles > 0)
        simd_free = ready;
    if (ctx.measuring)
        simd_busy_measured += static_cast<double>(sb.simd_cycles);
    train->ready_at = ready;

    train->issued_in_step = 0;
    ++train->step;
    if (train->step >= prog.steps.size()) {
        train->step = 0;
        // Next iteration overwrites the same store-back region
        // (activations and gradient accumulators are per-iteration
        // scratch); the cursor rewind is what makes that reuse visible
        // to a non-trivial hierarchy.
        train->mem_store_cursor = 0;
        ++train->iterations;
        dispatcher->policy().onTrainingIteration();
        emit(TraceEventType::TrainIteration, 0, train->iterations);
        // Parameter-server sync: gradients out, fresh model in, over the
        // host interface; double-buffered so it overlaps the next
        // iteration's compute.
        if (train->desc.sync_bytes_per_iteration > 0) {
            faults->hostTransfer(now, train->desc.sync_bytes_per_iteration,
                                 dram::Priority::Low);
            if (ctx.measuring) {
                ctx.host_bytes_measured +=
                    train->desc.sync_bytes_per_iteration;
            }
        }
        faults->maybeWriteCheckpoint();
        if (ctx.measuring) {
            ++ctx.train_iterations_measured;
            if (!ctx.inference_load &&
                ctx.train_iterations_measured >=
                    ctx.spec.measure_iterations) {
                ctx.stopping = true;
            }
        } else if (!ctx.inference_load) {
            // Training-only runs: measure from the second iteration.
            ctx.resetMeasurement();
        }
    }
}

} // namespace sim
} // namespace equinox

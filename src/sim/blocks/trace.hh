/**
 * @file
 * The simulator's observability seam: per-block trace events.
 *
 * Every SimBlock can emit TraceEvents describing what it just did
 * (request admitted, batch formed, chunk issued, iteration retired,
 * fault recovered, ...). An optional TraceSink installed on the
 * Accelerator receives them; with no sink installed the emit path is a
 * single null check, and tracing never perturbs simulated behaviour --
 * events are pure observations taken after the block's state change.
 */

#ifndef EQUINOX_SIM_BLOCKS_TRACE_HH
#define EQUINOX_SIM_BLOCKS_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace sim
{

/** What a block just did. */
enum class TraceEventType : unsigned
{
    RequestArrival,      //!< request admitted to a service's pending queue
    RequestShed,         //!< request dropped at admission (fault storm)
    BatchFormed,         //!< full or partial batch left the batch former
    BatchTimeout,        //!< adaptive batch-formation timer fired
    InferenceChunkIssue, //!< inference MMU chunk entered the array
    BatchRetired,        //!< batch completed and results shipped
    TrainChunkIssue,     //!< training MMU chunk entered the array
    TrainIteration,      //!< one full training iteration retired
    HostTransfer,        //!< host-interface transfer (with retries) done
    FaultHang,           //!< MMU/dispatcher hang began
    FaultRecovery,       //!< hang cleared / reset finished / rollback
    RequestRetired,      //!< one measured request done; a = latency
                         //!< cycles, b = retire (finish) tick
    MemStage,            //!< scratchpad bank completed; a = bytes that
                         //!< became consumable, b = staged bytes now
    NumTypes,
};

/** Human-readable label for a trace event type. */
const char *traceEventTypeName(TraceEventType t);

/** One emitted block event. Payload meaning depends on the type. */
struct TraceEvent
{
    Tick tick = 0;
    TraceEventType type = TraceEventType::RequestArrival;
    /** Emitting block's name (static storage, never dangles). */
    const char *block = "";
    /** Service context the event concerns, when applicable. */
    ContextId ctx = 0;
    /** Generic payloads (bytes, rows, cycles -- see emit sites). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** Receiver of block events; implemented by tools and tests. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent &ev) = 0;
};

/**
 * Process-wide count of trace events actually delivered to a sink
 * (thread-safe). Sink-free runs must leave it untouched -- the
 * regression tests for the zero-cost emit path assert exactly that.
 */
std::uint64_t traceRecordsDelivered();

/** Bump the delivered-record counter (called by the emit slow path). */
void noteTraceRecordDelivered();

/** Zero the delivered-record counter (see resetGlobalSimCounters). */
void resetTraceRecordsDelivered();

/**
 * Bounded in-memory sink: keeps the first @p cap events verbatim plus
 * per-type counts of everything (drops beyond the cap are counted, not
 * silently lost).
 */
class VectorTraceSink : public TraceSink
{
  public:
    explicit VectorTraceSink(std::size_t cap = 1u << 20);

    void record(const TraceEvent &ev) override;

    const std::vector<TraceEvent> &events() const { return events_; }
    std::uint64_t count(TraceEventType t) const;
    std::uint64_t total() const { return total_; }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

  private:
    static constexpr std::size_t kN =
        static_cast<std::size_t>(TraceEventType::NumTypes);
    std::size_t cap_;
    std::vector<TraceEvent> events_;
    std::array<std::uint64_t, kN> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_TRACE_HH

#include "sim/blocks/request_dispatcher.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "sim/blocks/context.hh"
#include "sim/blocks/fault_unit.hh"
#include "sim/blocks/instruction_dispatcher.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

RequestDispatcher::RequestDispatcher(SimContext &context)
    : SimBlock(context, "request_dispatcher")
{
}

RequestDispatcher::~RequestDispatcher() = default;

void
RequestDispatcher::connect(InstructionDispatcher *dispatcher_,
                           FaultUnit *faults_)
{
    dispatcher = dispatcher_;
    faults = faults_;
}

void
RequestDispatcher::resetRun()
{
    ctx.batch_queue.clear();
    ctx.unstarted_batches = 0;
    ctx.full_pending_services = 0;
    // Return every batch -- including ones the previous run's horizon
    // cut off mid-flight -- to the arena in canonical order, so this
    // run's acquire sequence matches a fresh accelerator's.
    ctx.batch_arena.reset();
    batches_formed = 0;
    batches_incomplete = 0;
    batch_fill_sum = 0.0;
    requests_admitted = 0;
    trace_pos = 0;
}

void
RequestDispatcher::beginMeasurement()
{
    batches_formed = 0;
    batches_incomplete = 0;
    batch_fill_sum = 0.0;
    for (auto &svc : ctx.services)
        svc->latency_cycles.reset();
}

void
RequestDispatcher::registerStats(stats::StatRegistry &reg)
{
    reg.registerStat("request_dispatcher.requests_admitted",
                     [this] {
                         return static_cast<double>(requests_admitted);
                     },
                     "requests admitted to pending queues (run total)");
    reg.registerStat("request_dispatcher.batches_formed",
                     [this] {
                         return static_cast<double>(batches_formed);
                     },
                     "batches formed (measured window)");
    reg.registerStat("request_dispatcher.batches_incomplete",
                     [this] {
                         return static_cast<double>(batches_incomplete);
                     },
                     "padded partial batches (measured window)");
    reg.registerStat("request_dispatcher.pending_requests",
                     [this] {
                         double n = 0.0;
                         for (const auto &svc : ctx.services)
                             n += static_cast<double>(
                                 svc->pending.size());
                         return n;
                     },
                     "raw requests awaiting batch formation (live)");
    reg.registerStat("request_dispatcher.queued_batches",
                     [this] {
                         return static_cast<double>(
                             ctx.batch_queue.size());
                     },
                     "formed batches in the queue port (live)");
}

void
RequestDispatcher::beginRun()
{
    if (!ctx.spec.arrival_trace_ticks.empty()) {
        EQX_ASSERT(!ctx.services.empty(),
                   "arrival trace needs an inference service");
        EQX_ASSERT(ctx.spec.arrival_trace_s.empty(),
                   "arrival_trace_ticks and arrival_trace_s are "
                   "mutually exclusive");
        Tick prev = 0;
        for (Tick t : ctx.spec.arrival_trace_ticks) {
            EQX_ASSERT(t >= prev, "tick trace must be ascending");
            prev = t;
        }
    }
    ctx.inference_load = false;
    ctx.full_pending_services = 0; // every pending queue clears below
    for (std::size_t i = 0; i < ctx.services.size(); ++i) {
        auto &svc = *ctx.services[i];
        svc.pending.clear();
        svc.timeout_armed = false;
        svc.rng = Rng(ctx.spec.seed * 7919 + svc.id + 1);
        double rate = 0.0;
        if (!ctx.spec.arrival_rates.empty()) {
            if (i < ctx.spec.arrival_rates.size())
                rate = ctx.spec.arrival_rates[i];
        } else if (i == 0) {
            rate = ctx.spec.arrival_rate_per_s;
        }
        svc.rate_per_cycle = rate / ctx.cfg.frequency_hz;
        ctx.inference_load = ctx.inference_load || rate > 0.0;
        if (i == 0 && !ctx.spec.arrival_trace_ticks.empty())
            ctx.inference_load = true;
        scheduleNextArrival(i);
    }

    if (!ctx.spec.arrival_trace_s.empty()) {
        EQX_ASSERT(!ctx.services.empty(),
                   "arrival trace needs an inference service");
        ctx.inference_load = true;
        double prev = -1.0;
        for (double t : ctx.spec.arrival_trace_s) {
            EQX_ASSERT(t >= 0.0 && t >= prev,
                       "arrival trace must be ascending");
            prev = t;
            ctx.events.schedule(
                units::secondsToCycles(t, ctx.cfg.frequency_hz),
                [this] { onRequestArrival(0); });
        }
    }
}

void
RequestDispatcher::scheduleNextArrival(std::size_t svc_idx)
{
    auto &svc = *ctx.services[svc_idx];
    if (!ctx.spec.arrival_trace_s.empty() && svc_idx == 0)
        return; // trace playback schedules arrivals up front
    if (!ctx.spec.arrival_trace_ticks.empty() && svc_idx == 0) {
        // Chained tick-trace playback: the handler for one candidate
        // schedules the next, exactly where the stochastic modes
        // draw-and-schedule, so the event insertion sequence (and thus
        // same-tick FIFO order) matches a stochastic run that drew the
        // same candidate ticks. Bursty thinning and shedding still
        // apply at arrival time, also mirroring the stochastic path.
        if (ctx.stopping ||
            trace_pos >= ctx.spec.arrival_trace_ticks.size())
            return;
        ctx.events.schedule(ctx.spec.arrival_trace_ticks[trace_pos++],
                            [this] { onRequestArrival(0); });
        return;
    }
    if (svc.rate_per_cycle <= 0.0 || ctx.stopping)
        return;
    // Bursty mode samples candidates at the peak rate and thins them to
    // the on-phase at arrival time (Lewis-Shedler thinning), giving an
    // on/off-modulated Poisson process with the configured mean.
    double rate = svc.rate_per_cycle;
    if (ctx.spec.arrival_process == ArrivalProcess::Bursty)
        rate *= ctx.spec.burst_factor;
    double wait = svc.rng.exponential(rate);
    auto delta = static_cast<Tick>(wait) + 1;
    ctx.events.scheduleIn(delta, [this, svc_idx] {
        onRequestArrival(svc_idx);
    });
}

bool
RequestDispatcher::inBurstOnPhase() const
{
    if (ctx.spec.arrival_process != ArrivalProcess::Bursty)
        return true;
    Tick period = units::secondsToCycles(ctx.spec.burst_period_s,
                                         ctx.cfg.frequency_hz);
    if (period == 0)
        return true;
    Tick on = static_cast<Tick>(static_cast<double>(period) /
                                ctx.spec.burst_factor);
    return (ctx.events.now() % period) < std::max<Tick>(on, 1);
}

void
RequestDispatcher::onRequestArrival(std::size_t svc_idx)
{
    if (ctx.stopping)
        return;
    auto &svc = *ctx.services[svc_idx];
    if ((ctx.spec.arrival_trace_s.empty() || svc_idx != 0) &&
        !inBurstOnPhase()) {
        // Thinned candidate: no request in the off phase.
        scheduleNextArrival(svc_idx);
        return;
    }
    if (faults->shedInference()) {
        // Severe fault storm: the degradation policy sheds requests at
        // admission rather than queuing into an impaired machine.
        faults->countShedRequest();
        emit(TraceEventType::RequestShed, svc.id);
        scheduleNextArrival(svc_idx);
        return;
    }
    svc.pending.push_back(ctx.events.now());
    if (svc.pending.size() == svc.desc.program.batch_rows)
        ++ctx.full_pending_services; // crossed the full-batch threshold
    ++requests_admitted;
    emit(TraceEventType::RequestArrival, svc.id, svc.pending.size());
    formFullBatches(svc);
    armBatchTimeout(svc);
    scheduleNextArrival(svc_idx);
    dispatcher->tryDispatch();
}

void
RequestDispatcher::formFullBatches(InfService &svc)
{
    const std::uint32_t batch_rows = svc.desc.program.batch_rows;
    if (svc.pending.size() >= batch_rows)
        --ctx.full_pending_services; // the loop drains below full
    while (svc.pending.size() >= batch_rows) {
        InfBatch *batch = ctx.batch_arena.acquire();
        batch->resetForReuse();
        batch->svc = &svc;
        batch->real = batch_rows;
        for (std::uint32_t i = 0; i < batch_rows; ++i) {
            batch->arrivals.push_back(svc.pending.front());
            svc.pending.pop_front();
        }
        // Batch inputs DMA in over the host interface before issue.
        ByteCount in_bytes = static_cast<ByteCount>(batch->real) *
                             svc.desc.input_bytes_per_request;
        batch->ready_at = in_bytes
                              ? faults->hostTransfer(ctx.events.now(),
                                                     in_bytes,
                                                     dram::Priority::High)
                              : ctx.events.now();
        if (ctx.measuring) {
            ++batches_formed;
            batch_fill_sum += 1.0;
            ctx.host_bytes_measured += in_bytes;
        }
        emit(TraceEventType::BatchFormed, svc.id, batch->real,
             batch_rows);
        ctx.batch_queue.push(batch);
        ++ctx.unstarted_batches;
    }
}

void
RequestDispatcher::formPartialBatch(InfService &svc)
{
    EQX_ASSERT(!svc.pending.empty(), "partial batch from empty queue");
    const std::uint32_t batch_rows = svc.desc.program.batch_rows;
    const bool was_full = svc.pending.size() >= batch_rows;
    InfBatch *batch = ctx.batch_arena.acquire();
    batch->resetForReuse();
    batch->svc = &svc;
    batch->real = static_cast<std::uint32_t>(
        std::min<std::size_t>(svc.pending.size(), batch_rows));
    for (std::uint32_t i = 0; i < batch->real; ++i) {
        batch->arrivals.push_back(svc.pending.front());
        svc.pending.pop_front();
    }
    if (was_full && svc.pending.size() < batch_rows)
        --ctx.full_pending_services;
    ByteCount in_bytes = static_cast<ByteCount>(batch->real) *
                         svc.desc.input_bytes_per_request;
    batch->ready_at = in_bytes
                          ? faults->hostTransfer(ctx.events.now(),
                                                 in_bytes,
                                                 dram::Priority::High)
                          : ctx.events.now();
    if (ctx.measuring) {
        ++batches_formed;
        ++batches_incomplete;
        batch_fill_sum += static_cast<double>(batch->real) / batch_rows;
        ctx.host_bytes_measured += in_bytes;
    }
    emit(TraceEventType::BatchFormed, svc.id, batch->real, batch_rows);
    ctx.batch_queue.push(batch);
    ++ctx.unstarted_batches;
}

void
RequestDispatcher::armBatchTimeout(InfService &svc)
{
    if (ctx.cfg.batch_policy != BatchPolicy::Adaptive)
        return;
    if (svc.timeout_armed || svc.pending.empty())
        return;
    svc.timeout_armed = true;
    Tick fire_at = svc.pending.front() + svc.timeout_cycles;
    fire_at = std::max(fire_at, ctx.events.now());
    InfService *p = &svc;
    ctx.events.schedule(fire_at, [this, p] { onBatchTimeout(p); });
}

/**
 * The armed batch-formation timeout fired. The queue may have changed
 * arbitrarily since arming: the request the timer was armed for can be
 * long gone (batched into a full batch), and the queue can have drained
 * and refilled with younger requests. Each case must leave exactly one
 * live timer whenever requests are pending, keyed to the CURRENT oldest
 * request's deadline -- a request left waiting without a timer would
 * strand until the next arrival.
 */
void
RequestDispatcher::onBatchTimeout(InfService *svc)
{
    // The armed flag must drop before any early return: every exit path
    // below either re-arms explicitly or leaves the queue empty (and
    // the next arrival re-arms).
    svc->timeout_armed = false;
    if (svc->pending.empty() || ctx.stopping)
        return;
    emit(TraceEventType::BatchTimeout, svc->id, svc->pending.size());
    if (ctx.events.now() >= svc->pending.front() + svc->timeout_cycles) {
        // The request controller pads the input arrays with dummy
        // requests whose results are disposed (section 3.1).
        formPartialBatch(*svc);
    }
    // Queue drained between arm and fire, then refilled: the oldest
    // pending request is younger than the one the timer was armed for,
    // so its deadline is still in the future -- re-arm for it.
    armBatchTimeout(*svc);
    dispatcher->tryDispatch();
}

std::uint64_t
RequestDispatcher::pendingInferenceWork() const
{
    std::uint64_t n = 0;
    for (const auto &svc : ctx.services)
        n += svc->pending.size();
    for (const auto *b : ctx.batch_queue) {
        if (!b->done)
            n += b->real;
    }
    return n;
}

} // namespace sim
} // namespace equinox

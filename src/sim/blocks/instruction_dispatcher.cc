#include "sim/blocks/instruction_dispatcher.hh"

#include <algorithm>

#include "sim/blocks/context.hh"
#include "sim/blocks/datapath.hh"
#include "sim/blocks/fault_unit.hh"
#include "sim/blocks/request_dispatcher.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

InstructionDispatcher::InstructionDispatcher(SimContext &context)
    : SimBlock(context, "instruction_dispatcher"),
      policy_(makeSchedulingPolicy(context.cfg))
{
    // Built once: constructing three std::functions per scheduling
    // round showed up in profiles. The closures capture only `this`,
    // which outlives the view.
    view_.spike = [this] { return spikeDetected(); };
    view_.queue_low = [this] { return inferenceQueueLow(); };
    view_.pending_work = [this] {
        return requests->pendingInferenceWork();
    };
}

InstructionDispatcher::~InstructionDispatcher() = default;

void
InstructionDispatcher::connect(Datapath *datapath_,
                               RequestDispatcher *requests_,
                               FaultUnit *faults_)
{
    datapath = datapath_;
    requests = requests_;
    faults = faults_;
}

void
InstructionDispatcher::resetRun()
{
    prefer_training = false;
    policy_->reset();
    armed_wakes_.clear(); // the run's EventQueue was rebuilt
    rounds = 0;
    inf_issues = 0;
    train_issues = 0;
    // last_served_ctx intentionally persists (see header).
}

void
InstructionDispatcher::registerStats(stats::StatRegistry &reg)
{
    reg.registerStat("instruction_dispatcher.rounds",
                     [this] { return static_cast<double>(rounds); },
                     "scheduling rounds entered (run total)");
    reg.registerStat("instruction_dispatcher.inference_issues",
                     [this] { return static_cast<double>(inf_issues); },
                     "inference chunks issued (run total)");
    reg.registerStat("instruction_dispatcher.training_issues",
                     [this] { return static_cast<double>(train_issues); },
                     "training chunks issued (run total)");
}

InfBatch *
InstructionDispatcher::firstReadyBatch()
{
    // FIFO within a hardware context; round-robin across contexts so a
    // long-running service (e.g. a 30 ms GRU batch) cannot head-of-line
    // block a sub-ms one in its dependence gaps.
    const Tick now = ctx.events.now();
    // Single installed service: the cross-context round-robin below
    // degenerates to "return the first candidate" whatever the cursor
    // holds (a matching cursor falls through to fallback = first
    // candidate; a stale non-matching one returns it directly), so skip
    // the full scan. This is the simulator's hottest loop (~40% of a
    // fig7 run before the exit).
    const bool single_ctx = ctx.services.size() <= 1;
    InfBatch *fallback = nullptr;
    for (auto *b : ctx.batch_queue) {
        if (b->done || b->in_flight || b->ready_at > now)
            continue;
        if (single_ctx)
            return b;
        if (b->svc->id != last_served_ctx)
            return b;
        if (!fallback)
            fallback = b;
    }
    return fallback;
}

bool
InstructionDispatcher::inferenceQueueLow() const
{
    // "Low queuing": at most one batch anywhere in the pipeline and no
    // full batch of raw requests waiting to form. Both facts are
    // maintained incrementally (see SimContext) -- this predicate runs
    // on every policy round and used to rescan every service.
    return ctx.batch_queue.size() <= 1 &&
           ctx.full_pending_services == 0;
}

bool
InstructionDispatcher::spikeDetected() const
{
    // The instruction controller compares the inference queue size
    // against an install-time threshold (section 3.2). O(1): the
    // unstarted-batch and full-pending-service counts are maintained
    // at their mutation sites instead of rescanned per round.
    return ctx.unstarted_batches >= ctx.cfg.spike_threshold_batches ||
           ctx.full_pending_services > 0;
}

bool
InstructionDispatcher::trainingReady() const
{
    const auto &train = ctx.train;
    if (!train || train->in_flight)
        return false;
    // Graceful degradation: during a fault storm training is shed first
    // so the machine's remaining capacity serves inference.
    if (faults->stormActive())
        return false;
    if (train->ready_at > ctx.events.now())
        return false;
    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    Tick remaining = tw.occupancy - train->issued_in_step;
    if (remaining == 0)
        return false;
    if (tw.stream_bytes == 0)
        return true;
    double bpc = static_cast<double>(tw.stream_bytes) /
                 static_cast<double>(tw.occupancy);
    Tick granule = std::max<Tick>(1, tw.occupancy /
                                         std::max(1u, tw.instructions));
    granule = std::min(granule, remaining);
    return train->staged_bytes >= static_cast<double>(granule) * bpc;
}

void
InstructionDispatcher::tryDispatch()
{
    // A hung dispatcher issues nothing until the watchdog (or the
    // transient stall itself) clears the hang and re-invokes us.
    if (datapath->mmuBusy() || ctx.stopping || faults->mmuHung())
        return;
    ++rounds;
    Tick now = ctx.events.now();

    InfBatch *inf = firstReadyBatch();
    bool train_ok = trainingReady();

    // The policy sees readiness plus lazy (pure) queue predicates and
    // vetoes service classes; the round-robin and the issue stay here.
    view_.now = now;
    view_.inference_ready = inf != nullptr;
    view_.training_ready = train_ok;
    SchedDecision d = policy_->decide(view_);
    if (!d.allow_inference)
        inf = nullptr;
    if (!d.allow_training)
        train_ok = false;
    if (d.revisit_at != kTickMax && d.revisit_at > now)
        scheduleWake(d.revisit_at);

    if (inf && train_ok) {
        if (prefer_training) {
            prefer_training = false;
            ++train_issues;
            datapath->issueTrainingChunk();
        } else {
            prefer_training = true;
            ++inf_issues;
            datapath->issueInferenceChunk(inf);
        }
        return;
    }
    if (inf) {
        prefer_training = true;
        ++inf_issues;
        datapath->issueInferenceChunk(inf);
        return;
    }
    if (train_ok) {
        prefer_training = false;
        policy_->onTrainingIssue(now);
        ++train_issues;
        datapath->issueTrainingChunk();
        return;
    }

    // Nothing ready: wake at the earliest dependence-ready tick. Staging
    // arrivals and request arrivals re-invoke tryDispatch themselves.
    Tick wake = kTickMax;
    for (auto *b : ctx.batch_queue) {
        if (!b->done && !b->in_flight)
            wake = std::min(wake, b->ready_at);
    }
    if (ctx.train && !ctx.train->in_flight && ctx.train->ready_at > now)
        wake = std::min(wake, ctx.train->ready_at);
    if (wake != kTickMax && wake > now)
        scheduleWake(wake, /*tail=*/true);
}

void
InstructionDispatcher::scheduleWake(Tick at, bool tail)
{
    // Exact-same-tick dedup only: a wake already armed at `at` makes a
    // second event there a guaranteed no-op (every state change pokes
    // tryDispatch directly, and decide() is pure), so skipping it
    // cannot change dispatch order, policy state, or the final now().
    // Never coalesce across DIFFERENT ticks -- that could change the
    // tick the run drains at and thus the Idle-cycle accounting.
    for (Tick t : armed_wakes_) {
        if (t == at)
            return;
    }
    armed_wakes_.push_back(at);
    auto wake = [this, at] {
        for (std::size_t i = 0; i < armed_wakes_.size(); ++i) {
            if (armed_wakes_[i] == at) {
                armed_wakes_.erase(armed_wakes_.begin() + i);
                break;
            }
        }
        tryDispatch();
    };
    // Only the nothing-ready wake at the end of tryDispatch() is in
    // tail position of its dispatch chain and thus safe to inline; the
    // policy's revisit_at wake is armed mid-round, before the issue.
    if (tail)
        ctx.events.scheduleFast(at, std::move(wake));
    else
        ctx.events.schedule(at, std::move(wake));
}

} // namespace sim
} // namespace equinox

/**
 * @file
 * Datapath: the MMU + SIMD execution timing block.
 *
 * Models the matrix-multiply array's chunked occupancy (instruction-
 * granularity interleaving between inference and training), the shared
 * SIMD unit's serialising epilogues, per-step drains, and batch/
 * iteration retirement -- and owns every measured-window datapath
 * accumulator: the Figure 8 cycle breakdown, the latency/service
 * trackers, useful-op counts, and MMU/SIMD busy cycles.
 */

#ifndef EQUINOX_SIM_BLOCKS_DATAPATH_HH
#define EQUINOX_SIM_BLOCKS_DATAPATH_HH

#include "common/types.hh"
#include "isa/program.hh"
#include "sim/blocks/inf_types.hh"
#include "sim/blocks/sim_block.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace sim
{

class FaultUnit;
class InstructionDispatcher;
class TrainPrefetcher;

/** MMU/SIMD datapath timing and measured-window accounting. */
class Datapath final : public SimBlock
{
  public:
    explicit Datapath(SimContext &context);
    ~Datapath() override;

    /** Wire control ports (composition root, once). */
    void connect(InstructionDispatcher *dispatcher_,
                 TrainPrefetcher *prefetcher_, FaultUnit *faults_);

    void resetRun() override;
    void beginMeasurement() override;
    void registerStats(stats::StatRegistry &reg) override;

    /** Occupy the array with one inference chunk of @p batch. */
    void issueInferenceChunk(InfBatch *batch);

    /** Occupy the array with the next training chunk. */
    void issueTrainingChunk();

    /** The array is occupied (nothing else may issue). */
    bool mmuBusy() const { return mmu_busy; }

    /**
     * Attribute the idle/stall gap since the last MMU release up to
     * @p upto (end-of-run flush; issue paths call it internally).
     */
    void accountGap(Tick upto);

    // -- measured-window accumulators (read by the composition root) ----
    const stats::CycleBreakdown &breakdownStats() const
    {
        return breakdown;
    }
    const stats::LatencyTracker &latencyCycles() const
    {
        return latency_cycles;
    }
    const stats::LatencyTracker &serviceCycles() const
    {
        return service_cycles;
    }
    double infUsefulOps() const { return inf_useful_ops; }
    double trainUsefulOps() const { return train_useful_ops; }
    double mmuBusyMeasured() const { return mmu_busy_measured; }
    double simdBusyMeasured() const { return simd_busy_measured; }

  private:
    void chargeMmu(const isa::TileWork &tw, Tick cycles,
                   double real_frac);
    void completeInferenceChunk(InfBatch *batch, Tick chunk);
    void completeTrainingChunk(Tick chunk);
    void advanceTrainingStep();

    InstructionDispatcher *dispatcher = nullptr;
    TrainPrefetcher *prefetcher = nullptr;
    FaultUnit *faults = nullptr;

    // -- dynamic issue state --------------------------------------------
    bool mmu_busy = false;
    Tick mmu_last_release = 0;
    /** Inference work existed at release: gaps are stalls, not idle. */
    bool inf_waiting_at_release = false;
    Tick simd_free = 0; //!< shared SIMD unit's earliest-free tick

    // -- measured window ------------------------------------------------
    stats::CycleBreakdown breakdown; //!< Figure 8 categories
    stats::LatencyTracker latency_cycles;
    stats::LatencyTracker service_cycles;
    double inf_useful_ops = 0.0;
    double train_useful_ops = 0.0;
    double mmu_busy_measured = 0.0;
    double simd_busy_measured = 0.0;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_DATAPATH_HH

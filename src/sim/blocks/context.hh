/**
 * @file
 * SimContext: the shared simulation core every block is wired to.
 *
 * It owns the infrastructure no single block can claim -- the event
 * queue, the per-run spec, the DRAM/host interface models, the
 * installed service/training state, the batch queue port, and the
 * run/measurement control flags. Blocks hold a reference to it and
 * communicate data through it; control flows through explicit block
 * ports (see the connect() calls in the Accelerator composition root).
 */

#ifndef EQUINOX_SIM_BLOCKS_CONTEXT_HH
#define EQUINOX_SIM_BLOCKS_CONTEXT_HH

#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"
#include "dram/hbm.hh"
#include "dram/host_link.hh"
#include "mem/memory_hierarchy.hh"
#include "sim/accelerator_types.hh"
#include "sim/blocks/inf_types.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace equinox
{
namespace sim
{

class SimBlock;
class TraceSink;

/** The shared core the composition root wires every block to. */
struct SimContext
{
    explicit SimContext(const AcceleratorConfig &config) : cfg(config) {}

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    const AcceleratorConfig &cfg;
    EventQueue events;
    RunSpec spec;

    /** Off-chip interfaces (rebuilt per run). */
    std::unique_ptr<dram::HbmModel> hbm;
    std::unique_ptr<dram::HostLink> host;
    /**
     * The memory hierarchy in front of the HBM link (rebuilt per run,
     * right after the link it fronts). Passthrough by default; the
     * Datapath/TrainPrefetcher memory seams route every HBM access
     * through it.
     */
    std::unique_ptr<mem::MemoryHierarchy> mem;

    /** Observability seam; null = tracing off (the default). */
    TraceSink *trace = nullptr;

    /** Blocks in composition order (for measurement-window resets). */
    std::vector<SimBlock *> blocks;

    // -- run control ----------------------------------------------------
    bool inference_load = false; //!< any service has a nonzero rate
    bool stopping = false;
    bool measuring = false;
    Tick measure_start = 0;
    std::uint64_t completed_total = 0;
    std::uint64_t completed_measured = 0;

    // -- measured-window tallies shared by more than one block ----------
    ByteCount host_bytes_measured = 0;
    std::uint64_t train_iterations_measured = 0;
    ByteCount dram_lp_snapshot = 0;

    // -- incremental scheduling predicates -------------------------------
    // Maintained by the request dispatcher (arrival/batch-forming) and
    // the datapath (first issue) so the per-round spike/queue-low
    // policy checks are O(1) instead of rescanning every service and
    // queued batch. Invariants:
    //   full_pending_services == #services with pending.size() >=
    //                            batch_rows
    //   unstarted_batches     == #queued batches never issued
    //                            (first_issue still kTickMax)
    std::uint32_t full_pending_services = 0;
    std::uint32_t unstarted_batches = 0;

    // -- installed services (shared across blocks) ----------------------
    std::vector<std::unique_ptr<InfService>> services;
    std::unique_ptr<TrainState> train;
    /** Typed port: batch former -> instruction dispatcher/datapath. */
    BatchQueue batch_queue;
    /**
     * Storage behind every InfBatch in flight: the request dispatcher
     * acquires at batch formation, the datapath releases at retire,
     * and RequestDispatcher::resetRun() resets the arena (returning
     * any batches the horizon cut off mid-flight). Owned here so the
     * pool -- and the capacity its batches grew -- survives across
     * back-to-back runs on the same accelerator.
     */
    common::ObjectPool<InfBatch> batch_arena;

    Tick now() const { return events.now(); }

    /**
     * Open the measurement window at the current tick: zero every
     * shared tally and ask each block to drop its measured-window
     * accumulators. Schedules nothing and draws no randomness, so the
     * call is invisible to simulated behaviour.
     */
    void resetMeasurement();

    /** Open the window once the warmup request/time thresholds pass. */
    void maybeFinishWarmup();
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_CONTEXT_HH

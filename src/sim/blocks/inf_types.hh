/**
 * @file
 * The shared service/batch/training state records the simulation blocks
 * exchange, plus the typed BatchQueue port that carries formed batches
 * from the request dispatcher to the instruction dispatcher.
 *
 * These used to be private structs inside the monolithic Accelerator;
 * they live here so blocks and tests can name them directly.
 */

#ifndef EQUINOX_SIM_BLOCKS_INF_TYPES_HH
#define EQUINOX_SIM_BLOCKS_INF_TYPES_HH

#include <algorithm>
#include <vector>

#include "common/arena.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "sim/accelerator_types.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace sim
{

/** One installed inference service (a hardware context, Figure 5). */
struct InfService
{
    ContextId id = 0;
    InferenceServiceDesc desc;
    Tick timeout_cycles = 0;      //!< adaptive batch-formation threshold
    double rate_per_cycle = 0.0;  //!< Poisson arrival rate
    Rng rng{1};
    /**
     * Arrival ticks awaiting batching. A growable ring instead of
     * std::deque: arrival + batch-forming churn it on every request,
     * and the ring never allocates after warmup.
     */
    common::Ring<Tick> pending;
    bool timeout_armed = false;
    stats::LatencyTracker latency_cycles; //!< measured window
};

/**
 * A formed batch moving through the datapath. Storage comes from the
 * SimContext's batch arena (common::ObjectPool): the request
 * dispatcher acquires one per formed batch, the datapath releases it
 * at retire, and resetForReuse() re-initializes every field while
 * keeping the arrivals vector's grown capacity -- the steady state
 * forms batches with zero heap allocations.
 */
struct InfBatch
{
    InfService *svc = nullptr;
    std::uint32_t real = 0;       //!< real requests (rest is padding)
    std::vector<Tick> arrivals;
    std::size_t step = 0;
    Tick issued_in_step = 0;      //!< MMU cycles of the step already run
    Tick ready_at = 0;            //!< next step's dependence-ready tick
    Tick first_issue = kTickMax;
    bool in_flight = false;
    bool done = false;

    /** Reset to a fresh batch; arrivals keeps its capacity. */
    void
    resetForReuse()
    {
        svc = nullptr;
        real = 0;
        arrivals.clear();
        step = 0;
        issued_in_step = 0;
        ready_at = 0;
        first_issue = kTickMax;
        in_flight = false;
        done = false;
    }
};

/** The training service's execution and prefetch state. */
struct TrainState
{
    TrainingServiceDesc desc;
    ByteCount staging_capacity = 0;
    std::size_t step = 0;
    Tick issued_in_step = 0;
    Tick ready_at = 0;
    bool in_flight = false;
    double staged_bytes = 0.0;
    double inflight_bytes = 0.0;
    std::size_t prefetch_step = 0;
    ByteCount prefetch_off = 0;
    /**
     * Synthesized DRAM addresses for the memory hierarchy: byte offset
     * of the prefetch walk (reads) and of the store-back stream
     * (writes) within the current training pass. Both rewind to 0 when
     * their walk wraps to step 0, so every pass re-touches the same
     * addresses -- the reuse the LLC can exploit. Ignored (never read)
     * by the passthrough hierarchy.
     */
    ByteCount mem_read_cursor = 0;
    ByteCount mem_store_cursor = 0;
    std::uint64_t iterations = 0;
    /** Iterations durably saved by the last checkpoint (recovery). */
    std::uint64_t committed_iterations = 0;
    /**
     * Bumped on every rollback/reset; in-flight prefetch completions
     * and MMU chunks from an older epoch are stale and ignored.
     */
    std::uint64_t epoch = 0;
};

/**
 * FIFO port between the batch former (producer) and the instruction
 * dispatcher / datapath (consumers). Iteration order is arrival order;
 * retirement erases the batch wherever it sits, preserving the order
 * of the rest -- the scan-based scheduling policies depend on it.
 *
 * Backed by a flat vector: the instruction dispatcher's ready-batch
 * scan is the simulator's single hottest loop, and contiguous pointer
 * iteration is several times cheaper than std::deque's segmented
 * iterators. The queue is short (a handful of in-flight batches), so
 * the O(n) erase in retire() is a small memmove.
 */
class BatchQueue
{
  public:
    void push(InfBatch *b) { q.push_back(b); }

    /** Remove @p b; @return false when it was not queued. */
    bool
    retire(InfBatch *b)
    {
        auto it = std::find(q.begin(), q.end(), b);
        if (it == q.end())
            return false;
        q.erase(it);
        return true;
    }

    std::size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    void clear() { q.clear(); }

    std::vector<InfBatch *>::const_iterator begin() const
    {
        return q.begin();
    }
    std::vector<InfBatch *>::const_iterator end() const
    {
        return q.end();
    }

  private:
    std::vector<InfBatch *> q;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_INF_TYPES_HH

#include "sim/blocks/fault_unit.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "sim/blocks/context.hh"
#include "sim/blocks/instruction_dispatcher.hh"
#include "sim/blocks/train_prefetcher.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

FaultUnit::FaultUnit(SimContext &context) : SimBlock(context, "fault_unit")
{
}

FaultUnit::~FaultUnit() = default;

void
FaultUnit::connect(InstructionDispatcher *dispatcher_,
                   TrainPrefetcher *prefetcher_)
{
    dispatcher = dispatcher_;
    prefetcher = prefetcher_;
}

void
FaultUnit::resetRun()
{
    injector.reset();
    fstats.reset();
    mmu_hung = false;
    hang_started_at = 0;
    storm_active = false;
    shed_inference = false;
    storm_check_armed = false;
    faults_seen = 0;
    recent_faults.clear();
}

void
FaultUnit::registerStats(stats::StatRegistry &reg)
{
    reg.registerStat("fault_unit.faults_total",
                     [this] {
                         return static_cast<double>(fstats.totalFaults());
                     },
                     "injected faults of all kinds");
    reg.registerStat("fault_unit.downtime_cycles",
                     [this] {
                         return static_cast<double>(
                             fstats.downtime_cycles);
                     },
                     "cycles unavailable (hang detect + reset)");
    reg.registerStat("fault_unit.host_retries",
                     [this] {
                         return static_cast<double>(fstats.host_retries);
                     },
                     "retried host transfers");
    reg.registerStat("fault_unit.rollbacks",
                     [this] {
                         return static_cast<double>(fstats.rollbacks);
                     },
                     "training checkpoint restores");
    reg.registerStat("fault_unit.storms_entered",
                     [this] {
                         return static_cast<double>(
                             fstats.storms_entered);
                     },
                     "degradation activations");
}

void
FaultUnit::beginRun()
{
    if (!ctx.spec.faults.enabled())
        return;
    auto plan_errors = ctx.spec.faults.validate();
    if (!plan_errors.empty()) {
        std::string joined;
        for (const auto &e : plan_errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid fault plan:", joined);
    }
    injector = std::make_unique<fault::FaultInjector>(
        ctx.spec.faults, ctx.cfg.frequency_hz, &fstats);
    ctx.hbm->setFaultHook(injector->dramHook());
    ctx.host->setFaultHook(injector->hostHook());
}

void
FaultUnit::scheduleHangs(Tick horizon)
{
    if (!injector)
        return;
    for (Tick t : injector->hangSchedule(horizon))
        ctx.events.schedule(t, [this] { onMmuHang(); });
}

std::vector<fault::FaultRecord>
FaultUnit::trace() const
{
    if (!injector)
        return {};
    return injector->trace();
}

Tick
FaultUnit::hostTransfer(Tick start, ByteCount bytes, dram::Priority prio,
                        bool *ok)
{
    if (ok)
        *ok = true;
    if (!injector) {
        Tick finish = ctx.host->transfer(start, bytes, prio);
        emit(TraceEventType::HostTransfer, 0, bytes, 0);
        return finish;
    }

    const auto &rp = ctx.spec.faults.retry;
    Tick deadline = kTickMax;
    if (rp.deadline_s > 0.0) {
        deadline = start + units::secondsToCycles(rp.deadline_s,
                                                  ctx.cfg.frequency_hz);
    }
    Tick first_finish = 0;
    for (unsigned attempt = 0;; ++attempt) {
        dram::TransferFault f;
        Tick finish = ctx.host->transfer(start, bytes, prio, &f);
        syncFaults();
        if (attempt == 0)
            first_finish = finish;
        if (!f.failed) {
            if (attempt > 0) {
                fstats.recovery_cycles.record(
                    static_cast<double>(finish - first_finish));
            }
            emit(TraceEventType::HostTransfer, 0, bytes, attempt);
            return finish;
        }
        if (attempt >= rp.max_retries || finish >= deadline) {
            // Retry budget or per-request deadline exhausted: the
            // payload is lost for good; livelock is impossible because
            // both bounds are finite.
            ++fstats.host_give_ups;
            if (ok)
                *ok = false;
            emit(TraceEventType::HostTransfer, 0, bytes, attempt);
            return finish;
        }
        ++fstats.host_retries;
        // A drop is detected by the response timeout, a corruption by
        // the delivery CRC; either way the retry launches after the
        // attempt's delivery horizon plus jittered backoff.
        start = finish + injector->backoffCycles(attempt);
    }
}

void
FaultUnit::onMmuHang()
{
    if (ctx.stopping || mmu_hung)
        return;
    Tick now = ctx.events.now();
    mmu_hung = true;
    hang_started_at = now;
    ++fstats.mmu_hangs;
    emit(TraceEventType::FaultHang);
    syncFaults();
    const auto &wd = ctx.spec.faults.watchdog;
    if (wd.enabled) {
        Tick detect = now + units::secondsToCycles(wd.timeout_s,
                                                   ctx.cfg.frequency_hz);
        ctx.events.schedule(detect, [this] { onWatchdogFire(); });
    } else {
        // No watchdog: the stall persists until it clears on its own.
        Tick clear = now + units::secondsToCycles(wd.hang_duration_s,
                                                  ctx.cfg.frequency_hz);
        Tick started = now;
        ctx.events.schedule(clear, [this, started] {
            clearTransientHang(started);
        });
    }
}

void
FaultUnit::onWatchdogFire()
{
    if (!mmu_hung || ctx.stopping)
        return;
    Tick now = ctx.events.now();
    ++fstats.watchdog_resets;
    const auto &wd = ctx.spec.faults.watchdog;
    // Costed reset: fixed controller reset, then every installed
    // service's weights re-install from DRAM at critical priority.
    Tick resume = now + units::secondsToCycles(wd.reset_cost_s,
                                               ctx.cfg.frequency_hz);
    ByteCount weights = 0;
    for (const auto &svc : ctx.services)
        weights += svc->desc.weight_footprint;
    if (weights > 0)
        resume = ctx.hbm->transfer(resume, weights, dram::Priority::High);
    syncFaults();
    Tick hang_start = hang_started_at;
    ctx.events.schedule(resume, [this, hang_start] {
        finishReset(hang_start);
    });
}

void
FaultUnit::finishReset(Tick hang_start)
{
    Tick now = ctx.events.now();
    mmu_hung = false;
    accountDowntime(hang_start, now);
    fstats.recovery_cycles.record(static_cast<double>(now - hang_start));
    emit(TraceEventType::FaultRecovery, 0, now - hang_start);
    // The reset wiped the training context's in-flight SRAM state.
    trainingRollback();
    dispatcher->tryDispatch();
}

void
FaultUnit::clearTransientHang(Tick hang_start)
{
    if (!mmu_hung)
        return;
    Tick now = ctx.events.now();
    mmu_hung = false;
    accountDowntime(hang_start, now);
    fstats.recovery_cycles.record(static_cast<double>(now - hang_start));
    emit(TraceEventType::FaultRecovery, 0, now - hang_start);
    dispatcher->tryDispatch();
}

void
FaultUnit::accountDowntime(Tick from, Tick upto)
{
    // Availability is reported over the measured window only.
    if (!ctx.measuring)
        return;
    from = std::max(from, ctx.measure_start);
    if (upto > from)
        fstats.downtime_cycles += upto - from;
}

void
FaultUnit::finalizeDowntime()
{
    if (mmu_hung)
        accountDowntime(hang_started_at, ctx.events.now());
}

void
FaultUnit::trainingRollback()
{
    auto &train = ctx.train;
    if (!train)
        return;
    Tick now = ctx.events.now();
    ++fstats.rollbacks;
    std::uint64_t lost = train->iterations - train->committed_iterations;
    fstats.lost_training_iterations += lost;
    if (ctx.measuring) {
        // Rolled-back iterations are re-counted when the replay
        // re-completes them, so net progress reflects the loss.
        ctx.train_iterations_measured -=
            std::min<std::uint64_t>(ctx.train_iterations_measured, lost);
    }
    train->iterations = train->committed_iterations;
    train->step = 0;
    train->issued_in_step = 0;
    train->staged_bytes = 0.0;
    train->inflight_bytes = 0.0;
    train->prefetch_step = 0;
    train->prefetch_off = 0;
    // The replay re-reads the pass from its start and rewrites the
    // store-back region; staged scratchpad contents are stale.
    train->mem_read_cursor = 0;
    train->mem_store_cursor = 0;
    ctx.mem->rollbackScratchpad();
    ++train->epoch;
    // Restore: the checkpointed master weights stream back from DRAM
    // before the replay's first operands can stage.
    Tick resume = now;
    if (train->desc.checkpoint_bytes > 0) {
        resume = ctx.hbm->transfer(now, train->desc.checkpoint_bytes,
                                   dram::Priority::Low);
        syncFaults();
    }
    train->ready_at = resume;
    fstats.recovery_cycles.record(static_cast<double>(resume - now));
    emit(TraceEventType::FaultRecovery, 0, resume - now, lost);
    std::uint64_t epoch = train->epoch;
    ctx.events.schedule(resume, [this, epoch] {
        if (epoch != ctx.train->epoch)
            return;
        prefetcher->pump();
        dispatcher->tryDispatch();
    });
}

void
FaultUnit::maybeWriteCheckpoint()
{
    auto &train = ctx.train;
    if (!injector || !train)
        return;
    unsigned interval = ctx.spec.faults.checkpoint.interval_iterations;
    if (interval == 0)
        return;
    if (train->iterations - train->committed_iterations < interval)
        return;
    dram::TransferFault f;
    if (train->desc.checkpoint_bytes > 0) {
        // Asynchronous snapshot: the write overlaps the next iteration's
        // compute and is charged as best-effort DRAM traffic.
        ctx.hbm->transfer(ctx.events.now(), train->desc.checkpoint_bytes,
                          dram::Priority::Low, &f);
        syncFaults();
    }
    if (f.uncorrectable) {
        // The checkpoint image itself is damaged: do not commit; the
        // previous checkpoint stays the rollback target and the next
        // interval tries again.
        return;
    }
    ++fstats.checkpoints_written;
    train->committed_iterations = train->iterations;
}

void
FaultUnit::syncFaults()
{
    std::uint64_t total = fstats.totalFaults();
    while (faults_seen < total) {
        ++faults_seen;
        noteFault();
    }
}

void
FaultUnit::noteFault()
{
    const auto &dp = ctx.spec.faults.degrade;
    if (!dp.enabled)
        return;
    Tick now = ctx.events.now();
    Tick window = units::secondsToCycles(dp.storm_window_s,
                                         ctx.cfg.frequency_hz);
    recent_faults.push_back(now);
    while (!recent_faults.empty() &&
           recent_faults.front() + window < now)
        recent_faults.pop_front();
    auto count = static_cast<unsigned>(recent_faults.size());
    if (!storm_active && count >= dp.storm_faults) {
        storm_active = true;
        ++fstats.storms_entered;
    }
    shed_inference = storm_active &&
                     count >= dp.storm_faults *
                                  std::max(1u, dp.shed_inference_factor);
    if (storm_active && !storm_check_armed) {
        storm_check_armed = true;
        ctx.events.schedule(now + window + 1, [this] { stormCheck(); });
    }
}

void
FaultUnit::stormCheck()
{
    storm_check_armed = false;
    if (!storm_active)
        return;
    const auto &dp = ctx.spec.faults.degrade;
    Tick now = ctx.events.now();
    Tick window = units::secondsToCycles(dp.storm_window_s,
                                         ctx.cfg.frequency_hz);
    while (!recent_faults.empty() &&
           recent_faults.front() + window < now)
        recent_faults.pop_front();
    auto count = static_cast<unsigned>(recent_faults.size());
    if (count < dp.storm_faults) {
        // Storm over: training and full admission resume immediately.
        storm_active = false;
        shed_inference = false;
        dispatcher->tryDispatch();
        return;
    }
    shed_inference = count >= dp.storm_faults *
                                  std::max(1u, dp.shed_inference_factor);
    storm_check_armed = true;
    ctx.events.schedule(recent_faults.front() + window + 1,
                        [this] { stormCheck(); });
}

} // namespace sim
} // namespace equinox

/**
 * @file
 * InstructionDispatcher: the execution-unit scheduler block (Figure 5,
 * section 3.2).
 *
 * Each decision round it selects the next MMU occupant: scans the batch
 * queue port for a dependence-ready inference batch (FIFO within a
 * context, round-robin across contexts), checks training readiness
 * (staged operands, dependence, storm shedding), consults the pluggable
 * SchedulingPolicy for vetoes, and round-robins between the survivors.
 * The actual cycle charging happens in the Datapath block it issues to.
 */

#ifndef EQUINOX_SIM_BLOCKS_INSTRUCTION_DISPATCHER_HH
#define EQUINOX_SIM_BLOCKS_INSTRUCTION_DISPATCHER_HH

#include <memory>

#include "common/types.hh"
#include "sim/blocks/inf_types.hh"
#include "sim/blocks/scheduling_policy.hh"
#include "sim/blocks/sim_block.hh"

namespace equinox
{
namespace sim
{

class Datapath;
class FaultUnit;
class RequestDispatcher;

/** Execution-unit scheduler between inference contexts and training. */
class InstructionDispatcher final : public SimBlock
{
  public:
    explicit InstructionDispatcher(SimContext &context);
    ~InstructionDispatcher() override;

    /** Wire control ports (composition root, once). */
    void connect(Datapath *datapath_, RequestDispatcher *requests_,
                 FaultUnit *faults_);

    void resetRun() override;
    void registerStats(stats::StatRegistry &reg) override;

    /**
     * Run one scheduling round: pick the next MMU occupant and issue
     * it, or arm a wakeup at the earliest dependence-ready tick.
     * Idempotent and cheap when the MMU is busy/hung or nothing is
     * ready; every block pokes this after making new work available.
     */
    void tryDispatch();

    /** The datapath started serving @p id (cross-context round-robin). */
    void noteInferenceServed(ContextId id) { last_served_ctx = id; }

    /**
     * The round-robin cursor, which deliberately persists across runs.
     * The check-exact harness saves/restores it around its reference
     * run so the co-simulation is invisible to later runs.
     */
    ContextId lastServedCtx() const { return last_served_ctx; }
    void setLastServedCtx(ContextId id) { last_served_ctx = id; }

    /** A dependence-ready batch exists right now (pure query). */
    bool firstReadyBatchWaiting() { return firstReadyBatch() != nullptr; }

    /** The active policy (owned; replaced only between runs). */
    SchedulingPolicy &policy() { return *policy_; }

  private:
    InfBatch *firstReadyBatch();
    bool inferenceQueueLow() const;
    bool spikeDetected() const;
    bool trainingReady() const;
    void scheduleWake(Tick at, bool tail = false);

    Datapath *datapath = nullptr;
    RequestDispatcher *requests = nullptr;
    FaultUnit *faults = nullptr;

    std::unique_ptr<SchedulingPolicy> policy_;
    /**
     * Reusable policy view: the lazy predicate closures are built once
     * per run instead of constructing three std::functions on every
     * scheduling round; tryDispatch() only refreshes the scalars.
     */
    SchedulerView view_;
    /**
     * Ticks with an armed tryDispatch() wakeup. Completion paths used
     * to re-arm an identical wake after every same-gap arrival; the
     * dedup drops the extra no-op events without moving any wake to a
     * different tick (so dispatch order and final now() are unchanged,
     * keeping the golden digests byte-identical). Bounded by the number
     * of distinct dependence-ready ticks in flight, in practice <= 2.
     */
    std::vector<Tick> armed_wakes_;
    bool prefer_training = false;  //!< round-robin alternation latch
    /**
     * Cross-context round-robin cursor. Deliberately NOT cleared by
     * resetRun(): the monolithic simulator carried it across run()
     * calls, and byte-identical replay requires keeping that.
     */
    ContextId last_served_ctx = 0;

    // observability (run totals)
    std::uint64_t rounds = 0;          //!< dispatch rounds entered
    std::uint64_t inf_issues = 0;      //!< inference chunks issued
    std::uint64_t train_issues = 0;    //!< training chunks issued
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_INSTRUCTION_DISPATCHER_HH

#include "sim/blocks/sim_block.hh"

#include "common/units.hh"
#include "sim/blocks/context.hh"

namespace equinox
{
namespace sim
{

SimBlock::SimBlock(SimContext &context, const char *block_name)
    : ctx(context), name_(block_name)
{
}

SimBlock::~SimBlock() = default;

void
SimBlock::registerStats(stats::StatRegistry &)
{
}

void
SimBlock::emitSlow(TraceEventType type, ContextId svc, std::uint64_t a,
                   std::uint64_t b) const
{
    noteTraceRecordDelivered();
    TraceEvent ev;
    ev.tick = ctx.events.now();
    ev.type = type;
    ev.block = name_;
    ev.ctx = svc;
    ev.a = a;
    ev.b = b;
    ctx.trace->record(ev);
}

void
SimContext::resetMeasurement()
{
    measuring = true;
    measure_start = events.now();
    completed_measured = 0;
    train_iterations_measured = 0;
    host_bytes_measured = 0;
    dram_lp_snapshot = hbm ? hbm->bytesMoved(dram::Priority::Low) : 0;
    for (auto *b : blocks)
        b->beginMeasurement();
}

void
SimContext::maybeFinishWarmup()
{
    if (!measuring && inference_load &&
        completed_total >= spec.warmup_requests &&
        units::cyclesToSeconds(events.now(), cfg.frequency_hz) >=
            spec.warmup_s) {
        resetMeasurement();
    }
}

} // namespace sim
} // namespace equinox

#include "sim/blocks/train_prefetcher.hh"

#include <algorithm>

#include "sim/blocks/context.hh"
#include "sim/blocks/fault_unit.hh"
#include "sim/blocks/instruction_dispatcher.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

TrainPrefetcher::TrainPrefetcher(SimContext &context)
    : SimBlock(context, "train_prefetcher")
{
}

TrainPrefetcher::~TrainPrefetcher() = default;

void
TrainPrefetcher::connect(InstructionDispatcher *dispatcher_,
                         FaultUnit *faults_)
{
    dispatcher = dispatcher_;
    faults = faults_;
}

void
TrainPrefetcher::resetRun()
{
    prefetches_issued = 0;
    prefetch_bytes = 0;
}

void
TrainPrefetcher::registerStats(stats::StatRegistry &reg)
{
    reg.registerStat("train_prefetcher.prefetches_issued",
                     [this] {
                         return static_cast<double>(prefetches_issued);
                     },
                     "staging prefetch transfers issued (run total)");
    reg.registerStat("train_prefetcher.prefetch_bytes",
                     [this] {
                         return static_cast<double>(prefetch_bytes);
                     },
                     "bytes prefetched into staging (run total)");
    reg.registerStat("train_prefetcher.staged_bytes",
                     [this] {
                         return ctx.train ? ctx.train->staged_bytes : 0.0;
                     },
                     "operand bytes staged and unconsumed (live)");
}

void
TrainPrefetcher::pump()
{
    auto &train = ctx.train;
    if (!train || ctx.stopping)
        return;
    const auto &steps = train->desc.iteration.steps;
    const bool banked = ctx.mem && ctx.mem->hasScratchpad();
    while (true) {
        ByteCount step_bytes = steps[train->prefetch_step].mmu.stream_bytes;
        if (train->prefetch_off >= step_bytes) {
            train->prefetch_step = (train->prefetch_step + 1) %
                                   steps.size();
            train->prefetch_off = 0;
            if (train->prefetch_step == 0) {
                // Pass wrapped: the next pass re-reads the same operand
                // addresses, the reuse a non-trivial hierarchy's LLC
                // can exploit (the passthrough path never reads this).
                train->mem_read_cursor = 0;
            }
            // Guard against a (synthetic) program with no streamed bytes.
            bool any = false;
            for (const auto &s : steps) {
                if (s.mmu.stream_bytes > 0) {
                    any = true;
                    break;
                }
            }
            if (!any)
                return;
            continue;
        }
        // Degrade gracefully when the staging share is smaller than the
        // preferred burst: fetch in half-capacity chunks instead.
        ByteCount max_chunk = std::min<ByteCount>(
            kPrefetchChunk,
            std::max<ByteCount>(train->staging_capacity / 2, 512));
        double occupied = train->staged_bytes + train->inflight_bytes;
        if (occupied + static_cast<double>(max_chunk) >
            static_cast<double>(train->staging_capacity)) {
            return;
        }
        ByteCount chunk = std::min<ByteCount>(max_chunk,
                                              step_bytes -
                                                  train->prefetch_off);
        if (banked) {
            // Ping-pong discipline: a fill may only target banks whose
            // previous contents fully drained. In-flight fills already
            // claim their share of the headroom. A chunk larger than
            // the remaining headroom is CLAMPED, not stalled: topping
            // off the fill bank is what completes it and hands it to
            // compute -- stalling whole-chunk-or-nothing can deadlock
            // when the residual headroom and the residual staged bytes
            // are both smaller than one unit of progress.
            ByteCount headroom = ctx.mem->scratchpadFillHeadroom();
            auto inflight =
                static_cast<ByteCount>(train->inflight_bytes);
            ByteCount avail = headroom > inflight ? headroom - inflight
                                                  : 0;
            if (avail == 0) {
                ctx.mem->noteScratchpadFillStall();
                return; // a drain or fill completion re-pumps
            }
            chunk = std::min(chunk, avail);
        }
        mem::Addr addr = train->mem_read_cursor;
        train->mem_read_cursor += chunk;
        train->prefetch_off += chunk;
        train->inflight_bytes += static_cast<double>(chunk);
        ++prefetches_issued;
        prefetch_bytes += chunk;
        dram::TransferFault f;
        Tick done = ctx.mem->read(ctx.events.now(), addr, chunk,
                                  dram::Priority::Low,
                                  faults->active() ? &f : nullptr);
        faults->syncFaults();
        if (f.uncorrectable) {
            // ECC flagged the staged operands as poisoned: when the
            // access would have landed, roll training back to the last
            // checkpoint instead of consuming garbage.
            ctx.events.schedule(done, [this] {
                faults->trainingRollback();
            });
            return;
        }
        std::uint64_t epoch = train->epoch;
        ctx.events.schedule(done, [this, chunk, epoch, banked] {
            if (epoch != ctx.train->epoch)
                return; // superseded by a rollback/reset
            ctx.train->inflight_bytes -= static_cast<double>(chunk);
            if (banked) {
                // Only completed banks become consumable; bytes landing
                // in a partially-filled bank stage later, when a
                // subsequent fill completes the bank.
                ByteCount newly = ctx.mem->noteScratchpadFill(chunk);
                ctx.train->staged_bytes += static_cast<double>(newly);
                if (newly > 0) {
                    emit(TraceEventType::MemStage, 0, newly,
                         static_cast<std::uint64_t>(
                             ctx.train->staged_bytes));
                }
            } else {
                ctx.train->staged_bytes += static_cast<double>(chunk);
            }
            pump();
            dispatcher->tryDispatch();
        });
    }
}

} // namespace sim
} // namespace equinox

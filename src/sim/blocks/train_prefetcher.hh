/**
 * @file
 * TrainPrefetcher: the training operand-staging block (section 2.2).
 *
 * Streams the training iteration's operands from DRAM into the staging
 * share of the activation buffer at best-effort priority, in bounded
 * chunks, as far ahead as staging capacity allows. The datapath drains
 * staged bytes as it issues training chunks and pumps the prefetcher
 * again so DRAM streams while the array computes.
 */

#ifndef EQUINOX_SIM_BLOCKS_TRAIN_PREFETCHER_HH
#define EQUINOX_SIM_BLOCKS_TRAIN_PREFETCHER_HH

#include "common/types.hh"
#include "sim/blocks/sim_block.hh"

namespace equinox
{
namespace sim
{

class FaultUnit;
class InstructionDispatcher;

/** DRAM-to-staging prefetch engine for the training context. */
class TrainPrefetcher final : public SimBlock
{
  public:
    /** Training prefetch granularity over the DRAM interface. */
    static constexpr ByteCount kPrefetchChunk = 256 * 1024;

    explicit TrainPrefetcher(SimContext &context);
    ~TrainPrefetcher() override;

    /** Wire control ports (composition root, once). */
    void connect(InstructionDispatcher *dispatcher_, FaultUnit *faults_);

    void resetRun() override;
    void registerStats(stats::StatRegistry &reg) override;

    /**
     * Issue prefetches until staging is as full as capacity allows (or
     * the program streams nothing). Safe to call at any time; no-op
     * without a training context or once the run is stopping.
     */
    void pump();

  private:
    InstructionDispatcher *dispatcher = nullptr;
    FaultUnit *faults = nullptr;

    // observability (run totals)
    std::uint64_t prefetches_issued = 0;
    ByteCount prefetch_bytes = 0;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BLOCKS_TRAIN_PREFETCHER_HH

#include "sim/blocks/trace.hh"

#include <atomic>

namespace equinox
{
namespace sim
{

namespace
{
std::atomic<std::uint64_t> g_records_delivered{0};
} // namespace

std::uint64_t
traceRecordsDelivered()
{
    return g_records_delivered.load(std::memory_order_relaxed);
}

void
noteTraceRecordDelivered()
{
    g_records_delivered.fetch_add(1, std::memory_order_relaxed);
}

void
resetTraceRecordsDelivered()
{
    g_records_delivered.store(0, std::memory_order_relaxed);
}

const char *
traceEventTypeName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::RequestArrival:
        return "request_arrival";
      case TraceEventType::RequestShed:
        return "request_shed";
      case TraceEventType::BatchFormed:
        return "batch_formed";
      case TraceEventType::BatchTimeout:
        return "batch_timeout";
      case TraceEventType::InferenceChunkIssue:
        return "inference_chunk_issue";
      case TraceEventType::BatchRetired:
        return "batch_retired";
      case TraceEventType::TrainChunkIssue:
        return "train_chunk_issue";
      case TraceEventType::TrainIteration:
        return "train_iteration";
      case TraceEventType::HostTransfer:
        return "host_transfer";
      case TraceEventType::FaultHang:
        return "fault_hang";
      case TraceEventType::FaultRecovery:
        return "fault_recovery";
      case TraceEventType::RequestRetired:
        return "request_retired";
      case TraceEventType::MemStage:
        return "mem_stage";
      case TraceEventType::NumTypes:
        break;
    }
    return "unknown";
}

VectorTraceSink::VectorTraceSink(std::size_t cap) : cap_(cap)
{
}

void
VectorTraceSink::record(const TraceEvent &ev)
{
    ++total_;
    ++counts_[static_cast<std::size_t>(ev.type)];
    if (events_.size() < cap_)
        events_.push_back(ev);
    else
        ++dropped_;
}

std::uint64_t
VectorTraceSink::count(TraceEventType t) const
{
    return counts_[static_cast<std::size_t>(t)];
}

void
VectorTraceSink::clear()
{
    events_.clear();
    counts_.fill(0);
    total_ = 0;
    dropped_ = 0;
}

} // namespace sim
} // namespace equinox

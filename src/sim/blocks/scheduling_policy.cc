#include "sim/blocks/scheduling_policy.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace equinox
{
namespace sim
{

SchedDecision
InferenceOnlyPolicy::decide(const SchedulerView &)
{
    SchedDecision d;
    d.allow_training = false;
    return d;
}

SchedDecision
PriorityPolicy::decide(const SchedulerView &view)
{
    SchedDecision d;
    if (view.spike()) {
        // Load spike: training frozen entirely (section 3.2).
        d.allow_training = false;
    } else if (!view.queue_low() && view.inference_ready) {
        // Batches backed up: inference issues first; training only
        // fills its dependence gaps (rounds with no ready batch).
        d.allow_training = false;
    }
    return d;
}

SchedDecision
FairSharePolicy::decide(const SchedulerView &)
{
    return {};
}

void
SoftwareBatchPolicy::reset()
{
    next_decision = 0;
    exclusive_training = false;
}

SchedDecision
SoftwareBatchPolicy::decide(const SchedulerView &view)
{
    SchedDecision d;
    if (exclusive_training) {
        // A software-scheduled training batch cannot be preempted.
        d.allow_inference = false;
    } else if (view.training_ready) {
        // The software control plane schedules training only at batch
        // granularity, only into a fully idle accelerator, and only
        // after its decision turnaround elapses.
        bool idle = !view.inference_ready && view.pending_work() == 0;
        if (!idle || view.now < next_decision) {
            d.allow_training = false;
            if (idle && view.now < next_decision)
                d.revisit_at = next_decision;
        }
    }
    return d;
}

void
SoftwareBatchPolicy::onTrainingIssue(Tick now)
{
    exclusive_training = true;
    next_decision = now + turnaround;
}

void
SoftwareBatchPolicy::onTrainingIteration()
{
    exclusive_training = false;
}

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const AcceleratorConfig &cfg)
{
    switch (cfg.sched_policy) {
      case SchedPolicy::InferenceOnly:
        return std::make_unique<InferenceOnlyPolicy>();
      case SchedPolicy::Priority:
        return std::make_unique<PriorityPolicy>();
      case SchedPolicy::FairShare:
        return std::make_unique<FairSharePolicy>();
      case SchedPolicy::SoftwareBatch:
        return std::make_unique<SoftwareBatchPolicy>(
            units::secondsToCycles(cfg.software_turnaround_s,
                                   cfg.frequency_hz));
    }
    EQX_FATAL("unknown scheduling policy");
}

} // namespace sim
} // namespace equinox

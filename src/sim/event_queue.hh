/**
 * @file
 * The discrete-event kernel driving the cycle-accurate simulation.
 *
 * Components schedule callbacks at future ticks; the queue dispatches
 * them in (tick, insertion-order) order. Components are written to
 * tolerate stale wakeups (they re-check state on wake), so no
 * cancellation API is needed.
 *
 * Same-cycle ordering contract (load-bearing for reproducibility):
 * events scheduled for the same tick dispatch in exactly the order
 * their schedule()/scheduleIn() calls were made, regardless of which
 * callback made them -- a strict FIFO per tick, implemented by tagging
 * every entry with a global monotonically increasing sequence number.
 * In particular, an event a running callback schedules for the CURRENT
 * tick runs after every same-tick event that was already queued. The
 * simulator's byte-identical replay guarantee (and the golden digests
 * in test_refactor_identity.cc) depends on this: blocks deliberately
 * encode priority as call order, never by racing on a tick.
 */

#ifndef EQUINOX_SIM_EVENT_QUEUE_HH
#define EQUINOX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace equinox
{
namespace sim
{

/** Tick-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated tick. */
    Tick now() const { return now_; }

    /**
     * Pre-allocate heap storage for @p events pending entries so steady
     * growth does not reallocate mid-run (the accelerator reserves its
     * expected high-water mark up front).
     */
    void reserve(std::size_t events) { heap.reserve(events); }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta,
                                                        std::move(cb)); }

    /** Dispatch the earliest event. @return false when empty. */
    bool runOne();

    /** Run until the queue drains or now() would exceed @p limit. */
    void runUntil(Tick limit);

    bool empty() const { return heap.empty(); }
    std::size_t pending() const { return heap.size(); }

    /** Events dispatched so far (for perf diagnostics). */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry
    {
        Tick when;
        /**
         * Global insertion counter breaking same-tick ties: the heap's
         * comparator alone would dispatch equal ticks in an arbitrary
         * (heap-shape-dependent) order, which would make runs depend on
         * scheduling history rather than program order.
         */
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq; // same tick: FIFO by insertion
        }
    };

    /**
     * Explicit binary heap (std::push_heap/std::pop_heap over a vector)
     * rather than std::priority_queue: the vector exposes reserve() and
     * lets runOne() move entries out instead of copy-under-const_cast.
     * (when, seq) is a strict total order, so the dispatch sequence is
     * the comparator's alone — independent of internal heap shape — and
     * the golden identity digests are unaffected by this representation.
     */
    std::vector<Entry> heap;
    Tick now_ = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t dispatched_ = 0;
};

/**
 * Process-wide total of events dispatched by completed simulation runs
 * (accumulated once per Accelerator::run; thread-safe). The bench perf
 * harness reports it as a wall-clock-independent work measure.
 */
std::uint64_t globalDispatchedEvents();

/** Add @p n to the process-wide dispatched-event total. */
void addGlobalDispatchedEvents(std::uint64_t n);

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_EVENT_QUEUE_HH

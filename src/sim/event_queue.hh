/**
 * @file
 * The discrete-event kernel driving the cycle-accurate simulation.
 *
 * Components schedule callbacks at future ticks; the queue dispatches
 * them in (tick, insertion-order) order. Components are written to
 * tolerate stale wakeups (they re-check state on wake), so no
 * cancellation API is needed.
 *
 * Same-cycle ordering contract (load-bearing for reproducibility):
 * events scheduled for the same tick dispatch in exactly the order
 * their schedule()/scheduleIn() calls were made, regardless of which
 * callback made them -- a strict FIFO per tick, implemented by tagging
 * every entry with a global monotonically increasing sequence number.
 * In particular, an event a running callback schedules for the CURRENT
 * tick runs after every same-tick event that was already queued. The
 * simulator's byte-identical replay guarantee (and the golden digests
 * in test_refactor_identity.cc) depends on this: blocks deliberately
 * encode priority as call order, never by racing on a tick.
 *
 * Representation (hot-path kernel overhaul):
 *  - Callback is a small-buffer-optimized type-erased callable. Every
 *    closure the simulator schedules (a block pointer plus a couple of
 *    scalars) is trivially copyable and well under kInlineBytes, so the
 *    steady state performs zero per-event heap allocations -- unlike
 *    std::function, whose 16-byte libstdc++ SBO spilled the common
 *    [this, batch, chunk] capture to the heap on every schedule().
 *  - Dispatch is batched per tick: advancing to a new tick pops EVERY
 *    entry for that tick off the binary heap once, in (tick, seq)
 *    order, into a flat FIFO that is drained without re-heapifying.
 *    Same-tick schedules made by running callbacks append to the open
 *    FIFO in O(1) instead of round-tripping through the heap. The FIFO
 *    vector is reused across ticks (pool allocation: capacity is
 *    retained when cleared), so tick turnover allocates nothing.
 *  - Steady-state fast-forward (opt-in, off by default): scheduleFast()
 *    lets a caller sitting in TAIL POSITION of the current event's
 *    callback chain dispatch its child event inline when that child
 *    would provably be the queue's very next dispatch anyway
 *    (canInline()). The simulated clock advances to the child's tick
 *    exactly as refillFifo() would have, so every observable -- trace
 *    ticks, handler order, RNG draw order, final now() -- is
 *    byte-identical to the scheduled path; only the heap round-trip,
 *    the Callback construction, and the runOne() iteration are
 *    skipped. Inlined dispatches count toward dispatched() (they are
 *    real simulation events), and are additionally reported by
 *    inlined(). See DESIGN.md section 2.7 for the invariants.
 */

#ifndef EQUINOX_SIM_EVENT_QUEUE_HH
#define EQUINOX_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace equinox
{
namespace sim
{

/**
 * Move-only type-erased callable with small-buffer optimization.
 *
 * Trivially copyable callables up to kInlineBytes live inline in the
 * entry itself; anything larger (or with a non-trivial destructor)
 * falls back to a single heap allocation. Moves are a memcpy plus
 * nulling the source -- valid for the inline case because the payload
 * is trivially copyable, and for the heap case because only the owning
 * pointer moves.
 */
class Callback
{
  public:
    /**
     * Inline capture budget. 32 bytes fits every closure the blocks
     * schedule today (block pointer + batch pointer + chunk is 24
     * bytes), and keeps a queue Entry (when + seq + callback) at
     * exactly one 64-byte cache line. Larger or non-trivial callables
     * still work through the heap fallback.
     */
    static constexpr std::size_t kInlineBytes = 32;

    Callback() = default;

    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, Callback>>>
    Callback(Fn &&fn) // NOLINT: intentional implicit conversion
    {
        using D = std::decay_t<Fn>;
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<Fn>(fn));
            invoke_ = [](void *p) { (*static_cast<D *>(p))(); };
            destroy_ = nullptr;
        } else {
            // Heap fallback: payloads come from the callback arena's
            // size-class freelists (common/arena.hh), so even oversized
            // captures stop hitting malloc once the pool is warm.
            void *mem =
                common::callbackArenaAlloc(sizeof(D), alignof(D));
            D *heap = ::new (mem) D(std::forward<Fn>(fn));
            std::memcpy(buf_, &heap, sizeof(heap));
            invoke_ = [](void *p) {
                D *f;
                std::memcpy(&f, p, sizeof(f));
                (*f)();
            };
            destroy_ = [](void *p) {
                D *f;
                std::memcpy(&f, p, sizeof(f));
                f->~D();
                common::callbackArenaFree(f, sizeof(D), alignof(D));
            };
        }
    }

    Callback(Callback &&other) noexcept
        : invoke_(other.invoke_), destroy_(other.destroy_)
    {
        std::memcpy(buf_, other.buf_, sizeof(buf_));
        other.invoke_ = nullptr;
        other.destroy_ = nullptr;
    }

    Callback &
    operator=(Callback &&other) noexcept
    {
        if (this != &other) {
            reset();
            invoke_ = other.invoke_;
            destroy_ = other.destroy_;
            std::memcpy(buf_, other.buf_, sizeof(buf_));
            other.invoke_ = nullptr;
            other.destroy_ = nullptr;
        }
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** True when the payload lives inline (no heap allocation). */
    bool inlineStored() const { return invoke_ && !destroy_; }

    void operator()() { invoke_(buf_); }

  private:
    void
    reset()
    {
        if (destroy_)
            destroy_(buf_);
    }

    void (*invoke_)(void *) = nullptr;
    /** Non-null only for heap-allocated payloads. */
    void (*destroy_)(void *) = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/** Tick-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = sim::Callback;

    /** Current simulated tick. */
    Tick now() const { return now_; }

    /**
     * Pre-allocate storage for @p events pending entries so steady
     * growth does not reallocate mid-run (the accelerator reserves its
     * expected high-water mark up front).
     */
    void
    reserve(std::size_t events)
    {
        heap_.reserve(events);
    }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /**
     * Enable (or disable) steady-state fast-forward. @p limit is the
     * last tick scheduleFast() may inline at: events landing past it
     * are scheduled for real, reproducing the run loop's exactly-one-
     * event overshoot semantics at the horizon. The accelerator turns
     * this on per run (RunSpec::fast_forward, EQX_FASTFORWARD=0 to
     * veto); the queue default is off so the raw contract tests see
     * the scheduled path.
     */
    void
    setFastForward(bool on, Tick limit)
    {
        ff_on_ = on;
        ff_limit_ = limit;
    }

    bool fastForward() const { return ff_on_; }

    /** Dispatches inlined by fast-forward (subset of dispatched()). */
    std::uint64_t inlined() const { return inlined_; }

    /**
     * True when an event at @p when could dispatch inline right now:
     * fast-forward is on, recursion has headroom, the open tick's FIFO
     * is fully drained, every heap entry lands STRICTLY later than
     * @p when (a same-tick heap entry has a smaller seq and must run
     * first), and @p when is inside [now, ff_limit]. Under these
     * conditions the event is the queue's next dispatch, so running it
     * immediately is observationally identical to scheduling it.
     */
    bool
    canInline(Tick when) const
    {
        return ff_on_ && ff_depth_ < kMaxInlineDepth &&
               fifo_head_ >= fifo_.size() && when >= now_ &&
               when <= ff_limit_ &&
               (heap_.empty() || heap_.front().when > when);
    }

    /**
     * Schedule @p fn at @p when, dispatching it inline when canInline()
     * holds. ONLY valid from tail position of the running callback: no
     * code that could observe the old now(), schedule into it, or
     * mutate simulation state may run after this call returns up the
     * current dispatch chain. The inline path advances now() exactly
     * as refillFifo() would and invokes @p fn directly -- no Callback
     * is materialized and the heap is never touched.
     */
    template <typename Fn>
    void
    scheduleFast(Tick when, Fn &&fn)
    {
        if (canInline(when)) {
            now_ = when;
            tick_open_ = true;
            fifo_.clear();
            fifo_head_ = 0;
            ++dispatched_;
            ++inlined_;
            ++ff_depth_;
            fn();
            --ff_depth_;
            return;
        }
        schedule(when, Callback(std::forward<Fn>(fn)));
    }

    /** scheduleFast() @p delta ticks from now. */
    template <typename Fn>
    void
    scheduleFastIn(Tick delta, Fn &&fn)
    {
        scheduleFast(now_ + delta, std::forward<Fn>(fn));
    }

    /** Dispatch the earliest event. @return false when empty. */
    bool runOne();

    /** Run until the queue drains or now() would exceed @p limit. */
    void runUntil(Tick limit);

    bool
    empty() const
    {
        return heap_.empty() && fifo_head_ >= fifo_.size();
    }

    std::size_t
    pending() const
    {
        return heap_.size() + (fifo_.size() - fifo_head_);
    }

    /** Events dispatched so far (for perf diagnostics). */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Most entries ever simultaneously pending. Consumers capture this
     * after a representative run to size reserve() for the next one.
     */
    std::size_t highWater() const { return high_water_; }

    /** Heap-vector reallocations since construction (reserve audit). */
    std::uint64_t heapReallocations() const { return heap_reallocs_; }

  private:
    struct Entry
    {
        Tick when;
        /**
         * Global insertion counter breaking same-tick ties: the heap's
         * comparator alone would dispatch equal ticks in an arbitrary
         * (heap-shape-dependent) order, which would make runs depend on
         * scheduling history rather than program order.
         */
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq; // same tick: FIFO by insertion
        }
    };

    /** Pop every heap entry for the earliest tick into the FIFO. */
    bool refillFifo();

    void
    noteHighWater()
    {
        std::size_t p = pending();
        if (p > high_water_)
            high_water_ = p;
    }

    /**
     * Future ticks: explicit binary heap (std::push_heap/std::pop_heap
     * over a vector) rather than std::priority_queue: the vector
     * exposes reserve() and lets dispatch move entries out instead of
     * copy-under-const_cast. (when, seq) is a strict total order, so
     * the dispatch sequence is the comparator's alone -- independent of
     * internal heap shape -- and the golden identity digests are
     * unaffected by this representation.
     *
     * Invariant: while a tick is open (tick_open_), the heap holds no
     * entry with when == now_ -- refillFifo() drained them all, and
     * schedule() routes new ones to the FIFO. Because seq is globally
     * monotonic, FIFO append order equals seq order, so draining the
     * FIFO front-to-back IS (tick, seq) dispatch order.
     */
    std::vector<Entry> heap_;
    /** The open tick's events, drained front-to-back without popping. */
    std::vector<Entry> fifo_;
    std::size_t fifo_head_ = 0;
    bool tick_open_ = false;
    Tick now_ = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t high_water_ = 0;
    std::uint64_t heap_reallocs_ = 0;

    /**
     * Inline-dispatch recursion cap: each inlined event adds a handful
     * of stack frames (completion -> dispatcher round -> issue ->
     * scheduleFast), so the cap bounds stack growth; hitting it falls
     * back to a real scheduled event, which unwinds the whole chain to
     * runOne() before dispatching.
     */
    static constexpr std::uint32_t kMaxInlineDepth = 64;
    bool ff_on_ = false;
    Tick ff_limit_ = 0;
    std::uint32_t ff_depth_ = 0;
    std::uint64_t inlined_ = 0;
};

/**
 * Process-wide total of events dispatched by completed simulation runs
 * (accumulated once per Accelerator::run; thread-safe). The bench perf
 * harness reports it as a wall-clock-independent work measure.
 *
 * Aggregation contract: the counter only ever grows within a process;
 * consumers that want per-phase numbers snapshot it and subtract (the
 * bench Harness does exactly that), or call resetGlobalSimCounters()
 * between phases when no simulation is running concurrently. Per-run
 * counts are reported directly in SimResult::events_dispatched, so
 * back-to-back runs never need the global counter at all.
 */
std::uint64_t globalDispatchedEvents();

/** Add @p n to the process-wide dispatched-event total. */
void addGlobalDispatchedEvents(std::uint64_t n);

/**
 * Zero the process-wide dispatched-event and traceRecordsDelivered()
 * counters. Only meaningful while no simulation runs concurrently
 * (counters are relaxed atomics; a racing run's increments land on
 * whichever side of the reset they land).
 */
void resetGlobalSimCounters();

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_EVENT_QUEUE_HH

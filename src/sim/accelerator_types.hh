/**
 * @file
 * Plain data types of the accelerator's public interface: service
 * descriptors ready for installation, the per-run RunSpec, and the
 * SimResult a run reports. Split out of accelerator.hh so the
 * simulation blocks under sim/blocks/ can name them without pulling in
 * the composition root.
 */

#ifndef EQUINOX_SIM_ACCELERATOR_TYPES_HH
#define EQUINOX_SIM_ACCELERATOR_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "isa/program.hh"
#include "mem/mem_stats.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/fault_stats.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace sim
{

/** An inference service ready for installation. */
struct InferenceServiceDesc
{
    std::string model_name;
    /** Program compiled for a full batch of program.batch_rows requests. */
    isa::CompiledProgram program;
    /** Weight-buffer footprint (install-time space sharing). */
    ByteCount weight_footprint = 0;
    /** Activation-buffer footprint. */
    ByteCount act_footprint = 0;
    /** Per-request input / output bytes over the host interface. */
    ByteCount input_bytes_per_request = 0;
    ByteCount output_bytes_per_request = 0;
    /** Analytic single-batch service time (sets the adaptive timeout). */
    double service_time_s = 0.0;
};

/** A training service (one SGD iteration loop) ready for installation. */
struct TrainingServiceDesc
{
    std::string model_name;
    /** One iteration; steps carry DRAM stream/store bytes. */
    isa::CompiledProgram iteration;
    /** Parameter-server bytes exchanged per iteration (host link). */
    ByteCount sync_bytes_per_iteration = 0;
    /**
     * Bytes one training-weight checkpoint writes to (and a rollback
     * re-reads from) DRAM: the master-precision weights. 0 makes
     * checkpoints and restores free of DRAM cost but they still commit.
     */
    ByteCount checkpoint_bytes = 0;
};

/** Shape of the inference request arrival process. */
enum class ArrivalProcess
{
    Poisson, //!< memoryless arrivals (the paper's load generator)
    Bursty,  //!< on/off-modulated Poisson with the same mean rate
};

/** Parameters of one simulation run. */
struct RunSpec
{
    /** Poisson arrival rate of inference requests (0 = training only). */
    double arrival_rate_per_s = 0.0;
    /**
     * Per-service arrival rates (install order); when non-empty this
     * overrides arrival_rate_per_s and drives multiple inference
     * contexts concurrently.
     */
    std::vector<double> arrival_rates;
    ArrivalProcess arrival_process = ArrivalProcess::Poisson;
    /** Bursty mode: peak rate = burst_factor x mean (duty 1/factor). */
    double burst_factor = 4.0;
    /** Bursty mode: on/off modulation period in seconds. */
    double burst_period_s = 2e-3;
    /**
     * Explicit arrival trace for service 0 (seconds, ascending); when
     * non-empty it replaces the stochastic arrival process entirely
     * and the run ends when the trace drains.
     */
    std::vector<double> arrival_trace_s;
    /**
     * Explicit arrival-candidate trace for service 0 in clock cycles
     * (ascending); when non-empty it replaces service 0's stochastic
     * inter-arrival draws but keeps everything else -- chained
     * scheduling, bursty thinning, shedding -- so a run fed the exact
     * candidate ticks a stochastic run would have drawn is
     * byte-identical to it. This is the cluster router's feed: the
     * router splits one global arrival stream into per-replica traces.
     * Unlike arrival_trace_s (scheduled up front, thinning skipped),
     * entries here are candidates, not admissions.
     */
    std::vector<Tick> arrival_trace_ticks;
    /** Requests completed before measurement starts. */
    std::uint64_t warmup_requests = 200;
    /** Minimum simulated warmup time (both conditions must hold). */
    double warmup_s = 0.0;
    /** Requests measured before the run stops. */
    std::uint64_t measure_requests = 2000;
    /** Minimum measured simulated time (both conditions must hold). */
    double min_measure_s = 0.0;
    /** Training iterations measured when no inference load is offered. */
    std::uint64_t measure_iterations = 20;
    /** Hard wall on simulated time. */
    double max_sim_s = 20.0;
    std::uint64_t seed = 1;
    /**
     * Steady-state fast-forward: dispatch analytically-next events
     * inline instead of round-tripping them through the event heap.
     * Byte-identical to the cycle-accurate path by construction (see
     * EventQueue::scheduleFast and DESIGN.md section 2.7); on by
     * default. The EQX_FASTFORWARD=0 environment escape hatch vetoes
     * it process-wide regardless of this flag; the check-exact mode
     * (bench --check-exact / EQX_CHECK_EXACT=1) co-simulates both
     * paths and fails fatally on any digest divergence.
     */
    bool fast_forward = true;
    /**
     * Faults to inject and recovery policies to answer them with. The
     * default plan injects nothing and the fault layer is skipped
     * entirely (fault-free runs stay byte-identical).
     */
    fault::FaultPlan faults;
};

/** Everything a run reports. */
struct SimResult
{
    double sim_seconds = 0.0;
    std::uint64_t completed_requests = 0;
    double offered_rate_per_s = 0.0;

    // Throughput in ops/s on real (non-padded) data.
    double inference_throughput_ops = 0.0;
    double training_throughput_ops = 0.0;

    // Per-request latency (seconds), measured window only.
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double max_latency_s = 0.0;

    /** Mean batch processing time excluding queuing/formation. */
    double mean_service_s = 0.0;

    stats::CycleBreakdown mmu_breakdown;

    std::uint64_t batches_formed = 0;
    std::uint64_t batches_incomplete = 0;
    double avg_batch_fill = 0.0;

    double dram_utilization = 0.0;
    ByteCount dram_train_bytes = 0;
    ByteCount host_bytes = 0;
    std::uint64_t training_iterations = 0;

    /** MMU cycles with an instruction in the array (measured window). */
    double mmu_busy_cycles = 0.0;
    /** SIMD-unit busy cycles (measured window). */
    double simd_busy_cycles = 0.0;

    /** Per-inference-service latency summary (install order). */
    struct ServiceStats
    {
        ContextId ctx = 0;
        std::string model_name;
        std::uint64_t completed = 0;
        double mean_latency_s = 0.0;
        double p99_latency_s = 0.0;
    };
    std::vector<ServiceStats> per_service;

    // -- fault and recovery reporting ---------------------------------
    /** Fault counters and recovery actions (all zero when fault-free). */
    stats::FaultStats faults;
    /** Serving fraction of the measured window (1.0 when fault-free). */
    double availability = 1.0;
    /** Training iterations durably committed (checkpointed or final). */
    std::uint64_t committed_training_iterations = 0;
    /** Every injected fault, in injection order (determinism checks). */
    std::vector<fault::FaultRecord> fault_trace;

    // -- run-total conservation counters (whole run, not just the
    // -- measured window; the cluster property tests check that
    // -- admitted == retired + inflight at the horizon) ----------------
    /** Requests admitted past shedding into pending queues (run total). */
    std::uint64_t admitted_requests = 0;
    /** Requests whose batches completed the datapath (run total). */
    std::uint64_t retired_requests = 0;
    /** Requests still pending or in unfinished batches at the horizon. */
    std::uint64_t inflight_requests = 0;

    /**
     * Raw measured-window per-request latencies in cycles. Carried so a
     * cluster merge can compute exact percentiles over the concatenated
     * per-replica samples instead of approximating from the derived
     * quantiles above.
     */
    stats::LatencyTracker latency_cycles;

    // -- simulator execution diagnostics (NOT part of the result
    // -- digest: they describe how the simulator ran, not what the
    // -- simulated machine did; events_inlined legitimately differs
    // -- between fast-forwarded and cycle-accurate runs) ---------------
    /** Events this run dispatched (incl. inlined fast-forward ones). */
    std::uint64_t events_dispatched = 0;
    /** Dispatches the fast-forward engine inlined (0 when disabled). */
    std::uint64_t events_inlined = 0;
    /**
     * Memory-hierarchy counters (all-zero, active=false with the
     * default passthrough hierarchy). Diagnostics like the two fields
     * above: the digest fold must never include them, so that a
     * passthrough run stays byte-identical to the pre-hierarchy
     * simulator and non-trivial hierarchies keep digest comparability
     * across jobs=1/jobs=N and FF-on/off.
     */
    mem::MemStats mem;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_ACCELERATOR_TYPES_HH

/**
 * @file
 * The Equinox accelerator: the cycle-accurate top level tying together the
 * front-end (request dispatcher with hardware contexts, batch formation,
 * instruction dispatcher with the priority scheduler), the MMU and SIMD
 * datapath timing, the on-chip buffers, and the DRAM/host interfaces
 * (Figures 3 and 5 of the paper).
 *
 * The simulator executes compiled programs (isa::CompiledProgram) under a
 * Poisson inference load while an optional training service consumes idle
 * MMU cycles, and reports latency distributions, throughput, and the MMU
 * cycle breakdown of Figure 8.
 */

#ifndef EQUINOX_SIM_ACCELERATOR_HH
#define EQUINOX_SIM_ACCELERATOR_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "isa/program.hh"
#include "sim/buffer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/fault_stats.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace sim
{

/** An inference service ready for installation. */
struct InferenceServiceDesc
{
    std::string model_name;
    /** Program compiled for a full batch of program.batch_rows requests. */
    isa::CompiledProgram program;
    /** Weight-buffer footprint (install-time space sharing). */
    ByteCount weight_footprint = 0;
    /** Activation-buffer footprint. */
    ByteCount act_footprint = 0;
    /** Per-request input / output bytes over the host interface. */
    ByteCount input_bytes_per_request = 0;
    ByteCount output_bytes_per_request = 0;
    /** Analytic single-batch service time (sets the adaptive timeout). */
    double service_time_s = 0.0;
};

/** A training service (one SGD iteration loop) ready for installation. */
struct TrainingServiceDesc
{
    std::string model_name;
    /** One iteration; steps carry DRAM stream/store bytes. */
    isa::CompiledProgram iteration;
    /** Parameter-server bytes exchanged per iteration (host link). */
    ByteCount sync_bytes_per_iteration = 0;
    /**
     * Bytes one training-weight checkpoint writes to (and a rollback
     * re-reads from) DRAM: the master-precision weights. 0 makes
     * checkpoints and restores free of DRAM cost but they still commit.
     */
    ByteCount checkpoint_bytes = 0;
};

/** Shape of the inference request arrival process. */
enum class ArrivalProcess
{
    Poisson, //!< memoryless arrivals (the paper's load generator)
    Bursty,  //!< on/off-modulated Poisson with the same mean rate
};

/** Parameters of one simulation run. */
struct RunSpec
{
    /** Poisson arrival rate of inference requests (0 = training only). */
    double arrival_rate_per_s = 0.0;
    /**
     * Per-service arrival rates (install order); when non-empty this
     * overrides arrival_rate_per_s and drives multiple inference
     * contexts concurrently.
     */
    std::vector<double> arrival_rates;
    ArrivalProcess arrival_process = ArrivalProcess::Poisson;
    /** Bursty mode: peak rate = burst_factor x mean (duty 1/factor). */
    double burst_factor = 4.0;
    /** Bursty mode: on/off modulation period in seconds. */
    double burst_period_s = 2e-3;
    /**
     * Explicit arrival trace for service 0 (seconds, ascending); when
     * non-empty it replaces the stochastic arrival process entirely
     * and the run ends when the trace drains.
     */
    std::vector<double> arrival_trace_s;
    /** Requests completed before measurement starts. */
    std::uint64_t warmup_requests = 200;
    /** Minimum simulated warmup time (both conditions must hold). */
    double warmup_s = 0.0;
    /** Requests measured before the run stops. */
    std::uint64_t measure_requests = 2000;
    /** Minimum measured simulated time (both conditions must hold). */
    double min_measure_s = 0.0;
    /** Training iterations measured when no inference load is offered. */
    std::uint64_t measure_iterations = 20;
    /** Hard wall on simulated time. */
    double max_sim_s = 20.0;
    std::uint64_t seed = 1;
    /**
     * Faults to inject and recovery policies to answer them with. The
     * default plan injects nothing and the fault layer is skipped
     * entirely (fault-free runs stay byte-identical).
     */
    fault::FaultPlan faults;
};

/** Everything a run reports. */
struct SimResult
{
    double sim_seconds = 0.0;
    std::uint64_t completed_requests = 0;
    double offered_rate_per_s = 0.0;

    // Throughput in ops/s on real (non-padded) data.
    double inference_throughput_ops = 0.0;
    double training_throughput_ops = 0.0;

    // Per-request latency (seconds), measured window only.
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double max_latency_s = 0.0;

    /** Mean batch processing time excluding queuing/formation. */
    double mean_service_s = 0.0;

    stats::CycleBreakdown mmu_breakdown;

    std::uint64_t batches_formed = 0;
    std::uint64_t batches_incomplete = 0;
    double avg_batch_fill = 0.0;

    double dram_utilization = 0.0;
    ByteCount dram_train_bytes = 0;
    ByteCount host_bytes = 0;
    std::uint64_t training_iterations = 0;

    /** MMU cycles with an instruction in the array (measured window). */
    double mmu_busy_cycles = 0.0;
    /** SIMD-unit busy cycles (measured window). */
    double simd_busy_cycles = 0.0;

    /** Per-inference-service latency summary (install order). */
    struct ServiceStats
    {
        ContextId ctx = 0;
        std::string model_name;
        std::uint64_t completed = 0;
        double mean_latency_s = 0.0;
        double p99_latency_s = 0.0;
    };
    std::vector<ServiceStats> per_service;

    // -- fault and recovery reporting ---------------------------------
    /** Fault counters and recovery actions (all zero when fault-free). */
    stats::FaultStats faults;
    /** Serving fraction of the measured window (1.0 when fault-free). */
    double availability = 1.0;
    /** Training iterations durably committed (checkpointed or final). */
    std::uint64_t committed_training_iterations = 0;
    /** Every injected fault, in injection order (determinism checks). */
    std::vector<fault::FaultRecord> fault_trace;
};

/** The simulated accelerator. */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig config);
    ~Accelerator();

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    /**
     * Install an inference service (copies weights/instructions into the
     * buffers, allocates context space). Fatal when the footprint does
     * not fit the buffers.
     * @return the service's hardware-context id.
     */
    ContextId installInference(InferenceServiceDesc desc);

    /** Install the (single) training service. */
    ContextId installTraining(TrainingServiceDesc desc);

    /** Run one experiment; resets all dynamic state first. */
    SimResult run(const RunSpec &spec);

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Analytic saturation inference throughput of installed service
     * @p ctx (ops/s on real data): peak rate times the program's
     * geometry efficiency. Used to convert "load" into arrival rates.
     */
    double maxInferenceOpRate(ContextId ctx = 0) const;

    /** Requests per second at saturation for service @p ctx. */
    double maxRequestRate(ContextId ctx = 0) const;

  private:
    struct InfService;
    struct InfBatch;
    struct TrainState;

    // -- front-end: request dispatcher --------------------------------
    void onRequestArrival(std::size_t svc_idx);
    void scheduleNextArrival(std::size_t svc_idx);
    bool inBurstOnPhase() const;
    void formFullBatches(InfService &svc);
    void formPartialBatch(InfService &svc);
    void armBatchTimeout(InfService &svc);
    void onBatchTimeout(InfService *svc);
    std::uint64_t pendingInferenceWork() const;

    // -- instruction dispatcher / scheduler ----------------------------
    void tryDispatch();
    InfBatch *firstReadyBatch();
    bool trainingReady() const;
    bool spikeDetected() const;
    bool inferenceQueueLow() const;
    void issueInferenceChunk(InfBatch *batch);
    void completeInferenceChunk(InfBatch *batch, Tick chunk);
    void issueTrainingChunk();
    void completeTrainingChunk(Tick chunk, double charged_bytes);
    void advanceTrainingStep();

    // -- training prefetcher -------------------------------------------
    void prefetchPump();
    ByteCount remainingPrefetchBytes() const;

    // -- fault injection and recovery -----------------------------------
    /**
     * Host-interface transfer with fault-aware retry: on drop or
     * corruption, retries with exponential backoff and jitter until
     * success, the retry budget, or the per-request deadline. With no
     * injector this is exactly host->transfer().
     * @param ok when non-null, set false if the payload was lost for good
     * @return the delivery tick of the last (successful or final) attempt
     */
    Tick hostTransfer(Tick start, ByteCount bytes, dram::Priority prio,
                      bool *ok = nullptr);
    void onMmuHang();
    void onWatchdogFire();
    void finishReset(Tick hang_start);
    void clearTransientHang(Tick hang_start);
    void accountDowntime(Tick from, Tick upto);
    /** Roll training back to the last committed checkpoint and replay. */
    void trainingRollback();
    void maybeWriteCheckpoint();
    /**
     * Feed faults newly counted in fstats (by the link hooks or the
     * hang machinery) to the storm detector, one event per fault.
     */
    void syncFaults();
    /** Register one fault occurrence with the storm detector. */
    void noteFault();
    void stormCheck();

    // -- accounting -----------------------------------------------------
    void accountGap(Tick upto);
    void chargeMmu(const isa::TileWork &tw, Tick cycles, double real_frac);
    void maybeFinishWarmup();
    void resetMeasurement();

    AcceleratorConfig cfg;
    EventQueue events;

    // buffers
    SramBuffer act_buffer;
    SramBuffer weight_buffer;
    SramBuffer instr_buffer;
    SramBuffer simd_rf;

    // interfaces (rebuilt per run)
    std::unique_ptr<dram::HbmModel> hbm;
    std::unique_ptr<dram::HostLink> host;

    std::vector<std::unique_ptr<InfService>> services;
    std::unique_ptr<TrainState> train;

    // datapath state
    bool mmu_busy = false;
    Tick mmu_last_release = 0;
    bool inf_waiting_at_release = false;
    Tick simd_free = 0;
    bool prefer_training = false; // round-robin alternation
    ContextId last_served_ctx = 0; // cross-context round-robin
    Tick next_sw_decision = 0;    // software-scheduler turnaround gate
    bool sw_exclusive_training = false;

    std::deque<InfBatch *> batch_queue;
    std::vector<std::unique_ptr<InfBatch>> batch_pool;

    // run state
    RunSpec spec;
    bool inference_load = false; //!< any service has a nonzero rate
    bool stopping = false;
    bool measuring = false;
    Tick measure_start = 0;
    std::uint64_t completed_total = 0;
    std::uint64_t completed_measured = 0;

    // measured-window statistics
    stats::CycleBreakdown breakdown;
    stats::LatencyTracker latency_cycles;
    stats::LatencyTracker service_cycles;
    double inf_useful_ops = 0.0;
    double train_useful_ops = 0.0;
    double mmu_busy_measured = 0.0;
    double simd_busy_measured = 0.0;
    std::uint64_t batches_formed = 0;
    std::uint64_t batches_incomplete = 0;
    double batch_fill_sum = 0.0;
    std::uint64_t train_iterations_measured = 0;
    ByteCount host_bytes_measured = 0;
    ByteCount dram_lp_snapshot = 0;

    // fault-injection state (null/inactive on fault-free runs)
    std::unique_ptr<fault::FaultInjector> injector;
    stats::FaultStats fstats;
    bool mmu_hung = false;
    Tick hang_started_at = 0;
    bool storm_active = false;     //!< degradation: training shed
    bool shed_inference = false;   //!< degradation: requests shed too
    bool storm_check_armed = false;
    std::uint64_t faults_seen = 0; //!< fstats faults already storm-fed
    std::deque<Tick> recent_faults;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_ACCELERATOR_HH

/**
 * @file
 * The Equinox accelerator: the composition root of the block/port
 * simulation architecture (Figures 3 and 5 of the paper).
 *
 * The cycle-accurate machinery lives in the blocks under sim/blocks/:
 * the RequestDispatcher (arrivals + batch formation), the
 * InstructionDispatcher (the Figure 5 scheduler with its pluggable
 * SchedulingPolicy), the Datapath (MMU/SIMD timing and the Figure 8
 * accounting), the TrainPrefetcher (operand staging), and the FaultUnit
 * (injection + recovery). This class owns the SimContext they share,
 * wires their ports, drives the run loop, and assembles the SimResult.
 *
 * The simulator executes compiled programs (isa::CompiledProgram) under a
 * Poisson inference load while an optional training service consumes idle
 * MMU cycles, and reports latency distributions, throughput, and the MMU
 * cycle breakdown of Figure 8.
 */

#ifndef EQUINOX_SIM_ACCELERATOR_HH
#define EQUINOX_SIM_ACCELERATOR_HH

#include <memory>

#include "common/types.hh"
#include "sim/accelerator_types.hh"
#include "sim/blocks/context.hh"
#include "sim/buffer.hh"
#include "sim/config.hh"

namespace equinox
{
namespace stats
{
class StatRegistry;
}

namespace sim
{

class Datapath;
class FaultUnit;
class InstructionDispatcher;
class RequestDispatcher;
class TraceSink;
class TrainPrefetcher;

/**
 * Check-exact mode: every fast-forwarded Accelerator::run() first
 * co-simulates the cycle-accurate path (tracing off, global counters
 * untouched) and fails fatally unless the two runs' result digests are
 * bit-identical. Initialised from the EQX_CHECK_EXACT environment
 * variable; the bench harness's --check-exact flag turns it on too.
 */
void setCheckExactMode(bool on);
bool checkExactMode();

/** The simulated accelerator (composition root of the blocks). */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig config);
    ~Accelerator();

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    /**
     * Install an inference service (copies weights/instructions into the
     * buffers, allocates context space). Fatal when the footprint does
     * not fit the buffers.
     * @return the service's hardware-context id.
     */
    ContextId installInference(InferenceServiceDesc desc);

    /** Install the (single) training service. */
    ContextId installTraining(TrainingServiceDesc desc);

    /**
     * Run one experiment; resets all dynamic state first. With
     * spec.fast_forward (the default, unless EQX_FASTFORWARD=0 vetoes
     * it) the event kernel dispatches analytically-next events inline
     * -- byte-identical results, fewer heap round-trips. Under
     * check-exact mode (see setCheckExactMode) the run is co-simulated
     * cycle-accurately first and any digest divergence is fatal.
     */
    SimResult run(const RunSpec &spec);

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Analytic saturation inference throughput of installed service
     * @p ctx (ops/s on real data): peak rate times the program's
     * geometry efficiency. Used to convert "load" into arrival rates.
     */
    double maxInferenceOpRate(ContextId ctx = 0) const;

    /** Requests per second at saturation for service @p ctx. */
    double maxRequestRate(ContextId ctx = 0) const;

    /**
     * Install (or remove, with nullptr) a trace sink observing block
     * events. Observation only: tracing never perturbs simulated
     * behaviour. The sink must outlive the runs it observes.
     */
    void setTraceSink(TraceSink *sink);

    /** Register every block's counters/gauges ("<block>.<stat>"). */
    void registerStats(stats::StatRegistry &reg);

  private:
    /** One full reset-and-run; run() wraps it with the FF/check-exact
     * policy. @p count_global gates the process-wide dispatched-event
     * tally (the check-exact reference run must not inflate it). */
    SimResult runOnce(const RunSpec &spec, bool use_ff,
                      bool count_global);

    AcceleratorConfig cfg;

    /**
     * Event-heap reserve carried across runs: seeded with a floor that
     * covers a cold start, then raised to the worst highWater() any
     * previous run on this accelerator observed, so sweeps over many
     * load points stop reallocating after the first run.
     */
    std::size_t event_reserve_ = 1024;

    // on-chip buffers (install-time space sharing)
    SramBuffer act_buffer;
    SramBuffer weight_buffer;
    SramBuffer instr_buffer;
    SramBuffer simd_rf;

    /** The shared core every block is wired to (after cfg/buffers). */
    SimContext ctx;

    // the blocks (composition order; see the constructor's wiring)
    std::unique_ptr<RequestDispatcher> requests;
    std::unique_ptr<InstructionDispatcher> dispatcher;
    std::unique_ptr<Datapath> datapath;
    std::unique_ptr<TrainPrefetcher> prefetcher;
    std::unique_ptr<FaultUnit> faults;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_ACCELERATOR_HH

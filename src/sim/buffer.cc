#include "sim/buffer.hh"

#include "common/logging.hh"

namespace equinox
{
namespace sim
{

SramBuffer::SramBuffer(std::string buffer_name, ByteCount capacity,
                       unsigned banks, unsigned read_ports,
                       unsigned write_ports)
    : name_(std::move(buffer_name)),
      capacity_(capacity),
      banks_(banks),
      read_ports_(read_ports),
      write_ports_(write_ports)
{
    EQX_ASSERT(banks_ > 0, "buffer ", name_, " needs at least one bank");
    EQX_ASSERT(read_ports_ > 0, "buffer ", name_, " needs a read port");
}

bool
SramBuffer::allocate(ContextId ctx, ByteCount bytes)
{
    EQX_ASSERT(!allocations.count(ctx),
               "context ", ctx, " already holds space in ", name_);
    if (bytes > available())
        return false;
    allocations[ctx] = bytes;
    allocated_ += bytes;
    return true;
}

void
SramBuffer::release(ContextId ctx)
{
    auto it = allocations.find(ctx);
    if (it == allocations.end())
        return;
    allocated_ -= it->second;
    allocations.erase(it);
}

ByteCount
SramBuffer::allocationOf(ContextId ctx) const
{
    auto it = allocations.find(ctx);
    return it == allocations.end() ? 0 : it->second;
}

Tick
SramBuffer::contentionCycles(unsigned reads, unsigned writes,
                             Tick overlap_cycles) const
{
    // Each bank serves read_ports_ reads and write_ports_ writes per
    // cycle; concurrent streams beyond that serialise, stretching the
    // overlap window proportionally.
    double read_factor =
        reads > read_ports_
            ? static_cast<double>(reads) / read_ports_
            : 1.0;
    double write_factor =
        (write_ports_ > 0 && writes > write_ports_)
            ? static_cast<double>(writes) / write_ports_
            : 1.0;
    double stretch = std::max(read_factor, write_factor) - 1.0;
    return static_cast<Tick>(stretch * static_cast<double>(overlap_cycles));
}

} // namespace sim
} // namespace equinox

#include "sim/accelerator.hh"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/logging.hh"
#include "common/units.hh"
#include "sim/blocks/datapath.hh"
#include "sim/blocks/fault_unit.hh"
#include "sim/blocks/instruction_dispatcher.hh"
#include "sim/blocks/request_dispatcher.hh"
#include "sim/blocks/train_prefetcher.hh"
#include "sim/result_digest.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace sim
{

namespace
{

/**
 * EQX_FASTFORWARD=0 vetoes inline fast-forward process-wide (the
 * escape hatch for bisecting a suspected FF divergence without a
 * rebuild). Read once: flipping the variable mid-process would make
 * back-to-back runs incomparable.
 */
bool
fastForwardEnvEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("EQX_FASTFORWARD");
        return !(v && std::string_view(v) == "0");
    }();
    return enabled;
}

bool
checkExactEnvDefault()
{
    const char *v = std::getenv("EQX_CHECK_EXACT");
    return v && *v && std::string_view(v) != "0";
}

bool g_check_exact = checkExactEnvDefault();

} // namespace

void
setCheckExactMode(bool on)
{
    g_check_exact = on;
}

bool
checkExactMode()
{
    return g_check_exact;
}

Accelerator::Accelerator(AcceleratorConfig config)
    : cfg(std::move(config)),
      act_buffer("activation", cfg.act_buffer_bytes, 16, 1, 2),
      weight_buffer("weight", cfg.weight_buffer_bytes, cfg.m, 1, 1),
      instr_buffer("instruction", cfg.instr_buffer_bytes, 1, 1, 1),
      simd_rf("simd-rf", cfg.simd_rf_bytes, 4, 2, 2),
      ctx(cfg)
{
    // Bad geometry/clock here is user configuration, not a simulator
    // bug: report every problem with an actionable message and exit.
    auto errors = cfg.validate();
    if (!errors.empty()) {
        EQX_FATAL("invalid accelerator configuration '", cfg.name,
                  "':\n", formatConfigErrors(errors));
    }

    // Build the blocks, then wire their control ports. Data flows
    // through the SimContext (services, train state, the BatchQueue
    // port); control flows through these explicit connections.
    requests = std::make_unique<RequestDispatcher>(ctx);
    dispatcher = std::make_unique<InstructionDispatcher>(ctx);
    datapath = std::make_unique<Datapath>(ctx);
    prefetcher = std::make_unique<TrainPrefetcher>(ctx);
    faults = std::make_unique<FaultUnit>(ctx);

    requests->connect(dispatcher.get(), faults.get());
    dispatcher->connect(datapath.get(), requests.get(), faults.get());
    datapath->connect(dispatcher.get(), prefetcher.get(), faults.get());
    prefetcher->connect(dispatcher.get(), faults.get());
    faults->connect(dispatcher.get(), prefetcher.get());

    ctx.blocks = {requests.get(), dispatcher.get(), datapath.get(),
                  prefetcher.get(), faults.get()};
}

Accelerator::~Accelerator() = default;

void
Accelerator::setTraceSink(TraceSink *sink)
{
    ctx.trace = sink;
}

void
Accelerator::registerStats(stats::StatRegistry &reg)
{
    for (auto *b : ctx.blocks)
        b->registerStats(reg);
    // Batch-arena gauges are per-accelerator (deterministic for a given
    // run sequence). The callback arena's counters are process-global
    // and deliberately NOT registered here: they differ between
    // fast-forwarded and cycle-accurate runs sharing a process, which
    // would break the FF-vs-CA MetricsSnapshot identity the fastpath
    // tests assert.
    reg.registerStat("arena.batch_objects",
                     [this] {
                         return static_cast<double>(
                             ctx.batch_arena.totalObjects());
                     },
                     "InfBatch objects ever constructed (pool lifetime)");
    reg.registerStat("arena.batch_acquires",
                     [this] {
                         return static_cast<double>(
                             ctx.batch_arena.acquires());
                     },
                     "batch-arena acquires (pool lifetime)");
    reg.registerStat("arena.batch_reuses",
                     [this] {
                         return static_cast<double>(
                             ctx.batch_arena.reuses());
                     },
                     "acquires served from the freelist (pool lifetime)");
    reg.registerStat("arena.batch_high_water",
                     [this] {
                         return static_cast<double>(
                             ctx.batch_arena.highWater());
                     },
                     "most batches simultaneously live (pool lifetime)");

    // Memory-hierarchy gauges exist only for non-trivial hierarchies:
    // the passthrough configuration registers nothing, so the
    // MetricsSnapshot schema (and every digest/identity test built on
    // it) is unchanged unless a component is explicitly enabled.
    if (!cfg.mem.passthrough()) {
        auto mem_gauge = [this](auto field) {
            return [this, field]() -> double {
                return ctx.mem ? static_cast<double>(
                                     field(ctx.mem->stats()))
                               : 0.0;
            };
        };
        reg.registerStat("mem.llc_hits",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.llc_hits;
                         }),
                         "LLC demand hits (run total)");
        reg.registerStat("mem.llc_misses",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.llc_misses;
                         }),
                         "LLC demand misses (run total)");
        reg.registerStat("mem.llc_evictions",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.llc_evictions;
                         }),
                         "LLC lines evicted (run total)");
        reg.registerStat("mem.hit_rate",
                         [this] {
                             return ctx.mem ? ctx.mem->stats().hitRate()
                                            : 0.0;
                         },
                         "LLC demand hit rate (run total)");
        reg.registerStat("mem.prefetch_issued",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.prefetch_issued;
                         }),
                         "prefetch fills issued to DRAM (run total)");
        reg.registerStat("mem.prefetch_useful",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.prefetch_useful;
                         }),
                         "prefetched lines hit by demand (run total)");
        reg.registerStat("mem.prefetch_accuracy",
                         [this] {
                             return ctx.mem
                                        ? ctx.mem->stats()
                                              .prefetchAccuracy()
                                        : 0.0;
                         },
                         "useful / issued prefetches (run total)");
        reg.registerStat("mem.sp_fill_stalls",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.sp_fill_stalls;
                         }),
                         "scratchpad fills stalled on ping-pong "
                         "headroom (run total)");
        reg.registerStat("mem.sp_bank_switches",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.sp_bank_switches;
                         }),
                         "scratchpad fill-bank rotations (run total)");
        reg.registerStat("mem.sp_occupancy_high_water",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.sp_high_water;
                         }),
                         "most scratchpad bytes simultaneously live");
        reg.registerStat("mem.wb_combines",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.wb_combines;
                         }),
                         "stores merged into open combining entries");
        reg.registerStat("mem.wb_occupancy",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.wb_occupancy;
                         }),
                         "bytes parked in the write-combining buffer");
        reg.registerStat("mem.dram_transfers",
                         mem_gauge([](const mem::MemStats &s) {
                             return s.dram_transfers;
                         }),
                         "transfers the hierarchy issued to the DRAM "
                         "link (run total)");
    }
}

ContextId
Accelerator::installInference(InferenceServiceDesc desc)
{
    EQX_ASSERT(!desc.program.steps.empty(), "empty inference program");
    auto svc = std::make_unique<InfService>();
    svc->id = static_cast<ContextId>(ctx.services.size());
    if (!weight_buffer.allocate(svc->id, desc.weight_footprint)) {
        EQX_FATAL("service ", desc.model_name, " weights (",
                  desc.weight_footprint, " B) exceed the weight buffer (",
                  weight_buffer.available(), " B free)");
    }
    if (!act_buffer.allocate(svc->id, desc.act_footprint)) {
        EQX_FATAL("service ", desc.model_name, " activations (",
                  desc.act_footprint, " B) exceed the activation buffer");
    }
    svc->timeout_cycles = units::secondsToCycles(
        desc.service_time_s * cfg.batch_timeout_mult, cfg.frequency_hz);
    svc->desc = std::move(desc);
    ctx.services.push_back(std::move(svc));
    return ctx.services.back()->id;
}

ContextId
Accelerator::installTraining(TrainingServiceDesc desc)
{
    EQX_ASSERT(!ctx.train, "only one training context is supported");
    EQX_ASSERT(!desc.iteration.steps.empty(), "empty training program");
    ctx.train = std::make_unique<TrainState>();
    // With the banked scratchpad enabled, its geometry IS the staging
    // buffer: capacity comes from banks * bank_bytes instead of the
    // flat staging share, and the prefetcher follows the ping-pong
    // fill discipline instead of the occupancy throttle alone.
    ctx.train->staging_capacity = cfg.mem.scratchpad.enabled
                                      ? cfg.mem.scratchpad.totalBytes()
                                      : cfg.stagingBytes();
    ctx.train->desc = std::move(desc);
    // Training's staging buffers take <2% of on-chip SRAM (section 2.2):
    // carved out of the activation buffer's remaining space.
    ContextId id = 1000;
    if (!act_buffer.allocate(id, ctx.train->staging_capacity)) {
        EQX_FATAL("training staging (", ctx.train->staging_capacity,
                  " B) does not fit the activation buffer");
    }
    return id;
}

double
Accelerator::maxInferenceOpRate(ContextId id) const
{
    EQX_ASSERT(id < ctx.services.size(), "no such inference service");
    const auto &prog = ctx.services[id]->desc.program;
    Tick busy = prog.mmuBusyCycles();
    EQX_ASSERT(busy > 0, "program with no MMU work");
    return static_cast<double>(prog.totalRealOps()) /
           static_cast<double>(busy) * cfg.frequency_hz;
}

double
Accelerator::maxRequestRate(ContextId id) const
{
    const auto &prog = ctx.services[id]->desc.program;
    return maxInferenceOpRate(id) / prog.opsPerRequest();
}

SimResult
Accelerator::run(const RunSpec &run_spec)
{
    const bool ff = run_spec.fast_forward && fastForwardEnvEnabled();
    if (!ff || !checkExactMode())
        return runOnce(run_spec, ff, /*count_global=*/true);

    // Check-exact: co-simulate the cycle-accurate path first, with
    // tracing off and without touching the process-global event tally,
    // and save/restore the one piece of state that deliberately
    // persists across run() calls (the round-robin cursor) so the
    // reference run is invisible to everything that follows.
    RunSpec ref_spec = run_spec;
    ref_spec.fast_forward = false;
    TraceSink *saved_trace = ctx.trace;
    ContextId saved_cursor = dispatcher->lastServedCtx();
    ctx.trace = nullptr;
    SimResult ref = runOnce(ref_spec, /*use_ff=*/false,
                            /*count_global=*/false);
    ctx.trace = saved_trace;
    dispatcher->setLastServedCtx(saved_cursor);

    SimResult res = runOnce(run_spec, /*use_ff=*/true,
                            /*count_global=*/true);
    const std::uint64_t want = resultDigest(ref);
    const std::uint64_t got = resultDigest(res);
    if (want != got) {
        EQX_FATAL("check-exact: fast-forward result digest ", got,
                  " diverges from the cycle-accurate digest ", want,
                  " (seed ", run_spec.seed, ", rate ",
                  run_spec.arrival_rate_per_s, "/s)");
    }
    return res;
}

SimResult
Accelerator::runOnce(const RunSpec &run_spec, bool use_ff,
                     bool count_global)
{
    EQX_ASSERT(!ctx.services.empty() || ctx.train,
               "run() needs at least one installed service");
    ctx.spec = run_spec;

    // Reset all dynamic state. The resetRun() contract forbids blocks
    // from scheduling events or drawing randomness here, so the reset
    // order cannot affect simulated behaviour; the fault unit's
    // beginRun() builds the injector and link hooks the other blocks'
    // transfers consult.
    ctx.events = EventQueue{};
    // Pre-size the event heap so the run's steady state never
    // reallocates mid-dispatch: the hint starts at a cold-start floor
    // and tracks the worst observed high-water mark across runs.
    ctx.events.reserve(event_reserve_);
    ctx.hbm = std::make_unique<dram::HbmModel>(cfg.frequency_hz, cfg.dram);
    ctx.host = std::make_unique<dram::HostLink>(cfg.frequency_hz,
                                                cfg.host);
    // The hierarchy fronts the HBM link it was built against, so it is
    // rebuilt whenever the link is. Passthrough (the default) forwards
    // every access verbatim -- byte-identical to calling the link.
    ctx.mem = std::make_unique<mem::MemoryHierarchy>(cfg.mem,
                                                     ctx.hbm.get());
    for (auto *b : ctx.blocks)
        b->resetRun();
    faults->beginRun();
    ctx.stopping = false;
    ctx.measuring = false;
    ctx.measure_start = 0;
    ctx.completed_total = 0;
    ctx.completed_measured = 0;
    ctx.resetMeasurement();
    ctx.measuring = false; // warmup first

    // Schedule the first arrivals (per-service RNG streams re-seeded
    // from the spec) and any explicit arrival trace.
    requests->beginRun();

    if (ctx.train) {
        auto &train = *ctx.train;
        train.step = 0;
        train.issued_in_step = 0;
        train.ready_at = 0;
        train.in_flight = false;
        train.staged_bytes = 0.0;
        train.inflight_bytes = 0.0;
        train.prefetch_step = 0;
        train.prefetch_off = 0;
        train.mem_read_cursor = 0;
        train.mem_store_cursor = 0;
        train.iterations = 0;
        train.committed_iterations = 0;
        train.epoch = 0;
        prefetcher->pump();
    }

    if (ctx.inference_load && ctx.spec.warmup_requests == 0)
        ctx.resetMeasurement();

    Tick max_ticks = units::secondsToCycles(ctx.spec.max_sim_s,
                                            cfg.frequency_hz);
    // The fast-forward ceiling mirrors the loop condition below: an
    // event past max_ticks is still dispatched exactly once (the loop
    // checks now() before the NEXT runOne), so inline dispatch may run
    // up to and including max_ticks but never beyond it.
    ctx.events.setFastForward(use_ff, max_ticks);
    faults->scheduleHangs(max_ticks);
    while (!ctx.stopping && !ctx.events.empty() &&
           ctx.events.now() <= max_ticks)
        ctx.events.runOne();
    if (count_global)
        addGlobalDispatchedEvents(ctx.events.dispatched());
    event_reserve_ = std::max(event_reserve_, ctx.events.highWater());

    faults->finalizeDowntime();
    if (!datapath->mmuBusy())
        datapath->accountGap(ctx.events.now());

    // Assemble the result over the measured window.
    SimResult res;
    Tick elapsed_ticks = ctx.events.now() > ctx.measure_start
                             ? ctx.events.now() - ctx.measure_start
                             : 1;
    if (!ctx.measuring) {
        EQX_WARN("run ended before the measurement window opened (",
                 ctx.completed_total, " requests completed)");
        elapsed_ticks = std::max<Tick>(ctx.events.now(), 1);
    }
    double elapsed_s = units::cyclesToSeconds(elapsed_ticks,
                                              cfg.frequency_hz);
    double inv_f = 1.0 / cfg.frequency_hz;

    res.sim_seconds = elapsed_s;
    res.completed_requests = ctx.completed_measured;
    res.offered_rate_per_s = ctx.spec.arrival_rate_per_s;
    if (!ctx.spec.arrival_rates.empty()) {
        res.offered_rate_per_s = 0.0;
        for (double r : ctx.spec.arrival_rates)
            res.offered_rate_per_s += r;
    }
    res.inference_throughput_ops = datapath->infUsefulOps() / elapsed_s;
    res.training_throughput_ops = datapath->trainUsefulOps() / elapsed_s;
    const auto &latency = datapath->latencyCycles();
    res.mean_latency_s = latency.mean() * inv_f;
    res.p50_latency_s = latency.percentile(0.5) * inv_f;
    res.p99_latency_s = latency.percentile(0.99) * inv_f;
    res.max_latency_s = latency.max() * inv_f;
    res.mean_service_s = datapath->serviceCycles().mean() * inv_f;
    res.mmu_breakdown = datapath->breakdownStats();
    res.batches_formed = requests->batchesFormed();
    res.batches_incomplete = requests->batchesIncomplete();
    res.avg_batch_fill =
        res.batches_formed
            ? requests->batchFillSum() /
                  static_cast<double>(res.batches_formed)
            : 0.0;
    res.dram_utilization = ctx.hbm->utilization(ctx.events.now());
    res.dram_train_bytes = ctx.hbm->bytesMoved(dram::Priority::Low) -
                           ctx.dram_lp_snapshot;
    res.host_bytes = ctx.host_bytes_measured;
    res.training_iterations = ctx.train_iterations_measured;
    res.mmu_busy_cycles = datapath->mmuBusyMeasured();
    res.simd_busy_cycles = datapath->simdBusyMeasured();
    for (const auto &svc : ctx.services) {
        SimResult::ServiceStats st;
        st.ctx = svc->id;
        st.model_name = svc->desc.model_name;
        st.completed = svc->latency_cycles.count();
        st.mean_latency_s = svc->latency_cycles.mean() * inv_f;
        st.p99_latency_s = svc->latency_cycles.percentile(0.99) * inv_f;
        res.per_service.push_back(st);
    }
    res.faults = faults->stats();
    res.availability = faults->stats().availability(elapsed_ticks);
    res.admitted_requests = requests->requestsAdmitted();
    res.retired_requests = ctx.completed_total;
    res.inflight_requests = requests->pendingInferenceWork();
    res.latency_cycles = latency;
    if (ctx.train) {
        res.committed_training_iterations =
            faults->active() &&
                    ctx.spec.faults.checkpoint.interval_iterations > 0
                ? ctx.train->committed_iterations
                : ctx.train->iterations;
    }
    if (faults->active())
        res.fault_trace = faults->trace();
    res.events_dispatched = ctx.events.dispatched();
    res.events_inlined = ctx.events.inlined();
    res.mem = ctx.mem->stats();
    return res;
}

} // namespace sim
} // namespace equinox

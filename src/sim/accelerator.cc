#include "sim/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace equinox
{
namespace sim
{

namespace
{
/** Training prefetch granularity over the DRAM interface. */
constexpr ByteCount kPrefetchChunk = 256 * 1024;
} // namespace

/** One installed inference service (a hardware context, Figure 5). */
struct Accelerator::InfService
{
    ContextId id = 0;
    InferenceServiceDesc desc;
    Tick timeout_cycles = 0;      //!< adaptive batch-formation threshold
    double rate_per_cycle = 0.0;  //!< Poisson arrival rate
    Rng rng{1};
    std::deque<Tick> pending;     //!< arrival ticks awaiting batching
    bool timeout_armed = false;
    stats::LatencyTracker latency_cycles; //!< measured window
};

/** A formed batch moving through the datapath. */
struct Accelerator::InfBatch
{
    InfService *svc = nullptr;
    std::uint32_t real = 0;       //!< real requests (rest is padding)
    std::vector<Tick> arrivals;
    std::size_t step = 0;
    Tick issued_in_step = 0;      //!< MMU cycles of the step already run
    Tick ready_at = 0;            //!< next step's dependence-ready tick
    Tick first_issue = kTickMax;
    bool in_flight = false;
    bool done = false;
};

/** The training service's execution and prefetch state. */
struct Accelerator::TrainState
{
    TrainingServiceDesc desc;
    ByteCount staging_capacity = 0;
    std::size_t step = 0;
    Tick issued_in_step = 0;
    Tick ready_at = 0;
    bool in_flight = false;
    double staged_bytes = 0.0;
    double inflight_bytes = 0.0;
    std::size_t prefetch_step = 0;
    ByteCount prefetch_off = 0;
    std::uint64_t iterations = 0;
    /** Iterations durably saved by the last checkpoint (recovery). */
    std::uint64_t committed_iterations = 0;
    /**
     * Bumped on every rollback/reset; in-flight prefetch completions
     * and MMU chunks from an older epoch are stale and ignored.
     */
    std::uint64_t epoch = 0;
};

Accelerator::Accelerator(AcceleratorConfig config)
    : cfg(std::move(config)),
      act_buffer("activation", cfg.act_buffer_bytes, 16, 1, 2),
      weight_buffer("weight", cfg.weight_buffer_bytes, cfg.m, 1, 1),
      instr_buffer("instruction", cfg.instr_buffer_bytes, 1, 1, 1),
      simd_rf("simd-rf", cfg.simd_rf_bytes, 4, 2, 2)
{
    // Bad geometry/clock here is user configuration, not a simulator
    // bug: report every problem with an actionable message and exit.
    auto errors = cfg.validate();
    if (!errors.empty()) {
        EQX_FATAL("invalid accelerator configuration '", cfg.name,
                  "':\n", formatConfigErrors(errors));
    }
}

Accelerator::~Accelerator() = default;

ContextId
Accelerator::installInference(InferenceServiceDesc desc)
{
    EQX_ASSERT(!desc.program.steps.empty(), "empty inference program");
    auto svc = std::make_unique<InfService>();
    svc->id = static_cast<ContextId>(services.size());
    if (!weight_buffer.allocate(svc->id, desc.weight_footprint)) {
        EQX_FATAL("service ", desc.model_name, " weights (",
                  desc.weight_footprint, " B) exceed the weight buffer (",
                  weight_buffer.available(), " B free)");
    }
    if (!act_buffer.allocate(svc->id, desc.act_footprint)) {
        EQX_FATAL("service ", desc.model_name, " activations (",
                  desc.act_footprint, " B) exceed the activation buffer");
    }
    svc->timeout_cycles = units::secondsToCycles(
        desc.service_time_s * cfg.batch_timeout_mult, cfg.frequency_hz);
    svc->desc = std::move(desc);
    services.push_back(std::move(svc));
    return services.back()->id;
}

ContextId
Accelerator::installTraining(TrainingServiceDesc desc)
{
    EQX_ASSERT(!train, "only one training context is supported");
    EQX_ASSERT(!desc.iteration.steps.empty(), "empty training program");
    train = std::make_unique<TrainState>();
    train->staging_capacity = cfg.stagingBytes();
    train->desc = std::move(desc);
    // Training's staging buffers take <2% of on-chip SRAM (section 2.2):
    // carved out of the activation buffer's remaining space.
    ContextId id = 1000;
    if (!act_buffer.allocate(id, train->staging_capacity)) {
        EQX_FATAL("training staging (", train->staging_capacity,
                  " B) does not fit the activation buffer");
    }
    return id;
}

double
Accelerator::maxInferenceOpRate(ContextId ctx) const
{
    EQX_ASSERT(ctx < services.size(), "no such inference service");
    const auto &prog = services[ctx]->desc.program;
    Tick busy = prog.mmuBusyCycles();
    EQX_ASSERT(busy > 0, "program with no MMU work");
    return static_cast<double>(prog.totalRealOps()) /
           static_cast<double>(busy) * cfg.frequency_hz;
}

double
Accelerator::maxRequestRate(ContextId ctx) const
{
    const auto &prog = services[ctx]->desc.program;
    return maxInferenceOpRate(ctx) / prog.opsPerRequest();
}

// ---------------------------------------------------------------------
// Front-end: request dispatcher and batch formation
// ---------------------------------------------------------------------

void
Accelerator::scheduleNextArrival(std::size_t svc_idx)
{
    auto &svc = *services[svc_idx];
    if (!spec.arrival_trace_s.empty() && svc_idx == 0)
        return; // trace playback schedules arrivals up front
    if (svc.rate_per_cycle <= 0.0 || stopping)
        return;
    // Bursty mode samples candidates at the peak rate and thins them to
    // the on-phase at arrival time (Lewis-Shedler thinning), giving an
    // on/off-modulated Poisson process with the configured mean.
    double rate = svc.rate_per_cycle;
    if (spec.arrival_process == ArrivalProcess::Bursty)
        rate *= spec.burst_factor;
    double wait = svc.rng.exponential(rate);
    auto delta = static_cast<Tick>(wait) + 1;
    events.scheduleIn(delta, [this, svc_idx] {
        onRequestArrival(svc_idx);
    });
}

bool
Accelerator::inBurstOnPhase() const
{
    if (spec.arrival_process != ArrivalProcess::Bursty)
        return true;
    Tick period = units::secondsToCycles(spec.burst_period_s,
                                         cfg.frequency_hz);
    if (period == 0)
        return true;
    Tick on = static_cast<Tick>(static_cast<double>(period) /
                                spec.burst_factor);
    return (events.now() % period) < std::max<Tick>(on, 1);
}

void
Accelerator::onRequestArrival(std::size_t svc_idx)
{
    if (stopping)
        return;
    auto &svc = *services[svc_idx];
    if ((spec.arrival_trace_s.empty() || svc_idx != 0) &&
        !inBurstOnPhase()) {
        // Thinned candidate: no request in the off phase.
        scheduleNextArrival(svc_idx);
        return;
    }
    if (shed_inference) {
        // Severe fault storm: the degradation policy sheds requests at
        // admission rather than queuing into an impaired machine.
        ++fstats.shed_requests;
        scheduleNextArrival(svc_idx);
        return;
    }
    svc.pending.push_back(events.now());
    formFullBatches(svc);
    armBatchTimeout(svc);
    scheduleNextArrival(svc_idx);
    tryDispatch();
}

void
Accelerator::formFullBatches(InfService &svc)
{
    const std::uint32_t batch_rows = svc.desc.program.batch_rows;
    while (svc.pending.size() >= batch_rows) {
        auto batch = std::make_unique<InfBatch>();
        batch->svc = &svc;
        batch->real = batch_rows;
        for (std::uint32_t i = 0; i < batch_rows; ++i) {
            batch->arrivals.push_back(svc.pending.front());
            svc.pending.pop_front();
        }
        // Batch inputs DMA in over the host interface before issue.
        ByteCount in_bytes = static_cast<ByteCount>(batch->real) *
                             svc.desc.input_bytes_per_request;
        batch->ready_at = in_bytes
                              ? hostTransfer(events.now(), in_bytes,
                                             dram::Priority::High)
                              : events.now();
        if (measuring) {
            ++batches_formed;
            batch_fill_sum += 1.0;
            host_bytes_measured += in_bytes;
        }
        batch_queue.push_back(batch.get());
        batch_pool.push_back(std::move(batch));
    }
}

void
Accelerator::formPartialBatch(InfService &svc)
{
    EQX_ASSERT(!svc.pending.empty(), "partial batch from empty queue");
    const std::uint32_t batch_rows = svc.desc.program.batch_rows;
    auto batch = std::make_unique<InfBatch>();
    batch->svc = &svc;
    batch->real = static_cast<std::uint32_t>(
        std::min<std::size_t>(svc.pending.size(), batch_rows));
    for (std::uint32_t i = 0; i < batch->real; ++i) {
        batch->arrivals.push_back(svc.pending.front());
        svc.pending.pop_front();
    }
    ByteCount in_bytes = static_cast<ByteCount>(batch->real) *
                         svc.desc.input_bytes_per_request;
    batch->ready_at = in_bytes
                          ? hostTransfer(events.now(), in_bytes,
                                         dram::Priority::High)
                          : events.now();
    if (measuring) {
        ++batches_formed;
        ++batches_incomplete;
        batch_fill_sum += static_cast<double>(batch->real) / batch_rows;
        host_bytes_measured += in_bytes;
    }
    batch_queue.push_back(batch.get());
    batch_pool.push_back(std::move(batch));
}

void
Accelerator::armBatchTimeout(InfService &svc)
{
    if (cfg.batch_policy != BatchPolicy::Adaptive)
        return;
    if (svc.timeout_armed || svc.pending.empty())
        return;
    svc.timeout_armed = true;
    Tick fire_at = svc.pending.front() + svc.timeout_cycles;
    fire_at = std::max(fire_at, events.now());
    InfService *p = &svc;
    events.schedule(fire_at, [this, p] { onBatchTimeout(p); });
}

/**
 * The armed batch-formation timeout fired. The queue may have changed
 * arbitrarily since arming: the request the timer was armed for can be
 * long gone (batched into a full batch), and the queue can have drained
 * and refilled with younger requests. Each case must leave exactly one
 * live timer whenever requests are pending, keyed to the CURRENT oldest
 * request's deadline -- a request left waiting without a timer would
 * strand until the next arrival.
 */
void
Accelerator::onBatchTimeout(InfService *svc)
{
    // The armed flag must drop before any early return: every exit path
    // below either re-arms explicitly or leaves the queue empty (and
    // the next arrival re-arms).
    svc->timeout_armed = false;
    if (svc->pending.empty() || stopping)
        return;
    if (events.now() >= svc->pending.front() + svc->timeout_cycles) {
        // The request controller pads the input arrays with dummy
        // requests whose results are disposed (section 3.1).
        formPartialBatch(*svc);
    }
    // Queue drained between arm and fire, then refilled: the oldest
    // pending request is younger than the one the timer was armed for,
    // so its deadline is still in the future -- re-arm for it.
    armBatchTimeout(*svc);
    tryDispatch();
}

std::uint64_t
Accelerator::pendingInferenceWork() const
{
    std::uint64_t n = 0;
    for (const auto &svc : services)
        n += svc->pending.size();
    for (const auto *b : batch_queue) {
        if (!b->done)
            n += b->real;
    }
    return n;
}

// ---------------------------------------------------------------------
// Instruction dispatcher: scheduling policies (Figure 5, section 3.2)
// ---------------------------------------------------------------------

Accelerator::InfBatch *
Accelerator::firstReadyBatch()
{
    // FIFO within a hardware context; round-robin across contexts so a
    // long-running service (e.g. a 30 ms GRU batch) cannot head-of-line
    // block a sub-ms one in its dependence gaps.
    InfBatch *fallback = nullptr;
    for (auto *b : batch_queue) {
        if (b->done || b->in_flight)
            continue;
        if (b->ready_at > events.now())
            continue;
        if (!fallback)
            fallback = b;
        if (b->svc->id != last_served_ctx)
            return b;
    }
    return fallback;
}

bool
Accelerator::inferenceQueueLow() const
{
    // "Low queuing": at most one batch anywhere in the pipeline and no
    // full batch of raw requests waiting to form.
    std::size_t incomplete = batch_queue.size();
    if (incomplete > 1)
        return false;
    for (const auto &svc : services) {
        if (svc->pending.size() >= svc->desc.program.batch_rows)
            return false;
    }
    return true;
}

bool
Accelerator::spikeDetected() const
{
    // The instruction controller compares the inference queue size
    // against an install-time threshold (section 3.2).
    unsigned unstarted = 0;
    for (const auto *b : batch_queue) {
        if (!b->done && b->first_issue == kTickMax)
            ++unstarted;
    }
    if (unstarted >= cfg.spike_threshold_batches)
        return true;
    for (const auto &svc : services) {
        if (svc->pending.size() >= svc->desc.program.batch_rows)
            return true;
    }
    return false;
}

bool
Accelerator::trainingReady() const
{
    if (!train || train->in_flight)
        return false;
    // Graceful degradation: during a fault storm training is shed first
    // so the machine's remaining capacity serves inference.
    if (storm_active)
        return false;
    if (train->ready_at > events.now())
        return false;
    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    Tick remaining = tw.occupancy - train->issued_in_step;
    if (remaining == 0)
        return false;
    if (tw.stream_bytes == 0)
        return true;
    double bpc = static_cast<double>(tw.stream_bytes) /
                 static_cast<double>(tw.occupancy);
    Tick granule = std::max<Tick>(1, tw.occupancy /
                                         std::max(1u, tw.instructions));
    granule = std::min(granule, remaining);
    return train->staged_bytes >= static_cast<double>(granule) * bpc;
}

void
Accelerator::tryDispatch()
{
    // A hung dispatcher issues nothing until the watchdog (or the
    // transient stall itself) clears the hang and re-invokes us.
    if (mmu_busy || stopping || mmu_hung)
        return;
    Tick now = events.now();

    InfBatch *inf = firstReadyBatch();
    bool train_ok = trainingReady();

    switch (cfg.sched_policy) {
      case SchedPolicy::InferenceOnly:
        train_ok = false;
        break;
      case SchedPolicy::Priority:
        // Three regimes (section 3.2): round-robin only while inference
        // queuing is low; when batches back up, inference issues first
        // and training only fills its dependence gaps; during a load
        // spike training is frozen entirely.
        if (spikeDetected()) {
            train_ok = false;
        } else if (!inferenceQueueLow() && inf) {
            train_ok = false;
        }
        break;
      case SchedPolicy::FairShare:
        break;
      case SchedPolicy::SoftwareBatch: {
        if (sw_exclusive_training) {
            // A software-scheduled training batch cannot be preempted.
            inf = nullptr;
        } else if (train_ok) {
            // The software control plane schedules training only at
            // batch granularity, only into a fully idle accelerator,
            // and only after its decision turnaround elapses.
            bool idle = !inf && pendingInferenceWork() == 0;
            if (!idle || now < next_sw_decision) {
                train_ok = false;
                if (idle && now < next_sw_decision) {
                    Tick at = next_sw_decision;
                    events.schedule(at, [this] { tryDispatch(); });
                }
            }
        }
        break;
      }
    }

    if (inf && train_ok) {
        if (prefer_training) {
            prefer_training = false;
            issueTrainingChunk();
        } else {
            prefer_training = true;
            issueInferenceChunk(inf);
        }
        return;
    }
    if (inf) {
        prefer_training = true;
        issueInferenceChunk(inf);
        return;
    }
    if (train_ok) {
        prefer_training = false;
        if (cfg.sched_policy == SchedPolicy::SoftwareBatch) {
            sw_exclusive_training = true;
            next_sw_decision =
                now + units::secondsToCycles(cfg.software_turnaround_s,
                                             cfg.frequency_hz);
        }
        issueTrainingChunk();
        return;
    }

    // Nothing ready: wake at the earliest dependence-ready tick. Staging
    // arrivals and request arrivals re-invoke tryDispatch themselves.
    Tick wake = kTickMax;
    for (auto *b : batch_queue) {
        if (!b->done && !b->in_flight)
            wake = std::min(wake, b->ready_at);
    }
    if (train && !train->in_flight && train->ready_at > now)
        wake = std::min(wake, train->ready_at);
    if (wake != kTickMax && wake > now) {
        events.schedule(wake, [this] { tryDispatch(); });
    }
}

// ---------------------------------------------------------------------
// Datapath timing
// ---------------------------------------------------------------------

void
Accelerator::accountGap(Tick upto)
{
    if (!measuring)
        return;
    Tick from = std::max(mmu_last_release, measure_start);
    if (upto <= from)
        return;
    auto gap = static_cast<double>(upto - from);
    // Dependence stalls while inference work exists count as Other;
    // load-dependent emptiness (including training starved on DRAM)
    // counts as Idle, matching the Figure 8 categories.
    if (inf_waiting_at_release)
        breakdown.add(stats::CycleClass::Other, gap);
    else
        breakdown.add(stats::CycleClass::Idle, gap);
}

void
Accelerator::chargeMmu(const isa::TileWork &tw, Tick cycles,
                       double real_frac)
{
    if (!measuring)
        return;
    auto c = static_cast<double>(cycles);
    mmu_busy_measured += c;
    double working = c * tw.geom_frac * real_frac;
    double dummy = c * tw.geom_frac * (1.0 - real_frac);
    breakdown.add(stats::CycleClass::Working, working);
    breakdown.add(stats::CycleClass::Dummy, dummy);
    breakdown.add(stats::CycleClass::Other, c - working - dummy);
}

void
Accelerator::issueInferenceChunk(InfBatch *batch)
{
    Tick now = events.now();
    accountGap(now);

    const auto &prog = batch->svc->desc.program;
    const auto &sb = prog.steps[batch->step];
    double real_frac = static_cast<double>(batch->real) /
                       static_cast<double>(prog.batch_rows);

    if (batch->first_issue == kTickMax)
        batch->first_issue = now;
    last_served_ctx = batch->svc->id;

    // With a training context installed, the instruction controller
    // interleaves the two services at instruction granularity
    // (section 3.2); issue one instruction's worth of cycles at a time
    // so training can slot in between. Without training, the whole step
    // issues at once (no interleaving opportunity exists).
    Tick remaining = sb.mmu.occupancy - batch->issued_in_step;
    Tick chunk = remaining;
    if (train) {
        Tick granule = std::max<Tick>(
            sb.mmu.occupancy / std::max(1u, sb.mmu.instructions), 64);
        chunk = std::min(remaining, granule);
    }

    chargeMmu(sb.mmu, chunk, real_frac);
    if (measuring) {
        inf_useful_ops += static_cast<double>(sb.mmu.real_ops) *
                          real_frac * static_cast<double>(chunk) /
                          static_cast<double>(sb.mmu.occupancy);
    }

    mmu_busy = true;
    batch->in_flight = true;
    events.scheduleIn(chunk, [this, batch, chunk] {
        completeInferenceChunk(batch, chunk);
    });
}

void
Accelerator::completeInferenceChunk(InfBatch *batch, Tick chunk)
{
    Tick now = events.now();
    mmu_busy = false;
    batch->in_flight = false;
    mmu_last_release = now;

    const auto &prog = batch->svc->desc.program;
    const auto &sb = prog.steps[batch->step];

    batch->issued_in_step += chunk;
    if (batch->issued_in_step < sb.mmu.occupancy) {
        // Step not finished: more instructions to issue immediately.
        inf_waiting_at_release = true;
        tryDispatch();
        return;
    }
    batch->issued_in_step = 0;

    // Results drain from the array, then the SIMD unit's epilogue
    // (activation functions, recurrence updates) serialises the next
    // step. The SIMD unit is shared, so back-to-back batches queue on it.
    Tick drained = now + sb.drain_cycles;
    Tick simd_start = std::max(drained, simd_free);
    Tick ready = simd_start + sb.simd_cycles;
    if (sb.simd_cycles > 0)
        simd_free = ready;
    if (measuring)
        simd_busy_measured += static_cast<double>(sb.simd_cycles);

    ++batch->step;
    if (batch->step < prog.steps.size()) {
        batch->ready_at = ready;
    } else {
        // Batch complete: stream results to the host and retire.
        ByteCount out = static_cast<ByteCount>(batch->real) *
                        batch->svc->desc.output_bytes_per_request;
        Tick finish = out ? hostTransfer(ready, out,
                                         dram::Priority::High)
                          : ready;
        if (measuring) {
            for (Tick a : batch->arrivals) {
                latency_cycles.record(static_cast<double>(finish - a));
                batch->svc->latency_cycles.record(
                    static_cast<double>(finish - a));
            }
            service_cycles.record(
                static_cast<double>(finish - batch->first_issue));
            host_bytes_measured += out;
            completed_measured += batch->real;
        }
        completed_total += batch->real;
        batch->done = true;
        auto it = std::find(batch_queue.begin(), batch_queue.end(), batch);
        EQX_ASSERT(it != batch_queue.end(), "finished batch not queued");
        batch_queue.erase(it);
        maybeFinishWarmup();
        if (measuring && inference_load &&
            completed_measured >= spec.measure_requests &&
            units::cyclesToSeconds(events.now() - measure_start,
                                   cfg.frequency_hz) >=
                spec.min_measure_s) {
            stopping = true;
        }
    }

    inf_waiting_at_release = firstReadyBatch() != nullptr ||
                             !batch_queue.empty();
    tryDispatch();
}

void
Accelerator::issueTrainingChunk()
{
    Tick now = events.now();
    accountGap(now);

    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    Tick remaining = tw.occupancy - train->issued_in_step;
    Tick chunk = remaining;
    double bpc = 0.0;
    if (tw.stream_bytes > 0) {
        bpc = static_cast<double>(tw.stream_bytes) /
              static_cast<double>(tw.occupancy);
        chunk = std::min(chunk, static_cast<Tick>(train->staged_bytes /
                                                  bpc));
    }
    EQX_ASSERT(chunk > 0, "training issued with no issuable cycles");

    double bytes = static_cast<double>(chunk) * bpc;
    train->staged_bytes -= bytes;
    // Consuming staged operands frees staging space: restart the
    // prefetcher immediately so DRAM streams while the array computes.
    prefetchPump();

    chargeMmu(tw, chunk, 1.0);
    if (measuring) {
        train_useful_ops += static_cast<double>(tw.real_ops) *
                            static_cast<double>(chunk) /
                            static_cast<double>(tw.occupancy);
    }

    mmu_busy = true;
    train->in_flight = true;
    std::uint64_t epoch = train->epoch;
    events.scheduleIn(chunk, [this, chunk, epoch] {
        if (epoch != train->epoch) {
            // A rollback/reset invalidated this chunk mid-flight: free
            // the array but do not advance the (replayed) iteration.
            mmu_busy = false;
            train->in_flight = false;
            mmu_last_release = events.now();
            inf_waiting_at_release = !batch_queue.empty();
            tryDispatch();
            return;
        }
        completeTrainingChunk(chunk, 0.0);
    });
}

void
Accelerator::completeTrainingChunk(Tick chunk, double)
{
    Tick now = events.now();
    mmu_busy = false;
    train->in_flight = false;
    mmu_last_release = now;
    inf_waiting_at_release = !batch_queue.empty();

    train->issued_in_step += chunk;
    const auto &tw = train->desc.iteration.steps[train->step].mmu;
    if (train->issued_in_step >= tw.occupancy)
        advanceTrainingStep();

    prefetchPump();
    tryDispatch();
}

void
Accelerator::advanceTrainingStep()
{
    Tick now = events.now();
    const auto &prog = train->desc.iteration;
    const auto &sb = prog.steps[train->step];

    // Write results (activations for the backward pass, gradient
    // accumulations) back to DRAM at best-effort priority.
    if (sb.store_bytes > 0) {
        dram::TransferFault f;
        hbm->transfer(now, sb.store_bytes, dram::Priority::Low,
                      injector ? &f : nullptr);
        syncFaults();
        if (f.uncorrectable) {
            // The written-back gradients are poisoned; finish this
            // event's bookkeeping, then roll back to the checkpoint.
            events.schedule(now, [this] { trainingRollback(); });
        }
    }

    Tick drained = now + sb.drain_cycles;
    Tick simd_start = std::max(drained, simd_free);
    Tick ready = simd_start + sb.simd_cycles;
    if (sb.simd_cycles > 0)
        simd_free = ready;
    if (measuring)
        simd_busy_measured += static_cast<double>(sb.simd_cycles);
    train->ready_at = ready;

    train->issued_in_step = 0;
    ++train->step;
    if (train->step >= prog.steps.size()) {
        train->step = 0;
        ++train->iterations;
        sw_exclusive_training = false;
        // Parameter-server sync: gradients out, fresh model in, over the
        // host interface; double-buffered so it overlaps the next
        // iteration's compute.
        if (train->desc.sync_bytes_per_iteration > 0) {
            hostTransfer(now, train->desc.sync_bytes_per_iteration,
                         dram::Priority::Low);
            if (measuring) {
                host_bytes_measured +=
                    train->desc.sync_bytes_per_iteration;
            }
        }
        maybeWriteCheckpoint();
        if (measuring) {
            ++train_iterations_measured;
            if (!inference_load &&
                train_iterations_measured >= spec.measure_iterations) {
                stopping = true;
            }
        } else if (!inference_load) {
            // Training-only runs: measure from the second iteration.
            resetMeasurement();
        }
    }
}

// ---------------------------------------------------------------------
// Training prefetcher (staging buffers, section 2.2)
// ---------------------------------------------------------------------

void
Accelerator::prefetchPump()
{
    if (!train || stopping)
        return;
    const auto &steps = train->desc.iteration.steps;
    while (true) {
        ByteCount step_bytes = steps[train->prefetch_step].mmu.stream_bytes;
        if (train->prefetch_off >= step_bytes) {
            train->prefetch_step = (train->prefetch_step + 1) %
                                   steps.size();
            train->prefetch_off = 0;
            // Guard against a (synthetic) program with no streamed bytes.
            bool any = false;
            for (const auto &s : steps) {
                if (s.mmu.stream_bytes > 0) {
                    any = true;
                    break;
                }
            }
            if (!any)
                return;
            continue;
        }
        // Degrade gracefully when the staging share is smaller than the
        // preferred burst: fetch in half-capacity chunks instead.
        ByteCount max_chunk = std::min<ByteCount>(
            kPrefetchChunk,
            std::max<ByteCount>(train->staging_capacity / 2, 512));
        double occupied = train->staged_bytes + train->inflight_bytes;
        if (occupied + static_cast<double>(max_chunk) >
            static_cast<double>(train->staging_capacity)) {
            return;
        }
        ByteCount chunk = std::min<ByteCount>(max_chunk,
                                              step_bytes -
                                                  train->prefetch_off);
        train->prefetch_off += chunk;
        train->inflight_bytes += static_cast<double>(chunk);
        dram::TransferFault f;
        Tick done = hbm->transfer(events.now(), chunk,
                                  dram::Priority::Low,
                                  injector ? &f : nullptr);
        syncFaults();
        if (f.uncorrectable) {
            // ECC flagged the staged operands as poisoned: when the
            // access would have landed, roll training back to the last
            // checkpoint instead of consuming garbage.
            events.schedule(done, [this] { trainingRollback(); });
            return;
        }
        std::uint64_t epoch = train->epoch;
        events.schedule(done, [this, chunk, epoch] {
            if (epoch != train->epoch)
                return; // superseded by a rollback/reset
            train->inflight_bytes -= static_cast<double>(chunk);
            train->staged_bytes += static_cast<double>(chunk);
            prefetchPump();
            tryDispatch();
        });
    }
}

// ---------------------------------------------------------------------
// Fault injection and recovery
// ---------------------------------------------------------------------

Tick
Accelerator::hostTransfer(Tick start, ByteCount bytes,
                          dram::Priority prio, bool *ok)
{
    if (ok)
        *ok = true;
    if (!injector)
        return host->transfer(start, bytes, prio);

    const auto &rp = spec.faults.retry;
    Tick deadline = kTickMax;
    if (rp.deadline_s > 0.0) {
        deadline = start + units::secondsToCycles(rp.deadline_s,
                                                  cfg.frequency_hz);
    }
    Tick first_finish = 0;
    for (unsigned attempt = 0;; ++attempt) {
        dram::TransferFault f;
        Tick finish = host->transfer(start, bytes, prio, &f);
        syncFaults();
        if (attempt == 0)
            first_finish = finish;
        if (!f.failed) {
            if (attempt > 0) {
                fstats.recovery_cycles.record(
                    static_cast<double>(finish - first_finish));
            }
            return finish;
        }
        if (attempt >= rp.max_retries || finish >= deadline) {
            // Retry budget or per-request deadline exhausted: the
            // payload is lost for good; livelock is impossible because
            // both bounds are finite.
            ++fstats.host_give_ups;
            if (ok)
                *ok = false;
            return finish;
        }
        ++fstats.host_retries;
        // A drop is detected by the response timeout, a corruption by
        // the delivery CRC; either way the retry launches after the
        // attempt's delivery horizon plus jittered backoff.
        start = finish + injector->backoffCycles(attempt);
    }
}

void
Accelerator::onMmuHang()
{
    if (stopping || mmu_hung)
        return;
    Tick now = events.now();
    mmu_hung = true;
    hang_started_at = now;
    ++fstats.mmu_hangs;
    syncFaults();
    const auto &wd = spec.faults.watchdog;
    if (wd.enabled) {
        Tick detect = now + units::secondsToCycles(wd.timeout_s,
                                                   cfg.frequency_hz);
        events.schedule(detect, [this] { onWatchdogFire(); });
    } else {
        // No watchdog: the stall persists until it clears on its own.
        Tick clear = now + units::secondsToCycles(wd.hang_duration_s,
                                                  cfg.frequency_hz);
        Tick started = now;
        events.schedule(clear, [this, started] {
            clearTransientHang(started);
        });
    }
}

void
Accelerator::onWatchdogFire()
{
    if (!mmu_hung || stopping)
        return;
    Tick now = events.now();
    ++fstats.watchdog_resets;
    const auto &wd = spec.faults.watchdog;
    // Costed reset: fixed controller reset, then every installed
    // service's weights re-install from DRAM at critical priority.
    Tick resume = now + units::secondsToCycles(wd.reset_cost_s,
                                               cfg.frequency_hz);
    ByteCount weights = 0;
    for (const auto &svc : services)
        weights += svc->desc.weight_footprint;
    if (weights > 0)
        resume = hbm->transfer(resume, weights, dram::Priority::High);
    syncFaults();
    Tick hang_start = hang_started_at;
    events.schedule(resume, [this, hang_start] {
        finishReset(hang_start);
    });
}

void
Accelerator::finishReset(Tick hang_start)
{
    Tick now = events.now();
    mmu_hung = false;
    accountDowntime(hang_start, now);
    fstats.recovery_cycles.record(static_cast<double>(now - hang_start));
    // The reset wiped the training context's in-flight SRAM state.
    trainingRollback();
    tryDispatch();
}

void
Accelerator::clearTransientHang(Tick hang_start)
{
    if (!mmu_hung)
        return;
    Tick now = events.now();
    mmu_hung = false;
    accountDowntime(hang_start, now);
    fstats.recovery_cycles.record(static_cast<double>(now - hang_start));
    tryDispatch();
}

void
Accelerator::accountDowntime(Tick from, Tick upto)
{
    // Availability is reported over the measured window only.
    if (!measuring)
        return;
    from = std::max(from, measure_start);
    if (upto > from)
        fstats.downtime_cycles += upto - from;
}

void
Accelerator::trainingRollback()
{
    if (!train)
        return;
    Tick now = events.now();
    ++fstats.rollbacks;
    std::uint64_t lost = train->iterations - train->committed_iterations;
    fstats.lost_training_iterations += lost;
    if (measuring) {
        // Rolled-back iterations are re-counted when the replay
        // re-completes them, so net progress reflects the loss.
        train_iterations_measured -=
            std::min<std::uint64_t>(train_iterations_measured, lost);
    }
    train->iterations = train->committed_iterations;
    train->step = 0;
    train->issued_in_step = 0;
    train->staged_bytes = 0.0;
    train->inflight_bytes = 0.0;
    train->prefetch_step = 0;
    train->prefetch_off = 0;
    ++train->epoch;
    // Restore: the checkpointed master weights stream back from DRAM
    // before the replay's first operands can stage.
    Tick resume = now;
    if (train->desc.checkpoint_bytes > 0) {
        resume = hbm->transfer(now, train->desc.checkpoint_bytes,
                               dram::Priority::Low);
        syncFaults();
    }
    train->ready_at = resume;
    fstats.recovery_cycles.record(static_cast<double>(resume - now));
    std::uint64_t epoch = train->epoch;
    events.schedule(resume, [this, epoch] {
        if (epoch != train->epoch)
            return;
        prefetchPump();
        tryDispatch();
    });
}

void
Accelerator::maybeWriteCheckpoint()
{
    if (!injector || !train)
        return;
    unsigned interval = spec.faults.checkpoint.interval_iterations;
    if (interval == 0)
        return;
    if (train->iterations - train->committed_iterations < interval)
        return;
    dram::TransferFault f;
    if (train->desc.checkpoint_bytes > 0) {
        // Asynchronous snapshot: the write overlaps the next iteration's
        // compute and is charged as best-effort DRAM traffic.
        hbm->transfer(events.now(), train->desc.checkpoint_bytes,
                      dram::Priority::Low, &f);
        syncFaults();
    }
    if (f.uncorrectable) {
        // The checkpoint image itself is damaged: do not commit; the
        // previous checkpoint stays the rollback target and the next
        // interval tries again.
        return;
    }
    ++fstats.checkpoints_written;
    train->committed_iterations = train->iterations;
}

void
Accelerator::syncFaults()
{
    std::uint64_t total = fstats.totalFaults();
    while (faults_seen < total) {
        ++faults_seen;
        noteFault();
    }
}

void
Accelerator::noteFault()
{
    const auto &dp = spec.faults.degrade;
    if (!dp.enabled)
        return;
    Tick now = events.now();
    Tick window = units::secondsToCycles(dp.storm_window_s,
                                         cfg.frequency_hz);
    recent_faults.push_back(now);
    while (!recent_faults.empty() &&
           recent_faults.front() + window < now)
        recent_faults.pop_front();
    auto count = static_cast<unsigned>(recent_faults.size());
    if (!storm_active && count >= dp.storm_faults) {
        storm_active = true;
        ++fstats.storms_entered;
    }
    shed_inference = storm_active &&
                     count >= dp.storm_faults *
                                  std::max(1u, dp.shed_inference_factor);
    if (storm_active && !storm_check_armed) {
        storm_check_armed = true;
        events.schedule(now + window + 1, [this] { stormCheck(); });
    }
}

void
Accelerator::stormCheck()
{
    storm_check_armed = false;
    if (!storm_active)
        return;
    const auto &dp = spec.faults.degrade;
    Tick now = events.now();
    Tick window = units::secondsToCycles(dp.storm_window_s,
                                         cfg.frequency_hz);
    while (!recent_faults.empty() &&
           recent_faults.front() + window < now)
        recent_faults.pop_front();
    auto count = static_cast<unsigned>(recent_faults.size());
    if (count < dp.storm_faults) {
        // Storm over: training and full admission resume immediately.
        storm_active = false;
        shed_inference = false;
        tryDispatch();
        return;
    }
    shed_inference = count >= dp.storm_faults *
                                  std::max(1u, dp.shed_inference_factor);
    storm_check_armed = true;
    events.schedule(recent_faults.front() + window + 1,
                    [this] { stormCheck(); });
}

// ---------------------------------------------------------------------
// Measurement control and run loop
// ---------------------------------------------------------------------

void
Accelerator::maybeFinishWarmup()
{
    if (!measuring && inference_load &&
        completed_total >= spec.warmup_requests &&
        units::cyclesToSeconds(events.now(), cfg.frequency_hz) >=
            spec.warmup_s) {
        resetMeasurement();
    }
}

void
Accelerator::resetMeasurement()
{
    measuring = true;
    measure_start = events.now();
    breakdown.reset();
    latency_cycles.reset();
    service_cycles.reset();
    for (auto &svc : services)
        svc->latency_cycles.reset();
    inf_useful_ops = 0.0;
    train_useful_ops = 0.0;
    mmu_busy_measured = 0.0;
    simd_busy_measured = 0.0;
    batches_formed = 0;
    batches_incomplete = 0;
    batch_fill_sum = 0.0;
    completed_measured = 0;
    train_iterations_measured = 0;
    host_bytes_measured = 0;
    dram_lp_snapshot = hbm ? hbm->bytesMoved(dram::Priority::Low) : 0;
}

SimResult
Accelerator::run(const RunSpec &run_spec)
{
    EQX_ASSERT(!services.empty() || train,
               "run() needs at least one installed service");
    spec = run_spec;

    // Reset all dynamic state.
    events = EventQueue{};
    hbm = std::make_unique<dram::HbmModel>(cfg.frequency_hz, cfg.dram);
    host = std::make_unique<dram::HostLink>(cfg.frequency_hz, cfg.host);
    injector.reset();
    fstats.reset();
    mmu_hung = false;
    hang_started_at = 0;
    storm_active = false;
    shed_inference = false;
    storm_check_armed = false;
    faults_seen = 0;
    recent_faults.clear();
    if (spec.faults.enabled()) {
        auto plan_errors = spec.faults.validate();
        if (!plan_errors.empty()) {
            std::string joined;
            for (const auto &e : plan_errors)
                joined += "\n  " + e;
            EQX_FATAL("invalid fault plan:", joined);
        }
        injector = std::make_unique<fault::FaultInjector>(
            spec.faults, cfg.frequency_hz, &fstats);
        hbm->setFaultHook(injector->dramHook());
        host->setFaultHook(injector->hostHook());
    }
    batch_queue.clear();
    batch_pool.clear();
    mmu_busy = false;
    mmu_last_release = 0;
    inf_waiting_at_release = false;
    simd_free = 0;
    prefer_training = false;
    next_sw_decision = 0;
    sw_exclusive_training = false;
    stopping = false;
    measuring = false;
    measure_start = 0;
    completed_total = 0;
    completed_measured = 0;
    resetMeasurement();
    measuring = false; // warmup first

    inference_load = false;
    for (std::size_t i = 0; i < services.size(); ++i) {
        auto &svc = *services[i];
        svc.pending.clear();
        svc.timeout_armed = false;
        svc.rng = Rng(spec.seed * 7919 + svc.id + 1);
        double rate = 0.0;
        if (!spec.arrival_rates.empty()) {
            if (i < spec.arrival_rates.size())
                rate = spec.arrival_rates[i];
        } else if (i == 0) {
            rate = spec.arrival_rate_per_s;
        }
        svc.rate_per_cycle = rate / cfg.frequency_hz;
        inference_load = inference_load || rate > 0.0;
        scheduleNextArrival(i);
    }

    if (!spec.arrival_trace_s.empty()) {
        EQX_ASSERT(!services.empty(),
                   "arrival trace needs an inference service");
        inference_load = true;
        double prev = -1.0;
        for (double t : spec.arrival_trace_s) {
            EQX_ASSERT(t >= 0.0 && t >= prev,
                       "arrival trace must be ascending");
            prev = t;
            events.schedule(units::secondsToCycles(t, cfg.frequency_hz),
                            [this] { onRequestArrival(0); });
        }
    }

    if (train) {
        train->step = 0;
        train->issued_in_step = 0;
        train->ready_at = 0;
        train->in_flight = false;
        train->staged_bytes = 0.0;
        train->inflight_bytes = 0.0;
        train->prefetch_step = 0;
        train->prefetch_off = 0;
        train->iterations = 0;
        train->committed_iterations = 0;
        train->epoch = 0;
        prefetchPump();
    }

    if (inference_load && spec.warmup_requests == 0)
        resetMeasurement();

    Tick max_ticks = units::secondsToCycles(spec.max_sim_s,
                                            cfg.frequency_hz);
    if (injector) {
        for (Tick t : injector->hangSchedule(max_ticks))
            events.schedule(t, [this] { onMmuHang(); });
    }
    while (!stopping && !events.empty() && events.now() <= max_ticks)
        events.runOne();

    if (mmu_hung)
        accountDowntime(hang_started_at, events.now());
    if (!mmu_busy)
        accountGap(events.now());

    // Assemble the result over the measured window.
    SimResult res;
    Tick elapsed_ticks = events.now() > measure_start
                             ? events.now() - measure_start
                             : 1;
    if (!measuring) {
        EQX_WARN("run ended before the measurement window opened (",
                 completed_total, " requests completed)");
        elapsed_ticks = std::max<Tick>(events.now(), 1);
    }
    double elapsed_s = units::cyclesToSeconds(elapsed_ticks,
                                              cfg.frequency_hz);
    double inv_f = 1.0 / cfg.frequency_hz;

    res.sim_seconds = elapsed_s;
    res.completed_requests = completed_measured;
    res.offered_rate_per_s = spec.arrival_rate_per_s;
    if (!spec.arrival_rates.empty()) {
        res.offered_rate_per_s = 0.0;
        for (double r : spec.arrival_rates)
            res.offered_rate_per_s += r;
    }
    res.inference_throughput_ops = inf_useful_ops / elapsed_s;
    res.training_throughput_ops = train_useful_ops / elapsed_s;
    res.mean_latency_s = latency_cycles.mean() * inv_f;
    res.p50_latency_s = latency_cycles.percentile(0.5) * inv_f;
    res.p99_latency_s = latency_cycles.percentile(0.99) * inv_f;
    res.max_latency_s = latency_cycles.max() * inv_f;
    res.mean_service_s = service_cycles.mean() * inv_f;
    res.mmu_breakdown = breakdown;
    res.batches_formed = batches_formed;
    res.batches_incomplete = batches_incomplete;
    res.avg_batch_fill =
        batches_formed ? batch_fill_sum / static_cast<double>(
                                              batches_formed)
                       : 0.0;
    res.dram_utilization = hbm->utilization(events.now());
    res.dram_train_bytes = hbm->bytesMoved(dram::Priority::Low) -
                           dram_lp_snapshot;
    res.host_bytes = host_bytes_measured;
    res.training_iterations = train_iterations_measured;
    res.mmu_busy_cycles = mmu_busy_measured;
    res.simd_busy_cycles = simd_busy_measured;
    for (const auto &svc : services) {
        SimResult::ServiceStats st;
        st.ctx = svc->id;
        st.model_name = svc->desc.model_name;
        st.completed = svc->latency_cycles.count();
        st.mean_latency_s = svc->latency_cycles.mean() * inv_f;
        st.p99_latency_s = svc->latency_cycles.percentile(0.99) * inv_f;
        res.per_service.push_back(st);
    }
    res.faults = fstats;
    res.availability = fstats.availability(elapsed_ticks);
    if (train) {
        res.committed_training_iterations =
            injector && spec.faults.checkpoint.interval_iterations > 0
                ? train->committed_iterations
                : train->iterations;
    }
    if (injector)
        res.fault_trace = injector->trace();
    return res;
}

} // namespace sim
} // namespace equinox

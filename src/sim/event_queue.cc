#include "sim/event_queue.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace equinox
{
namespace sim
{

namespace
{
std::atomic<std::uint64_t> g_dispatched_total{0};
} // namespace

std::uint64_t
globalDispatchedEvents()
{
    return g_dispatched_total.load(std::memory_order_relaxed);
}

void
addGlobalDispatchedEvents(std::uint64_t n)
{
    g_dispatched_total.fetch_add(n, std::memory_order_relaxed);
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    EQX_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
               now_);
    heap.push_back(Entry{when, next_seq++, std::move(cb)});
    std::push_heap(heap.begin(), heap.end(), Later{});
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    std::pop_heap(heap.begin(), heap.end(), Later{});
    // Move the entry out before invoking: the callback may schedule
    // more events (reallocating the heap) and the moved-out closure
    // avoids a copy of its captured state per dispatch.
    Entry e = std::move(heap.back());
    heap.pop_back();
    now_ = e.when;
    ++dispatched_;
    e.cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.front().when <= limit) {
        if (!runOne())
            break;
    }
    if (now_ < limit && heap.empty())
        now_ = limit;
}

} // namespace sim
} // namespace equinox

#include "sim/event_queue.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "sim/blocks/trace.hh"

namespace equinox
{
namespace sim
{

namespace
{
std::atomic<std::uint64_t> g_dispatched_total{0};
} // namespace

std::uint64_t
globalDispatchedEvents()
{
    return g_dispatched_total.load(std::memory_order_relaxed);
}

void
addGlobalDispatchedEvents(std::uint64_t n)
{
    g_dispatched_total.fetch_add(n, std::memory_order_relaxed);
}

void
resetGlobalSimCounters()
{
    g_dispatched_total.store(0, std::memory_order_relaxed);
    resetTraceRecordsDelivered();
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    EQX_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
               now_);
    if (tick_open_ && when == now_) {
        // The running tick's FIFO is open: appending preserves the
        // (tick, seq) order directly because seq is globally monotonic
        // and every same-tick entry with a smaller seq is already in
        // the FIFO (refillFifo drained the heap of this tick).
        fifo_.push_back(Entry{when, next_seq++, std::move(cb)});
    } else {
        if (heap_.size() == heap_.capacity())
            ++heap_reallocs_;
        heap_.push_back(Entry{when, next_seq++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
    noteHighWater();
}

bool
EventQueue::refillFifo()
{
    // Pool reuse: clear() keeps the vector's capacity, so after warmup
    // tick turnover performs no allocation.
    fifo_.clear();
    fifo_head_ = 0;
    if (heap_.empty()) {
        tick_open_ = false;
        return false;
    }
    const Tick t = heap_.front().when;
    now_ = t;
    // Batched same-tick drain: pop every entry for tick t once, in
    // (tick, seq) order. Draining the FIFO afterwards never touches
    // the heap again, and same-tick schedules made by the callbacks
    // append behind fifo_head_ in O(1).
    do {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        fifo_.push_back(std::move(heap_.back()));
        heap_.pop_back();
    } while (!heap_.empty() && heap_.front().when == t);
    tick_open_ = true;
    return true;
}

bool
EventQueue::runOne()
{
    if (fifo_head_ >= fifo_.size() && !refillFifo())
        return false;
    // Move the entry out before invoking: the callback may schedule
    // more events (growing the FIFO) and the moved-out closure avoids
    // a dangling reference into the reallocated vector.
    Callback cb = std::move(fifo_[fifo_head_++].cb);
    ++dispatched_;
    cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        if (fifo_head_ >= fifo_.size()) {
            fifo_.clear();
            fifo_head_ = 0;
            tick_open_ = false;
            if (heap_.empty() || heap_.front().when > limit)
                break;
        } else if (now_ > limit) {
            // A previously opened tick past the limit still has
            // undispatched entries; leave them pending.
            break;
        }
        runOne();
    }
    if (now_ < limit && empty())
        now_ = limit;
}

} // namespace sim
} // namespace equinox

#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace equinox
{
namespace sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    EQX_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
               now_);
    heap.push(Entry{when, next_seq++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    // The callback may schedule more events; move it out first.
    Entry e = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    now_ = e.when;
    ++dispatched_;
    e.cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.top().when <= limit) {
        if (!runOne())
            break;
    }
    if (now_ < limit && heap.empty())
        now_ = limit;
}

} // namespace sim
} // namespace equinox

/**
 * @file
 * On-chip SRAM buffers with banked organisation and per-service space
 * sharing (section 3.1/3.2).
 *
 * Capacity is allocated per hardware context at service-installation time;
 * installation fails when a service's footprint does not fit. The bank and
 * port structure is used by the synthesis proxy (area/energy scale with
 * bank width) and by a deterministic port-contention estimate.
 */

#ifndef EQUINOX_SIM_BUFFER_HH
#define EQUINOX_SIM_BUFFER_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace equinox
{
namespace sim
{

/** A banked SRAM buffer with per-context allocations. */
class SramBuffer
{
  public:
    /**
     * @param buffer_name for diagnostics
     * @param capacity total bytes
     * @param banks bank count
     * @param read_ports read ports per bank
     * @param write_ports write ports per bank
     */
    SramBuffer(std::string buffer_name, ByteCount capacity, unsigned banks,
               unsigned read_ports, unsigned write_ports);

    /**
     * Reserve @p bytes for context @p ctx.
     * @return false when the remaining capacity is insufficient.
     */
    bool allocate(ContextId ctx, ByteCount bytes);

    /** Release a context's reservation (idempotent). */
    void release(ContextId ctx);

    ByteCount capacity() const { return capacity_; }
    ByteCount allocated() const { return allocated_; }
    ByteCount available() const { return capacity_ - allocated_; }
    ByteCount allocationOf(ContextId ctx) const;

    unsigned banks() const { return banks_; }
    const std::string &name() const { return name_; }

    /**
     * Deterministic port-contention estimate: extra cycles needed to
     * serve @p reads read and @p writes write streams that overlap for
     * @p overlap_cycles, given the per-bank port counts. Streams beyond
     * the available ports serialise.
     */
    Tick contentionCycles(unsigned reads, unsigned writes,
                          Tick overlap_cycles) const;

  private:
    std::string name_;
    ByteCount capacity_;
    unsigned banks_;
    unsigned read_ports_;
    unsigned write_ports_;
    ByteCount allocated_ = 0;
    std::map<ContextId, ByteCount> allocations;
};

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_BUFFER_HH

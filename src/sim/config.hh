/**
 * @file
 * Accelerator configuration: array geometry, clock, buffers, batching and
 * scheduling policies -- everything section 3 and 5 of the paper fix per
 * design point.
 */

#ifndef EQUINOX_SIM_CONFIG_HH
#define EQUINOX_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arith/gemm.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "dram/hbm.hh"
#include "dram/host_link.hh"
#include "mem/mem_config.hh"

namespace equinox
{
namespace sim
{

/** Batch-formation policy (section 3.1). */
enum class BatchPolicy
{
    Static,   //!< wait for a full batch
    Adaptive, //!< issue padded batches after a timeout
};

/** Execution-unit scheduling policy (sections 3.2 and 6). */
enum class SchedPolicy
{
    InferenceOnly, //!< baseline: training never scheduled
    Priority,      //!< hardware: round-robin at low load, inference-only
                   //!< during load spikes
    FairShare,     //!< hardware: always round-robin
    SoftwareBatch, //!< software control plane: batch-granularity decisions
                   //!< with a turnaround delay, training unpreemptible
};

const char *batchPolicyName(BatchPolicy p);
const char *schedPolicyName(SchedPolicy p);

/** One actionable problem validate() found with a configuration. */
struct ConfigError
{
    std::string field;   //!< the offending knob, e.g. "frequency_hz"
    std::string message; //!< what is wrong and what to do about it
};

/** A full accelerator design point. */
struct AcceleratorConfig
{
    std::string name = "equinox_500us";

    // -- Matrix multiply unit (m systolic arrays of n x n w-wide PEs) --
    unsigned n = 143;
    unsigned m = 4;
    unsigned w = 4;
    double frequency_hz = units::MHz(610);
    arith::Encoding encoding = arith::Encoding::Hbfp8;

    // -- On-chip memory (section 5 split of the 75 MB budget) ---------
    ByteCount act_buffer_bytes = units::MiB(20);
    ByteCount weight_buffer_bytes = units::MiB(50);
    ByteCount instr_buffer_bytes = units::KiB(32);
    ByteCount simd_rf_bytes = units::MiB(5);
    /** Training staging share of the activation+weight buffers (<2%). */
    double train_staging_frac = 0.02;

    // -- SIMD unit ----------------------------------------------------
    unsigned simd_lanes = 4096;

    // -- Batching -------------------------------------------------------
    BatchPolicy batch_policy = BatchPolicy::Adaptive;
    /** Adaptive timeout as a multiple of the model's service time. */
    double batch_timeout_mult = 2.0;

    // -- Scheduling -----------------------------------------------------
    SchedPolicy sched_policy = SchedPolicy::Priority;
    /** Unstarted inference batches that trigger the load-spike freeze. */
    unsigned spike_threshold_batches = 2;
    /** Software-scheduler decision turnaround. */
    double software_turnaround_s = 20e-6;

    // -- Off-chip interfaces ---------------------------------------------
    dram::PriorityLink::Config dram = dram::hbmDefaultConfig();
    dram::PriorityLink::Config host = dram::hostDefaultConfig();

    // -- Memory hierarchy in front of the HBM interface -------------------
    /**
     * Default-constructed = passthrough: byte-identical to the flat
     * HBM path (the golden digests pin this). Enabling a component
     * (scratchpad banks, LLC, write combining, a prefetcher) is an
     * explicit per-design-point opt-in; see mem/mem_config.hh.
     */
    mem::MemoryHierarchyConfig mem;

    /** MACs the MMU retires per cycle: m * n^2 * w. */
    std::uint64_t
    macsPerCycle() const
    {
        return static_cast<std::uint64_t>(m) * n * n * w;
    }

    /** Peak arithmetic rate in ops/s (2 ops per MAC), Eq. 3. */
    double
    peakOpRate() const
    {
        return 2.0 * static_cast<double>(macsPerCycle()) * frequency_hz;
    }

    /** Inner-dimension slots of one tile instruction (n * w). */
    std::uint32_t tileK() const { return n * w; }

    /** Output-column slots in mode 1 (m * n). */
    std::uint32_t tileCols() const { return static_cast<std::uint32_t>(m) *
                                            n; }

    /** Row slots in mode 2 (m * n). */
    std::uint32_t tileRowsMode2() const { return tileCols(); }

    /** Training staging-buffer capacity in bytes. */
    ByteCount
    stagingBytes() const
    {
        return static_cast<ByteCount>(
            train_staging_frac *
            static_cast<double>(act_buffer_bytes + weight_buffer_bytes));
    }

    /**
     * Storage bytes per matrix value in this datapath's encoding:
     * hbfp8 stores an 8-bit mantissa plus a 12-bit exponent shared by a
     * block (we charge it against a 256-value block), bfloat16 stores 16
     * bits, fp32 32 bits.
     */
    double bytesPerValue() const;

    /** Systolic-array drain latency (fill/empty of the n-deep pipeline). */
    Tick drainCycles() const { return 2 * static_cast<Tick>(n); }

    /**
     * Check every user-settable knob and return one actionable error
     * per problem (empty = usable). Callers building an accelerator
     * from user input should report these and exit rather than letting
     * internal invariants panic later.
     */
    std::vector<ConfigError> validate() const;
};

/** Render a validation report as "field: message" lines. */
std::string formatConfigErrors(const std::vector<ConfigError> &errors);

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_CONFIG_HH

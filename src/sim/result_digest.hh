/**
 * @file
 * FNV-1a digest over every observable field of a SimResult, in a
 * fixed documented order.
 *
 * This fold is LOAD-BEARING: the golden identity constants in
 * tests/test_refactor_identity.cc were recorded through it (via
 * tests/sim_digest.hh, which delegates here), and the fast-forward
 * exactness harness (Accelerator check-exact mode, the fastpath fuzz
 * suite) compares fast-forwarded and cycle-accurate runs through it.
 * Never reorder, drop, or add fields without re-recording the goldens
 * -- and the goldens' policy is that they are only re-recorded when
 * simulated behaviour deliberately changes.
 *
 * Deliberately NOT folded: SimResult::events_dispatched and
 * events_inlined. They describe the simulator's execution strategy,
 * not the simulated machine -- events_inlined differs between a
 * fast-forwarded and a cycle-accurate run of the same scenario by
 * design, and the whole point of the digest is that nothing else does.
 */

#ifndef EQUINOX_SIM_RESULT_DIGEST_HH
#define EQUINOX_SIM_RESULT_DIGEST_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "sim/accelerator_types.hh"

namespace equinox
{
namespace sim
{

/** FNV-1a over the exact bit patterns of the accumulated fields. */
class ResultDigest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 14695981039346656037ull;
};

/** Fold every SimResult field, in a fixed documented order. */
inline void
foldSimResult(ResultDigest &dg, const SimResult &r)
{
    dg.d(r.sim_seconds);
    dg.u64(r.completed_requests);
    dg.d(r.offered_rate_per_s);
    dg.d(r.inference_throughput_ops);
    dg.d(r.training_throughput_ops);
    dg.d(r.mean_latency_s);
    dg.d(r.p50_latency_s);
    dg.d(r.p99_latency_s);
    dg.d(r.max_latency_s);
    dg.d(r.mean_service_s);
    for (unsigned c = 0;
         c < static_cast<unsigned>(stats::CycleClass::NumClasses); ++c)
        dg.d(r.mmu_breakdown.get(static_cast<stats::CycleClass>(c)));
    dg.u64(r.batches_formed);
    dg.u64(r.batches_incomplete);
    dg.d(r.avg_batch_fill);
    dg.d(r.dram_utilization);
    dg.u64(r.dram_train_bytes);
    dg.u64(r.host_bytes);
    dg.u64(r.training_iterations);
    dg.d(r.mmu_busy_cycles);
    dg.d(r.simd_busy_cycles);
    for (const auto &s : r.per_service) {
        dg.u64(s.ctx);
        dg.u64(s.completed);
        dg.d(s.mean_latency_s);
        dg.d(s.p99_latency_s);
    }
    dg.u64(r.faults.dram_corrected);
    dg.u64(r.faults.dram_uncorrectable);
    dg.u64(r.faults.host_drops);
    dg.u64(r.faults.host_corruptions);
    dg.u64(r.faults.mmu_hangs);
    dg.u64(r.faults.host_retries);
    dg.u64(r.faults.host_give_ups);
    dg.u64(r.faults.watchdog_resets);
    dg.u64(r.faults.checkpoints_written);
    dg.u64(r.faults.rollbacks);
    dg.u64(r.faults.lost_training_iterations);
    dg.u64(r.faults.shed_requests);
    dg.u64(r.faults.storms_entered);
    dg.u64(r.faults.downtime_cycles);
    dg.u64(r.faults.recovery_cycles.count());
    dg.d(r.faults.recovery_cycles.mean());
    dg.d(r.faults.recovery_cycles.max());
    dg.d(r.availability);
    dg.u64(r.committed_training_iterations);
    for (const auto &f : r.fault_trace) {
        dg.u64(f.tick);
        dg.u64(static_cast<std::uint64_t>(f.kind));
        dg.u64(f.bytes);
    }
}

/** Digest one SimResult. */
inline std::uint64_t
resultDigest(const SimResult &r)
{
    ResultDigest dg;
    foldSimResult(dg, r);
    return dg.value();
}

} // namespace sim
} // namespace equinox

#endif // EQUINOX_SIM_RESULT_DIGEST_HH

#include "sim/config.hh"

namespace equinox
{
namespace sim
{

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Static: return "static";
      case BatchPolicy::Adaptive: return "adaptive";
      default: return "?";
    }
}

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::InferenceOnly: return "inference-only";
      case SchedPolicy::Priority: return "priority";
      case SchedPolicy::FairShare: return "fair-share";
      case SchedPolicy::SoftwareBatch: return "software-batch";
      default: return "?";
    }
}

double
AcceleratorConfig::bytesPerValue() const
{
    switch (encoding) {
      case arith::Encoding::Hbfp8:
        // 8-bit mantissa + 12-bit exponent shared by a 256-value block.
        return (8.0 + 12.0 / 256.0) / 8.0;
      case arith::Encoding::Bfloat16:
        return 2.0;
      case arith::Encoding::Fp32:
        return 4.0;
      default:
        return 4.0;
    }
}

} // namespace sim
} // namespace equinox

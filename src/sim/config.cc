#include "sim/config.hh"

#include <sstream>

namespace equinox
{
namespace sim
{

const char *
batchPolicyName(BatchPolicy p)
{
    switch (p) {
      case BatchPolicy::Static: return "static";
      case BatchPolicy::Adaptive: return "adaptive";
      default: return "?";
    }
}

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::InferenceOnly: return "inference-only";
      case SchedPolicy::Priority: return "priority";
      case SchedPolicy::FairShare: return "fair-share";
      case SchedPolicy::SoftwareBatch: return "software-batch";
      default: return "?";
    }
}

double
AcceleratorConfig::bytesPerValue() const
{
    switch (encoding) {
      case arith::Encoding::Hbfp8:
        // 8-bit mantissa + 12-bit exponent shared by a 256-value block.
        return (8.0 + 12.0 / 256.0) / 8.0;
      case arith::Encoding::Bfloat16:
        return 2.0;
      case arith::Encoding::Fp32:
        return 4.0;
      default:
        return 4.0;
    }
}

std::vector<ConfigError>
AcceleratorConfig::validate() const
{
    std::vector<ConfigError> errors;
    auto bad = [&errors](std::string field, auto &&...parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        errors.push_back({std::move(field), oss.str()});
    };

    if (n == 0 || m == 0 || w == 0) {
        bad("n/m/w", "MMU geometry must be positive (got n=", n, " m=", m,
            " w=", w, "); the paper's design points use n in [64, 256], "
            "m in [1, 8], w in [1, 8]");
    }
    if (frequency_hz <= 0.0) {
        bad("frequency_hz", "clock must be positive (got ", frequency_hz,
            "); e.g. units::MHz(610) for the Equinox_500us design");
    }
    if (act_buffer_bytes == 0 || weight_buffer_bytes == 0) {
        bad("act_buffer_bytes/weight_buffer_bytes",
            "on-chip buffers cannot be empty; services install weights "
            "and activations into them at startup");
    }
    if (instr_buffer_bytes == 0) {
        bad("instr_buffer_bytes",
            "instruction buffer cannot be empty; compiled programs are "
            "resident for the lifetime of a service");
    }
    if (simd_lanes == 0) {
        bad("simd_lanes", "the SIMD unit needs at least one lane; every "
            "step's epilogue (activations, recurrences) runs there");
    }
    if (train_staging_frac < 0.0 || train_staging_frac >= 1.0) {
        bad("train_staging_frac", "training staging share must be in "
            "[0, 1) of the activation+weight buffers (got ",
            train_staging_frac, "); the paper carves out <2% (0.02)");
    }
    if (batch_timeout_mult <= 0.0 &&
        batch_policy == BatchPolicy::Adaptive) {
        bad("batch_timeout_mult", "adaptive batching needs a positive "
            "timeout multiple of the service time (got ",
            batch_timeout_mult, "); use BatchPolicy::Static to always "
            "wait for full batches instead");
    }
    if (spike_threshold_batches == 0 &&
        sched_policy == SchedPolicy::Priority) {
        bad("spike_threshold_batches", "the priority scheduler's spike "
            "freeze triggers at >= this many unstarted batches; 0 would "
            "freeze training permanently -- use SchedPolicy::"
            "InferenceOnly if that is the intent");
    }
    if (software_turnaround_s < 0.0) {
        bad("software_turnaround_s", "software-scheduler turnaround "
            "cannot be negative (got ", software_turnaround_s, ")");
    }
    if (dram.bandwidth_bytes_per_s <= 0.0) {
        bad("dram.bandwidth_bytes_per_s", "DRAM bandwidth must be "
            "positive (got ", dram.bandwidth_bytes_per_s,
            "); e.g. 1e12 for an HBM2 stack");
    }
    if (host.bandwidth_bytes_per_s <= 0.0) {
        bad("host.bandwidth_bytes_per_s", "host-link bandwidth must be "
            "positive (got ", host.bandwidth_bytes_per_s,
            "); e.g. 32e9 for PCIe gen4 x16");
    }
    if (dram.latency_s < 0.0 || host.latency_s < 0.0) {
        bad("dram.latency_s/host.latency_s",
            "interface latencies cannot be negative");
    }
    for (const auto &me : mem.validate())
        errors.push_back({"mem." + me.field, me.message});
    return errors;
}

std::string
formatConfigErrors(const std::vector<ConfigError> &errors)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i)
            oss << '\n';
        oss << "  " << errors[i].field << ": " << errors[i].message;
    }
    return oss.str();
}

} // namespace sim
} // namespace equinox

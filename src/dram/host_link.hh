/**
 * @file
 * The host (PCIe-class) interface model: request/response DMA and the
 * parameter-server traffic of distributed training ride on this link.
 */

#ifndef EQUINOX_DRAM_HOST_LINK_HH
#define EQUINOX_DRAM_HOST_LINK_HH

#include "dram/link.hh"

namespace equinox
{
namespace dram
{

/** Default host-interface parameters (PCIe gen4 x16 class). */
PriorityLink::Config hostDefaultConfig();

/** The accelerator's host interface. */
class HostLink : public PriorityLink
{
  public:
    explicit HostLink(double frequency_hz,
                      const Config &config = hostDefaultConfig())
        : PriorityLink(config, frequency_hz)
    {}
};

} // namespace dram
} // namespace equinox

#endif // EQUINOX_DRAM_HOST_LINK_HH

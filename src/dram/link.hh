/**
 * @file
 * A bandwidth-and-latency link model with two priority classes, used for
 * both the HBM interface and the host (PCIe) interface.
 *
 * The paper validates its DRAM model against DRAMsim in the throughput-
 * and latency-limited regimes for 512-bit blocks; this model reproduces
 * exactly those two regimes: every transfer occupies the link's bandwidth
 * for bytes/bandwidth seconds after queuing, plus a fixed access latency.
 * High-priority (inference/host-critical) transfers reserve capacity ahead
 * of low-priority (training prefetch) ones.
 */

#ifndef EQUINOX_DRAM_LINK_HH
#define EQUINOX_DRAM_LINK_HH

#include <cstdint>

#include "common/types.hh"

namespace equinox
{
namespace dram
{

/** Transfer priority class. */
enum class Priority
{
    High, //!< inference-critical traffic
    Low,  //!< training / best-effort traffic
};

/** A shared link with queuing, latency and priority reservation. */
class PriorityLink
{
  public:
    struct Config
    {
        double bandwidth_bytes_per_s = 1e12; //!< aggregate bandwidth
        double latency_s = 120e-9;           //!< fixed per-access latency
        unsigned channels = 8;               //!< informational
    };

    /**
     * @param config link parameters
     * @param frequency_hz accelerator clock, to express time in cycles
     */
    PriorityLink(const Config &config, double frequency_hz);

    /**
     * Enqueue a transfer of @p bytes at @p now.
     * @return the tick at which the last byte is available.
     */
    Tick transfer(Tick now, ByteCount bytes, Priority priority);

    /** Earliest tick at which a transfer of class @p p could begin. */
    Tick nextFree(Priority p) const;

    /** Bytes transferred so far in class @p p. */
    ByteCount bytesMoved(Priority p) const;

    /** Cycles needed to stream @p bytes at full bandwidth. */
    Tick streamCycles(ByteCount bytes) const;

    /** Link busy-fraction over [0, elapsed]. */
    double utilization(Tick elapsed) const;

    /** Bytes the link can move per cycle. */
    double bytesPerCycle() const { return bytes_per_cycle; }

    /** Fixed access latency in cycles. */
    Tick latencyCycles() const { return latency_cycles; }

    void reset();

  private:
    Config cfg;
    double bytes_per_cycle;
    Tick latency_cycles;
    Tick hp_free = 0;       //!< next tick with free capacity for HP
    Tick lp_free = 0;       //!< next tick with free capacity for LP
    Tick busy_cycles = 0;
    ByteCount hp_bytes = 0;
    ByteCount lp_bytes = 0;
};

} // namespace dram
} // namespace equinox

#endif // EQUINOX_DRAM_LINK_HH

/**
 * @file
 * A bandwidth-and-latency link model with two priority classes, used for
 * both the HBM interface and the host (PCIe) interface.
 *
 * The paper validates its DRAM model against DRAMsim in the throughput-
 * and latency-limited regimes for 512-bit blocks; this model reproduces
 * exactly those two regimes: every transfer occupies the link's bandwidth
 * for bytes/bandwidth seconds after queuing, plus a fixed access latency.
 * High-priority (inference/host-critical) transfers reserve capacity ahead
 * of low-priority (training prefetch) ones.
 */

#ifndef EQUINOX_DRAM_LINK_HH
#define EQUINOX_DRAM_LINK_HH

#include <cstdint>

#include "common/types.hh"

namespace equinox
{
namespace dram
{

/** Transfer priority class. */
enum class Priority
{
    High, //!< inference-critical traffic
    Low,  //!< training / best-effort traffic
};

/** What the fault layer did to one transfer (all-clear by default). */
struct TransferFault
{
    /** Extra completion latency (e.g. ECC correction stalls). */
    Tick extra_cycles = 0;
    /** Payload never arrived (drop) or failed its CRC (corruption);
     *  either way the caller must retry the transfer. */
    bool failed = false;
    /** ECC flagged a detected-uncorrectable data error. */
    bool uncorrectable = false;
};

/**
 * Fault-injection hook consulted once per transfer. Implemented by the
 * fault subsystem; links without a hook attached behave exactly as
 * before the fault layer existed.
 */
class LinkFaultHook
{
  public:
    virtual ~LinkFaultHook() = default;
    /** Decide the fate of a transfer of @p bytes issued at @p now. */
    virtual TransferFault onTransfer(Tick now, ByteCount bytes,
                                     Priority p) = 0;
};

/** A shared link with queuing, latency and priority reservation. */
class PriorityLink
{
  public:
    struct Config
    {
        double bandwidth_bytes_per_s = 1e12; //!< aggregate bandwidth
        double latency_s = 120e-9;           //!< fixed per-access latency
        unsigned channels = 8;               //!< informational
    };

    /**
     * @param config link parameters
     * @param frequency_hz accelerator clock, to express time in cycles
     */
    PriorityLink(const Config &config, double frequency_hz);

    /**
     * Enqueue a transfer of @p bytes at @p now.
     * @return the tick at which the last byte is available.
     */
    Tick transfer(Tick now, ByteCount bytes, Priority priority);

    /**
     * Like transfer(), but reports what the attached fault hook did to
     * the access through @p fault (untouched when no hook is attached).
     * A failed transfer still occupies the link -- the bytes moved (or
     * timed out) even though the payload is unusable.
     */
    Tick transfer(Tick now, ByteCount bytes, Priority priority,
                  TransferFault *fault);

    /** Attach (or clear, with nullptr) the fault-injection hook. */
    void setFaultHook(LinkFaultHook *hook) { fault_hook = hook; }

    /** Earliest tick at which a transfer of class @p p could begin. */
    Tick nextFree(Priority p) const;

    /** Bytes transferred so far in class @p p. */
    ByteCount bytesMoved(Priority p) const;

    /** Cycles needed to stream @p bytes at full bandwidth. */
    Tick streamCycles(ByteCount bytes) const;

    /** Link busy-fraction over [0, elapsed]. */
    double utilization(Tick elapsed) const;

    /** Bytes the link can move per cycle. */
    double bytesPerCycle() const { return bytes_per_cycle; }

    /** Fixed access latency in cycles. */
    Tick latencyCycles() const { return latency_cycles; }

    void reset();

  private:
    Config cfg;
    double bytes_per_cycle;
    Tick latency_cycles;
    LinkFaultHook *fault_hook = nullptr;
    Tick hp_free = 0;       //!< next tick with free capacity for HP
    Tick lp_free = 0;       //!< next tick with free capacity for LP
    Tick busy_cycles = 0;
    ByteCount hp_bytes = 0;
    ByteCount lp_bytes = 0;
};

} // namespace dram
} // namespace equinox

#endif // EQUINOX_DRAM_LINK_HH

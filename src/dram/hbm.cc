#include "dram/hbm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace equinox
{
namespace dram
{

PriorityLink::Config
hbmDefaultConfig()
{
    PriorityLink::Config cfg;
    cfg.bandwidth_bytes_per_s = 1e12; // 1 TB/s HBM stack
    cfg.latency_s = 120e-9;
    cfg.channels = 8;
    return cfg;
}

PriorityLink::PriorityLink(const Config &config, double frequency_hz)
    : cfg(config)
{
    EQX_ASSERT(frequency_hz > 0.0, "link needs a positive clock");
    EQX_ASSERT(cfg.bandwidth_bytes_per_s > 0.0, "link needs bandwidth");
    bytes_per_cycle = cfg.bandwidth_bytes_per_s / frequency_hz;
    latency_cycles = static_cast<Tick>(cfg.latency_s * frequency_hz + 0.5);
}

Tick
PriorityLink::streamCycles(ByteCount bytes) const
{
    double cycles = static_cast<double>(bytes) / bytes_per_cycle;
    auto whole = static_cast<Tick>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

Tick
PriorityLink::transfer(Tick now, ByteCount bytes, Priority priority)
{
    return transfer(now, bytes, priority, nullptr);
}

Tick
PriorityLink::transfer(Tick now, ByteCount bytes, Priority priority,
                       TransferFault *fault)
{
    Tick cycles = streamCycles(bytes);
    Tick start;
    if (priority == Priority::High) {
        // High-priority traffic waits only behind other high-priority
        // transfers; its capacity is debited from the low-priority
        // ledger so aggregate bandwidth is conserved -- queued
        // low-priority work restarts later by the full preemption,
        // matching an arbiter that steals bursts from the loser class.
        start = std::max(now, hp_free);
        hp_free = start + cycles;
        lp_free = std::max(lp_free, start) + cycles;
        hp_bytes += bytes;
    } else {
        start = std::max(now, lp_free);
        lp_free = start + cycles;
        lp_bytes += bytes;
    }
    busy_cycles += cycles;
    Tick finish = start + cycles + latency_cycles;
    if (fault_hook) {
        TransferFault f = fault_hook->onTransfer(now, bytes, priority);
        finish += f.extra_cycles;
        if (fault)
            *fault = f;
    }
    return finish;
}

Tick
PriorityLink::nextFree(Priority p) const
{
    return p == Priority::High ? hp_free : lp_free;
}

ByteCount
PriorityLink::bytesMoved(Priority p) const
{
    return p == Priority::High ? hp_bytes : lp_bytes;
}

double
PriorityLink::utilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(busy_cycles) /
                             static_cast<double>(elapsed));
}

void
PriorityLink::reset()
{
    hp_free = lp_free = 0;
    busy_cycles = 0;
    hp_bytes = lp_bytes = 0;
}

} // namespace dram
} // namespace equinox

#include "dram/host_link.hh"

namespace equinox
{
namespace dram
{

PriorityLink::Config
hostDefaultConfig()
{
    PriorityLink::Config cfg;
    cfg.bandwidth_bytes_per_s = 32e9; // PCIe gen4 x16 class
    cfg.latency_s = 1.5e-6;
    cfg.channels = 1;
    return cfg;
}

} // namespace dram
} // namespace equinox

/**
 * @file
 * The HBM stack model: a PriorityLink with HBM2-class defaults (1 TB/s,
 * the largest commercially available bandwidth the paper provisions for).
 */

#ifndef EQUINOX_DRAM_HBM_HH
#define EQUINOX_DRAM_HBM_HH

#include "dram/link.hh"

namespace equinox
{
namespace dram
{

/** Default HBM parameters used across the evaluation. */
PriorityLink::Config hbmDefaultConfig();

/** The accelerator's HBM interface. */
class HbmModel : public PriorityLink
{
  public:
    explicit HbmModel(double frequency_hz,
                      const Config &config = hbmDefaultConfig())
        : PriorityLink(config, frequency_hz)
    {}
};

} // namespace dram
} // namespace equinox

#endif // EQUINOX_DRAM_HBM_HH

/**
 * @file
 * Compiled-program representation executed by the simulator.
 *
 * The workload compiler lowers a DNN model into ISA instructions grouped
 * into dependence steps (e.g. one LSTM time step): instructions inside a
 * step pipeline back-to-back through the MMU; the next step becomes ready
 * only after the previous step's results pass through the SIMD unit
 * (recurrences, activations) and the array drains.
 *
 * For simulation efficiency each step additionally carries an aggregated
 * TileWork summary; the summary is derived from the instruction list by
 * makeStep() and is what the event-driven simulator executes. Tests verify
 * the aggregation against the raw instruction list.
 */

#ifndef EQUINOX_ISA_PROGRAM_HH
#define EQUINOX_ISA_PROGRAM_HH

#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace equinox
{
namespace isa
{

/** Aggregated MMU work of one dependence step. */
struct TileWork
{
    /** ISA MatMul instructions aggregated here. */
    std::uint32_t instructions = 0;
    /** MMU busy cycles to issue all of them back-to-back. */
    Tick occupancy = 0;
    /** Data-carrying batch rows the step was compiled for. */
    std::uint32_t rows_used = 0;
    /** Physical row slots per instruction (n in mode 1). */
    std::uint32_t rows_slots = 0;
    /**
     * Valid-slot fraction of the ALU time, assuming all rows_used rows
     * carry data: captures partial-tile (dimension-mismatch) waste.
     */
    double geom_frac = 1.0;
    /** Ops (2 x MACs) on data rows when all rows_used rows are real. */
    OpCount real_ops = 0;
    /** Operand bytes that must be staged from DRAM before issue. */
    ByteCount stream_bytes = 0;
};

/** One dependence step: MMU work plus the serialising epilogue. */
struct StepBlock
{
    TileWork mmu;
    /** SIMD cycles that must complete before the next step can issue. */
    Tick simd_cycles = 0;
    /** Systolic-array drain before results are visible downstream. */
    Tick drain_cycles = 0;
    /** Host-interface bytes attributable to this step (tracked only). */
    ByteCount host_bytes = 0;
    /** Result bytes written back to DRAM after the step (training). */
    ByteCount store_bytes = 0;
};

/** A model lowered for one accelerator configuration. */
struct CompiledProgram
{
    std::string name;
    std::vector<StepBlock> steps;
    /** Batch rows per request group (n for mode-1 inference). */
    std::uint32_t batch_rows = 1;
    /** True when per-request dummy scaling applies (inference). */
    bool scale_rows_by_batch = true;

    /** Sum of per-step MMU occupancies. */
    Tick mmuBusyCycles() const;

    /** Single-job latency: occupancy + SIMD + drain over all steps. */
    Tick serviceCycles() const;

    /** Ops on real data with all batch_rows rows real. */
    OpCount totalRealOps() const;

    /** Ops contributed by one real request (totalRealOps / batch_rows). */
    double opsPerRequest() const;

    /** Total DRAM-staged bytes over all steps. */
    ByteCount totalStreamBytes() const;

    /** Total ISA MatMul instructions. */
    std::uint64_t totalInstructions() const;
};

/**
 * Aggregate a step's MatMul instructions into a TileWork summary.
 *
 * @param insts the step's MatMul instructions
 * @param macs_per_cycle the array's MAC throughput (m * n^2 * w)
 * @param stream_bytes DRAM bytes that must be staged for this step
 */
TileWork makeTileWork(std::span<const Instruction> insts,
                      std::uint64_t macs_per_cycle,
                      ByteCount stream_bytes);

} // namespace isa
} // namespace equinox

#endif // EQUINOX_ISA_PROGRAM_HH

/**
 * @file
 * The accelerator's instruction set (section 3.1 of the paper).
 *
 * The ISA covers matrix-vector multiplication, convolution (lowered by the
 * im2col unit), vector-vector operations, activation, normalisation and
 * pooling on the SIMD unit, plus data movement between DRAM, host and the
 * on-chip buffers. Equinox overloads the SIMD opcodes with derivative and
 * loss calculations to support training (section 3.2).
 */

#ifndef EQUINOX_ISA_INSTRUCTION_HH
#define EQUINOX_ISA_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"

namespace equinox
{
namespace isa
{

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    /** One activation tile row times m weight tiles on the MMU. */
    MatMul,
    /** Add intermediate output tiles (issued x times per output tile). */
    Accumulate,
    /** Elementwise SIMD op: activation, normalisation, pooling, ... */
    VectorOp,
    /** Training-overloaded SIMD op: derivative / loss calculation. */
    VectorTrainOp,
    /** Lower a convolution window into matrix form. */
    Im2col,
    /** DRAM -> buffer transfer. */
    LoadDram,
    /** Buffer -> DRAM transfer. */
    StoreDram,
    /** Host -> buffer transfer. */
    LoadHost,
    /** Buffer -> host transfer. */
    StoreHost,
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** True for opcodes executed by the MMU. */
bool isMmuOp(Opcode op);

/** True for opcodes executed by the SIMD unit. */
bool isSimdOp(Opcode op);

/** True for data-movement opcodes. */
bool isDataMoveOp(Opcode op);

/**
 * One decoded instruction.
 *
 * Fields are a union-of-purposes kept flat for simplicity: MatMul uses the
 * tile-geometry fields, SIMD ops use elems, data movement uses bytes.
 */
struct Instruction
{
    Opcode op = Opcode::MatMul;
    ContextId ctx = 0;

    // -- MatMul geometry ---------------------------------------------
    /** Batch rows carrying real request data. */
    std::uint32_t rows_real = 0;
    /** Batch rows carrying adaptive-batching padding. */
    std::uint32_t rows_dummy = 0;
    /** Physical row slots of the array (n in mode 1, m*n in mode 2). */
    std::uint32_t rows_slots = 0;
    /** Valid inner-dimension elements in this tile (<= k_slots). */
    std::uint32_t k_valid = 0;
    /** Physical inner-dimension slots (n*w). */
    std::uint32_t k_slots = 0;
    /** Valid output columns (<= col_slots). */
    std::uint32_t cols_valid = 0;
    /** Physical output-column slots (m*n in mode 1, n in mode 2). */
    std::uint32_t cols_slots = 0;

    // -- SIMD --------------------------------------------------------
    /** Elementwise operands processed. */
    std::uint64_t elems = 0;

    // -- Data movement -----------------------------------------------
    /** Bytes moved by Load/Store ops. */
    ByteCount bytes = 0;

    /** MMU occupancy in cycles (the array streams one row slot/cycle). */
    Tick mmuOccupancy() const { return rows_slots; }

    /** MACs performed on real request data. */
    std::uint64_t realMacs() const;

    /** MACs performed on padding rows. */
    std::uint64_t dummyMacs() const;

    /** Total ALU slots consumed (occupancy x array MAC width). */
    std::uint64_t totalAluSlots() const;
};

} // namespace isa
} // namespace equinox

#endif // EQUINOX_ISA_INSTRUCTION_HH

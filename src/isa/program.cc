#include "isa/program.hh"

#include "common/logging.hh"

namespace equinox
{
namespace isa
{

Tick
CompiledProgram::mmuBusyCycles() const
{
    Tick t = 0;
    for (const auto &s : steps)
        t += s.mmu.occupancy;
    return t;
}

Tick
CompiledProgram::serviceCycles() const
{
    Tick t = 0;
    for (const auto &s : steps)
        t += s.mmu.occupancy + s.simd_cycles + s.drain_cycles;
    return t;
}

OpCount
CompiledProgram::totalRealOps() const
{
    OpCount ops = 0;
    for (const auto &s : steps)
        ops += s.mmu.real_ops;
    return ops;
}

double
CompiledProgram::opsPerRequest() const
{
    EQX_ASSERT(batch_rows > 0, "program without batch rows");
    return static_cast<double>(totalRealOps()) /
           static_cast<double>(batch_rows);
}

ByteCount
CompiledProgram::totalStreamBytes() const
{
    ByteCount b = 0;
    for (const auto &s : steps)
        b += s.mmu.stream_bytes;
    return b;
}

std::uint64_t
CompiledProgram::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &s : steps)
        n += s.mmu.instructions;
    return n;
}

TileWork
makeTileWork(std::span<const Instruction> insts,
             std::uint64_t macs_per_cycle, ByteCount stream_bytes)
{
    EQX_ASSERT(macs_per_cycle > 0, "MMU with zero MAC throughput");

    TileWork tw;
    tw.stream_bytes = stream_bytes;

    std::uint64_t total_slots = 0;
    std::uint64_t valid_slots = 0;
    std::uint64_t real_macs = 0;
    for (const auto &inst : insts) {
        EQX_ASSERT(isMmuOp(inst.op), "non-MMU instruction in TileWork: ",
                   opcodeName(inst.op));
        EQX_ASSERT(inst.k_valid <= inst.k_slots &&
                       inst.cols_valid <= inst.cols_slots &&
                       inst.rows_real + inst.rows_dummy <= inst.rows_slots,
                   "instruction geometry exceeds physical slots");
        ++tw.instructions;
        total_slots += inst.totalAluSlots();
        std::uint64_t data_rows = inst.rows_real + inst.rows_dummy;
        valid_slots += data_rows *
                       static_cast<std::uint64_t>(inst.k_valid) *
                       inst.cols_valid;
        real_macs += inst.realMacs() + inst.dummyMacs();
        tw.rows_used = std::max(tw.rows_used,
                                inst.rows_real + inst.rows_dummy);
        tw.rows_slots = std::max(tw.rows_slots, inst.rows_slots);
    }

    tw.occupancy = (total_slots + macs_per_cycle - 1) / macs_per_cycle;
    tw.geom_frac = total_slots
                       ? static_cast<double>(valid_slots) /
                             static_cast<double>(total_slots)
                       : 0.0;
    // real_ops assumes every data row is real; the simulator rescales by
    // the actual real-request count of the batch.
    tw.real_ops = 2 * real_macs;
    return tw;
}

} // namespace isa
} // namespace equinox

#include "isa/instruction.hh"

#include "common/logging.hh"

namespace equinox
{
namespace isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::MatMul: return "matmul";
      case Opcode::Accumulate: return "accum";
      case Opcode::VectorOp: return "vop";
      case Opcode::VectorTrainOp: return "vtrain";
      case Opcode::Im2col: return "im2col";
      case Opcode::LoadDram: return "ld.dram";
      case Opcode::StoreDram: return "st.dram";
      case Opcode::LoadHost: return "ld.host";
      case Opcode::StoreHost: return "st.host";
      default: return "?";
    }
}

bool
isMmuOp(Opcode op)
{
    return op == Opcode::MatMul;
}

bool
isSimdOp(Opcode op)
{
    return op == Opcode::Accumulate || op == Opcode::VectorOp ||
           op == Opcode::VectorTrainOp;
}

bool
isDataMoveOp(Opcode op)
{
    return op == Opcode::LoadDram || op == Opcode::StoreDram ||
           op == Opcode::LoadHost || op == Opcode::StoreHost ||
           op == Opcode::Im2col;
}

std::uint64_t
Instruction::realMacs() const
{
    return static_cast<std::uint64_t>(rows_real) * k_valid * cols_valid;
}

std::uint64_t
Instruction::dummyMacs() const
{
    return static_cast<std::uint64_t>(rows_dummy) * k_valid * cols_valid;
}

std::uint64_t
Instruction::totalAluSlots() const
{
    return static_cast<std::uint64_t>(rows_slots) * k_slots * cols_slots;
}

} // namespace isa
} // namespace equinox

/**
 * @file
 * ReservedMinHeap: a vector-backed binary heap with an explicit
 * reserve() and a reallocation audit.
 *
 * std::priority_queue hides its container, so callers can neither
 * pre-size it to a known high-water mark nor prove afterwards that the
 * steady state stayed allocation-free. The simulator's dispatch loops
 * (EventQueue, the cluster control plane) know their high-water marks
 * up front -- the candidate recipe fixes how many entries can ever be
 * simultaneously pending -- so they reserve once and then assert
 * reallocations() == 0 after the run.
 *
 * Ordering contract: Compare is a *greater-than* style comparator (as
 * std::push_heap wants for a min-heap via inversion); top() is the
 * minimum element. Ties must be broken by the comparator itself (e.g.
 * a monotonic sequence number) -- the heap adds no tiebreak of its
 * own, which keeps dispatch order a pure function of the comparator
 * and therefore byte-stable across library implementations.
 */

#ifndef EQUINOX_COMMON_MIN_HEAP_HH
#define EQUINOX_COMMON_MIN_HEAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace equinox
{

template <typename T, typename Compare>
class ReservedMinHeap
{
  public:
    ReservedMinHeap() = default;
    explicit ReservedMinHeap(Compare cmp) : cmp_(std::move(cmp)) {}

    /** Pre-size the backing vector for @p entries pending elements. */
    void
    reserve(std::size_t entries)
    {
        data_.reserve(entries);
    }

    bool empty() const { return data_.empty(); }
    std::size_t size() const { return data_.size(); }

    /** The minimum element under Compare. */
    const T &top() const { return data_.front(); }

    void
    push(T value)
    {
        if (data_.size() == data_.capacity())
            ++reallocations_;
        data_.push_back(std::move(value));
        std::push_heap(data_.begin(), data_.end(), cmp_);
        high_water_ = std::max(high_water_, data_.size());
    }

    /** Remove and return the minimum element. */
    T
    pop()
    {
        std::pop_heap(data_.begin(), data_.end(), cmp_);
        T out = std::move(data_.back());
        data_.pop_back();
        return out;
    }

    /** Times push() grew the backing vector (0 = reserve held). */
    std::uint64_t reallocations() const { return reallocations_; }

    /** Most elements ever simultaneously pending. */
    std::size_t highWater() const { return high_water_; }

  private:
    std::vector<T> data_;
    Compare cmp_{};
    std::uint64_t reallocations_ = 0;
    std::size_t high_water_ = 0;
};

} // namespace equinox

#endif // EQUINOX_COMMON_MIN_HEAP_HH

#include "common/arena.hh"

#include <atomic>
#include <mutex>
#include <new>

namespace equinox
{
namespace common
{

namespace
{

/** Size classes: multiples of 64 bytes up to 1 KiB. */
constexpr std::size_t kClassStep = 64;
constexpr std::size_t kNumClasses = 16;
/** Nodes carved per backing chunk. */
constexpr std::size_t kNodesPerChunk = 64;

struct FreeNode
{
    FreeNode *next;
};

/**
 * Backing chunks, process-global and alive until exit: a node freed on
 * a different thread than it was allocated on stays valid because its
 * chunk can never be unmapped while the process runs.
 */
struct ChunkRegistry
{
    std::mutex mtx;
    std::vector<std::unique_ptr<unsigned char[]>> chunks;
};

ChunkRegistry &
registry()
{
    static ChunkRegistry r;
    return r;
}

thread_local FreeNode *t_free[kNumClasses] = {};

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_reuses{0};
std::atomic<std::uint64_t> g_fallbacks{0};
std::atomic<std::uint64_t> g_chunk_bytes{0};

std::size_t
classOf(std::size_t size)
{
    return (size + kClassStep - 1) / kClassStep; // 1-based; 0 = empty
}

} // namespace

void *
callbackArenaAlloc(std::size_t size, std::size_t align)
{
    std::size_t cls = classOf(size);
    if (cls == 0)
        cls = 1;
    if (cls > kNumClasses || align > alignof(std::max_align_t)) {
        g_fallbacks.fetch_add(1, std::memory_order_relaxed);
        if (align > alignof(std::max_align_t))
            return ::operator new(size, std::align_val_t{align});
        return ::operator new(size);
    }
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    FreeNode *&head = t_free[cls - 1];
    if (head) {
        FreeNode *n = head;
        head = n->next;
        g_reuses.fetch_add(1, std::memory_order_relaxed);
        return n;
    }
    // Carve a fresh chunk into nodes: the first is returned, the rest
    // seed this thread's freelist. The chunk itself is registered
    // globally and never freed (see the registry comment).
    const std::size_t node_bytes = cls * kClassStep;
    auto chunk = std::make_unique<unsigned char[]>(node_bytes *
                                                   kNodesPerChunk);
    unsigned char *base = chunk.get();
    {
        std::lock_guard<std::mutex> lock(registry().mtx);
        registry().chunks.push_back(std::move(chunk));
    }
    g_chunk_bytes.fetch_add(node_bytes * kNodesPerChunk,
                            std::memory_order_relaxed);
    for (std::size_t i = kNodesPerChunk; i-- > 1;) {
        auto *n = reinterpret_cast<FreeNode *>(base + i * node_bytes);
        n->next = head;
        head = n;
    }
    return base;
}

void
callbackArenaFree(void *p, std::size_t size, std::size_t align)
{
    std::size_t cls = classOf(size);
    if (cls == 0)
        cls = 1;
    if (cls > kNumClasses || align > alignof(std::max_align_t)) {
        if (align > alignof(std::max_align_t)) {
            ::operator delete(p, std::align_val_t{align});
            return;
        }
        ::operator delete(p);
        return;
    }
    auto *n = static_cast<FreeNode *>(p);
    n->next = t_free[cls - 1];
    t_free[cls - 1] = n;
}

CallbackArenaStats
callbackArenaStats()
{
    CallbackArenaStats s;
    s.allocs = g_allocs.load(std::memory_order_relaxed);
    s.reuses = g_reuses.load(std::memory_order_relaxed);
    s.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
    s.chunk_bytes = g_chunk_bytes.load(std::memory_order_relaxed);
    return s;
}

} // namespace common
} // namespace equinox

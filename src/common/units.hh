/**
 * @file
 * Physical-unit helpers used by the analytical models and the simulator.
 *
 * Conventions: areas in mm^2, power in W, energy in J, frequency in Hz,
 * capacities in bytes, bandwidth in bytes/second, times in seconds unless a
 * suffix says otherwise.
 */

#ifndef EQUINOX_COMMON_UNITS_HH
#define EQUINOX_COMMON_UNITS_HH

#include <cstdint>

namespace equinox
{
namespace units
{

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;

/** Frequency helpers. */
constexpr double MHz(double v) { return v * kMega; }
constexpr double GHz(double v) { return v * kGiga; }

/** Capacity helpers (binary). */
constexpr std::uint64_t KiB(std::uint64_t v) { return v << 10; }
constexpr std::uint64_t MiB(std::uint64_t v) { return v << 20; }
constexpr std::uint64_t GiB(std::uint64_t v) { return v << 30; }

/** Bandwidth helpers (decimal, as marketed). */
constexpr double GBps(double v) { return v * kGiga; }
constexpr double TBps(double v) { return v * kTera; }

/** Time helpers. */
constexpr double us(double v) { return v * kMicro; }
constexpr double ms(double v) { return v * kMilli; }
constexpr double ns(double v) { return v * kNano; }

/** Energy helpers. */
constexpr double pJ(double v) { return v * kPico; }
constexpr double nJ(double v) { return v * kNano; }

/** Throughput helpers. */
constexpr double TOps(double v) { return v * kTera; }

/** Convert seconds to cycles at frequency_hz (rounded up). */
constexpr std::uint64_t
secondsToCycles(double seconds, double frequency_hz)
{
    double cycles = seconds * frequency_hz;
    auto whole = static_cast<std::uint64_t>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/** Convert cycles at frequency_hz back to seconds. */
constexpr double
cyclesToSeconds(std::uint64_t cycles, double frequency_hz)
{
    return static_cast<double>(cycles) / frequency_hz;
}

} // namespace units
} // namespace equinox

#endif // EQUINOX_COMMON_UNITS_HH

/**
 * @file
 * Fundamental scalar types shared across the Equinox libraries.
 *
 * The simulator operates in the accelerator clock domain: one Tick is one
 * accelerator cycle. Wall-clock quantities (request arrival times, DRAM
 * latencies) are converted into cycles at the simulated design frequency.
 */

#ifndef EQUINOX_COMMON_TYPES_HH
#define EQUINOX_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace equinox
{

/** One accelerator clock cycle. */
using Tick = std::uint64_t;

/** Sentinel for "never" / "not yet scheduled". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Identifier of an installed service (hardware context). */
using ContextId = std::uint32_t;

/** Identifier of a single client request. */
using RequestId = std::uint64_t;

/** Identifier of an in-flight instruction. */
using InstId = std::uint64_t;

/** Number of multiply-accumulate operations, counted as 2 Ops each. */
using OpCount = std::uint64_t;

/** Bytes moved across an interface. */
using ByteCount = std::uint64_t;

} // namespace equinox

#endif // EQUINOX_COMMON_TYPES_HH

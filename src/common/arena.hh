/**
 * @file
 * Pool/arena allocation primitives for the simulator hot path.
 *
 * Three pieces, all allocation-free in the steady state:
 *
 *  - ObjectPool<T>: a construct-once object pool with a freelist.
 *    Objects are built exactly once and never destroyed until the pool
 *    itself dies, so any internal capacity they grow (e.g. a batch's
 *    arrivals vector) is retained across reuse. reset() returns every
 *    object to the freelist in canonical storage order, so the acquire
 *    sequence after a reset matches a fresh pool's -- back-to-back
 *    simulation runs see the same allocation behaviour as the first.
 *
 *  - Ring<T>: a growable power-of-two ring buffer with the queue
 *    subset of std::deque's interface (push_back/pop_front/front).
 *    Unlike std::deque it never allocates after warmup and iterating
 *    cost is a mask, not a segment lookup.
 *
 *  - callbackArenaAlloc/Free: size-class freelists backing the event
 *    kernel's heap-fallback callbacks (captures too big for the
 *    small-buffer optimization). Freelists are thread-local (no locks
 *    on the hot path); the backing chunks live in a process-global
 *    registry and are never unmapped, so a callback scheduled on one
 *    thread and destroyed on another (a pending event torn down by the
 *    next run's EventQueue rebuild on a different worker) simply
 *    migrates the node between freelists -- no use-after-free is
 *    possible and the blocks stay reachable (leak-checker clean).
 *
 * None of this changes observable simulation behaviour: pointers never
 * enter result digests, and the pools only recycle storage whose
 * contents the callers fully re-initialize.
 */

#ifndef EQUINOX_COMMON_ARENA_HH
#define EQUINOX_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace equinox
{
namespace common
{

/** Construct-once object pool with freelist reuse (see file header). */
template <typename T>
class ObjectPool
{
  public:
    /**
     * Hand out an object: reuse the most recently released one, else
     * construct a new T. Reused objects keep whatever state they were
     * released with -- callers re-initialize every field they read.
     */
    T *
    acquire()
    {
        ++acquires_;
        T *p;
        if (!free_.empty()) {
            p = free_.back();
            free_.pop_back();
            ++reuses_;
        } else {
            storage_.push_back(std::make_unique<T>());
            p = storage_.back().get();
        }
        ++live_;
        if (live_ > high_water_)
            high_water_ = live_;
        return p;
    }

    /** Return @p p to the freelist (must have come from acquire()). */
    void
    release(T *p)
    {
        free_.push_back(p);
        --live_;
    }

    /**
     * Return every object to the freelist in canonical storage order:
     * the next acquire() sequence hands out storage_[0], storage_[1],
     * ... exactly like a fresh pool, independent of the release order
     * of the previous run.
     */
    void
    reset()
    {
        free_.clear();
        free_.reserve(storage_.size());
        for (std::size_t i = storage_.size(); i-- > 0;)
            free_.push_back(storage_[i].get());
        live_ = 0;
    }

    /** Objects ever constructed (pool-lifetime). */
    std::size_t totalObjects() const { return storage_.size(); }
    /** acquire() calls (pool-lifetime). */
    std::uint64_t acquires() const { return acquires_; }
    /** Acquires served from the freelist instead of constructing. */
    std::uint64_t reuses() const { return reuses_; }
    /** Objects currently handed out. */
    std::size_t live() const { return live_; }
    /** Most objects ever simultaneously handed out. */
    std::size_t highWater() const { return high_water_; }
    /** Bytes of T storage owned (excludes T-internal allocations). */
    std::size_t bytesReserved() const { return storage_.size() * sizeof(T); }

  private:
    /** unique_ptr per object: addresses stay stable across growth. */
    std::vector<std::unique_ptr<T>> storage_;
    std::vector<T *> free_;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
    std::size_t live_ = 0;
    std::size_t high_water_ = 0;
};

/** Growable power-of-two ring buffer (queue subset of std::deque). */
template <typename T>
class Ring
{
  public:
    void
    push_back(const T &v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = v;
        ++count_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Drop all entries; capacity is retained (pool reuse). */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    std::size_t capacity() const { return buf_.size(); }

  private:
    void
    grow()
    {
        std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Allocate @p size bytes for a heap-fallback callback payload from the
 * calling thread's size-class freelist (see file header). Sizes beyond
 * the largest class, and alignments beyond std::max_align_t, fall back
 * to plain operator new.
 */
void *callbackArenaAlloc(std::size_t size, std::size_t align);

/** Return a callbackArenaAlloc() block (any thread). */
void callbackArenaFree(void *p, std::size_t size, std::size_t align);

/** Pool-lifetime callback-arena counters (process-wide totals). */
struct CallbackArenaStats
{
    std::uint64_t allocs = 0;      //!< arena-served allocations
    std::uint64_t reuses = 0;      //!< served from a freelist
    std::uint64_t fallbacks = 0;   //!< too big/aligned: operator new
    std::uint64_t chunk_bytes = 0; //!< backing chunk bytes reserved
};

CallbackArenaStats callbackArenaStats();

} // namespace common
} // namespace equinox

#endif // EQUINOX_COMMON_ARENA_HH

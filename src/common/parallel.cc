#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "common/logging.hh"

namespace equinox
{

namespace
{

thread_local bool t_in_parallel_region = false;

/** RAII marker so nested parallelFor calls degrade to serial. */
struct RegionGuard
{
    RegionGuard() { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = false; }
};

} // namespace

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("EQX_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
        EQX_WARN("ignoring EQX_JOBS='", env,
                 "' (want a positive integer)");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
inParallelRegion()
{
    return t_in_parallel_region;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = defaultJobs();
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        all_done.wait(lock, [this] { return in_flight == 0; });
        stop = true;
    }
    task_ready.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        EQX_ASSERT(!stop, "submit() on a stopping ThreadPool");
        queue.push_back(std::move(task));
        ++in_flight;
    }
    task_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    all_done.wait(lock, [this] { return in_flight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            task_ready.wait(lock,
                            [this] { return stop || !queue.empty(); });
            if (queue.empty())
                return; // stop requested and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        {
            RegionGuard in_region;
            task(); // noexcept by contract; escape calls terminate()
        }
        bool idle;
        {
            std::lock_guard<std::mutex> lock(mtx);
            idle = --in_flight == 0;
        }
        if (idle)
            all_done.notify_all();
    }
}

void
parallelFor(std::size_t jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs == 1 || n == 1 || inParallelRegion()) {
        // The exact serial code path: no threads, no exception
        // indirection. `--jobs 1` debugging and nested calls land here.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(std::min(jobs, n));
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&fn, &errors, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    // Rethrow the lowest-index failure: deterministic regardless of
    // which worker faulted first in wall-clock time.
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
parallelForStrided(std::size_t jobs, std::size_t n,
                   const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs == 1 || n == 1 || inParallelRegion()) {
        // The exact serial code path, same as parallelFor.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::size_t width = std::min(jobs, n);
    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(width);
        for (std::size_t w = 0; w < width; ++w) {
            pool.submit([&fn, &errors, w, width, n] {
                // One task per worker slot; indices stride by the pool
                // width so a worker that hits an error keeps running
                // its remaining lane (every index gets a verdict, and
                // the lowest-index rethrow below stays deterministic).
                for (std::size_t i = w; i < n; i += width) {
                    try {
                        fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
        pool.wait();
    }
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace equinox

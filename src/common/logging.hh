/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  -- an internal invariant was violated (a simulator bug); aborts.
 * fatal()  -- the user asked for something impossible (bad configuration);
 *             exits with an error code.
 * warn()   -- functionality may be approximate; simulation continues.
 * inform() -- plain status output.
 */

#ifndef EQUINOX_COMMON_LOGGING_HH
#define EQUINOX_COMMON_LOGGING_HH

#include <sstream>
#include <string>

/**
 * Branch-prediction hints for hot-path guards (e.g. the trace-sink-off
 * fast path). Plain pass-through on compilers without the builtin.
 */
#if defined(__GNUC__) || defined(__clang__)
#define EQX_LIKELY(x) __builtin_expect(!!(x), 1)
#define EQX_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define EQX_LIKELY(x) (x)
#define EQX_UNLIKELY(x) (x)
#endif

namespace equinox
{

namespace detail
{

/** Emit a formatted message and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a formatted message and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning to stderr. */
void warnImpl(const std::string &msg);

/** Emit a status message to stderr. */
void informImpl(const std::string &msg);

/** Fold a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** True once setQuiet(true) was called; warn/inform become no-ops. */
bool quietLogging();

/** Silence warn()/inform() (used by benches that print tables). */
void setQuietLogging(bool quiet);

} // namespace equinox

#define EQX_PANIC(...)                                                      \
    ::equinox::detail::panicImpl(__FILE__, __LINE__,                        \
                                 ::equinox::detail::fold(__VA_ARGS__))

#define EQX_FATAL(...)                                                      \
    ::equinox::detail::fatalImpl(__FILE__, __LINE__,                        \
                                 ::equinox::detail::fold(__VA_ARGS__))

#define EQX_WARN(...)                                                       \
    ::equinox::detail::warnImpl(::equinox::detail::fold(__VA_ARGS__))

#define EQX_INFORM(...)                                                     \
    ::equinox::detail::informImpl(::equinox::detail::fold(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define EQX_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            EQX_PANIC("assertion failed: " #cond " ",                       \
                      ::equinox::detail::fold(__VA_ARGS__));                \
        }                                                                   \
    } while (0)

#endif // EQUINOX_COMMON_LOGGING_HH

/**
 * @file
 * Deterministic random-number utilities.
 *
 * All stochastic parts of the reproduction (Poisson arrivals, synthetic
 * datasets, weight initialisation) draw from explicitly seeded Rng instances
 * so that every experiment is bit-reproducible.
 */

#ifndef EQUINOX_COMMON_RANDOM_HH
#define EQUINOX_COMMON_RANDOM_HH

#include <cstdint>
#include <random>

namespace equinox
{

/**
 * A seeded random source with the distributions the project needs.
 *
 * Thin wrapper over std::mt19937_64; copyable so generators can fork
 * deterministic sub-streams.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5EED5EEDull) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit(engine); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Standard normal sample. */
    double normal() { return gauss(engine); }

    /** Normal sample with given mean and stddev. */
    double normal(double mean, double sd) { return mean + sd * normal(); }

    /**
     * Exponential inter-arrival sample for a Poisson process.
     * @param rate events per unit time; must be positive.
     */
    double
    exponential(double rate)
    {
        std::exponential_distribution<double> dist(rate);
        return dist(engine);
    }

    /** Fork an independent deterministic sub-stream. */
    Rng
    fork()
    {
        return Rng(engine());
    }

    /** Access the raw engine for std:: distributions. */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uniform_real_distribution<double> unit{0.0, 1.0};
    std::normal_distribution<double> gauss{0.0, 1.0};
};

} // namespace equinox

#endif // EQUINOX_COMMON_RANDOM_HH

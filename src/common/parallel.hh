/**
 * @file
 * Deterministic parallel execution of independent experiments.
 *
 * Every sweep in this repo (load points, DSE grid cells, fault seeds)
 * runs self-contained simulations: each point builds its own
 * Accelerator and Rng streams and touches nothing shared. ThreadPool /
 * parallelFor fan such sweeps out across worker threads while keeping
 * the results byte-identical to a serial run:
 *
 *  - results are written by input index, never in completion order;
 *  - the first (lowest-index) exception is rethrown on the caller,
 *    regardless of which worker hit it first in wall-clock time;
 *  - `jobs == 1` takes the exact serial code path (a plain loop, no
 *    threads, no try/catch indirection) so debugging stays simple;
 *  - nested parallelFor calls degrade to serial inside a worker, so a
 *    parallel sweep may safely call library code that itself fans out.
 *
 * Anything with process-global mutable state (stdout tables, stat
 * registries, trace sinks) must stay outside the parallel region; see
 * DESIGN.md "Parallel experiment execution" for the contract.
 */

#ifndef EQUINOX_COMMON_PARALLEL_HH
#define EQUINOX_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace equinox
{

/**
 * Default worker count for parallel sweeps: the EQX_JOBS environment
 * variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (at least 1).
 */
std::size_t defaultJobs();

/** True while the calling thread is executing a ThreadPool task. */
bool inParallelRegion();

/**
 * A plain work-queue thread pool: N worker threads drain a FIFO of
 * submitted tasks. Tasks must not block on other tasks (the pool has no
 * dependency tracking); wait() blocks the caller until every submitted
 * task has finished.
 */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 = defaultJobs(). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workerCount() const { return threads.size(); }

    /**
     * Enqueue @p task. Tasks must catch their own exceptions (the
     * worker aborts the process on escape — parallelFor wraps its body
     * accordingly and is the API almost all callers want).
     */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable task_ready;
    std::condition_variable all_done;
    std::size_t in_flight = 0; //!< queued + currently executing
    bool stop = false;
};

/**
 * Run fn(0) .. fn(n-1) across @p jobs workers (0 = defaultJobs()).
 *
 * With jobs == 1, n <= 1, or when already inside a parallel region,
 * this is exactly `for (i = 0; i < n; ++i) fn(i)` on the calling
 * thread. Otherwise min(jobs, n) workers execute the indices; if one
 * or more calls throw, the exception of the lowest index is rethrown
 * after every worker has finished (deterministic, unlike
 * first-in-wall-clock).
 */
void parallelFor(std::size_t jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Like parallelFor, but built for n >> jobs: instead of enqueueing one
 * closure per index (a 1024-replica fleet would queue 1024 heap-backed
 * tasks for 8 workers), exactly W = min(jobs, n) tasks are submitted
 * and task w runs indices w, w + W, w + 2W, ... serially — replicas
 * round-robin across workers and the fan-out is capped at the pool
 * size. The serial path, result placement, and lowest-index exception
 * rethrow contracts are identical to parallelFor, so a strided run is
 * byte-identical to a serial run whenever each fn(i) is self-contained.
 */
void parallelForStrided(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)> &fn);

/**
 * Map @p fn over @p inputs with parallelFor; results are collected in
 * input order. @p fn must be invocable const on each element.
 */
template <typename In, typename Fn>
auto
parallelMap(std::size_t jobs, const std::vector<In> &inputs, Fn fn)
    -> std::vector<decltype(fn(inputs[0]))>
{
    std::vector<decltype(fn(inputs[0]))> out(inputs.size());
    parallelFor(jobs, inputs.size(),
                [&](std::size_t i) { out[i] = fn(inputs[i]); });
    return out;
}

} // namespace equinox

#endif // EQUINOX_COMMON_PARALLEL_HH

#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace equinox
{

namespace
{
bool g_quiet = false;
} // namespace

bool
quietLogging()
{
    return g_quiet;
}

void
setQuietLogging(bool quiet)
{
    g_quiet = quiet;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!g_quiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!g_quiet)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace equinox

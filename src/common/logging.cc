#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace equinox
{

namespace
{

// Parallel sweeps may warn from worker threads; the flag is atomic and
// a mutex serialises the stream writes so lines never interleave.
std::atomic<bool> g_quiet{false};

std::mutex &
logMutex()
{
    static std::mutex mtx;
    return mtx;
}

} // namespace

bool
quietLogging()
{
    return g_quiet.load(std::memory_order_relaxed);
}

void
setQuietLogging(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (quietLogging())
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace equinox

#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace equinox
{
namespace stats
{

Table::Table(std::vector<std::string> column_headers)
    : headers(std::move(column_headers))
{
    EQX_ASSERT(!headers.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    EQX_ASSERT(cells.size() == headers.size(),
               "row width ", cells.size(), " != ", headers.size());
    body.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    body.emplace_back();
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << v;
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << "+" << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << cell << " ";
        }
        os << "|\n";
    };

    print_sep();
    print_row(headers);
    print_sep();
    for (const auto &row : body) {
        if (row.empty())
            print_sep();
        else
            print_row(row);
    }
    print_sep();
}

} // namespace stats
} // namespace equinox

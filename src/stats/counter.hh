/**
 * @file
 * Trivial named scalar counters.
 */

#ifndef EQUINOX_STATS_COUNTER_HH
#define EQUINOX_STATS_COUNTER_HH

#include <cstdint>
#include <string>

namespace equinox
{
namespace stats
{

/** A monotonically growing event counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string counter_name)
        : name_(std::move(counter_name)) {}

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_COUNTER_HH

#include "stats/registry.hh"

#include <ostream>

#include "common/logging.hh"
#include "stats/table.hh"

namespace equinox
{
namespace stats
{

void
StatRegistry::registerStat(const std::string &name, Getter getter,
                           std::string description)
{
    EQX_ASSERT(getter, "stat '", name, "' registered without a getter");
    entries[name] = Entry{std::move(getter), std::move(description)};
}

void
StatRegistry::setValue(const std::string &name, double value,
                       std::string description)
{
    registerStat(name, [value] { return value; },
                 std::move(description));
}

double
StatRegistry::value(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        EQX_FATAL("no statistic named '", name, "'");
    return it->second.getter();
}

bool
StatRegistry::contains(const std::string &name) const
{
    return entries.count(name) > 0;
}

void
StatRegistry::forEach(
    const std::function<void(const std::string &, double,
                             const std::string &)> &fn) const
{
    for (const auto &[name, entry] : entries)
        fn(name, entry.getter(), entry.description);
}

void
StatRegistry::dump(std::ostream &os) const
{
    Table table({"stat", "value", "description"});
    for (const auto &[name, entry] : entries) {
        table.addRow({name, Table::num(entry.getter(), 4),
                      entry.description});
    }
    table.print(os);
}

} // namespace stats
} // namespace equinox

#include "stats/cycle_breakdown.hh"

#include <sstream>

#include "common/logging.hh"

namespace equinox
{
namespace stats
{

const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::Working: return "Working";
      case CycleClass::Dummy: return "Dummy";
      case CycleClass::Idle: return "Idle";
      case CycleClass::Other: return "Other";
      default: return "?";
    }
}

void
CycleBreakdown::add(CycleClass c, double cycles)
{
    EQX_ASSERT(c < CycleClass::NumClasses, "bad cycle class");
    EQX_ASSERT(cycles >= 0.0, "negative cycle charge: ", cycles);
    cycles_[static_cast<std::size_t>(c)] += cycles;
}

double
CycleBreakdown::get(CycleClass c) const
{
    EQX_ASSERT(c < CycleClass::NumClasses, "bad cycle class");
    return cycles_[static_cast<std::size_t>(c)];
}

double
CycleBreakdown::total() const
{
    double t = 0.0;
    for (double v : cycles_)
        t += v;
    return t;
}

double
CycleBreakdown::fraction(CycleClass c) const
{
    double t = total();
    if (t <= 0.0)
        return 0.0;
    return get(c) / t;
}

void
CycleBreakdown::reset()
{
    cycles_.fill(0.0);
}

CycleBreakdown &
CycleBreakdown::operator+=(const CycleBreakdown &other)
{
    for (std::size_t i = 0; i < kN; ++i)
        cycles_[i] += other.cycles_[i];
    return *this;
}

std::string
CycleBreakdown::summary() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < kN; ++i) {
        auto c = static_cast<CycleClass>(i);
        if (i)
            oss << " ";
        oss << cycleClassName(c) << "=" << fraction(c) * 100.0 << "%";
    }
    return oss.str();
}

} // namespace stats
} // namespace equinox

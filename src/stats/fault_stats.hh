/**
 * @file
 * Fault and recovery statistics: counters for every injected fault and
 * every recovery action, the downtime-derived availability, and a
 * recovery-latency distribution.
 *
 * Filled in by the fault injector and the simulator's recovery machinery;
 * a fault-free run reports the default (all-zero, availability 1.0)
 * record.
 */

#ifndef EQUINOX_STATS_FAULT_STATS_HH
#define EQUINOX_STATS_FAULT_STATS_HH

#include <cstdint>
#include <iosfwd>

#include "common/types.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace stats
{

/** Everything the fault layer counts during one run. */
struct FaultStats
{
    // -- injected faults ----------------------------------------------
    std::uint64_t dram_corrected = 0;     //!< ECC single-bit corrections
    std::uint64_t dram_uncorrectable = 0; //!< ECC detected-uncorrectable
    std::uint64_t host_drops = 0;         //!< host transfers lost
    std::uint64_t host_corruptions = 0;   //!< host transfers CRC-failed
    std::uint64_t mmu_hangs = 0;          //!< dispatcher hang events

    // -- recovery actions ---------------------------------------------
    std::uint64_t host_retries = 0;     //!< retried host transfers
    std::uint64_t host_give_ups = 0;    //!< retry budget/deadline spent
    std::uint64_t watchdog_resets = 0;  //!< costed hang recoveries
    std::uint64_t checkpoints_written = 0;
    std::uint64_t rollbacks = 0;        //!< checkpoint restores
    std::uint64_t lost_training_iterations = 0; //!< replayed after rollback
    std::uint64_t shed_requests = 0;    //!< inference shed in fault storms
    std::uint64_t storms_entered = 0;   //!< degradation activations

    /** Cycles the machine was unavailable (hang detect + reset). */
    Tick downtime_cycles = 0;

    /** Per-recovery-event latency samples, in cycles. */
    LatencyTracker recovery_cycles;

    /** Total injected faults of all kinds. */
    std::uint64_t totalFaults() const;

    /** Total recovery events (retries, resets, rollbacks). */
    std::uint64_t recoveryEvents() const;

    /** Fraction of @p elapsed_cycles the machine was serving. */
    double availability(Tick elapsed_cycles) const;

    /**
     * Accumulate another run's (or replica's) counters into this one.
     * downtime_cycles adds too: for a cluster, divide the merged
     * downtime by replicas x elapsed when deriving fleet availability.
     */
    void merge(const FaultStats &other);

    void reset();
};

/** One-line human-readable summary (for examples and debugging). */
std::ostream &operator<<(std::ostream &os, const FaultStats &fs);

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_FAULT_STATS_HH

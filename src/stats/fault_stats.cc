#include "stats/fault_stats.hh"

#include <ostream>

namespace equinox
{
namespace stats
{

std::uint64_t
FaultStats::totalFaults() const
{
    return dram_corrected + dram_uncorrectable + host_drops +
           host_corruptions + mmu_hangs;
}

std::uint64_t
FaultStats::recoveryEvents() const
{
    return host_retries + watchdog_resets + rollbacks;
}

double
FaultStats::availability(Tick elapsed_cycles) const
{
    if (elapsed_cycles == 0)
        return 1.0;
    Tick down = downtime_cycles < elapsed_cycles ? downtime_cycles
                                                 : elapsed_cycles;
    return 1.0 - static_cast<double>(down) /
                     static_cast<double>(elapsed_cycles);
}

void
FaultStats::merge(const FaultStats &other)
{
    dram_corrected += other.dram_corrected;
    dram_uncorrectable += other.dram_uncorrectable;
    host_drops += other.host_drops;
    host_corruptions += other.host_corruptions;
    mmu_hangs += other.mmu_hangs;
    host_retries += other.host_retries;
    host_give_ups += other.host_give_ups;
    watchdog_resets += other.watchdog_resets;
    checkpoints_written += other.checkpoints_written;
    rollbacks += other.rollbacks;
    lost_training_iterations += other.lost_training_iterations;
    shed_requests += other.shed_requests;
    storms_entered += other.storms_entered;
    downtime_cycles += other.downtime_cycles;
    recovery_cycles.merge(other.recovery_cycles);
}

void
FaultStats::reset()
{
    *this = FaultStats{};
}

std::ostream &
operator<<(std::ostream &os, const FaultStats &fs)
{
    os << "faults{dram corrected=" << fs.dram_corrected
       << " due=" << fs.dram_uncorrectable
       << ", host drops=" << fs.host_drops
       << " corrupt=" << fs.host_corruptions
       << " retries=" << fs.host_retries
       << " give-ups=" << fs.host_give_ups
       << ", hangs=" << fs.mmu_hangs
       << " resets=" << fs.watchdog_resets
       << ", ckpts=" << fs.checkpoints_written
       << " rollbacks=" << fs.rollbacks
       << " lost-iters=" << fs.lost_training_iterations
       << ", shed=" << fs.shed_requests
       << ", downtime=" << fs.downtime_cycles << " cy}";
    return os;
}

} // namespace stats
} // namespace equinox

/**
 * @file
 * A named-statistics registry: components register counters and scalar
 * gauges under hierarchical names; dumps render as aligned tables (the
 * gem5-style "stats dump" convenience for examples and debugging).
 */

#ifndef EQUINOX_STATS_REGISTRY_HH
#define EQUINOX_STATS_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <string>

namespace equinox
{
namespace stats
{

/** Registry of named scalar statistics. */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    /**
     * Register a live statistic under @p name (e.g. "mmu.busy_cycles").
     * Re-registering a name replaces the previous entry.
     */
    void registerStat(const std::string &name, Getter getter,
                      std::string description = "");

    /** Record a fixed value (snapshot-style registration). */
    void setValue(const std::string &name, double value,
                  std::string description = "");

    /** Current value of @p name; fatal when absent. */
    double value(const std::string &name) const;

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries.size(); }

    /** Render all statistics, sorted by name, as an aligned table. */
    void dump(std::ostream &os) const;

    /**
     * Visit every statistic as (name, current value, description),
     * sorted by name. The export layer walks the registry with this
     * to build machine-readable snapshots.
     */
    void forEach(const std::function<void(const std::string &, double,
                                          const std::string &)> &fn) const;

    /** Remove everything. */
    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        Getter getter;
        std::string description;
    };
    std::map<std::string, Entry> entries;
};

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_REGISTRY_HH

#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace stats
{

void
LatencyTracker::record(double sample)
{
    if (std::isnan(sample)) {
        // One poisoned measurement must not corrupt every percentile:
        // NaN breaks the strict weak ordering std::sort requires and
        // propagates through the running sum.
        ++nan_rejected;
        return;
    }
    samples.push_back(sample);
    sum += sample;
    sorted = false;
}

double
LatencyTracker::mean() const
{
    if (samples.empty())
        return 0.0;
    return sum / static_cast<double>(samples.size());
}

void
LatencyTracker::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
LatencyTracker::min() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.front();
}

double
LatencyTracker::max() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.back();
}

double
exactPercentileSorted(const std::vector<double> &sorted, double p)
{
    EQX_ASSERT(p >= 0.0 && p <= 1.0, "quantile out of range: ", p);
    EQX_ASSERT(!sorted.empty(), "percentile of an empty sample set");
    if (sorted.size() == 1)
        return sorted.front();

    double rank = p * static_cast<double>(sorted.size() - 1);
    auto lo_idx = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo_idx);
    if (frac == 0.0 || lo_idx + 1 >= sorted.size()) {
        // Exact-rank queries return the order statistic itself: mixing
        // in the neighbour with weight 0 would turn an infinite
        // neighbour into 0 * inf = NaN.
        return sorted[lo_idx];
    }
    return sorted[lo_idx] * (1.0 - frac) + sorted[lo_idx + 1] * frac;
}

double
LatencyTracker::percentile(double p) const
{
    if (samples.empty()) {
        EQX_ASSERT(p >= 0.0 && p <= 1.0, "quantile out of range: ", p);
        return 0.0;
    }
    ensureSorted();
    return exactPercentileSorted(samples, p);
}

void
LatencyTracker::merge(const LatencyTracker &other)
{
    // Self-merge would otherwise read the vector being appended to
    // (iterators invalidate on reallocation): duplicate via a copy.
    if (&other == this) {
        std::vector<double> copy = samples;
        samples.insert(samples.end(), copy.begin(), copy.end());
        sum += sum;
        nan_rejected += nan_rejected;
        if (!copy.empty())
            sorted = false;
        return;
    }
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sum += other.sum;
    nan_rejected += other.nan_rejected;
    if (!other.samples.empty())
        sorted = false;
}

void
LatencyTracker::reset()
{
    samples.clear();
    sorted = true;
    sum = 0.0;
    nan_rejected = 0;
}

LogHistogram::LogHistogram(double lo, double hi, unsigned buckets_per_decade)
    : lo_(lo)
{
    EQX_ASSERT(lo > 0.0 && hi > lo, "bad histogram bounds");
    EQX_ASSERT(buckets_per_decade > 0, "bad histogram resolution");
    log_lo = std::log10(lo);
    bucket_width = 1.0 / static_cast<double>(buckets_per_decade);
    double decades = std::log10(hi) - log_lo;
    auto n = static_cast<std::size_t>(
        std::ceil(decades * buckets_per_decade));
    counts.assign(std::max<std::size_t>(n, 1), 0);
}

void
LogHistogram::record(double sample)
{
    if (std::isnan(sample)) {
        ++nan_rejected;
        return;
    }
    if (sample < lo_) {
        ++under;
        return;
    }
    double pos = (std::log10(sample) - log_lo) / bucket_width;
    // Range-check in floating point BEFORE converting: casting a value
    // beyond the bucket range (or +inf) to size_t is undefined
    // behaviour, so out-of-range samples clamp to the overflow counter
    // without ever being converted.
    if (!(pos < static_cast<double>(counts.size()))) {
        ++over;
        return;
    }
    ++counts[static_cast<std::size_t>(pos)];
}

double
LogHistogram::bucketMid(std::size_t i) const
{
    EQX_ASSERT(i < counts.size(), "bucket index out of range");
    double lo_edge = log_lo + bucket_width * static_cast<double>(i);
    return std::pow(10.0, lo_edge + bucket_width * 0.5);
}

} // namespace stats
} // namespace equinox

#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace equinox
{
namespace stats
{

void
LatencyTracker::record(double sample)
{
    samples.push_back(sample);
    sum += sample;
    sorted = false;
}

double
LatencyTracker::mean() const
{
    if (samples.empty())
        return 0.0;
    return sum / static_cast<double>(samples.size());
}

void
LatencyTracker::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
LatencyTracker::min() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.front();
}

double
LatencyTracker::max() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.back();
}

double
LatencyTracker::percentile(double p) const
{
    EQX_ASSERT(p >= 0.0 && p <= 1.0, "quantile out of range: ", p);
    if (samples.empty())
        return 0.0;
    ensureSorted();
    if (samples.size() == 1)
        return samples.front();

    double rank = p * static_cast<double>(samples.size() - 1);
    auto lo_idx = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo_idx);
    if (lo_idx + 1 >= samples.size())
        return samples.back();
    return samples[lo_idx] * (1.0 - frac) + samples[lo_idx + 1] * frac;
}

void
LatencyTracker::reset()
{
    samples.clear();
    sorted = true;
    sum = 0.0;
}

LogHistogram::LogHistogram(double lo, double hi, unsigned buckets_per_decade)
    : lo_(lo)
{
    EQX_ASSERT(lo > 0.0 && hi > lo, "bad histogram bounds");
    EQX_ASSERT(buckets_per_decade > 0, "bad histogram resolution");
    log_lo = std::log10(lo);
    bucket_width = 1.0 / static_cast<double>(buckets_per_decade);
    double decades = std::log10(hi) - log_lo;
    auto n = static_cast<std::size_t>(
        std::ceil(decades * buckets_per_decade));
    counts.assign(std::max<std::size_t>(n, 1), 0);
}

void
LogHistogram::record(double sample)
{
    if (sample < lo_) {
        ++under;
        return;
    }
    double pos = (std::log10(sample) - log_lo) / bucket_width;
    auto idx = static_cast<std::size_t>(pos);
    if (idx >= counts.size()) {
        ++over;
        return;
    }
    ++counts[idx];
}

double
LogHistogram::bucketMid(std::size_t i) const
{
    EQX_ASSERT(i < counts.size(), "bucket index out of range");
    double lo_edge = log_lo + bucket_width * static_cast<double>(i);
    return std::pow(10.0, lo_edge + bucket_width * 0.5);
}

} // namespace stats
} // namespace equinox

/**
 * @file
 * MMU cycle-usage accounting for the Figure 8 breakdown.
 *
 * Every MMU cycle of a simulation is attributed to exactly one of four
 * categories, matching the paper:
 *   Working -- cycles computing real (non-padded) operand rows,
 *   Dummy   -- cycles computing padding added by adaptive batching,
 *   Idle    -- cycles with no instruction in the array,
 *   Other   -- waste from partial tiles (dimension mismatch), buffer-port
 *              contention, and dependence stalls.
 */

#ifndef EQUINOX_STATS_CYCLE_BREAKDOWN_HH
#define EQUINOX_STATS_CYCLE_BREAKDOWN_HH

#include <array>
#include <cstdint>
#include <string>

namespace equinox
{
namespace stats
{

/** The four Figure-8 cycle categories. */
enum class CycleClass : unsigned
{
    Working = 0,
    Dummy,
    Idle,
    Other,
    NumClasses,
};

/** Human-readable label for a category. */
const char *cycleClassName(CycleClass c);

/**
 * Accumulates fractional MMU cycles per category.
 *
 * Fractional charging lets a single tile instruction split its occupancy
 * between Working (real rows), Dummy (padded rows) and Other (partial-tile
 * waste) according to the operand geometry.
 */
class CycleBreakdown
{
  public:
    /** Charge @p cycles to category @p c. */
    void add(CycleClass c, double cycles);

    /** Total cycles attributed to @p c. */
    double get(CycleClass c) const;

    /** Sum over all categories. */
    double total() const;

    /** Fraction of the total in category @p c; 0 when empty. */
    double fraction(CycleClass c) const;

    void reset();

    /** Merge another breakdown into this one. */
    CycleBreakdown &operator+=(const CycleBreakdown &other);

    /** One-line summary, e.g. for logs. */
    std::string summary() const;

  private:
    static constexpr std::size_t kN =
        static_cast<std::size_t>(CycleClass::NumClasses);
    std::array<double, kN> cycles_{};
};

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_CYCLE_BREAKDOWN_HH

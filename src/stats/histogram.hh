/**
 * @file
 * Latency sample tracking with exact percentile queries.
 *
 * The evaluation reports 99th-percentile latencies over bounded experiment
 * windows (at most a few hundred thousand requests), so we keep every sample
 * and sort lazily; this is both exact and fast enough. A log-bucketed
 * histogram view is provided for summary printing.
 */

#ifndef EQUINOX_STATS_HISTOGRAM_HH
#define EQUINOX_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace equinox
{
namespace stats
{

/**
 * Exact p-quantile of an ascending-sorted sample buffer via linear
 * interpolation between order statistics. This is THE percentile kernel:
 * every sliding-window or tracker percentile in the repo must route
 * through it rather than re-deriving the interpolation, because the
 * exact-rank guard below is what keeps +inf samples from surfacing as
 * NaN (0 * inf) — a bug class we have already fixed once.
 *
 * @param sorted ascending-sorted samples; must be non-empty and NaN-free
 * @param p      quantile in [0, 1]; e.g. 0.99 for the 99th percentile
 */
double exactPercentileSorted(const std::vector<double> &sorted, double p);

/** Exact sample set with percentile queries. */
class LatencyTracker
{
  public:
    /**
     * Record one latency sample (any consistent unit). NaN samples are
     * rejected (counted, not stored): one corrupted measurement must
     * not poison every percentile, and sorting NaNs is undefined.
     */
    void record(double sample);

    /** Number of recorded samples. */
    std::size_t count() const { return samples.size(); }

    /** NaN samples rejected by record(). */
    std::uint64_t nanRejected() const { return nan_rejected; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest / largest sample; 0 when empty. */
    double min() const;
    double max() const;

    /**
     * Exact p-quantile via linear interpolation between order statistics.
     * @param p in [0, 1]; e.g. 0.99 for the 99th percentile.
     */
    double percentile(double p) const;

    /**
     * Fold another tracker's samples into this one. Equivalent to
     * having record()ed every one of @p other's samples here: the
     * merged percentiles are exact order statistics of the concatenated
     * sample sets, never an approximation from the parts' quantiles.
     * Sums are added directly rather than recombining means, so an
     * empty contributor cannot poison the merged mean the way a
     * zero-weight neighbour poisoned exact-rank percentiles (0 * inf).
     */
    void merge(const LatencyTracker &other);

    /** The raw sample buffer (unspecified order; tests and merges). */
    const std::vector<double> &rawSamples() const { return samples; }

    /** Drop all samples. */
    void reset();

  private:
    /** Sort the sample buffer if new samples arrived since the last sort. */
    void ensureSorted() const;

    mutable std::vector<double> samples;
    mutable bool sorted = true;
    double sum = 0.0;
    std::uint64_t nan_rejected = 0;
};

/** Fixed-width log-bucket histogram for summary output. */
class LogHistogram
{
  public:
    /**
     * @param lo lower bound of the first bucket (must be > 0)
     * @param hi upper bound of the last bucket
     * @param buckets_per_decade resolution
     */
    LogHistogram(double lo, double hi, unsigned buckets_per_decade = 8);

    void record(double sample);

    std::size_t bucketCount() const { return counts.size(); }
    std::uint64_t bucketValue(std::size_t i) const { return counts.at(i); }
    /** Geometric midpoint of bucket i. */
    double bucketMid(std::size_t i) const;
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    /** NaN samples rejected by record(). */
    std::uint64_t nanRejected() const { return nan_rejected; }

  private:
    double lo_;
    double log_lo;
    double bucket_width; // in log10 space
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t nan_rejected = 0;
};

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_HISTOGRAM_HH

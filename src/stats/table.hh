/**
 * @file
 * Plain-text table formatting for benches and examples.
 *
 * Every experiment binary prints the rows/series its paper figure or table
 * reports; this helper keeps the output aligned and consistent.
 */

#ifndef EQUINOX_STATS_TABLE_HH
#define EQUINOX_STATS_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace equinox
{
namespace stats
{

/** A simple column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> column_headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::vector<std::string> headers;
    // empty vector encodes a separator row
    std::vector<std::vector<std::string>> body;
};

} // namespace stats
} // namespace equinox

#endif // EQUINOX_STATS_TABLE_HH

/**
 * @file
 * Experiment harness: the common load-sweep machinery behind the
 * evaluation's figures and tables. Builds an accelerator from a
 * configuration, compiles and installs the workloads, converts a load
 * fraction into a Poisson arrival rate, runs the simulation, and reports
 * derived metrics.
 */

#ifndef EQUINOX_CORE_EXPERIMENT_HH
#define EQUINOX_CORE_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "sim/accelerator.hh"
#include "sim/config.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace obs
{
class MetricsSnapshot;
}

namespace core
{

/** Knobs shared by all experiments. */
struct ExperimentOptions
{
    /** Inference workload (default LSTM-2048). */
    workload::DnnModel model = workload::DnnModel::lstm2048();
    /** Piggybacked training workload; nullopt = inference only. */
    std::optional<workload::DnnModel> train_model;
    std::size_t train_batch = 128;
    /** Training-lowering knobs (ablations). */
    workload::TrainingCompileOptions train_opts;

    std::uint64_t warmup_requests = 300;
    double warmup_s = 0.0;
    std::uint64_t measure_requests = 3000;
    double min_measure_s = 0.0;
    std::uint64_t measure_iterations = 15;
    double max_sim_s = 30.0;
    std::uint64_t seed = 1;

    /**
     * Forwarded to RunSpec::fast_forward on every run this experiment
     * spawns (single-accelerator and per-replica cluster runs alike).
     * On by default; byte-identical either way. See RunSpec.
     */
    bool fast_forward = true;

    /**
     * Faults to inject and recovery policies to answer them with. The
     * default plan injects nothing, keeping fault-free experiments
     * byte-identical to a build without the fault layer.
     */
    fault::FaultPlan fault_plan;

    /**
     * Worker threads runLoadSweep fans the load points across. Every
     * point is a self-contained simulation (own Accelerator, own
     * seeded Rng streams), so the parallel sweep is byte-identical to
     * the serial one. 1 (the default) takes the exact serial code
     * path; 0 means defaultJobs() (EQX_JOBS or hardware concurrency).
     */
    std::size_t jobs = 1;

    /**
     * Optional trace sink installed on every Accelerator a run builds
     * (e.g. obs::ChromeTraceSink behind a bench's `--trace`). Not
     * owned; must outlive the runs. Observation only -- installing a
     * sink never changes simulated behaviour -- but the sink object
     * itself is stateful, so runLoadSweep degrades to serial (which is
     * byte-identical anyway) whenever one is installed.
     */
    sim::TraceSink *trace_sink = nullptr;
};

/**
 * The workloads of one (config, options) pair, compiled once and
 * reused across load points: runAtLoad installs copies of these
 * descriptors instead of re-running the compiler per point. Compile
 * output is a pure function of (config, model, train options), so
 * reuse is byte-identical to recompiling.
 */
struct CompiledWorkload
{
    sim::InferenceServiceDesc inference;
    std::optional<sim::TrainingServiceDesc> training;
};

/** Compile the workloads of (cfg, opts) for reuse across load points. */
CompiledWorkload compileWorkload(const sim::AcceleratorConfig &cfg,
                                 const ExperimentOptions &opts);

/** One measured load point. */
struct LoadPointResult
{
    double load = 0.0;           //!< offered fraction of max throughput
    sim::SimResult sim;
    double inference_tops = 0.0; //!< achieved inference TOp/s
    double training_tops = 0.0;  //!< achieved training TOp/s
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    double max_inference_tops = 0.0; //!< the config's saturation rate
    double service_time_ms = 0.0;    //!< analytic single-batch service
};

/**
 * Run @p cfg at @p load (fraction of the workload's saturation request
 * rate; 0 = training only).
 */
LoadPointResult runAtLoad(const sim::AcceleratorConfig &cfg, double load,
                          const ExperimentOptions &opts = {});

/**
 * Like runAtLoad above but reusing @p compiled (from compileWorkload on
 * the same cfg/opts) instead of compiling per point.
 */
LoadPointResult runAtLoad(const sim::AcceleratorConfig &cfg, double load,
                          const ExperimentOptions &opts,
                          const CompiledWorkload &compiled);

/**
 * Run a whole load sweep: workloads are compiled once, then the points
 * fan out across opts.jobs workers with results in input order.
 */
std::vector<LoadPointResult> runLoadSweep(
    const sim::AcceleratorConfig &cfg, const std::vector<double> &loads,
    const ExperimentOptions &opts = {});

/**
 * Analytic saturation inference throughput (ops/s) of cfg on model.
 * Memoised per (cfg, model) in a process-wide keyed cache, so repeated
 * queries (per-load conversions, bench tables) compile once.
 */
double saturationOpRate(const sim::AcceleratorConfig &cfg,
                        const workload::DnnModel &model);

/**
 * The paper's SLO: 99th-percentile latency no worse than 10x the mean
 * service time of the model on the reference (Equinox_500us) config.
 */
double latencyTargetSeconds(const sim::AcceleratorConfig &reference,
                            const workload::DnnModel &model);

/**
 * Write a load sweep as CSV (header + one row per point) for external
 * plotting; returns false when the file cannot be opened.
 */
bool writeCsv(const std::string &path,
              const std::vector<LoadPointResult> &results);

/**
 * Append one measured load point under "sweeps.<label>" in @p snap:
 * the derived metrics, the latency percentiles, the Figure-8 cycle
 * breakdown, and (when faults fired) the fault counters. Field order
 * and formatting are deterministic, so byte-identical results produce
 * byte-identical snapshots regardless of the jobs count that computed
 * them.
 */
void addLoadPoint(obs::MetricsSnapshot &snap, const std::string &label,
                  const LoadPointResult &r);

/** addLoadPoint over a whole sweep, in input order. */
void addLoadSweep(obs::MetricsSnapshot &snap, const std::string &label,
                  const std::vector<LoadPointResult> &results);

} // namespace core
} // namespace equinox

#endif // EQUINOX_CORE_EXPERIMENT_HH

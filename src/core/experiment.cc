#include "core/experiment.hh"

#include <fstream>

#include "common/logging.hh"

namespace equinox
{
namespace core
{

double
saturationOpRate(const sim::AcceleratorConfig &cfg,
                 const workload::DnnModel &model)
{
    workload::Compiler compiler(cfg);
    auto svc = compiler.compileInference(model);
    Tick busy = svc.program.mmuBusyCycles();
    return static_cast<double>(svc.program.totalRealOps()) /
           static_cast<double>(busy) * cfg.frequency_hz;
}

double
latencyTargetSeconds(const sim::AcceleratorConfig &reference,
                     const workload::DnnModel &model)
{
    workload::Compiler compiler(reference);
    auto svc = compiler.compileInference(model);
    return 10.0 * svc.service_time_s;
}

LoadPointResult
runAtLoad(const sim::AcceleratorConfig &cfg, double load,
          const ExperimentOptions &opts)
{
    // Reject unusable user input with the full actionable report before
    // any machinery is built; internal invariants further down still
    // panic, but a bad knob should never get that far.
    if (auto errors = cfg.validate(); !errors.empty()) {
        EQX_FATAL("invalid accelerator configuration '", cfg.name,
                  "':\n", sim::formatConfigErrors(errors));
    }
    if (auto errors = opts.fault_plan.validate(); !errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid fault plan:", joined);
    }

    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);

    auto inf = compiler.compileInference(opts.model);
    double service_s = inf.service_time_s;
    accel.installInference(std::move(inf));

    if (opts.train_model) {
        accel.installTraining(compiler.compileTraining(
            *opts.train_model, opts.train_batch, opts.train_opts));
    }

    sim::RunSpec spec;
    spec.arrival_rate_per_s = load * accel.maxRequestRate();
    spec.warmup_requests = opts.warmup_requests;
    spec.warmup_s = opts.warmup_s;
    spec.measure_requests = opts.measure_requests;
    spec.min_measure_s = opts.min_measure_s;
    spec.measure_iterations = opts.measure_iterations;
    spec.max_sim_s = opts.max_sim_s;
    spec.seed = opts.seed;
    spec.faults = opts.fault_plan;

    LoadPointResult res;
    res.load = load;
    res.sim = accel.run(spec);
    res.inference_tops = res.sim.inference_throughput_ops / 1e12;
    res.training_tops = res.sim.training_throughput_ops / 1e12;
    res.p99_ms = res.sim.p99_latency_s * 1e3;
    res.mean_ms = res.sim.mean_latency_s * 1e3;
    res.max_inference_tops = accel.maxInferenceOpRate() / 1e12;
    res.service_time_ms = service_s * 1e3;
    return res;
}

std::vector<LoadPointResult>
runLoadSweep(const sim::AcceleratorConfig &cfg,
             const std::vector<double> &loads,
             const ExperimentOptions &opts)
{
    std::vector<LoadPointResult> out;
    out.reserve(loads.size());
    for (double load : loads)
        out.push_back(runAtLoad(cfg, load, opts));
    return out;
}

bool
writeCsv(const std::string &path,
         const std::vector<LoadPointResult> &results)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "load,inference_tops,training_tops,p99_ms,mean_ms,"
           "service_ms,batch_fill,dram_utilization\n";
    for (const auto &r : results) {
        out << r.load << ',' << r.inference_tops << ','
            << r.training_tops << ',' << r.p99_ms << ',' << r.mean_ms
            << ',' << r.service_time_ms << ',' << r.sim.avg_batch_fill
            << ',' << r.sim.dram_utilization << '\n';
    }
    return static_cast<bool>(out);
}

} // namespace core
} // namespace equinox

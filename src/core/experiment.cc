#include "core/experiment.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/metrics_snapshot.hh"

namespace equinox
{
namespace core
{

namespace
{

/** Append a double to a cache key losslessly (hex float). */
void
keyDouble(std::string &key, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%a|", v);
    key += buf;
}

void
keyU64(std::string &key, std::uint64_t v)
{
    key += std::to_string(v);
    key += '|';
}

/**
 * Canonical serialisation of every configuration knob the workload
 * compiler reads. Fields are listed explicitly; when a knob is added
 * to AcceleratorConfig that changes compile output, it must be added
 * here too or the saturation cache can serve stale entries.
 */
std::string
configKey(const sim::AcceleratorConfig &cfg)
{
    std::string key;
    keyU64(key, cfg.n);
    keyU64(key, cfg.m);
    keyU64(key, cfg.w);
    keyDouble(key, cfg.frequency_hz);
    keyU64(key, static_cast<std::uint64_t>(cfg.encoding));
    keyU64(key, cfg.act_buffer_bytes);
    keyU64(key, cfg.weight_buffer_bytes);
    keyU64(key, cfg.instr_buffer_bytes);
    keyU64(key, cfg.simd_rf_bytes);
    keyDouble(key, cfg.train_staging_frac);
    keyU64(key, cfg.simd_lanes);
    keyU64(key, static_cast<std::uint64_t>(cfg.batch_policy));
    keyDouble(key, cfg.batch_timeout_mult);
    keyU64(key, static_cast<std::uint64_t>(cfg.sched_policy));
    keyU64(key, cfg.spike_threshold_batches);
    keyDouble(key, cfg.software_turnaround_s);
    keyDouble(key, cfg.dram.bandwidth_bytes_per_s);
    keyDouble(key, cfg.dram.latency_s);
    keyU64(key, cfg.dram.channels);
    keyDouble(key, cfg.host.bandwidth_bytes_per_s);
    keyDouble(key, cfg.host.latency_s);
    keyU64(key, cfg.host.channels);
    return key;
}

/** Canonical serialisation of a workload model's compile-relevant
 * fields (the name alone is not trusted: tests build ad-hoc models). */
std::string
modelKey(const workload::DnnModel &m)
{
    std::string key = m.name;
    key += '|';
    keyU64(key, static_cast<std::uint64_t>(m.kind));
    keyU64(key, m.rnn.hidden);
    keyU64(key, m.rnn.steps);
    for (unsigned g : m.rnn.gate_groups)
        keyU64(key, g);
    keyDouble(key, m.rnn.simd_passes);
    for (const auto &l : m.cnn.layers) {
        keyU64(key, l.c_in);
        keyU64(key, l.c_out);
        keyU64(key, l.kernel);
        keyU64(key, l.out_h);
        keyU64(key, l.out_w);
        keyU64(key, l.stride);
    }
    keyU64(key, m.cnn.classifier_in);
    keyU64(key, m.cnn.classifier_out);
    keyDouble(key, m.cnn.simd_passes);
    keyU64(key, m.cnn.batch_images);
    keyU64(key, m.cnn.input_bytes);
    for (std::size_t d : m.mlp.dims)
        keyU64(key, d);
    keyDouble(key, m.mlp.simd_passes);
    return key;
}

/** The two scalars an inference compile yields that the analytic
 * queries need; cached per (config, model). */
struct InferenceSummary
{
    double service_time_s = 0.0;
    double saturation_ops_per_s = 0.0;
};

InferenceSummary
cachedInferenceSummary(const sim::AcceleratorConfig &cfg,
                       const workload::DnnModel &model)
{
    static std::map<std::string, InferenceSummary> cache;
    static std::mutex mtx;

    std::string key = configKey(cfg) + '#' + modelKey(model);
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    // Compile outside the lock: compiles are deterministic pure
    // functions of the key, so concurrent duplicate work is safe (last
    // writer stores an identical value) and the lock never serialises
    // a multi-second compile.
    workload::Compiler compiler(cfg);
    auto svc = compiler.compileInference(model);
    InferenceSummary summary;
    summary.service_time_s = svc.service_time_s;
    Tick busy = svc.program.mmuBusyCycles();
    summary.saturation_ops_per_s =
        static_cast<double>(svc.program.totalRealOps()) /
        static_cast<double>(busy) * cfg.frequency_hz;
    {
        std::lock_guard<std::mutex> lock(mtx);
        cache.emplace(std::move(key), summary);
    }
    return summary;
}

void
validateOrDie(const sim::AcceleratorConfig &cfg,
              const ExperimentOptions &opts)
{
    // Reject unusable user input with the full actionable report before
    // any machinery is built; internal invariants further down still
    // panic, but a bad knob should never get that far.
    if (auto errors = cfg.validate(); !errors.empty()) {
        EQX_FATAL("invalid accelerator configuration '", cfg.name,
                  "':\n", sim::formatConfigErrors(errors));
    }
    if (auto errors = opts.fault_plan.validate(); !errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += "\n  " + e;
        EQX_FATAL("invalid fault plan:", joined);
    }
}

} // namespace

double
saturationOpRate(const sim::AcceleratorConfig &cfg,
                 const workload::DnnModel &model)
{
    return cachedInferenceSummary(cfg, model).saturation_ops_per_s;
}

double
latencyTargetSeconds(const sim::AcceleratorConfig &reference,
                     const workload::DnnModel &model)
{
    return 10.0 * cachedInferenceSummary(reference, model).service_time_s;
}

CompiledWorkload
compileWorkload(const sim::AcceleratorConfig &cfg,
                const ExperimentOptions &opts)
{
    workload::Compiler compiler(cfg);
    CompiledWorkload compiled;
    compiled.inference = compiler.compileInference(opts.model);
    if (opts.train_model) {
        compiled.training = compiler.compileTraining(
            *opts.train_model, opts.train_batch, opts.train_opts);
    }
    return compiled;
}

LoadPointResult
runAtLoad(const sim::AcceleratorConfig &cfg, double load,
          const ExperimentOptions &opts, const CompiledWorkload &compiled)
{
    validateOrDie(cfg, opts);

    sim::Accelerator accel(cfg);
    double service_s = compiled.inference.service_time_s;
    accel.installInference(compiled.inference);
    if (compiled.training)
        accel.installTraining(*compiled.training);
    if (opts.trace_sink)
        accel.setTraceSink(opts.trace_sink);

    sim::RunSpec spec;
    spec.arrival_rate_per_s = load * accel.maxRequestRate();
    spec.warmup_requests = opts.warmup_requests;
    spec.warmup_s = opts.warmup_s;
    spec.measure_requests = opts.measure_requests;
    spec.min_measure_s = opts.min_measure_s;
    spec.measure_iterations = opts.measure_iterations;
    spec.max_sim_s = opts.max_sim_s;
    spec.seed = opts.seed;
    spec.fast_forward = opts.fast_forward;
    spec.faults = opts.fault_plan;

    LoadPointResult res;
    res.load = load;
    res.sim = accel.run(spec);
    res.inference_tops = res.sim.inference_throughput_ops / 1e12;
    res.training_tops = res.sim.training_throughput_ops / 1e12;
    res.p99_ms = res.sim.p99_latency_s * 1e3;
    res.mean_ms = res.sim.mean_latency_s * 1e3;
    res.max_inference_tops = accel.maxInferenceOpRate() / 1e12;
    res.service_time_ms = service_s * 1e3;
    return res;
}

LoadPointResult
runAtLoad(const sim::AcceleratorConfig &cfg, double load,
          const ExperimentOptions &opts)
{
    validateOrDie(cfg, opts);
    return runAtLoad(cfg, load, opts, compileWorkload(cfg, opts));
}

std::vector<LoadPointResult>
runLoadSweep(const sim::AcceleratorConfig &cfg,
             const std::vector<double> &loads,
             const ExperimentOptions &opts)
{
    validateOrDie(cfg, opts);
    // Compile once per (config, options) pair; every load point
    // installs a copy of the same descriptors.
    CompiledWorkload compiled = compileWorkload(cfg, opts);
    std::vector<LoadPointResult> out(loads.size());
    // A trace sink is shared mutable state: force the (byte-identical)
    // serial path so its event stream stays in simulation order.
    std::size_t jobs = opts.trace_sink ? 1 : opts.jobs;
    parallelFor(jobs, loads.size(), [&](std::size_t i) {
        out[i] = runAtLoad(cfg, loads[i], opts, compiled);
    });
    return out;
}

void
addLoadPoint(obs::MetricsSnapshot &snap, const std::string &label,
             const LoadPointResult &r)
{
    obs::Json point = obs::Json::object();
    point["load"] = r.load;
    point["inference_tops"] = r.inference_tops;
    point["training_tops"] = r.training_tops;
    point["p99_ms"] = r.p99_ms;
    point["mean_ms"] = r.mean_ms;
    point["max_inference_tops"] = r.max_inference_tops;
    point["service_time_ms"] = r.service_time_ms;

    const sim::SimResult &s = r.sim;
    point["sim_seconds"] = s.sim_seconds;
    point["completed_requests"] = s.completed_requests;
    point["offered_rate_per_s"] = s.offered_rate_per_s;
    point["p50_latency_s"] = s.p50_latency_s;
    point["max_latency_s"] = s.max_latency_s;
    point["mean_service_s"] = s.mean_service_s;
    point["batches_formed"] = s.batches_formed;
    point["batches_incomplete"] = s.batches_incomplete;
    point["avg_batch_fill"] = s.avg_batch_fill;
    point["dram_utilization"] = s.dram_utilization;
    point["host_bytes"] = s.host_bytes;
    point["training_iterations"] = s.training_iterations;
    point["availability"] = s.availability;

    obs::Json &breakdown = point["mmu_breakdown"];
    breakdown["working"] =
        s.mmu_breakdown.get(stats::CycleClass::Working);
    breakdown["dummy"] = s.mmu_breakdown.get(stats::CycleClass::Dummy);
    breakdown["idle"] = s.mmu_breakdown.get(stats::CycleClass::Idle);
    breakdown["other"] = s.mmu_breakdown.get(stats::CycleClass::Other);

    for (const auto &svc : s.per_service) {
        obs::Json entry = obs::Json::object();
        entry["model"] = svc.model_name;
        entry["completed"] = svc.completed;
        entry["mean_latency_s"] = svc.mean_latency_s;
        entry["p99_latency_s"] = svc.p99_latency_s;
        point["services"]["svc" + std::to_string(svc.ctx)] =
            std::move(entry);
    }

    if (s.faults.totalFaults() > 0 || s.faults.recoveryEvents() > 0) {
        obs::Json &faults = point["faults"];
        faults["total"] = s.faults.totalFaults();
        faults["recovery_events"] = s.faults.recoveryEvents();
        faults["shed_requests"] = s.faults.shed_requests;
        faults["downtime_cycles"] =
            static_cast<std::uint64_t>(s.faults.downtime_cycles);
    }

    // Memory-hierarchy counters ride along only when a non-trivial
    // hierarchy ran: passthrough load points keep the exact schema
    // they had before the subsystem existed.
    if (s.mem.active) {
        obs::Json &m = point["mem"];
        m["llc_hits"] = s.mem.llc_hits;
        m["llc_misses"] = s.mem.llc_misses;
        m["llc_evictions"] = s.mem.llc_evictions;
        m["hit_rate"] = s.mem.hitRate();
        m["prefetch_issued"] = s.mem.prefetch_issued;
        m["prefetch_useful"] = s.mem.prefetch_useful;
        m["prefetch_accuracy"] = s.mem.prefetchAccuracy();
        m["sp_fill_stalls"] = s.mem.sp_fill_stalls;
        m["sp_bank_switches"] = s.mem.sp_bank_switches;
        m["sp_high_water"] = s.mem.sp_high_water;
        m["wb_combines"] = s.mem.wb_combines;
        m["wb_bytes_in"] = s.mem.wb_bytes_in;
        m["wb_bytes_drained"] = s.mem.wb_bytes_drained;
        m["dram_transfers"] = s.mem.dram_transfers;
    }

    snap.section("sweeps")[label].append(std::move(point));
}

void
addLoadSweep(obs::MetricsSnapshot &snap, const std::string &label,
             const std::vector<LoadPointResult> &results)
{
    for (const auto &r : results)
        addLoadPoint(snap, label, r);
}

bool
writeCsv(const std::string &path,
         const std::vector<LoadPointResult> &results)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "load,inference_tops,training_tops,p99_ms,mean_ms,"
           "service_ms,batch_fill,dram_utilization\n";
    for (const auto &r : results) {
        out << r.load << ',' << r.inference_tops << ','
            << r.training_tops << ',' << r.p99_ms << ',' << r.mean_ms
            << ',' << r.service_time_ms << ',' << r.sim.avg_batch_fill
            << ',' << r.sim.dram_utilization << '\n';
    }
    return static_cast<bool>(out);
}

} // namespace core
} // namespace equinox

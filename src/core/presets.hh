/**
 * @file
 * The Equinox configuration family of section 5: Equinox_min,
 * Equinox_50us, Equinox_500us and Equinox_none, per encoding -- the
 * Pareto-optimal designs the design-space exploration selects under each
 * latency constraint.
 */

#ifndef EQUINOX_CORE_PRESETS_HH
#define EQUINOX_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "model/dse.hh"
#include "sim/config.hh"

namespace equinox
{
namespace core
{

/** The named latency-constraint family. */
enum class Preset
{
    Min,   //!< latency-optimal
    Us50,  //!< latency < 50 us
    Us500, //!< latency < 500 us
    None,  //!< unconstrained throughput
};

const char *presetName(Preset p);

/** All four presets in paper order. */
std::vector<Preset> allPresets();

/**
 * The DSE-selected design point for @p preset and @p enc. The sweep runs
 * once per encoding and is cached for the process lifetime. @p jobs
 * fans the (first, cache-filling) sweep out across worker threads; the
 * sweep result is byte-identical for every jobs value (see DseConfig).
 */
model::DesignPoint presetDesign(Preset preset, arith::Encoding enc,
                                std::size_t jobs = 1);

/** A ready-to-simulate configuration for @p preset / @p enc. */
sim::AcceleratorConfig presetConfig(Preset preset,
                                    arith::Encoding enc =
                                        arith::Encoding::Hbfp8,
                                    std::size_t jobs = 1);

/** The cached full sweep for an encoding (for Figure 6). */
const model::DseResult &cachedSweep(arith::Encoding enc,
                                    std::size_t jobs = 1);

} // namespace core
} // namespace equinox

#endif // EQUINOX_CORE_PRESETS_HH

#include "core/presets.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace equinox
{
namespace core
{

const char *
presetName(Preset p)
{
    switch (p) {
      case Preset::Min: return "Equinox_min";
      case Preset::Us50: return "Equinox_50us";
      case Preset::Us500: return "Equinox_500us";
      case Preset::None: return "Equinox_none";
      default: return "?";
    }
}

std::vector<Preset>
allPresets()
{
    return {Preset::Min, Preset::Us50, Preset::Us500, Preset::None};
}

const model::DseResult &
cachedSweep(arith::Encoding enc, std::size_t jobs)
{
    static std::map<arith::Encoding, model::DseResult> cache;
    static std::mutex mtx;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = cache.find(enc);
    if (it == cache.end()) {
        model::DseConfig dse_cfg;
        dse_cfg.jobs = jobs;
        it = cache.emplace(enc,
                           model::exploreDesignSpace(
                               model::defaultTechParams(), enc, dse_cfg))
                 .first;
    }
    return it->second;
}

model::DesignPoint
presetDesign(Preset preset, arith::Encoding enc, std::size_t jobs)
{
    const auto &sweep = cachedSweep(enc, jobs);
    std::optional<model::DesignPoint> point;
    switch (preset) {
      case Preset::Min:
        point = model::minLatencyDesign(sweep);
        break;
      case Preset::Us50:
        point = model::bestUnderLatency(sweep, 50e-6);
        break;
      case Preset::Us500:
        point = model::bestUnderLatency(sweep, 500e-6);
        break;
      case Preset::None:
        point = model::bestUnderLatency(sweep, 1e9);
        break;
    }
    EQX_ASSERT(point.has_value(), "no feasible design for preset ",
               presetName(preset));
    return *point;
}

sim::AcceleratorConfig
presetConfig(Preset preset, arith::Encoding enc, std::size_t jobs)
{
    auto design = presetDesign(preset, enc, jobs);
    auto cfg = model::toAcceleratorConfig(design, presetName(preset));
    return cfg;
}

} // namespace core
} // namespace equinox

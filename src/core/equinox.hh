/**
 * @file
 * Umbrella public header for the Equinox reproduction library.
 *
 * Quickstart:
 * @code
 *   #include "core/equinox.hh"
 *   using namespace equinox;
 *
 *   auto cfg = core::presetConfig(core::Preset::Us500);
 *   auto point = core::runAtLoad(cfg, 0.5);   // LSTM at 50% load
 *   std::cout << point.p99_ms << " ms p99\n";
 * @endcode
 */

#ifndef EQUINOX_CORE_EQUINOX_HH
#define EQUINOX_CORE_EQUINOX_HH

#include "arith/bfloat16.hh"
#include "arith/bfp.hh"
#include "arith/gemm.hh"
#include "core/experiment.hh"
#include "core/presets.hh"
#include "model/analytical.hh"
#include "model/dse.hh"
#include "model/tech_params.hh"
#include "nn/trainer.hh"
#include "sim/accelerator.hh"
#include "sim/config.hh"
#include "stats/table.hh"
#include "synth/synthesis.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

#endif // EQUINOX_CORE_EQUINOX_HH

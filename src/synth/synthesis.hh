/**
 * @file
 * Synthesis proxy: per-component area and power estimates for a concrete
 * accelerator configuration (the Table 3 breakdown), standing in for the
 * Synopsys Design Compiler + CACTI flow of section 5.
 *
 * Component models use the same calibrated TSMC-28nm constants as the
 * section-4 analytical models (model::TechParams / model::CactiLite),
 * evaluated at the design's frequency and voltage with per-component
 * activity factors.
 */

#ifndef EQUINOX_SYNTH_SYNTHESIS_HH
#define EQUINOX_SYNTH_SYNTHESIS_HH

#include <string>
#include <vector>

#include "model/tech_params.hh"
#include "sim/accelerator.hh"
#include "sim/config.hh"

namespace equinox
{
namespace synth
{

/** One row of the Table 3 breakdown. */
struct ComponentEstimate
{
    std::string name;
    double area_mm2 = 0.0;
    double power_w = 0.0;
};

/** Full per-component report plus the paper's overhead headlines. */
struct SynthesisReport
{
    std::vector<ComponentEstimate> components;
    double total_area = 0.0;
    double total_power = 0.0;

    /** Request + instruction dispatcher share (the "<1%" claim). */
    double controller_area_frac = 0.0;
    double controller_power_frac = 0.0;

    /**
     * SIMD-unit share: the bfloat16 ALUs and register file exist to
     * support HBFP training, so the paper counts them as the uniform
     * encoding's overhead over a fixed-point-only inference accelerator
     * (the "13% power / 4% area" claim).
     */
    double encoding_area_frac = 0.0;
    double encoding_power_frac = 0.0;

    const ComponentEstimate &component(const std::string &name) const;
};

/** Estimate the breakdown for @p cfg. */
SynthesisReport synthesize(const sim::AcceleratorConfig &cfg,
                           const model::TechParams &tech =
                               model::defaultTechParams());

/**
 * Energy consumed during one simulated run: the Eq.-2 power model
 * evaluated against the run's measured activity (busy cycles, buffer
 * traffic, DRAM time) instead of peak utilisation.
 */
struct EnergyReport
{
    double total_j = 0.0;
    double avg_power_w = 0.0;

    // component split
    double alu_j = 0.0;    //!< MMU MACs
    double sram_j = 0.0;   //!< activation/weight buffer traffic
    double simd_j = 0.0;   //!< SIMD lanes + register file
    double dram_j = 0.0;   //!< HBM interface (provisioned)
    double static_j = 0.0; //!< SRAM leakage

    /** Average energy per delivered useful op (J/op). */
    double j_per_op = 0.0;
    /** Same, in picojoules. */
    double pj_per_op = 0.0;
    /** Fraction of dynamic energy spent moving data (SRAM + DRAM). */
    double data_movement_frac = 0.0;
};

/** Evaluate the run-energy model for @p cfg over @p result. */
EnergyReport estimateEnergy(const sim::AcceleratorConfig &cfg,
                            const sim::SimResult &result,
                            const model::TechParams &tech =
                                model::defaultTechParams());

} // namespace synth
} // namespace equinox

#endif // EQUINOX_SYNTH_SYNTHESIS_HH

#include "synth/synthesis.hh"

#include "common/logging.hh"
#include "model/cacti_lite.hh"

namespace equinox
{
namespace synth
{

const ComponentEstimate &
SynthesisReport::component(const std::string &name) const
{
    for (const auto &c : components) {
        if (c.name == name)
            return c;
    }
    EQX_FATAL("no component estimate named '", name, "'");
}

SynthesisReport
synthesize(const sim::AcceleratorConfig &cfg, const model::TechParams &tp)
{
    model::CactiLite cacti;
    SynthesisReport rep;

    const double f = cfg.frequency_hz;
    const double scale = tp.energyScaleAt(f);
    const double fe = f * scale; // effective dynamic-energy frequency
    const double bpv = tp.bytesPerValue(cfg.encoding);
    const double alus = static_cast<double>(cfg.macsPerCycle());
    const double n = cfg.n, m = cfg.m, w = cfg.w;

    // -- MMU: the systolic arrays plus, for HBFP, per-array exponent
    // adders and FIFOs (a small fixed fraction of the array).
    {
        double exp_logic = cfg.encoding == arith::Encoding::Hbfp8 ? 1.02
                                                                  : 1.0;
        ComponentEstimate c;
        c.name = "MMU";
        c.area_mm2 = alus * tp.aluArea(cfg.encoding) * exp_logic;
        c.power_w = fe * alus * tp.aluEnergy(cfg.encoding) * exp_logic;
        rep.components.push_back(c);
    }

    // -- DRAM interface: fixed HBM PHY estimates from Tran [33].
    rep.components.push_back({"DRAM Interface", tp.a_dram, tp.p_dram});

    // -- SIMD unit: bfloat16 lanes plus its register file.
    {
        ComponentEstimate c;
        c.name = "SIMD Unit";
        double lanes = cfg.simd_lanes;
        double rf_area = cacti.areaMm2(cfg.simd_rf_bytes);
        c.area_mm2 = lanes * tp.a_alu_bf16 + rf_area;
        // Each lane op touches ~4 register-file bytes; the unit is
        // active on the elementwise epilogue of every step.
        double activity = 0.6;
        c.power_w = fe * lanes * activity *
                        (tp.e_alu_bf16 +
                         4.0 * cacti.energyPerByte(cfg.simd_rf_bytes)) +
                    cacti.leakageW(cfg.simd_rf_bytes);
        rep.components.push_back(c);
    }

    // -- Weight buffer: per-bank reads feeding each systolic array.
    {
        ComponentEstimate c;
        c.name = "Weight Buffer";
        c.area_mm2 = cacti.areaMm2(cfg.weight_buffer_bytes);
        double bytes_per_cycle = m * w * n * bpv;
        c.power_w = fe * bytes_per_cycle *
                        cacti.energyPerByte(cfg.weight_buffer_bytes /
                                            std::max(1u, cfg.m)) +
                    cacti.leakageW(cfg.weight_buffer_bytes);
        rep.components.push_back(c);
    }

    // -- Activation buffer: broadcast reads plus SIMD writebacks.
    {
        ComponentEstimate c;
        c.name = "Activation Buffer";
        c.area_mm2 = cacti.areaMm2(cfg.act_buffer_bytes);
        double bytes_per_cycle = (w * n + m * n) * bpv;
        c.power_w = fe * bytes_per_cycle *
                        cacti.energyPerByte(cfg.act_buffer_bytes / 16) +
                    cacti.leakageW(cfg.act_buffer_bytes);
        rep.components.push_back(c);
    }

    // -- Request dispatcher: context queues, batch-formation buffer and
    // the request controller (Figure 5 top). Dominated by a few tens of
    // KB of queue SRAM plus small control logic.
    {
        ComponentEstimate c;
        c.name = "Request Dispatcher";
        ByteCount queue_sram = 256 * 1024;
        c.area_mm2 = cacti.areaMm2(queue_sram) + 0.35;
        c.power_w = fe * 16.0 * cacti.energyPerByte(queue_sram) +
                    cacti.leakageW(queue_sram) + 0.05;
        rep.components.push_back(c);
    }

    // -- Instruction dispatcher: instruction buffer, decoder, completion
    // unit (Figure 5 bottom).
    {
        ComponentEstimate c;
        c.name = "Instruction Dispatcher";
        c.area_mm2 = cacti.areaMm2(cfg.instr_buffer_bytes) + 0.40;
        c.power_w = fe * 8.0 * cacti.energyPerByte(
                                   cfg.instr_buffer_bytes) +
                    cacti.leakageW(cfg.instr_buffer_bytes) + 0.08;
        rep.components.push_back(c);
    }

    // -- Others: im2col unit, on-chip interconnect/ring, clocking, host
    // PHY -- a small fixed remainder, as in Table 3.
    {
        double partial_area = 0.0, partial_power = 0.0;
        for (const auto &c : rep.components) {
            partial_area += c.area_mm2;
            partial_power += c.power_w;
        }
        rep.components.push_back(
            {"Others", 0.022 * partial_area, 0.05 * partial_power});
    }

    for (const auto &c : rep.components) {
        rep.total_area += c.area_mm2;
        rep.total_power += c.power_w;
    }

    double ctrl_area = rep.component("Request Dispatcher").area_mm2 +
                       rep.component("Instruction Dispatcher").area_mm2;
    double ctrl_power = rep.component("Request Dispatcher").power_w +
                        rep.component("Instruction Dispatcher").power_w;
    rep.controller_area_frac = ctrl_area / rep.total_area;
    rep.controller_power_frac = ctrl_power / rep.total_power;
    rep.encoding_area_frac =
        rep.component("SIMD Unit").area_mm2 / rep.total_area;
    rep.encoding_power_frac =
        rep.component("SIMD Unit").power_w / rep.total_power;
    return rep;
}

} // namespace synth
} // namespace equinox

namespace equinox
{
namespace synth
{

EnergyReport
estimateEnergy(const sim::AcceleratorConfig &cfg,
               const sim::SimResult &result,
               const model::TechParams &tp)
{
    model::CactiLite cacti;
    EnergyReport rep;

    const double scale = tp.energyScaleAt(cfg.frequency_hz);
    const double bpv = tp.bytesPerValue(cfg.encoding);
    const double elapsed = result.sim_seconds;
    if (elapsed <= 0.0)
        return rep;

    // MMU: every busy cycle clocks all m*n^2*w MACs.
    rep.alu_j = result.mmu_busy_cycles *
                static_cast<double>(cfg.macsPerCycle()) *
                tp.aluEnergy(cfg.encoding) * scale;

    // On-chip buffers: Eq. 2's per-cycle traffic (wn + mwn + mn values)
    // on busy cycles.
    double traffic_bytes =
        (static_cast<double>(cfg.w) * cfg.n +
         static_cast<double>(cfg.m) * cfg.w * cfg.n +
         static_cast<double>(cfg.m) * cfg.n) * bpv;
    rep.sram_j = result.mmu_busy_cycles * traffic_bytes *
                 tp.e_sram_byte * scale;

    // SIMD unit: all lanes plus ~4 register-file bytes per lane-op.
    rep.simd_j = result.simd_busy_cycles *
                 static_cast<double>(cfg.simd_lanes) *
                 (tp.e_alu_bf16 +
                  4.0 * cacti.energyPerByte(cfg.simd_rf_bytes)) *
                 scale;

    // DRAM interface power is provisioned for the full stack (Eq. 2
    // treats it as constant); leakage likewise.
    rep.dram_j = tp.p_dram * elapsed;
    rep.static_j = tp.sramStaticPower() * elapsed;

    rep.total_j = rep.alu_j + rep.sram_j + rep.simd_j + rep.dram_j +
                  rep.static_j;
    rep.avg_power_w = rep.total_j / elapsed;

    double useful_ops = (result.inference_throughput_ops +
                         result.training_throughput_ops) * elapsed;
    if (useful_ops > 0.0) {
        rep.j_per_op = rep.total_j / useful_ops;
        rep.pj_per_op = rep.j_per_op * 1e12;
    }
    double dynamic = rep.alu_j + rep.sram_j + rep.simd_j + rep.dram_j;
    if (dynamic > 0.0)
        rep.data_movement_frac = (rep.sram_j + rep.dram_j) / dynamic;
    return rep;
}

} // namespace synth
} // namespace equinox
